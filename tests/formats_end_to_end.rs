//! Cross-crate integration: the packed MX encoding (mx-core), the hardware
//! pipeline (mx-hw), and the training stack's quantized matmul (mx-nn) must
//! all agree on the same numbers — the repository-wide analogue of the
//! paper's claim that its emulation matches native-MX silicon.

use mx::core::bdr::BdrFormat;
use mx::core::mx::MxTensor;
use mx::hw::pipeline::{DotProductPipeline, PipelineConfig};
use mx::nn::format::{quantize_along, Axis, TensorFormat};
use mx::nn::tensor::Tensor;

fn vectors(n: usize) -> (Vec<f32>, Vec<f32>) {
    let a = (0..n)
        .map(|i| ((i * 37) % 101) as f32 * 0.021 - 1.0)
        .collect();
    let b = (0..n)
        .map(|i| ((i * 53) % 97) as f32 * 0.019 - 0.9)
        .collect();
    (a, b)
}

/// Packed encode/decode, direct quantize-dequantize, and the nn layer's
/// row-axis quantization all produce identical values.
#[test]
fn three_stacks_agree_on_quantized_values() {
    let (a, _) = vectors(128);
    for fmt in [BdrFormat::MX4, BdrFormat::MX6, BdrFormat::MX9] {
        let direct = fmt.quantize_dequantize(&a);
        let packed = MxTensor::encode(fmt, &a).decode();
        let tensor = quantize_along(
            &Tensor::from_vec(a.clone(), &[1, 128]),
            TensorFormat::Bdr(fmt),
            Axis::Row,
        );
        assert_eq!(direct, packed, "{fmt}: packed round-trip diverged");
        assert_eq!(
            direct,
            tensor.into_data(),
            "{fmt}: nn quantization diverged"
        );
    }
}

/// The hardware pipeline computes the same dot product as the nn stack's
/// quantized matmul (up to the pipeline's documented f-bit truncation,
/// removed here by widening the accumulator).
#[test]
fn pipeline_matches_nn_quantized_matmul() {
    let (a, b) = vectors(256);
    for fmt in [BdrFormat::MX6, BdrFormat::MX9] {
        let engine =
            DotProductPipeline::new(PipelineConfig::Bdr(fmt), 64).with_accumulator_bits(90);
        let hw = engine.dot(&a, &b);
        // nn path: 1xN times Nx1 quantized matmul, chunked FP32 accumulate
        // to mirror the engine's r-chunking.
        let mut acc = 0.0f32;
        for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
            let qa = fmt.quantize_dequantize(ca);
            let qb = fmt.quantize_dequantize(cb);
            let chunk: f64 = qa.iter().zip(&qb).map(|(&x, &y)| x as f64 * y as f64).sum();
            acc += chunk as f32;
        }
        assert_eq!(hw, acc, "{fmt}: hardware and software paths diverged");
    }
}

/// Storage accounting agrees across crates: the packed tensor's measured
/// bits match the format's advertised bits and the memory model's tile
/// arithmetic.
#[test]
fn storage_accounting_is_consistent() {
    for fmt in [
        BdrFormat::MX4,
        BdrFormat::MX6,
        BdrFormat::MX9,
        BdrFormat::MSFP12,
    ] {
        let x = vec![0.5f32; 256];
        let packed = MxTensor::encode(fmt, &x);
        assert_eq!(
            packed.measured_bits_per_element(),
            fmt.bits_per_element(),
            "{fmt}"
        );
        // 256 elements are whole blocks for every preset, so the packed
        // stream is byte-aligned and matches the memory model's payload.
        let tile = mx::hw::memory::tile_footprint(fmt.bits_per_element());
        assert_eq!(tile.payload_bits, packed.as_bytes().len() * 8, "{fmt}");
        assert!(tile.packing_efficiency() <= 1.0);
    }
}

/// Theorem 1 (mx-core) holds for the values the nn stack actually produces
/// during a quantized matmul.
#[test]
fn theorem_bound_holds_on_nn_tensors() {
    use mx::core::qsnr::qsnr_db;
    use mx::core::theory::qsnr_lower_bound_db;
    let (a, _) = vectors(512);
    for fmt in [BdrFormat::MX4, BdrFormat::MX6, BdrFormat::MX9] {
        let q = fmt.quantize_dequantize(&a);
        let measured = qsnr_db(&a, &q);
        let bound = qsnr_lower_bound_db(fmt, a.len());
        assert!(
            measured >= bound,
            "{fmt}: measured {measured} below bound {bound}"
        );
    }
}
