//! Bit-identity suite for compiled execution plans: for every zoo model ×
//! preset format pair × batch bucket, executing the [`CompiledPlan`]
//! produced by `BatchModel::compile_plan` must match the dynamic
//! layer-walk (`forward_batch`) to the bit. Also covers the hoisted
//! format-support gate (typed plan-time errors instead of silent per-call
//! fallbacks), plan-cache invalidation via the weight-generation token,
//! and concurrent execution of one shared plan from many threads with
//! per-worker arenas.

use mx::models::bert::BertQa;
use mx::models::data;
use mx::models::gpt::{Gpt, GptConfig};
use mx::models::vision::{TinyMobileNet, TinyResNet, TinyViT};
use mx::models::zoo::{BatchModel, DenseGemm, InputKind, ZooInput};
use mx::nn::plan::{CompiledPlan, PlanArena, PlanError, PlanInput};
use mx::nn::qflow::QuantConfig;
use mx::nn::tensor::Tensor;
use mx::nn::TensorFormat;
use std::sync::Arc;

/// The preset format pairs the serving layer direct-casts between.
fn presets() -> Vec<QuantConfig> {
    vec![
        QuantConfig::fp32(),
        QuantConfig::uniform(TensorFormat::MX9),
        QuantConfig::uniform(TensorFormat::MX6),
        QuantConfig::uniform(TensorFormat::MX4),
        QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6),
        QuantConfig::weights_activations(TensorFormat::MX4, TensorFormat::MX9),
    ]
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(g.to_bits() == w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
    }
}

/// Builds the input payloads for one `(model, batch, len)` bucket.
fn tokens_for(batch: usize, len: usize, vocab: usize, salt: usize) -> Vec<usize> {
    (0..batch * len).map(|i| (i * 7 + salt) % vocab).collect()
}

fn pixels_for(batch: usize, len: usize, salt: usize) -> Vec<f32> {
    (0..batch * len)
        .map(|i| ((i + salt) as f32 * 0.173).sin())
        .collect()
}

/// Runs every preset × bucket over one model, comparing planned vs dynamic
/// bit for bit. `buckets` are `(batch, len)` pairs; `vocab` is `Some` for
/// token models.
fn check_model<M: BatchModel>(
    model: &mut M,
    name: &str,
    buckets: &[(usize, usize)],
    vocab: Option<usize>,
) {
    for cfg in presets() {
        model.set_quant(cfg);
        for &(batch, len) in buckets {
            let ctx = format!("{name} cfg={cfg} batch={batch} len={len}");
            let plan = model
                .compile_plan(cfg, batch, len)
                .unwrap_or_else(|e| panic!("{ctx}: compile failed: {e}"));
            let mut arena = PlanArena::new();
            let (dynamic, planned) = match vocab {
                Some(v) => {
                    let toks = tokens_for(batch, len, v, batch + len);
                    (
                        model.forward_batch(ZooInput::Tokens(&toks), batch),
                        plan.execute(PlanInput::Tokens(&toks), &mut arena),
                    )
                }
                None => {
                    let px = pixels_for(batch, len, batch);
                    (
                        model.forward_batch(ZooInput::Pixels(&px), batch),
                        plan.execute(PlanInput::Pixels(&px), &mut arena),
                    )
                }
            };
            let planned = planned.unwrap_or_else(|e| panic!("{ctx}: execute failed: {e}"));
            assert_eq!(planned.len(), batch * model.output_len(len), "{ctx}");
            assert_bits_eq(&planned, &dynamic, &ctx);
            // A second execute over the warm arena must not drift.
            let again = match vocab {
                Some(v) => {
                    let toks = tokens_for(batch, len, v, batch + len);
                    plan.execute(PlanInput::Tokens(&toks), &mut arena)
                }
                None => {
                    let px = pixels_for(batch, len, batch);
                    plan.execute(PlanInput::Pixels(&px), &mut arena)
                }
            }
            .expect("warm re-execute");
            assert_bits_eq(&again, &dynamic, &format!("{ctx} (warm arena)"));
        }
    }
}

#[test]
fn dense_gemm_planned_matches_dynamic() {
    let mut rng = rand::SeedableRng::seed_from_u64(31);
    let mut m = DenseGemm::new(&mut rng, 64, 32, QuantConfig::fp32());
    check_model(&mut m, "DenseGemm", &[(1, 64), (4, 64), (32, 64)], None);
}

#[test]
fn gpt_planned_matches_dynamic_across_buckets() {
    let mut rng = rand::SeedableRng::seed_from_u64(32);
    let mut m = Gpt::new(&mut rng, GptConfig::tiny(), QuantConfig::fp32());
    let t = BatchModel::input_len(&m);
    // Native window plus a shorter variable-length bucket.
    check_model(
        &mut m,
        "Gpt",
        &[(1, t), (3, t), (2, t / 2)],
        Some(data::LM_VOCAB),
    );
}

#[test]
fn bert_planned_matches_dynamic_across_buckets() {
    let mut rng = rand::SeedableRng::seed_from_u64(33);
    let mut m = BertQa::new(&mut rng, 16, 1, 12, QuantConfig::fp32());
    check_model(
        &mut m,
        "BertQa",
        &[(1, 12), (2, 12), (3, 7)],
        Some(data::QA_VOCAB),
    );
}

#[test]
fn vision_models_planned_match_dynamic() {
    let px_len = data::IMAGE_SIDE * data::IMAGE_SIDE;
    let mut rng = rand::SeedableRng::seed_from_u64(34);
    let mut vit = TinyViT::new(&mut rng, 16, 2, QuantConfig::fp32());
    check_model(&mut vit, "TinyViT", &[(1, px_len), (3, px_len)], None);
    let mut resnet = TinyResNet::new(&mut rng, 4, 2, QuantConfig::fp32());
    check_model(&mut resnet, "TinyResNet", &[(1, px_len), (2, px_len)], None);
    let mut mobile = TinyMobileNet::new(&mut rng, 4, 3, QuantConfig::fp32());
    check_model(
        &mut mobile,
        "TinyMobileNet",
        &[(1, px_len), (2, px_len)],
        None,
    );
}

/// Repeated structure must share templates: the GPT blocks collapse to one
/// template, and every MobileNet pointwise layer shares one stage shape.
#[test]
fn repeated_layers_share_templates() {
    let mut rng = rand::SeedableRng::seed_from_u64(35);
    let cfg = QuantConfig::uniform(TensorFormat::MX6);
    let four_layers = GptConfig {
        n_layers: 4,
        ..GptConfig::tiny()
    };
    let m = Gpt::new(&mut rng, four_layers, cfg);
    let plan = m.compile_plan(cfg, 2, 16).expect("gpt plan");
    // Stages: embed + 4 blocks + head; templates: embed + 1 shared block
    // template + head.
    assert_eq!(plan.instance_count(), 6);
    assert_eq!(plan.template_count(), 3, "blocks must dedupe");

    let mobile = TinyMobileNet::new(&mut rng, 4, 3, cfg);
    let plan = mobile.compile_plan(cfg, 1).expect("mobilenet plan");
    assert_eq!(plan.instance_count(), 5); // stem + 3 pointwise + head
                                          // Conv geometry lives in the per-instance binding, so the stem's
                                          // single-conv stage shares the template with all pointwise stages.
    assert_eq!(plan.template_count(), 2, "conv stages must dedupe");
}

/// The format-support gate is hoisted to plan time: a pair with neither an
/// identity nor a code-domain path fails compilation with a typed error,
/// and MoE routing is refused up front.
#[test]
fn unplannable_configurations_fail_with_typed_errors() {
    let mut rng = rand::SeedableRng::seed_from_u64(36);
    let bf16 = QuantConfig::uniform(TensorFormat::Bf16);
    let m = DenseGemm::new(&mut rng, 32, 8, bf16);
    match m.compile_plan(bf16, 1, 32) {
        Err(PlanError::UnsupportedFormats { .. }) => {}
        other => panic!("expected UnsupportedFormats, got {other:?}"),
    }

    let moe = Gpt::new(
        &mut rng,
        GptConfig::moe(0, 4),
        QuantConfig::uniform(TensorFormat::MX6),
    );
    match moe.compile_plan(QuantConfig::uniform(TensorFormat::MX6), 1, 8) {
        Err(PlanError::Unsupported(_)) => {}
        other => panic!("expected Unsupported for MoE, got {other:?}"),
    }

    // Out-of-window buckets are compile errors, not execute panics.
    let gpt = Gpt::new(&mut rng, GptConfig::tiny(), QuantConfig::fp32());
    assert!(BatchModel::compile_plan(&gpt, QuantConfig::fp32(), 1, 999).is_err());
}

/// Weight mutation must change the staleness token, and a plan recompiled
/// after the mutation must track the new weights bit for bit.
#[test]
fn weight_mutation_invalidates_and_recompile_tracks() {
    let mut rng = rand::SeedableRng::seed_from_u64(37);
    let cfg = QuantConfig::uniform(TensorFormat::MX6);
    let mut m = DenseGemm::new(&mut rng, 32, 16, cfg);
    let px = pixels_for(2, 32, 9);

    let token_before = m.plan_token();
    let plan_before = m.compile_plan(cfg, 2, 32).expect("plan");
    let out_before = plan_before
        .execute(PlanInput::Pixels(&px), &mut PlanArena::new())
        .expect("execute");

    // In-place weight mutation (what an optimizer step does).
    let w: Vec<f32> = (0..32 * 16).map(|i| (i as f32 * 0.05).cos()).collect();
    m.set_weights(Tensor::from_vec(w, &[32, 16]));
    assert_ne!(m.plan_token(), token_before, "token must move on mutation");

    let plan_after = m.compile_plan(cfg, 2, 32).expect("recompile");
    let out_after = plan_after
        .execute(PlanInput::Pixels(&px), &mut PlanArena::new())
        .expect("execute");
    let dynamic_after = m.forward_batch(ZooInput::Pixels(&px), 2);
    assert_bits_eq(&out_after, &dynamic_after, "recompiled plan");
    assert_ne!(
        out_before.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        out_after.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "new weights must change the output"
    );
}

/// One shared plan hammered from N threads, each with its own arena: every
/// execution must be bit-identical to the dynamic oracle (plans are
/// immutable; all mutable state lives in the per-worker arena).
#[test]
fn shared_plan_is_thread_safe_with_per_worker_arenas() {
    let mut rng = rand::SeedableRng::seed_from_u64(38);
    let cfg = QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6);
    let mut m = Gpt::new(&mut rng, GptConfig::tiny(), cfg);
    assert_eq!(m.input_kind(), InputKind::Tokens);
    let t = BatchModel::input_len(&m);
    let toks = tokens_for(2, t, data::LM_VOCAB, 3);
    let want = m.forward_batch(ZooInput::Tokens(&toks), 2);
    let plan: Arc<CompiledPlan> = Arc::new(m.compile_plan(cfg, 2, t).expect("plan"));

    std::thread::scope(|scope| {
        for w in 0..4 {
            let plan = Arc::clone(&plan);
            let toks = &toks;
            let want = &want;
            scope.spawn(move || {
                let mut arena = PlanArena::new();
                for round in 0..8 {
                    let got = plan
                        .execute(PlanInput::Tokens(toks), &mut arena)
                        .expect("execute");
                    assert_bits_eq(&got, want, &format!("worker {w} round {round}"));
                }
            });
        }
    });
}
