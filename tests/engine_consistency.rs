//! Property-style consistency suite for the unified quantization engine:
//! every consumer of the BDR block plan — the packed bit stream, the value
//! path, the strided column kernel, and the nn-layer axis quantization —
//! must produce identical values, and the parallel front-end must be
//! bit-identical to serial execution.

use mx::core::bdr::BdrFormat;
use mx::core::engine::{QuantEngine, PARALLEL_GRAIN};
use mx::core::mx::MxTensor;
use mx::nn::format::{quantize_along, Axis, TensorFormat};
use mx::nn::tensor::Tensor;

const FORMATS: [BdrFormat; 5] = [
    BdrFormat::MX4,
    BdrFormat::MX6,
    BdrFormat::MX9,
    BdrFormat::MSFP12,
    BdrFormat::MSFP16,
];

/// Deterministic pseudo-random data with outliers, sign changes, zeros, and
/// a wide magnitude spread — the shapes block formats find hardest.
fn stress_vector(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i.wrapping_mul(2654435761).wrapping_add(salt * 97)) % 10_007;
            let base = h as f32 / 10_007.0 - 0.5;
            match i % 7 {
                0 => 0.0,
                1 => base * 1e4,
                2 => -base * 1e-4,
                3 => -0.0,
                _ => base,
            }
        })
        .collect()
}

/// `MxTensor::encode(...).decode()`, the engine value path, and the
/// format's own method agree exactly, for every format, across lengths
/// that are and are not multiples of `k1 = 16`.
#[test]
fn packed_and_value_paths_agree() {
    for fmt in FORMATS {
        for n in [1usize, 5, 15, 16, 17, 31, 32, 33, 100, 256, 1000] {
            let x = stress_vector(n, n);
            let engine = QuantEngine::new(fmt);
            let value = engine.quantize_dequantize(&x);
            assert_eq!(
                value,
                fmt.quantize_dequantize(&x),
                "{fmt} n={n}: format method"
            );
            let packed = MxTensor::encode(fmt, &x);
            let decoded = packed.decode();
            assert_eq!(decoded, value, "{fmt} n={n}: packed round trip");
            // Stronger than == (which treats -0.0 == 0.0): the packed and
            // value paths agree bit for bit, zeros included.
            assert!(
                decoded
                    .iter()
                    .zip(value.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{fmt} n={n}: packed and value paths differ in sign-of-zero"
            );
            assert_eq!(packed.len(), n);
        }
    }
}

/// The strided column kernel agrees with the transpose oracle (transpose,
/// quantize rows, transpose back) on ragged and square shapes.
#[test]
fn strided_column_path_matches_transpose_oracle() {
    for fmt in FORMATS {
        for (rows, cols) in [
            (16, 16),
            (17, 3),
            (33, 7),
            (48, 5),
            (100, 9),
            (1, 8),
            (7, 1),
        ] {
            let x = stress_vector(rows * cols, rows + cols);
            let t = Tensor::from_vec(x.clone(), &[rows, cols]);
            // Oracle: the seed's deleted double-transpose path.
            let mut tt = t.transpose2d();
            let m = tt.cols();
            for row in tt.data_mut().chunks_mut(m) {
                let q = fmt.quantize_dequantize(row);
                row.copy_from_slice(&q);
            }
            let oracle = tt.transpose2d();
            // Engine: strided kernel through quantize_along.
            let got = quantize_along(&t, TensorFormat::Bdr(fmt), Axis::Col);
            assert_eq!(got, oracle, "{fmt} {rows}x{cols}");
        }
    }
}

/// Row-axis quantization through the engine matches per-row vector
/// quantization.
#[test]
fn row_path_matches_per_row_vectors() {
    for fmt in [BdrFormat::MX4, BdrFormat::MX9] {
        let (rows, cols) = (9, 37);
        let x = stress_vector(rows * cols, 11);
        let t = Tensor::from_vec(x.clone(), &[rows, cols]);
        let q = quantize_along(&t, TensorFormat::Bdr(fmt), Axis::Row);
        for r in 0..rows {
            let expect = fmt.quantize_dequantize(&x[r * cols..(r + 1) * cols]);
            assert_eq!(
                &q.data()[r * cols..(r + 1) * cols],
                &expect[..],
                "{fmt} row {r}"
            );
        }
    }
}

/// Parallel and serial quantization produce bit-identical output on every
/// kernel (value, rows, cols, packed encode), for tensors large enough to
/// actually engage the thread pool.
#[test]
fn parallel_quantization_is_deterministic() {
    let fmt = BdrFormat::MX6;
    let n = 4 * PARALLEL_GRAIN + 19; // well past the parallel threshold, ragged tail
    let x = stress_vector(n, 23);

    let serial = QuantEngine::new(fmt);
    let value_serial = serial.quantize_dequantize(&x);
    let bytes_serial = serial.encode(&x);

    for threads in [2usize, 3, 8, 0] {
        let par = QuantEngine::new(fmt).with_threads(threads);
        let value_par = par.quantize_dequantize(&x);
        assert!(
            value_serial
                .iter()
                .zip(value_par.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "value path diverged at threads={threads}"
        );
        assert_eq!(
            bytes_serial,
            par.encode(&x),
            "packed stream diverged at threads={threads}"
        );
    }

    // 2-D kernels: 520 rows x 301 cols (ragged in both directions).
    let (rows, cols) = (520usize, 301usize);
    let m = stress_vector(rows * cols, 29);
    for kernel in ["rows", "cols"] {
        let mut a = m.clone();
        let mut b = m.clone();
        let par = QuantEngine::new(fmt).with_threads(4);
        match kernel {
            "rows" => {
                serial.quantize_dequantize_rows(&mut a, cols);
                par.quantize_dequantize_rows(&mut b, cols);
            }
            _ => {
                serial.quantize_dequantize_cols(&mut a, cols);
                par.quantize_dequantize_cols(&mut b, cols);
            }
        }
        assert!(
            a.iter()
                .zip(b.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "{kernel} kernel diverged"
        );
    }
}

/// Parallel span decoding of byte-aligned packed streams is bit-identical
/// to the serial decode, for every preset format (all of which have
/// byte-aligned full-block footprints) and a ragged tail block.
#[test]
fn parallel_decode_is_bit_identical_to_serial() {
    for fmt in FORMATS {
        let n = 3 * PARALLEL_GRAIN + 13; // past the threshold, ragged tail
        let x = stress_vector(n, 41);
        let bytes = QuantEngine::new(fmt).encode(&x);
        let serial = QuantEngine::new(fmt).decode(&bytes, n);
        for threads in [2usize, 3, 8, 0] {
            let par = QuantEngine::new(fmt)
                .with_threads(threads)
                .decode(&bytes, n);
            assert!(
                serial
                    .iter()
                    .zip(par.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{fmt} decode diverged at threads={threads}"
            );
        }
    }
}

/// The engine's packed stream is byte-for-byte what the seed's encoder
/// produced: spot-check the exact layout of one known block.
#[test]
fn packed_layout_is_stable() {
    // MX6 block of two values: 1.0 = 8 * 2^-3 (code 8), -0.5 = 4 * 2^-3.
    // Layout: 8-bit biased exponent (0 + 127), one 1-bit shift per
    // sub-block (k2 = 2 -> one sub-block, shift 0), then sign+4-bit codes.
    let t = MxTensor::encode(BdrFormat::MX6, &[1.0, -0.5]);
    // 8 + 1 + 2*5 = 19 bits -> 3 bytes.
    assert_eq!(t.as_bytes().len(), 3);
    let bits: Vec<u8> = t
        .as_bytes()
        .iter()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1))
        .collect();
    // Biased shared exponent 127.
    assert_eq!(&bits[0..8], &[0, 1, 1, 1, 1, 1, 1, 1]);
    // Microexponent shift 0.
    assert_eq!(bits[8], 0);
    // +1.0 -> sign 0, code 8 (1000); -0.5 -> sign 1, code 4 (0100).
    assert_eq!(&bits[9..14], &[0, 1, 0, 0, 0]);
    assert_eq!(&bits[14..19], &[1, 0, 1, 0, 0]);
}
