//! Regression suite for the weight-plane cache: quantized matmuls cache
//! the weight operand's prepacked integer code plane on the tensor, keyed
//! by a generation counter that every mutable-data access bumps. The
//! contract under test: **a stale cache is impossible to observe** — after
//! an optimizer step or a direct weight write, layer outputs are
//! bit-identical to a cold-cache run over the updated weights, and while
//! the weights are untouched, repeated forwards are bit-identical to the
//! first.

use mx::core::gemm::reference_gemm;
use mx::nn::attention::TransformerBlock;
use mx::nn::conv::Conv2d;
use mx::nn::format::TensorFormat;
use mx::nn::layers::{Layer, Linear};
use mx::nn::optim::{Adam, Sgd};
use mx::nn::param::HasParams;
use mx::nn::qflow::{quantized_matmul_ab, QuantConfig};
use mx::nn::rnn::Gru;
use mx::nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng() -> StdRng {
    StdRng::seed_from_u64(1234)
}

fn input(rows: usize, cols: usize, salt: usize) -> Tensor {
    Tensor::from_vec(
        (0..rows * cols)
            .map(|i| ((i.wrapping_mul(31).wrapping_add(salt * 7) % 61) as f32 - 30.0) * 0.043)
            .collect(),
        &[rows, cols],
    )
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(g.to_bits() == w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
    }
}

/// The forward pass a warm cache must reproduce, computed without any
/// caching: the bit-exact dequantize reference over the *current* weights.
fn linear_reference(l: &Linear, x: &Tensor) -> Vec<f32> {
    let (TensorFormat::Bdr(fa), TensorFormat::Bdr(fw)) = (l.quant().fwd, l.quant().fwd_w) else {
        panic!("test requires BDR formats")
    };
    reference_gemm(
        x.data(),
        l.w.value.data(),
        x.rows(),
        x.cols(),
        l.d_out(),
        fa,
        fw,
    )
}

#[test]
fn linear_forward_warms_cache_and_repeats_bit_identically() {
    let mut l = Linear::new(
        &mut rng(),
        48,
        6,
        false,
        QuantConfig::uniform(TensorFormat::MX6),
    );
    let x = input(5, 48, 1);
    assert_eq!(l.w.weight_plane_generation(), None, "cold before first use");
    let y1 = l.forward(&x, false);
    assert_eq!(
        l.w.weight_plane_generation(),
        Some(l.w.value.generation()),
        "warm after first use"
    );
    assert_bits_eq(y1.data(), &linear_reference(&l, &x), "first forward");
    // Steady state: the cached plane serves every subsequent pass.
    for pass in 0..3 {
        let y = l.forward(&x, false);
        assert_bits_eq(y.data(), y1.data(), &format!("pass {pass}"));
    }
}

#[test]
fn sgd_step_invalidates_cached_plane() {
    let mut l = Linear::new(
        &mut rng(),
        32,
        4,
        false,
        QuantConfig::uniform(TensorFormat::MX6),
    );
    let x = input(4, 32, 2);
    let y0 = l.forward(&x, true);
    let stamp = l.w.weight_plane_generation().expect("warm");
    // Drive a real update through the optimizer.
    let _ = l.backward(&y0);
    Sgd::new(0.05).step(&mut l);
    assert_ne!(
        l.w.weight_plane_generation(),
        Some(l.w.value.generation()),
        "optimizer step must leave the cached stamp stale"
    );
    assert_eq!(l.w.weight_plane_generation(), Some(stamp));
    // Post-update output == uncached reference over the *new* weights.
    let y1 = l.forward(&x, false);
    assert_bits_eq(y1.data(), &linear_reference(&l, &x), "post-SGD forward");
    assert_ne!(y1.data(), y0.data(), "the update must actually change y");
    // And the repack is itself cached again.
    assert_eq!(l.w.weight_plane_generation(), Some(l.w.value.generation()));
}

#[test]
fn adam_step_invalidates_cached_plane() {
    let mut l = Linear::new(
        &mut rng(),
        16,
        3,
        false,
        QuantConfig::uniform(TensorFormat::MX9),
    );
    let x = input(2, 16, 3);
    let y0 = l.forward(&x, true);
    let _ = l.backward(&y0);
    Adam::new(0.05).step(&mut l);
    let y1 = l.forward(&x, false);
    assert_bits_eq(y1.data(), &linear_reference(&l, &x), "post-Adam forward");
    assert_ne!(y1.data(), y0.data());
}

#[test]
fn direct_weight_writes_invalidate_cached_plane() {
    let mut l = Linear::new(
        &mut rng(),
        32,
        5,
        false,
        QuantConfig::uniform(TensorFormat::MX4),
    );
    let x = input(3, 32, 4);
    let _ = l.forward(&x, false);
    // In-place element write through data_mut.
    l.w.value.data_mut()[7] = 0.625;
    let y = l.forward(&x, false);
    assert_bits_eq(y.data(), &linear_reference(&l, &x), "after data_mut write");
    // Wholesale tensor replacement: a fresh tensor starts cold.
    l.w.value = Tensor::from_vec(
        (0..32 * 5)
            .map(|i| ((i % 13) as f32 - 6.0) * 0.09)
            .collect(),
        &[32, 5],
    );
    assert_eq!(l.w.weight_plane_generation(), None, "fresh tensor is cold");
    let y = l.forward(&x, false);
    assert_bits_eq(y.data(), &linear_reference(&l, &x), "after replacement");
}

/// Cached-vs-cold equivalence for the composite layers the cache is meant
/// to serve: attention (4 projections), GRU gates, and conv im2col all
/// produce bit-identical outputs on repeated forwards, and match a
/// freshly constructed (cold-cache) copy fed the same weights.
#[test]
fn composite_layers_repeat_bit_identically_and_match_cold_runs() {
    let cfg = QuantConfig::uniform(TensorFormat::MX6);
    // Attention block over [batch, seq, d_model].
    let mut block = TransformerBlock::new(&mut rng(), 32, 4, true, cfg);
    let xb = Tensor::from_vec(input(2 * 8, 32, 5).data().to_vec(), &[2, 8, 32]);
    let b1 = block.forward(&xb, false);
    let b2 = block.forward(&xb, false);
    assert_bits_eq(b2.data(), b1.data(), "transformer block repeat");
    let mut cold = TransformerBlock::new(&mut rng(), 32, 4, true, cfg);
    let bc = cold.forward(&xb, false);
    assert_bits_eq(bc.data(), b1.data(), "transformer block cold copy");

    // GRU step.
    let mut gru = Gru::new(&mut rng(), 16, 16, cfg);
    let (x, h) = (input(3, 16, 6), input(3, 16, 7));
    let g1 = gru.step(&x, &h, false);
    let g2 = gru.step(&x, &h, false);
    assert_bits_eq(g2.data(), g1.data(), "gru repeat");
    let mut gcold = Gru::new(&mut rng(), 16, 16, cfg);
    let gc = gcold.step(&x, &h, false);
    assert_bits_eq(gc.data(), g1.data(), "gru cold copy");

    // Conv2d im2col over [batch, ch, h, w].
    let mut conv = Conv2d::new(&mut rng(), 2, 3, 3, cfg);
    let xc = Tensor::from_vec(input(2 * 2 * 6, 6, 8).data().to_vec(), &[2, 2, 6, 6]);
    let c1 = conv.forward(&xc, false);
    let c2 = conv.forward(&xc, false);
    assert_bits_eq(c2.data(), c1.data(), "conv repeat");
    let mut ccold = Conv2d::new(&mut rng(), 2, 3, 3, cfg);
    let cc = ccold.forward(&xc, false);
    assert_bits_eq(cc.data(), c1.data(), "conv cold copy");
}

/// Concurrency hammer for the shared plane cache: N threads fire quantized
/// matmuls against **one** weight tensor — the serving pattern, where every
/// in-flight request reads the same model. Activation formats alternate
/// (they share the weight plane), weight formats split across two planes in
/// the per-format cache. Every output must be bit-identical to the serial
/// run, and the weight tensor must end up with exactly the two planes — no
/// thrash, no corruption, no deadlock.
#[test]
fn concurrent_matmuls_against_one_weight_tensor_match_serial() {
    let (m, k, n) = (4, 48, 6);
    let b = input(k, n, 20);
    let weight_formats = [TensorFormat::MX6, TensorFormat::MX9];
    let act_formats = [
        TensorFormat::MX6,
        TensorFormat::MX9,
        TensorFormat::MX4,
        TensorFormat::Bdr(mx::core::bdr::BdrFormat::MSFP12),
    ];
    let threads = 8;
    let per_thread: Vec<(Tensor, TensorFormat, TensorFormat)> = (0..threads)
        .map(|t| {
            (
                input(m, k, 30 + t),
                act_formats[t % act_formats.len()],
                weight_formats[t % weight_formats.len()],
            )
        })
        .collect();
    // Serial references (also warms both weight planes).
    let serial: Vec<Tensor> = per_thread
        .iter()
        .map(|(a, fa, fw)| quantized_matmul_ab(a, &b, *fa, *fw))
        .collect();
    assert_eq!(b.cached_plane_count(), weight_formats.len());
    let stamp = b.cached_plane_generation();
    std::thread::scope(|s| {
        for (t, (a, fa, fw)) in per_thread.iter().enumerate() {
            let b = &b;
            let want = &serial[t];
            s.spawn(move || {
                for round in 0..25 {
                    let y = quantized_matmul_ab(a, b, *fa, *fw);
                    assert_bits_eq(y.data(), want.data(), &format!("thread {t} round {round}"));
                }
            });
        }
    });
    // The hammer ran entirely on the two warm planes: same generation, same
    // per-format entries, nothing evicted or repacked.
    assert_eq!(b.cached_plane_count(), weight_formats.len());
    assert_eq!(b.cached_plane_generation(), stamp);
}

/// End-to-end: training with quantized forwards steps the optimizer every
/// iteration; each step must invalidate and repack, keeping the whole
/// trajectory identical to a run that never caches (simulated by cloning
/// weights into a cold layer each step).
#[test]
fn training_loop_with_cache_matches_per_step_cold_runs() {
    let cfg = QuantConfig::uniform(TensorFormat::MX6);
    let mut l = Linear::new(&mut rng(), 16, 2, false, cfg);
    let opt = Sgd::new(0.1);
    let x = input(4, 16, 9);
    for step in 0..5 {
        let y = l.forward(&x, true);
        // A cold layer with identical weights must agree bit for bit.
        let mut cold = Linear::new(&mut rng(), 16, 2, false, cfg);
        cold.w.value = Tensor::from_vec(l.w.value.data().to_vec(), &[16, 2]);
        let yc = cold.forward(&x, false);
        assert_bits_eq(yc.data(), y.data(), &format!("step {step}"));
        let _ = l.backward(&y);
        opt.step(&mut l);
        l.zero_grads();
    }
}
