//! Forced-backend bit-identity suite: every kernel backend (scalar, SSE2,
//! AVX2, AVX-512 where the CPU has them) must reproduce the quantize →
//! dequantize → `f32` matmul reference **bit for bit** over the full
//! preset matrix, ragged K tails (including every AVX-512 mask-tail
//! shape), every serving-relevant M, and every thread count — and
//! deferred scale-out must be provably invisible: forcing it on or off
//! never changes a single output bit, including on adversarial exponent
//! spreads built to straddle every deferral gate (mixed per-vector
//! exponents, all-zero blocks and vectors, magnitudes pushed outside the
//! `f32` grid window, and block counts exceeding the static headroom
//! bound).
//!
//! The backend and deferral knobs are process-wide, so every test that
//! touches them serializes on one mutex and restores automatic selection
//! before releasing it.

use std::sync::{Mutex, MutexGuard};

use mx::core::bdr::BdrFormat;
use mx::core::gemm::{
    force_deferred_scale_out, force_kernel_backend, quantized_gemm, quantized_gemm_fused,
    quantized_gemm_prepacked, quantized_gemm_twopass_scratch, reference_gemm, selected_backend,
    KernelBackend, PackScratch, PackedOperand,
};

const PRESETS: [BdrFormat; 5] = [
    BdrFormat::MX4,
    BdrFormat::MX6,
    BdrFormat::MX9,
    BdrFormat::MSFP12,
    BdrFormat::MSFP16,
];

const BACKENDS: [KernelBackend; 4] = [
    KernelBackend::Scalar,
    KernelBackend::Sse2,
    KernelBackend::Avx2,
    KernelBackend::Avx512,
];

/// Forces `backend`, or reports `false` (skip it) when this CPU lacks the
/// ISA — `force_kernel_backend` refuses rather than silently clamping.
fn try_force(backend: KernelBackend) -> bool {
    force_kernel_backend(Some(backend)).is_ok()
}

/// Serializes tests that touch the process-wide dispatch knobs.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard: holds the lock and restores automatic selection on drop
/// (also on panic, so one failing test cannot poison the others' knobs).
struct KnobGuard<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

fn lock_knobs() -> KnobGuard<'static> {
    let guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    KnobGuard(guard)
}

impl Drop for KnobGuard<'_> {
    fn drop(&mut self) {
        force_kernel_backend(None).expect("clearing the backend override cannot fail");
        force_deferred_scale_out(None);
    }
}

/// Deterministic stress data: outliers, sign flips, scattered zeros, wide
/// magnitude spread, and periodic all-zero `k1 = 16` blocks.
fn stress_vector(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            if (i / 16) % 4 == 3 {
                return 0.0;
            }
            let h = (i.wrapping_mul(2654435761).wrapping_add(salt * 97)) % 10_007;
            let base = h as f32 / 10_007.0 - 0.5;
            match i % 7 {
                0 => 0.0,
                1 => base * 1e4,
                2 => -base * 1e-4,
                3 => -0.0,
                _ => base,
            }
        })
        .collect()
}

/// Adversarial exponent spreads for the deferral gates: vector `salt`
/// selects among uniform-exponent data (maximal deferral), per-block
/// exponent jumps (MIXED_EXP vectors), tiny magnitudes that push
/// `e_a + e_b + c` below the `f32` grid window, huge magnitudes that push
/// it above, and interleaved zero blocks.
fn exponent_spread_vector(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i.wrapping_mul(2654435761).wrapping_add(salt * 131)) % 997;
            let base = 1.0 + h as f32 / 997.0; // [1, 2): exponent 0
            let sign = if (h >> 3) & 1 == 0 { 1.0 } else { -1.0 };
            match salt % 5 {
                // Uniform shared exponent across every block.
                0 => sign * base,
                // Alternate blocks 2^40 apart: mixed per-vector exponents.
                1 => {
                    sign * base
                        * if (i / 16) % 2 == 0 {
                            1.0
                        } else {
                            2.0f32.powi(40)
                        }
                }
                // Tiny: e_a + e_b lands below the grid window when both
                // sides use this scale.
                2 => sign * base * 2.0f32.powi(-75),
                // Huge: e_a + e_b lands above the grid window.
                3 => sign * base * 2.0f32.powi(55),
                // Zero blocks interleaved with uniform data.
                _ => {
                    if (i / 16) % 2 == 0 {
                        0.0
                    } else {
                        sign * base
                    }
                }
            }
        })
        .collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{ctx}: element {i} differs: {g} ({:#x}) vs {w} ({:#x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Every backend × the full preset matrix × ragged K × all serving Ms
/// (both sides of the `FUSED_MAX_M` boundary and the tile boundary)
/// reproduces the reference bit for bit. Packing happens after forcing, so
/// each backend also exercises its own B-plane layout.
#[test]
fn forced_backend_matrix_is_bit_identical_to_reference() {
    let _guard = lock_knobs();
    let (k, n) = (40, 7); // ragged K tail: 40 = 2·16 + 8
    for backend in BACKENDS {
        if !try_force(backend) {
            continue;
        }
        let effective = selected_backend();
        for fa in PRESETS {
            for fb in PRESETS {
                for m in [1usize, 7, 8, 32, 33] {
                    let a = stress_vector(m * k, 3 * m + 1);
                    let b = stress_vector(k * n, 5 * m + 2);
                    let want = reference_gemm(&a, &b, m, k, n, fa, fb);
                    let got = quantized_gemm(&a, &b, m, k, n, fa, fb, 1).unwrap();
                    assert_bits_eq(
                        &got,
                        &want,
                        &format!("{}({}) {fa}/{fb} m={m}", backend.name(), effective.name()),
                    );
                }
            }
        }
    }
}

/// Forced backends stay bit-identical under row-parallel dispatch at every
/// thread count, through the prepacked and fused entries alike.
#[test]
fn forced_backends_are_thread_count_invariant() {
    let _guard = lock_knobs();
    let fmt = BdrFormat::MX6;
    let (k, n) = (96, 24);
    for backend in BACKENDS {
        if !try_force(backend) {
            continue;
        }
        for m in [8usize, 32, 33] {
            let a = stress_vector(m * k, 7 * m);
            let b = stress_vector(k * n, 11 * m);
            let pb = PackedOperand::pack_cols(&b, k, n, fmt, fmt).unwrap();
            let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
            for threads in [1usize, 2, 3, 7, 0] {
                let got = quantized_gemm_prepacked(&a, m, fmt, &pb, threads).unwrap();
                assert_bits_eq(
                    &got,
                    &want,
                    &format!("{} m={m} threads={threads}", backend.name()),
                );
            }
        }
    }
}

/// A B plane packed under one backend still executes correctly after the
/// knob moves: execution follows the plane's layout, and results stay
/// bit-identical to the reference regardless of which backend packed it.
#[test]
fn planes_packed_under_one_backend_execute_under_another() {
    let _guard = lock_knobs();
    let fmt = BdrFormat::MX9;
    let (m, k, n) = (5, 48, 9);
    let a = stress_vector(m * k, 201);
    let b = stress_vector(k * n, 202);
    let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
    for packer in BACKENDS {
        if !try_force(packer) {
            continue;
        }
        let pb = PackedOperand::pack_cols(&b, k, n, fmt, fmt).unwrap();
        for runner in BACKENDS {
            if !try_force(runner) {
                continue;
            }
            let got = quantized_gemm_prepacked(&a, m, fmt, &pb, 1).unwrap();
            assert_bits_eq(
                &got,
                &want,
                &format!(
                    "packed under {}, run under {}",
                    packer.name(),
                    runner.name()
                ),
            );
        }
    }
}

/// Deferred scale-out is bit-invisible on every backend: forcing it on and
/// off produces identical bits (and both match the reference) on data
/// built to straddle every deferral gate — uniform exponents, mixed
/// per-vector exponents, magnitudes outside the grid window on either
/// side, and interleaved zero blocks, in every A-case × B-case
/// combination.
#[test]
fn deferral_is_bit_invisible_on_adversarial_exponent_spreads() {
    let _guard = lock_knobs();
    let (k, n) = (64, 6);
    for backend in BACKENDS {
        if !try_force(backend) {
            continue;
        }
        for a_case in 0..5usize {
            for b_case in 0..5usize {
                for m in [1usize, 8, 9] {
                    let a = exponent_spread_vector(m * k, a_case + 5 * (m + 1));
                    let b = exponent_spread_vector(k * n, b_case + 5 * (m + 7));
                    let want = reference_gemm(&a, &b, m, k, n, BdrFormat::MX6, BdrFormat::MX6);
                    let mut runs = Vec::new();
                    for defer in [true, false] {
                        force_deferred_scale_out(Some(defer));
                        let got =
                            quantized_gemm(&a, &b, m, k, n, BdrFormat::MX6, BdrFormat::MX6, 1)
                                .unwrap();
                        assert_bits_eq(
                            &got,
                            &want,
                            &format!(
                                "{} a_case={a_case} b_case={b_case} m={m} defer={defer}",
                                backend.name()
                            ),
                        );
                        runs.push(got);
                    }
                    force_deferred_scale_out(None);
                    assert_bits_eq(&runs[0], &runs[1], "defer on vs off");
                }
            }
        }
    }
}

/// Block counts that exceed the static headroom bound (MX9 × MX9 at large
/// K: `blocks · Dmax > 2²⁴`) disarm deferral; results still match the
/// reference bit for bit with the knob forced either way.
#[test]
fn headroom_exceeded_pairs_fall_back_exactly() {
    let _guard = lock_knobs();
    let fmt = BdrFormat::MX9;
    let (m, k, n) = (4, 512, 5);
    let a = stress_vector(m * k, 301);
    let b = stress_vector(k * n, 302);
    let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
    for backend in BACKENDS {
        if !try_force(backend) {
            continue;
        }
        for defer in [true, false] {
            force_deferred_scale_out(Some(defer));
            let got = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
            assert_bits_eq(
                &got,
                &want,
                &format!("{} k=512 defer={defer}", backend.name()),
            );
        }
        force_deferred_scale_out(None);
    }
}

/// The fused and two-pass activation strategies agree bit for bit under
/// every forced backend (the strategy seam and the backend seam are
/// independent).
#[test]
fn fused_and_two_pass_agree_under_forced_backends() {
    let _guard = lock_knobs();
    let fmt = BdrFormat::MX6;
    let (m, k, n) = (9, 80, 11);
    let a = exponent_spread_vector(m * k, 10);
    let b = exponent_spread_vector(k * n, 11);
    for backend in BACKENDS {
        if !try_force(backend) {
            continue;
        }
        let pb = PackedOperand::pack_cols(&b, k, n, fmt, fmt).unwrap();
        let mut scratch = PackScratch::new();
        let fused = quantized_gemm_fused(&a, m, fmt, &pb, 1, &mut scratch).unwrap();
        let two_pass = quantized_gemm_twopass_scratch(&a, m, fmt, &pb, 1, &mut scratch).unwrap();
        assert_bits_eq(
            &fused,
            &two_pass,
            &format!("{} fused vs two-pass", backend.name()),
        );
        assert_bits_eq(
            &fused,
            &reference_gemm(&a, &b, m, k, n, fmt, fmt),
            &format!("{} fused vs reference", backend.name()),
        );
    }
}

/// The deferral gate sits exactly at `blocks · Dmax ≤ 2²⁴` — and the
/// 32-lane AVX-512 kernel inherits that bound *unchanged* (it protects the
/// `f32` mantissa of the deferred sum, not any SIMD register; each `i32`
/// lane partial stays ≤ 2²⁰ under it, see `gemm::backend::defer_ctx`).
/// Drive every backend with the block count sitting exactly on the bound
/// and one past it; bits must match the reference with deferral forced
/// both ways.
#[test]
fn headroom_edge_blocks_sit_exactly_on_the_deferral_bound() {
    let _guard = lock_knobs();
    let fmt = BdrFormat::MX6;
    let dmax =
        fmt.k1() as u64 * (fmt.max_code() << fmt.max_shift()) * (fmt.max_code() << fmt.max_shift());
    // Largest block count the static gate still defers; +1 disarms it.
    let edge_blocks = ((1u64 << 24) / dmax) as usize;
    assert!(edge_blocks > 0 && edge_blocks as u64 * dmax <= 1 << 24);
    assert!((edge_blocks as u64 + 1) * dmax > 1 << 24);
    let (m, n) = (3usize, 17usize);
    for blocks in [edge_blocks, edge_blocks + 1] {
        let k = blocks * fmt.k1();
        let a = stress_vector(m * k, 501);
        let b = stress_vector(k * n, 502);
        let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
        for backend in BACKENDS {
            if !try_force(backend) {
                continue;
            }
            for defer in [true, false] {
                force_deferred_scale_out(Some(defer));
                let got = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
                assert_bits_eq(
                    &got,
                    &want,
                    &format!("{} blocks={blocks} defer={defer}", backend.name()),
                );
            }
            force_deferred_scale_out(None);
        }
    }
}

/// Every AVX-512 mask-tail shape: K % 32 ∈ {1, 15, 16, 17, 31} exercises
/// odd block counts (the lone-block masked load) and ragged final blocks
/// on both sides of a two-block chunk boundary, crossed with N covering
/// every ragged width of the 4-column AVX-512 panel (1, 2, 3 — standalone
/// and after full panels), the one-past-a-panel case, and widths around
/// the 8-column AVX2 panel.
#[test]
fn mask_tail_shapes_cover_every_ragged_k_and_n() {
    let _guard = lock_knobs();
    let (fa, fb) = (BdrFormat::MX6, BdrFormat::MX9);
    for (ki, k) in [65usize, 79, 80, 81, 95].into_iter().enumerate() {
        for n in [1usize, 2, 6, 15, 16, 17, 31, 33] {
            for m in [1usize, 5] {
                let a = stress_vector(m * k, 601 + 7 * ki);
                let b = stress_vector(k * n, 701 + 13 * n);
                let want = reference_gemm(&a, &b, m, k, n, fa, fb);
                for backend in BACKENDS {
                    if !try_force(backend) {
                        continue;
                    }
                    let got = quantized_gemm(&a, &b, m, k, n, fa, fb, 1).unwrap();
                    assert_bits_eq(
                        &got,
                        &want,
                        &format!("{} k={k} n={n} m={m}", backend.name()),
                    );
                }
            }
        }
    }
}

/// Mixed per-vector exponents (alternate blocks 2⁴⁰ apart) disqualify
/// whole-panel deferral inside full panels, forcing the vectorized
/// per-block fallback (or per-column chain) on one or both operands; bits
/// must still match the reference at both chunk parities and with a
/// ragged panel in play.
#[test]
fn mixed_exponent_vectors_force_the_per_block_fallback() {
    let _guard = lock_knobs();
    let fmt = BdrFormat::MX6;
    let (m, n) = (6usize, 33usize); // full panels at both widths + ragged 1
    for k in [80usize, 96] {
        // salt ≡ 1 (mod 5) selects the mixed-exponent spread.
        let a_mixed = exponent_spread_vector(m * k, 1 + 5 * k);
        let b_mixed = exponent_spread_vector(k * n, 6 + 5 * k);
        let a_uniform = exponent_spread_vector(m * k, 5 * k);
        let b_uniform = exponent_spread_vector(k * n, 10 * k);
        for (a, b, case) in [
            (&a_mixed, &b_uniform, "mixed A"),
            (&a_uniform, &b_mixed, "mixed B"),
            (&a_mixed, &b_mixed, "mixed both"),
        ] {
            let want = reference_gemm(a, b, m, k, n, fmt, fmt);
            for backend in BACKENDS {
                if !try_force(backend) {
                    continue;
                }
                let got = quantized_gemm(a, b, m, k, n, fmt, fmt, 1).unwrap();
                assert_bits_eq(&got, &want, &format!("{} {case} k={k}", backend.name()));
            }
        }
    }
}

/// Wide custom formats (i32 codes) always run the portable kernel; forcing
/// any backend neither crashes nor changes their bits.
#[test]
fn wide_pairs_are_backend_invariant() {
    let _guard = lock_knobs();
    let wide = BdrFormat::new(16, 8, 0, 16, 16).unwrap();
    let (m, k, n) = (3, 40, 4);
    let a = stress_vector(m * k, 401);
    let b = stress_vector(k * n, 402);
    let want = reference_gemm(&a, &b, m, k, n, wide, wide);
    for backend in BACKENDS {
        if !try_force(backend) {
            continue;
        }
        let got = quantized_gemm(&a, &b, m, k, n, wide, wide, 1).unwrap();
        assert_bits_eq(&got, &want, &format!("wide pair under {}", backend.name()));
    }
}
