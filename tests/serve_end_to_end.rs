//! End-to-end suite for `mx-serve`: batching must be **semantically
//! invisible**. Every response a server produces — whatever the batch
//! coalescing, request interleaving, format mix, shard count, length
//! bucket, ragged final batch, or zero-padding — must be bit-identical to
//! running that request alone on an identically constructed model
//! (bucket-padded requests compare against the same padded request run
//! alone, sliced back to the request's own length). Also covers the
//! serving telemetry (`ServeStats`) and the weight-plane sharing the
//! batcher exists to exploit.

use mx::core::gemm::{force_kernel_backend, kernel_backend_name, KernelBackend};
use mx::models::bert::BertQa;
use mx::models::data;
use mx::models::gpt::{Gpt, GptConfig};
use mx::models::vision::TinyViT;
use mx::models::zoo::{BatchModel, DenseGemm, ZooInput};
use mx::nn::qflow::QuantConfig;
use mx::nn::TensorFormat;
use mx::serve::{Pending, Request, RequestInput, Server, ServerConfig, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mx6() -> QuantConfig {
    QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6)
}

/// The format mix a direct-cast serving fleet would see.
fn format_cycle() -> Vec<QuantConfig> {
    vec![
        QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6),
        QuantConfig::weights_activations(TensorFormat::MX9, TensorFormat::MX9),
        QuantConfig::weights_activations(TensorFormat::MX9, TensorFormat::MX4),
        QuantConfig::fp32(),
    ]
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(g.to_bits() == w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
    }
}

fn gpt(seed: u64) -> Gpt {
    let mut rng = StdRng::seed_from_u64(seed);
    Gpt::new(&mut rng, GptConfig::tiny(), QuantConfig::fp32())
}

/// Deterministic per-request token sequence.
fn tokens(salt: usize, len: usize) -> Vec<usize> {
    (0..len)
        .map(|i| (i.wrapping_mul(7).wrapping_add(salt * 13)) % data::LM_VOCAB)
        .collect()
}

/// Serial reference: run each `(cfg, input)` alone (batch = 1) on `model`.
fn serial_reference(
    model: &mut dyn BatchModel,
    requests: &[(QuantConfig, RequestInput)],
) -> Vec<Vec<f32>> {
    requests
        .iter()
        .map(|(cfg, input)| {
            model.set_quant(*cfg);
            match input {
                RequestInput::Tokens(t) => model.forward_batch(ZooInput::Tokens(t), 1),
                RequestInput::Pixels(p) => model.forward_batch(ZooInput::Pixels(p), 1),
            }
        })
        .collect()
}

/// Bucketed serial reference for variable-length token requests: pad each
/// request to its bucket edge (the smallest configured edge that fits,
/// capped at the model's native length), run the padded request **alone**,
/// and slice the output back to the request's own length — exactly the
/// transformation the server applies, so batching stays the only variable.
fn bucketed_reference(
    model: &mut dyn BatchModel,
    buckets: &[usize],
    requests: &[(QuantConfig, RequestInput)],
) -> Vec<Vec<f32>> {
    let native = model.input_len();
    requests
        .iter()
        .map(|(cfg, input)| {
            let RequestInput::Tokens(t) = input else {
                panic!("bucketed_reference covers token models")
            };
            let edge = buckets
                .iter()
                .copied()
                .filter(|&b| b < native)
                .chain([native])
                .find(|&b| b >= t.len())
                .expect("native length is always an edge");
            let mut padded = t.clone();
            padded.resize(edge, 0);
            model.set_quant(*cfg);
            let mut out = model.forward_batch(ZooInput::Tokens(&padded), 1);
            out.truncate(model.output_len(t.len()));
            out
        })
        .collect()
}

/// Submits every request as one burst and waits for all responses in order.
fn run_burst(
    handle: &ServerHandle,
    name: &str,
    requests: &[(QuantConfig, RequestInput)],
) -> Vec<Vec<f32>> {
    let pending: Vec<Pending> = requests
        .iter()
        .map(|(cfg, input)| {
            handle
                .submit(Request::new(name, input.clone()).quant(*cfg))
                .unwrap()
        })
        .collect();
    pending.into_iter().map(|p| p.wait().unwrap()).collect()
}

#[test]
fn gpt_batched_serving_is_bit_identical_across_formats_and_batch_sizes() {
    let seq = GptConfig::tiny().seq_len;
    let cycle = format_cycle();
    let requests: Vec<(QuantConfig, RequestInput)> = (0..13)
        .map(|i| (cycle[i % cycle.len()], RequestInput::Tokens(tokens(i, seq))))
        .collect();
    // Reference on an identically seeded model, every request alone.
    let want = serial_reference(&mut gpt(42), &requests);

    for max_batch in [1, 3, 8] {
        let mut server = Server::new(ServerConfig::default().max_batch(max_batch));
        server.register("gpt", Box::new(gpt(42)));
        let handle = server.start().expect("valid config");
        let got = run_burst(&handle, "gpt", &requests);
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert_bits_eq(g, w, &format!("max_batch {max_batch}, request {i}"));
        }
        let stats = handle.stats();
        assert_eq!(stats.completed, requests.len() as u64);
        assert_eq!(stats.queue_depth, 0, "all answered");
        // Every executed batch respects the cap and the histogram accounts
        // for every request.
        let hist_requests: u64 = stats
            .batch_histogram
            .iter()
            .enumerate()
            .map(|(i, &count)| (i as u64 + 1) * count)
            .sum();
        assert_eq!(hist_requests, stats.completed);
        assert_eq!(stats.batch_histogram.len(), max_batch);
        handle.shutdown();
    }
}

#[test]
fn sharded_serving_is_bit_identical_across_shard_counts() {
    let seq = GptConfig::tiny().seq_len;
    let cycle = format_cycle();
    let gpt_reqs: Vec<(QuantConfig, RequestInput)> = (0..6)
        .map(|i| {
            (
                cycle[i % cycle.len()],
                RequestInput::Tokens(tokens(700 + i, seq)),
            )
        })
        .collect();
    let dense_reqs: Vec<(QuantConfig, RequestInput)> = (0..6)
        .map(|i| {
            (
                cycle[(i + 2) % cycle.len()],
                RequestInput::Pixels((0..48).map(|j| ((i + j) as f32 * 0.13).sin()).collect()),
            )
        })
        .collect();
    let qa_seq = 12;
    let bert_reqs: Vec<(QuantConfig, RequestInput)> = (0..6)
        .map(|i| {
            (
                cycle[(i + 1) % cycle.len()],
                RequestInput::Tokens((0..qa_seq).map(|t| (t * 5 + i) % data::QA_VOCAB).collect()),
            )
        })
        .collect();
    let build = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            gpt(55),
            DenseGemm::new(&mut rng, 48, 24, QuantConfig::fp32()),
            BertQa::new(&mut rng, 16, 1, qa_seq, QuantConfig::fp32()),
        )
    };
    let (mut ref_gpt, mut ref_dense, mut ref_bert) = build(77);
    let want_gpt = serial_reference(&mut ref_gpt, &gpt_reqs);
    let want_dense = serial_reference(&mut ref_dense, &dense_reqs);
    let want_bert = serial_reference(&mut ref_bert, &bert_reqs);

    // More shards than models exercises the empty-shard path too.
    for shards in [1, 2, 4] {
        let (g, d, b) = build(77);
        let mut server = Server::new(
            ServerConfig::default()
                .shards(shards)
                .workers(2)
                .max_batch(4),
        );
        server.register("gpt", Box::new(g));
        server.register("dense", Box::new(d));
        server.register("bert", Box::new(b));
        let handle = server.start().expect("valid config");
        // Registration order, round-robin: model i lives on shard i % shards.
        for (i, name) in ["gpt", "dense", "bert"].iter().enumerate() {
            assert_eq!(handle.shard_of(name), Some(i % shards), "{name}");
        }
        // Interleave submissions across models so every shard queue is
        // active at once.
        let mut pending: Vec<(&str, usize, Pending)> = Vec::new();
        for i in 0..6 {
            for (name, reqs) in [
                ("gpt", &gpt_reqs),
                ("dense", &dense_reqs),
                ("bert", &bert_reqs),
            ] {
                let (cfg, input) = &reqs[i];
                pending.push((
                    name,
                    i,
                    handle
                        .submit(Request::new(name, input.clone()).quant(*cfg))
                        .unwrap(),
                ));
            }
        }
        for (name, i, p) in pending {
            let got = p.wait().unwrap();
            let want = match name {
                "gpt" => &want_gpt[i],
                "dense" => &want_dense[i],
                _ => &want_bert[i],
            };
            assert_bits_eq(&got, want, &format!("shards={shards}, {name} request {i}"));
        }
        let stats = handle.stats();
        assert_eq!(stats.completed, 18);
        assert_eq!(stats.shard_depths.len(), shards);
        assert!(stats.shard_depths.iter().all(|&d| d == 0), "all drained");
        handle.shutdown();
    }
}

#[test]
fn bucketed_mixed_length_serving_matches_padded_serial_reference() {
    let buckets = [4, 8, 16];
    let cycle = format_cycle();
    // Lengths straddling every edge, in shuffling order so the dispatcher
    // must keep the buckets apart while coalescing within them.
    let lens = [3, 16, 4, 9, 1, 8, 5, 12, 2, 16, 7, 11];
    let gpt_reqs: Vec<(QuantConfig, RequestInput)> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            (
                cycle[i % cycle.len()],
                RequestInput::Tokens(tokens(300 + i, len)),
            )
        })
        .collect();
    let qa_seq = 12;
    let bert_lens = [2, 12, 5, 8, 3, 10];
    let bert_reqs: Vec<(QuantConfig, RequestInput)> = bert_lens
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            (
                cycle[(i + 1) % cycle.len()],
                RequestInput::Tokens((0..len).map(|t| (t * 7 + i) % data::QA_VOCAB).collect()),
            )
        })
        .collect();
    let build_bert = |seed: u64| {
        BertQa::new(
            &mut StdRng::seed_from_u64(seed),
            16,
            1,
            qa_seq,
            QuantConfig::fp32(),
        )
    };
    let want_gpt = bucketed_reference(&mut gpt(61), &buckets, &gpt_reqs);
    let want_bert = bucketed_reference(&mut build_bert(62), &buckets, &bert_reqs);
    // Each response is the request's own output length, not the bucket's.
    for (i, (&len, w)) in lens.iter().zip(want_gpt.iter()).enumerate() {
        assert_eq!(w.len(), len * GptConfig::tiny().vocab, "reference {i}");
    }

    for shards in [1, 2] {
        let mut server = Server::new(
            ServerConfig::default()
                .shards(shards)
                .max_batch(4)
                .buckets(buckets),
        );
        server.register("gpt", Box::new(gpt(61)));
        server.register("bert", Box::new(build_bert(62)));
        let handle = server.start().expect("valid config");
        let got_gpt = run_burst(&handle, "gpt", &gpt_reqs);
        let got_bert = run_burst(&handle, "bert", &bert_reqs);
        for (i, (g, w)) in got_gpt.iter().zip(want_gpt.iter()).enumerate() {
            assert_bits_eq(g, w, &format!("shards={shards}, gpt len {}", lens[i]));
        }
        for (i, (g, w)) in got_bert.iter().zip(want_bert.iter()).enumerate() {
            assert_bits_eq(g, w, &format!("shards={shards}, bert len {}", bert_lens[i]));
        }
        handle.shutdown();
    }
}

#[test]
fn ragged_and_padded_batches_are_semantically_invisible() {
    let seq = GptConfig::tiny().seq_len;
    // 6 same-format requests against max_batch = 4 force a ragged tail of
    // at most 2 whichever way the dispatcher slices the burst.
    let requests: Vec<(QuantConfig, RequestInput)> = (0..6)
        .map(|i| (mx6(), RequestInput::Tokens(tokens(100 + i, seq))))
        .collect();
    let want = serial_reference(&mut gpt(7), &requests);
    for pad_batches in [false, true] {
        let mut server = Server::new(
            ServerConfig::default()
                .max_batch(4)
                .pad_batches(pad_batches),
        );
        server.register("gpt", Box::new(gpt(7)));
        let handle = server.start().expect("valid config");
        let got = run_burst(&handle, "gpt", &requests);
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert_bits_eq(g, w, &format!("pad={pad_batches}, request {i}"));
        }
        // Padding is invisible in the histogram too: sizes are pre-padding.
        let stats = handle.stats();
        assert_eq!(stats.completed, 6);
        handle.shutdown();
    }
}

#[test]
fn mixed_zoo_serving_matches_per_request_serial_execution() {
    let qa_seq = 12;
    let mut rng = StdRng::seed_from_u64(21);
    let build_bert = |rng: &mut StdRng| BertQa::new(rng, 16, 1, qa_seq, QuantConfig::fp32());
    let build_vit = |rng: &mut StdRng| TinyViT::new(rng, 16, 1, QuantConfig::fp32());
    let build_dense = |rng: &mut StdRng| DenseGemm::new(rng, 48, 24, QuantConfig::fp32());
    // One RNG stream builds the served copies, an identically seeded one
    // builds the reference copies.
    let mut server = Server::new(ServerConfig::default().workers(2).max_batch(4));
    server.register("bert", Box::new(build_bert(&mut rng)));
    server.register("vit", Box::new(build_vit(&mut rng)));
    server.register("dense", Box::new(build_dense(&mut rng)));
    let mut ref_rng = StdRng::seed_from_u64(21);
    let mut ref_bert = build_bert(&mut ref_rng);
    let mut ref_vit = build_vit(&mut ref_rng);
    let mut ref_dense = build_dense(&mut ref_rng);

    let images = data::shape_images(9, 4);
    let cycle = format_cycle();
    let bert_reqs: Vec<(QuantConfig, RequestInput)> = (0..4)
        .map(|i| {
            (
                cycle[i % cycle.len()],
                RequestInput::Tokens((0..qa_seq).map(|t| (t * 3 + i) % data::QA_VOCAB).collect()),
            )
        })
        .collect();
    let vit_reqs: Vec<(QuantConfig, RequestInput)> = images
        .iter()
        .enumerate()
        .map(|(i, im)| {
            (
                cycle[i % cycle.len()],
                RequestInput::Pixels(im.pixels.clone()),
            )
        })
        .collect();
    let dense_reqs: Vec<(QuantConfig, RequestInput)> = (0..4)
        .map(|i| {
            (
                cycle[(i + 1) % cycle.len()],
                RequestInput::Pixels((0..48).map(|j| ((i + j) as f32 * 0.11).sin()).collect()),
            )
        })
        .collect();

    let handle = server.start().expect("valid config");
    // Interleave submissions across models so the dispatcher has to keep
    // the groups apart.
    let mut pending: Vec<(usize, &str, Pending)> = Vec::new();
    for i in 0..4 {
        for (name, reqs) in [
            ("bert", &bert_reqs),
            ("vit", &vit_reqs),
            ("dense", &dense_reqs),
        ] {
            let (cfg, input) = &reqs[i];
            pending.push((
                i,
                name,
                handle
                    .submit(Request::new(name, input.clone()).quant(*cfg))
                    .unwrap(),
            ));
        }
    }
    let want_bert = serial_reference(&mut ref_bert, &bert_reqs);
    let want_vit = serial_reference(&mut ref_vit, &vit_reqs);
    let want_dense = serial_reference(&mut ref_dense, &dense_reqs);
    for (i, name, p) in pending {
        let got = p.wait().unwrap();
        let want = match name {
            "bert" => &want_bert[i],
            "vit" => &want_vit[i],
            _ => &want_dense[i],
        };
        assert_bits_eq(&got, want, &format!("{name} request {i}"));
    }
    assert_eq!(handle.stats().completed, 12);
    handle.shutdown();
}

#[test]
fn weight_planes_are_shared_across_requests_and_formats() {
    let mut rng = StdRng::seed_from_u64(33);
    let mut server = Server::new(ServerConfig::default().max_batch(4));
    server.register(
        "dense",
        Box::new(DenseGemm::new(&mut rng, 64, 32, QuantConfig::fp32())),
    );
    let handle = server.start().expect("valid config");
    let w6 = QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6);
    let w9 = QuantConfig::weights_activations(TensorFormat::MX9, TensorFormat::MX9);
    let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.07).cos()).collect();
    let req = |cfg: QuantConfig| Request::new("dense", RequestInput::Pixels(x.clone())).quant(cfg);
    // Warm both weight formats' planes (at most one pack each).
    let warm6 = handle.infer(req(w6)).unwrap();
    let warm9 = handle.infer(req(w9)).unwrap();
    let before = handle.stats();
    // Steady state: alternating formats hammer the same two planes.
    for round in 0..10 {
        let y6 = handle.infer(req(w6)).unwrap();
        let y9 = handle.infer(req(w9)).unwrap();
        assert_bits_eq(&y6, &warm6, &format!("MX6 round {round}"));
        assert_bits_eq(&y9, &warm9, &format!("MX9 round {round}"));
    }
    let after = handle.stats();
    // Each warm request must reuse lowered weights: under compiled plans
    // (the default) it hits the plan cache, whose plan pinned the weight
    // plane at compile time; with `MX_PLAN` off it skips the pack via the
    // qflow plane cache. Either way no warm batch re-lowers weights.
    // (The pack counters are process-wide, so concurrent suites can only
    // inflate them — the ≥ direction is race-free.)
    let reused = after.packs_avoided.saturating_sub(before.packs_avoided)
        + after.plan_cache_hits.saturating_sub(before.plan_cache_hits);
    assert!(
        reused >= 20,
        "20 warm requests must each reuse lowered weights (saw {reused})"
    );
    handle.shutdown();
}

/// The kernel-backend seam is invisible end to end: a server forced onto
/// the scalar backend answers bit-identically to an identically seeded
/// server on the best-detected backend, and both match the serial
/// reference. This is the serving-level restatement of the per-kernel
/// bit-identity contract behind the `kernel_backend_name` banners in
/// `serve_loadgen` and the benches: the name is a performance label,
/// never an output label. (The override is process-wide, but every
/// backend is bit-identical by contract, so concurrent suites in this
/// binary cannot observe the toggle.)
#[test]
fn forced_backend_server_runs_are_bit_identical_end_to_end() {
    let seq = GptConfig::tiny().seq_len;
    let cycle = format_cycle();
    let requests: Vec<(QuantConfig, RequestInput)> = (0..6)
        .map(|i| {
            (
                cycle[i % cycle.len()],
                RequestInput::Tokens(tokens(900 + i, seq)),
            )
        })
        .collect();
    let want = serial_reference(&mut gpt(1234), &requests);

    let run_with = |backend: Option<KernelBackend>| -> Vec<Vec<f32>> {
        force_kernel_backend(backend).expect("scalar is always available");
        if let Some(b) = backend {
            assert_eq!(kernel_backend_name(), b.name(), "force must stick");
        }
        let mut server = Server::new(ServerConfig::default().max_batch(3));
        server.register("gpt", Box::new(gpt(1234)));
        let handle = server.start().expect("valid config");
        let got = run_burst(&handle, "gpt", &requests);
        handle.shutdown();
        got
    };
    let scalar = run_with(Some(KernelBackend::Scalar));
    // `None` restores automatic selection: the best-detected backend.
    let best = run_with(None);
    for (i, ((s, b), w)) in scalar.iter().zip(best.iter()).zip(want.iter()).enumerate() {
        assert_bits_eq(s, b, &format!("scalar vs best backend, request {i}"));
        assert_bits_eq(s, w, &format!("scalar vs serial reference, request {i}"));
    }
}

#[test]
fn concurrent_clients_get_bit_identical_answers() {
    let seq = GptConfig::tiny().seq_len;
    let requests: Vec<(QuantConfig, RequestInput)> = (0..8)
        .map(|i| (mx6(), RequestInput::Tokens(tokens(500 + i, seq))))
        .collect();
    let want = serial_reference(&mut gpt(99), &requests);
    let mut server = Server::new(ServerConfig::default().workers(2).max_batch(4));
    server.register("gpt", Box::new(gpt(99)));
    let handle = server.start().expect("valid config");
    // 8 synchronous client threads, each re-asking its own question.
    std::thread::scope(|s| {
        for (i, (cfg, input)) in requests.iter().enumerate() {
            let handle = &handle;
            let want = &want[i];
            s.spawn(move || {
                for round in 0..3 {
                    let got = handle
                        .infer(Request::new("gpt", input.clone()).quant(*cfg))
                        .unwrap();
                    assert_bits_eq(&got, want, &format!("client {i} round {round}"));
                }
            });
        }
    });
    let stats = handle.stats();
    assert_eq!(stats.completed, 24);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.p50_latency_us <= stats.p99_latency_us);
    handle.shutdown();
}
