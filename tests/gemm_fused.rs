//! Consistency suite for the fused (pack-on-the-fly) activation path: for
//! every supported format pair and shape — M = 1 decode strips, ragged K
//! tails, all-zero blocks, tile-boundary row counts, wide custom formats,
//! every thread count — the fused execute loop must be **bit-identical**
//! to the two-pass prepack path, to the allocating prepacked entry, and to
//! the quantize → dequantize → `f32` matmul reference. The automatic
//! shape-aware dispatch in `quantized_gemm_prepacked_scratch` is held to
//! the same standard on both sides of its `FUSED_MAX_M` boundary, and the
//! `mx-nn` matmul that serving rides is asserted to pick the fused path up
//! with no call-site changes.

use mx::core::bdr::BdrFormat;
use mx::core::gemm::{
    quantized_gemm_fused, quantized_gemm_prepacked, quantized_gemm_prepacked_scratch,
    quantized_gemm_twopass_scratch, reference_gemm, PackScratch, PackedOperand, FUSED_MAX_M,
};
use mx::nn::format::TensorFormat;
use mx::nn::qflow::quantized_matmul_ab;
use mx::nn::tensor::Tensor;

const PRESETS: [BdrFormat; 5] = [
    BdrFormat::MX4,
    BdrFormat::MX6,
    BdrFormat::MX9,
    BdrFormat::MSFP12,
    BdrFormat::MSFP16,
];

/// Deterministic stress data: outliers, sign flips, scattered zeros, wide
/// magnitude spread, and every fourth `k1 = 16` block entirely zero (the
/// all-zero-block case the planner answers with `None`).
fn stress_vector(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            if (i / 16) % 4 == 3 {
                return 0.0;
            }
            let h = (i.wrapping_mul(2654435761).wrapping_add(salt * 97)) % 10_007;
            let base = h as f32 / 10_007.0 - 0.5;
            match i % 7 {
                0 => 0.0,
                1 => base * 1e4,
                2 => -base * 1e-4,
                3 => -0.0,
                _ => base,
            }
        })
        .collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{ctx}: element {i} differs: {g} ({:#x}) vs {w} ({:#x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Runs one shape through all four entry points and the reference,
/// asserting bit equality everywhere.
fn check_all_paths(m: usize, k: usize, n: usize, fa: BdrFormat, fb: BdrFormat, salt: usize) {
    let a = stress_vector(m * k, salt);
    let b = stress_vector(k * n, salt + 1);
    let pb = PackedOperand::pack_cols(&b, k, n, fa, fb).expect("supported pair");
    let want = reference_gemm(&a, &b, m, k, n, fa, fb);
    let ctx = format!("{fa}/{fb} {m}x{k}x{n}");
    let mut scratch = PackScratch::new();
    let fused = quantized_gemm_fused(&a, m, fa, &pb, 1, &mut scratch).unwrap();
    assert_bits_eq(&fused, &want, &format!("{ctx} fused vs reference"));
    let two_pass = quantized_gemm_twopass_scratch(&a, m, fa, &pb, 1, &mut scratch).unwrap();
    assert_bits_eq(&fused, &two_pass, &format!("{ctx} fused vs two-pass"));
    let prepacked = quantized_gemm_prepacked(&a, m, fa, &pb, 1).unwrap();
    assert_bits_eq(&fused, &prepacked, &format!("{ctx} fused vs prepacked"));
    let auto = quantized_gemm_prepacked_scratch(&a, m, fa, &pb, 1, &mut scratch).unwrap();
    assert_bits_eq(&fused, &auto, &format!("{ctx} fused vs auto dispatch"));
}

/// Every preset × preset pair (mixed activation/weight formats included),
/// at an M = 1 decode shape with a ragged K tail, a multi-tile row count,
/// and a single-block K.
#[test]
fn fused_matches_reference_across_preset_pairs() {
    for fa in PRESETS {
        for fb in PRESETS {
            check_all_paths(1, 40, 7, fa, fb, 11);
            check_all_paths(9, 48, 5, fa, fb, 23);
            check_all_paths(4, 16, 3, fa, fb, 37);
        }
    }
}

/// Zero activations (every block all-zero) and a zero weight operand both
/// produce exact +0.0 outputs on the fused path.
#[test]
fn fused_zero_operands_give_zero_bits() {
    let fmt = BdrFormat::MX6;
    let (m, k, n) = (3, 40, 5);
    let b = stress_vector(k * n, 41);
    let pb = PackedOperand::pack_cols(&b, k, n, fmt, fmt).unwrap();
    let mut scratch = PackScratch::new();
    let y = quantized_gemm_fused(&vec![0.0; m * k], m, fmt, &pb, 1, &mut scratch).unwrap();
    assert!(y.iter().all(|v| v.to_bits() == 0), "zero A");
    let pb0 = PackedOperand::pack_cols(&vec![0.0; k * n], k, n, fmt, fmt).unwrap();
    let a = stress_vector(m * k, 42);
    let y = quantized_gemm_fused(&a, m, fmt, &pb0, 1, &mut scratch).unwrap();
    assert!(y.iter().all(|v| v.to_bits() == 0), "zero B");
}

/// Degenerate dimensions flow through the fused entry unchanged.
#[test]
fn fused_degenerate_dims() {
    let fmt = BdrFormat::MX9;
    let mut scratch = PackScratch::new();
    let pb = PackedOperand::pack_cols(&[], 0, 3, fmt, fmt).unwrap();
    assert_eq!(
        quantized_gemm_fused(&[], 2, fmt, &pb, 1, &mut scratch).unwrap(),
        vec![0.0; 6]
    );
    let pb = PackedOperand::pack_cols(&[], 16, 0, fmt, fmt).unwrap();
    let a = stress_vector(16, 43);
    assert_eq!(
        quantized_gemm_fused(&a, 1, fmt, &pb, 1, &mut scratch).unwrap(),
        vec![]
    );
    let pb = PackedOperand::pack_cols(&stress_vector(16 * 4, 44), 16, 4, fmt, fmt).unwrap();
    assert_eq!(
        quantized_gemm_fused(&[], 0, fmt, &pb, 1, &mut scratch).unwrap(),
        vec![]
    );
}

/// Row-parallel fused execution is bit-identical to serial at every thread
/// count, fused or two-pass, on both sides of the dispatch boundary.
#[test]
fn fused_thread_counts_are_bit_identical() {
    let fmt = BdrFormat::MX6;
    for m in [FUSED_MAX_M, FUSED_MAX_M + 1] {
        let (k, n) = (96, 48);
        let a = stress_vector(m * k, 51);
        let b = stress_vector(k * n, 52);
        let pb = PackedOperand::pack_cols(&b, k, n, fmt, fmt).unwrap();
        let mut scratch = PackScratch::new();
        let serial = quantized_gemm_fused(&a, m, fmt, &pb, 1, &mut scratch).unwrap();
        assert_bits_eq(
            &serial,
            &reference_gemm(&a, &b, m, k, n, fmt, fmt),
            &format!("m={m} serial fused vs reference"),
        );
        for threads in [2usize, 3, 7, 0] {
            let par = quantized_gemm_fused(&a, m, fmt, &pb, threads, &mut scratch).unwrap();
            assert_bits_eq(&par, &serial, &format!("m={m} fused threads={threads}"));
            let auto =
                quantized_gemm_prepacked_scratch(&a, m, fmt, &pb, threads, &mut scratch).unwrap();
            assert_bits_eq(&auto, &serial, &format!("m={m} auto threads={threads}"));
        }
    }
}

/// A wide custom format pair (i32 codes, i64 accumulation) takes the
/// generic fused kernel and still matches the reference exactly.
#[test]
fn fused_wide_format_pair() {
    let wide = BdrFormat::new(16, 8, 0, 16, 16).unwrap();
    check_all_paths(2, 40, 5, wide, wide, 61);
    check_all_paths(1, 16, 1, wide, wide, 62);
}

/// A narrow pair with a non-preset block size runs the generic
/// (vector-major, non-AVX2) fused kernel.
#[test]
fn fused_non_panel_major_narrow_pair() {
    let k32 = BdrFormat::new(4, 8, 1, 32, 2).unwrap();
    check_all_paths(3, 80, 4, k32, k32, 71);
    check_all_paths(1, 32, 6, k32, k32, 72);
}

/// The fused entry rejects exactly what the two-pass entry rejects: wrong
/// plane side, and a B plane packed for the other kernel class.
#[test]
fn fused_rejections_match_two_pass() {
    let narrow = BdrFormat::MX6;
    let wide = BdrFormat::new(16, 8, 0, 16, 16).unwrap();
    let (m, k, n) = (2, 16, 3);
    let a = stress_vector(m * k, 81);
    let b = stress_vector(k * n, 82);
    let mut scratch = PackScratch::new();
    // B packed for a narrow partner cannot execute against a wide A.
    let pb = PackedOperand::pack_cols(&b, k, n, narrow, narrow).unwrap();
    assert!(quantized_gemm_fused(&a, m, wide, &pb, 1, &mut scratch).is_none());
    assert!(quantized_gemm_twopass_scratch(&a, m, wide, &pb, 1, &mut scratch).is_none());
    // ... including at degenerate dims (k = 0): class rejection must come
    // before the empty-output early return on every path.
    let pb0 = PackedOperand::pack_cols(&[], 0, n, narrow, narrow).unwrap();
    assert!(quantized_gemm_fused(&[], m, wide, &pb0, 1, &mut scratch).is_none());
    assert!(quantized_gemm_twopass_scratch(&[], m, wide, &pb0, 1, &mut scratch).is_none());
    assert!(quantized_gemm_prepacked_scratch(&[], m, wide, &pb0, 1, &mut scratch).is_none());
    // A Rows plane is not a valid B operand.
    let pa = PackedOperand::pack_rows(&a, m, k, narrow, narrow).unwrap();
    assert!(quantized_gemm_fused(&a, m, narrow, &pa, 1, &mut scratch).is_none());
}

/// One scratch serves interleaved shapes, formats, kernel classes, and
/// strategies without cross-talk: every call is bit-identical to a
/// fresh-scratch run.
#[test]
fn fused_scratch_reuse_is_bit_identical() {
    let wide = BdrFormat::new(16, 8, 0, 16, 16).unwrap();
    let mut scratch = PackScratch::new();
    for (round, (fa, fb, m, k, n)) in [
        (BdrFormat::MX6, BdrFormat::MX6, 5, 40, 7),
        (BdrFormat::MX9, BdrFormat::MX4, 1, 48, 4),
        (wide, wide, 2, 40, 3),
        (BdrFormat::MSFP12, BdrFormat::MX6, 9, 16, 2),
    ]
    .into_iter()
    .enumerate()
    {
        let a = stress_vector(m * k, 90 + round);
        let b = stress_vector(k * n, 95 + round);
        let pb = PackedOperand::pack_cols(&b, k, n, fa, fb).unwrap();
        let reused = quantized_gemm_fused(&a, m, fa, &pb, 1, &mut scratch).unwrap();
        let fresh = quantized_gemm_fused(&a, m, fa, &pb, 1, &mut PackScratch::new()).unwrap();
        assert_bits_eq(&reused, &fresh, &format!("round {round} {fa}/{fb}"));
        // Interleave a two-pass call through the same scratch.
        let two_pass = quantized_gemm_twopass_scratch(&a, m, fa, &pb, 1, &mut scratch).unwrap();
        assert_bits_eq(&reused, &two_pass, &format!("round {round} two-pass"));
    }
}

/// The nn-layer matmul — the call site serving rides — picks the fused
/// path up with no call-site changes and stays bit-identical to the
/// reference at serving shapes.
#[test]
fn nn_matmul_routes_through_fused_dispatch() {
    let (m, k, n) = (1, 40, 6);
    let a = Tensor::from_vec(stress_vector(m * k, 101), &[m, k]);
    let b = Tensor::from_vec(stress_vector(k * n, 102), &[k, n]);
    for (fa, fb) in [
        (TensorFormat::MX6, TensorFormat::MX6),
        (TensorFormat::MX9, TensorFormat::MX4),
    ] {
        let y = quantized_matmul_ab(&a, &b, fa, fb);
        let (TensorFormat::Bdr(ba), TensorFormat::Bdr(bb)) = (fa, fb) else {
            unreachable!()
        };
        let want = reference_gemm(a.data(), b.data(), m, k, n, ba, bb);
        assert_bits_eq(y.data(), &want, &format!("{fa}/{fb} through mx-nn"));
    }
}
