//! Consistency suite for the integer code-domain GEMM: on every supported
//! format pair and shape — including ragged K tails, all-zero blocks, and
//! degenerate 1×N / M×1 edges — the integer path must be **bit-identical**
//! to the quantize → dequantize → `f32` matmul reference, through both the
//! ad-hoc (`quantized_gemm`) and prepack/execute
//! (`PackedOperand` + `quantized_gemm_prepacked`) entry points, and the
//! nn-layer `quantized_matmul` must route through it without call-site
//! changes. The blocked FP32 `matmul` is held to the same standard against
//! the seed's naive triple loop.

use mx::core::bdr::BdrFormat;
use mx::core::gemm::{
    code_domain_supported, quantized_gemm, quantized_gemm_prepacked, reference_gemm, PackedOperand,
};
use mx::nn::format::TensorFormat;
use mx::nn::qflow::quantized_matmul_ab;
use mx::nn::tensor::Tensor;

const FORMATS: [BdrFormat; 4] = [
    BdrFormat::MX4,
    BdrFormat::MX6,
    BdrFormat::MX9,
    BdrFormat::MSFP12,
];

/// Deterministic pseudo-random data with outliers, sign changes, zeros, and
/// a wide magnitude spread — the shapes block formats find hardest.
fn stress_vector(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i.wrapping_mul(2654435761).wrapping_add(salt * 97)) % 10_007;
            let base = h as f32 / 10_007.0 - 0.5;
            match i % 7 {
                0 => 0.0,
                1 => base * 1e4,
                2 => -base * 1e-4,
                3 => -0.0,
                _ => base,
            }
        })
        .collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{ctx}: element {i} differs: {g} ({:#x}) vs {w} ({:#x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Random shapes across every preset format pair (including mixed weight /
/// activation formats): code domain == dequantize reference, bit for bit.
#[test]
fn code_domain_matches_dequantize_reference() {
    for fa in FORMATS {
        for fb in FORMATS {
            assert!(code_domain_supported(&fa, &fb), "{fa} x {fb}");
            for (m, k, n) in [(4, 64, 8), (3, 48, 5), (8, 512, 2)] {
                let a = stress_vector(m * k, m + k);
                let b = stress_vector(k * n, k + n + 1);
                let got = quantized_gemm(&a, &b, m, k, n, fa, fb, 1).unwrap();
                let want = reference_gemm(&a, &b, m, k, n, fa, fb);
                assert_bits_eq(&got, &want, &format!("{fa}x{fb} {m}x{k}x{n}"));
            }
        }
    }
}

/// K values that are not multiples of `k1` (and smaller than one block)
/// leave ragged tail blocks on both operands; the integer path must pad
/// and scale them identically to the reference.
#[test]
fn ragged_k_tail_blocks() {
    for fmt in [BdrFormat::MX4, BdrFormat::MX6, BdrFormat::MX9] {
        for k in [1usize, 2, 7, 15, 17, 21, 33, 47, 100] {
            let (m, n) = (3, 4);
            let a = stress_vector(m * k, k);
            let b = stress_vector(k * n, k + 3);
            let got = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
            let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
            assert_bits_eq(&got, &want, &format!("{fmt} K={k}"));
        }
    }
}

/// All-zero operand blocks exercise the shared-exponent-0 path: zero A,
/// zero B, and inputs whose zeros tile exactly one block.
#[test]
fn all_zero_blocks() {
    let fmt = BdrFormat::MX6;
    let (m, k, n) = (2, 48, 3);
    // Whole operands zero.
    let zeros = vec![0.0f32; m * k];
    let b = stress_vector(k * n, 5);
    let got = quantized_gemm(&zeros, &b, m, k, n, fmt, fmt, 1).unwrap();
    assert!(got.iter().all(|v| v.to_bits() == 0), "0 * B must be +0.0");
    // Zeros covering exactly the middle k1-block of each row/column.
    let mut a = stress_vector(m * k, 7);
    for r in 0..m {
        for p in 16..32 {
            a[r * k + p] = if p % 2 == 0 { 0.0 } else { -0.0 };
        }
    }
    let mut bz = stress_vector(k * n, 9);
    for p in 16..32 {
        for j in 0..n {
            bz[p * n + j] = 0.0;
        }
    }
    let got = quantized_gemm(&a, &bz, m, k, n, fmt, fmt, 1).unwrap();
    let want = reference_gemm(&a, &bz, m, k, n, fmt, fmt);
    assert_bits_eq(&got, &want, "zero middle block");
}

/// Degenerate output shapes: single-row, single-column, and 1×1 products.
#[test]
fn row_and_column_vector_shapes() {
    for fmt in [BdrFormat::MX6, BdrFormat::MX9] {
        for (m, k, n) in [(1, 40, 9), (7, 33, 1), (1, 16, 1), (1, 5, 1)] {
            let a = stress_vector(m * k, m + 11);
            let b = stress_vector(k * n, n + 13);
            let got = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
            let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
            assert_bits_eq(&got, &want, &format!("{fmt} {m}x{k}x{n}"));
        }
    }
}

/// Row-parallel dispatch is bit-identical to the serial GEMM for every
/// thread count, including the "all cores" knob.
#[test]
fn parallel_gemm_is_bit_identical() {
    let fmt = BdrFormat::MX9;
    let (m, k, n) = (48, 80, 32);
    let a = stress_vector(m * k, 17);
    let b = stress_vector(k * n, 19);
    let serial = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
    for threads in [2usize, 3, 5, 8, 0] {
        let par = quantized_gemm(&a, &b, m, k, n, fmt, fmt, threads).unwrap();
        assert_bits_eq(&par, &serial, &format!("threads={threads}"));
    }
}

/// The nn-layer entry point routes BDR format pairs through the integer
/// path (bit-identical to the reference) and leaves identity formats on
/// the exact `f32` matmul.
#[test]
fn nn_matmul_routes_through_code_domain() {
    let (m, k, n) = (5, 37, 6);
    let a = Tensor::from_vec(stress_vector(m * k, 23), &[m, k]);
    let b = Tensor::from_vec(stress_vector(k * n, 29), &[k, n]);
    for (fa, fb) in [
        (TensorFormat::MX4, TensorFormat::MX4),
        (TensorFormat::MX6, TensorFormat::MX9),
        (TensorFormat::Bdr(BdrFormat::MSFP12), TensorFormat::MX6),
    ] {
        let y = quantized_matmul_ab(&a, &b, fa, fb);
        let (TensorFormat::Bdr(ba), TensorFormat::Bdr(bb)) = (fa, fb) else {
            unreachable!()
        };
        let want = reference_gemm(a.data(), b.data(), m, k, n, ba, bb);
        assert_bits_eq(y.data(), &want, &format!("{fa}/{fb}"));
        assert_eq!(y.shape(), &[m, n]);
    }
    // Identity formats short-circuit to the exact product.
    let exact = quantized_matmul_ab(&a, &b, TensorFormat::Fp32, TensorFormat::Fp32);
    assert_eq!(exact, a.matmul(&b));
}

/// Formats that cannot take the AVX2 kernel (block size ≠ 16, or operand
/// codes wider than `i16`) dispatch to the portable generic kernels; those
/// must honor the same bit-identity guarantee. Covers `run::<i16>` via a
/// `k1 = 32` narrow format and `run::<i32>` via a 16-bit-mantissa format.
#[test]
fn generic_fallback_kernels_match_reference() {
    // k1 = 32, d2 = 2: narrow i16 codes, but not the AVX2 block size.
    let k32 = BdrFormat::new(4, 8, 2, 32, 4).unwrap();
    // m = 16: aligned codes exceed 15 bits, forcing the i32/i64 path.
    let wide = BdrFormat::new(16, 4, 0, 16, 2).unwrap();
    for fmt in [k32, wide] {
        assert!(code_domain_supported(&fmt, &fmt), "{fmt}");
        for (m, k, n) in [(3, 80, 5), (2, 37, 4), (1, 100, 1)] {
            let a = stress_vector(m * k, m + k + 41);
            let b = stress_vector(k * n, k + n + 43);
            let got = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
            let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
            assert_bits_eq(&got, &want, &format!("{fmt} {m}x{k}x{n}"));
        }
    }
}

/// The prepack/execute split must change nothing observable: for every
/// preset format pair, ragged K tails included, a B plane packed once and
/// executed repeatedly is bit-identical to the ad-hoc `quantized_gemm` and
/// to the dequantize reference.
#[test]
fn prepacked_execute_matches_ad_hoc_and_reference() {
    for fa in FORMATS {
        for fb in FORMATS {
            for (m, k, n) in [(4, 64, 8), (3, 37, 5), (1, 7, 1)] {
                let b = stress_vector(k * n, k + n + 51);
                let pb = PackedOperand::pack_cols(&b, k, n, fa, fb).unwrap();
                for pass in 0..2 {
                    // Fresh activations per pass, same plane.
                    let a = stress_vector(m * k, m + k + pass);
                    let pre = quantized_gemm_prepacked(&a, m, fa, &pb, 1).unwrap();
                    let ad_hoc = quantized_gemm(&a, &b, m, k, n, fa, fb, 1).unwrap();
                    let want = reference_gemm(&a, &b, m, k, n, fa, fb);
                    let ctx = format!("{fa}x{fb} {m}x{k}x{n} pass={pass}");
                    assert_bits_eq(&pre, &ad_hoc, &ctx);
                    assert_bits_eq(&pre, &want, &ctx);
                }
            }
        }
    }
}

/// Prepacked execution under row-parallel dispatch: bit-identical for
/// every thread count, like the ad-hoc path.
#[test]
fn prepacked_parallel_is_bit_identical() {
    let (fa, fb) = (BdrFormat::MX6, BdrFormat::MX9);
    let (m, k, n) = (48, 80, 32);
    let a = stress_vector(m * k, 61);
    let b = stress_vector(k * n, 63);
    let pb = PackedOperand::pack_cols(&b, k, n, fa, fb).unwrap();
    let serial = quantized_gemm_prepacked(&a, m, fa, &pb, 1).unwrap();
    assert_bits_eq(
        &serial,
        &reference_gemm(&a, &b, m, k, n, fa, fb),
        "serial vs reference",
    );
    for threads in [2usize, 3, 5, 8, 0] {
        let par = quantized_gemm_prepacked(&a, m, fa, &pb, threads).unwrap();
        assert_bits_eq(&par, &serial, &format!("threads={threads}"));
    }
}

/// The generic (non-AVX2-layout) kernels honor the prepack split too:
/// `k1 = 32` narrow codes and 16-bit-mantissa wide codes.
#[test]
fn prepacked_generic_kernels_match_reference() {
    let k32 = BdrFormat::new(4, 8, 2, 32, 4).unwrap();
    let wide = BdrFormat::new(16, 4, 0, 16, 2).unwrap();
    for fmt in [k32, wide] {
        let (m, k, n) = (3, 80, 5);
        let a = stress_vector(m * k, 71);
        let b = stress_vector(k * n, 73);
        let pb = PackedOperand::pack_cols(&b, k, n, fmt, fmt).unwrap();
        let got = quantized_gemm_prepacked(&a, m, fmt, &pb, 1).unwrap();
        let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
        assert_bits_eq(&got, &want, &format!("{fmt}"));
    }
}

/// The blocked, vectorized FP32 `Tensor::matmul` is bit-identical to the
/// seed's naive triple loop — zero-skip semantics (and its 0×∞/0×NaN
/// guard) included.
#[test]
fn blocked_f32_matmul_matches_seed_triple_loop() {
    // The canonical copy of the seed loop.
    use mx::core::fgemm::naive_matmul as seed_matmul;
    for (m, k, n) in [
        (1, 1, 1),
        (5, 129, 17),
        (4, 512, 8),
        (9, 260, 33),
        (2, 16, 3),
    ] {
        let a = stress_vector(m * k, m + 81);
        let b = stress_vector(k * n, n + 83);
        let at = Tensor::from_vec(a.clone(), &[m, k]);
        let bt = Tensor::from_vec(b.clone(), &[k, n]);
        let got = at.matmul(&bt);
        let want = seed_matmul(&a, &b, m, k, n);
        assert_bits_eq(got.data(), &want, &format!("f32 {m}x{k}x{n}"));
    }
    // Non-finite rhs disables the zero-skip: NaN must reach the output.
    let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
    let b = Tensor::from_vec(vec![f32::INFINITY, 2.0], &[2, 1]);
    assert!(a.matmul(&b).data()[0].is_nan(), "0 x inf must be NaN");
}

/// For K within a single k1-block, the blocked accumulation degenerates to
/// the naive product: the code-domain result equals the seed's
/// quantize-both-then-`f32`-matmul composition exactly.
#[test]
fn single_block_k_matches_naive_composition() {
    use mx::nn::format::{quantize_along, Axis};
    for fmt in [TensorFormat::MX4, TensorFormat::MX6, TensorFormat::MX9] {
        let (m, k, n) = (4, 16, 4);
        let a = Tensor::from_vec(stress_vector(m * k, 31), &[m, k]);
        let b = Tensor::from_vec(stress_vector(k * n, 37), &[k, n]);
        let y = quantized_matmul_ab(&a, &b, fmt, fmt);
        let aq = quantize_along(&a, fmt, Axis::Row);
        let bq = quantize_along(&b, fmt, Axis::Col);
        assert_bits_eq(y.data(), aq.matmul(&bq).data(), &format!("{fmt}"));
    }
}
