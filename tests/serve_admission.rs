//! Admission-control suite for `mx-serve`: bounded queues exert real
//! backpressure, overload sheds with a **typed** rejection (never a silent
//! drop), expired deadlines are answered with `DeadlineExceeded`, and the
//! latency-SLO gate orders traffic by priority. The tests drive the
//! controller with purpose-built models — a `Gate` that blocks its worker
//! until released and a `Sleeper` with a known service time — so every
//! assertion is about *which* typed outcome arrives, not about wall-clock
//! racing.

use mx::models::zoo::{BatchModel, InputKind, ZooInput};
use mx::nn::qflow::QuantConfig;
use mx::serve::{
    AdmissionConfig, Priority, Request, RequestInput, ServeError, Server, ServerConfig,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Pixel model that parks its worker on a channel until the test releases
/// (or drops) the sender — the stand-in for a slow tenant that lets the
/// test fill queues deterministically.
struct Gate {
    release: mpsc::Receiver<()>,
}

impl Gate {
    fn new() -> (mpsc::Sender<()>, Self) {
        let (tx, release) = mpsc::channel();
        (tx, Gate { release })
    }
}

impl BatchModel for Gate {
    fn input_kind(&self) -> InputKind {
        InputKind::Pixels
    }

    fn input_len(&self) -> usize {
        4
    }

    fn output_len(&self, _len: usize) -> usize {
        1
    }

    fn set_quant(&mut self, _cfg: QuantConfig) {}

    fn forward_batch(&mut self, _input: ZooInput<'_>, batch: usize) -> Vec<f32> {
        // Blocks until the test sends a token or drops the sender; either
        // way the batch then completes normally.
        let _ = self.release.recv();
        vec![0.0; batch]
    }
}

/// Pixel model with a fixed, known service time, used to seed the
/// admission controller's service-time EWMAs with a predictable value.
struct Sleeper {
    service: Duration,
}

impl BatchModel for Sleeper {
    fn input_kind(&self) -> InputKind {
        InputKind::Pixels
    }

    fn input_len(&self) -> usize {
        4
    }

    fn output_len(&self, _len: usize) -> usize {
        1
    }

    fn set_quant(&mut self, _cfg: QuantConfig) {}

    fn forward_batch(&mut self, _input: ZooInput<'_>, batch: usize) -> Vec<f32> {
        std::thread::sleep(self.service);
        vec![0.0; batch]
    }
}

fn px() -> RequestInput {
    RequestInput::Pixels(vec![0.0; 4])
}

#[test]
fn bounded_queue_backpressure_blocks_submitters() {
    let (gate_tx, gate) = Gate::new();
    let mut server = Server::new(
        ServerConfig::default()
            .workers(1)
            .max_batch(1)
            .admission(AdmissionConfig::new().queue_capacity(2)),
    );
    server.register("gate", Box::new(gate));
    let handle = server.start().expect("valid config");

    // A submitter thread pushes far more requests than the pipeline
    // (executing batch + batch channel + dispatcher drain + queue bound)
    // can absorb while the worker is parked on the gate.
    const TOTAL: usize = 24;
    let submitted = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let submitted = &submitted;
        let handle_ref = &handle;
        let submitter = s.spawn(move || {
            let mut pending = Vec::with_capacity(TOTAL);
            for _ in 0..TOTAL {
                pending.push(handle_ref.submit(Request::new("gate", px())).unwrap());
                submitted.fetch_add(1, Ordering::SeqCst);
            }
            pending
        });
        // Give the submitter ample time: with the worker parked it must
        // wedge on the bounded queue well short of TOTAL.
        std::thread::sleep(Duration::from_millis(300));
        let blocked_at = submitted.load(Ordering::SeqCst);
        assert!(
            blocked_at < TOTAL,
            "bounded queue never blocked: all {TOTAL} submissions went through"
        );
        // Release the gate: every parked and queued batch completes, the
        // submitter unblocks, and every request is answered.
        drop(gate_tx);
        let pending = submitter.join().expect("submitter panicked");
        for (i, p) in pending.into_iter().enumerate() {
            assert!(
                p.wait().is_ok(),
                "request {i} must be answered after release"
            );
        }
    });
    let stats = handle.stats();
    assert_eq!(stats.completed, TOTAL as u64);
    assert_eq!(stats.shed, 0, "backpressure mode never sheds");
    assert_eq!(stats.queue_depth, 0);
    handle.shutdown();
}

#[test]
fn full_queue_sheds_with_typed_overloaded_and_never_silently_drops() {
    let (gate_tx, gate) = Gate::new();
    let mut server = Server::new(
        ServerConfig::default()
            .workers(1)
            .max_batch(1)
            .admission(AdmissionConfig::new().queue_capacity(1).shed_on_full(true)),
    );
    server.register("gate", Box::new(gate));
    let handle = server.start().expect("valid config");

    // With the worker parked, keep submitting: the pipeline absorbs a
    // bounded handful, after which every submission must come back as a
    // typed Overloaded — submit never blocks and never loses a request.
    let mut pending = Vec::new();
    let mut overloaded = 0usize;
    for i in 0..50 {
        match handle.submit(Request::new("gate", px())) {
            Ok(p) => pending.push((i, p)),
            Err(ServeError::Overloaded { model }) => {
                assert_eq!(model, "gate");
                overloaded += 1;
            }
            Err(other) => panic!("request {i}: unexpected rejection {other:?}"),
        }
    }
    assert!(
        overloaded > 0,
        "50 submissions against a parked worker and a capacity-1 queue must shed"
    );
    assert!(
        !pending.is_empty(),
        "the pipeline must have admitted the first few requests"
    );
    let stats = handle.stats();
    assert_eq!(stats.shed, overloaded as u64, "every shed is counted");

    // Nothing admitted is ever silently dropped: release the gate and every
    // accepted request resolves.
    drop(gate_tx);
    let admitted = pending.len();
    for (i, p) in pending {
        assert!(p.wait().is_ok(), "admitted request {i} must complete");
    }
    let stats = handle.stats();
    assert_eq!(stats.completed, admitted as u64);
    assert_eq!(stats.queue_depth, 0);
    handle.shutdown();
}

#[test]
fn expired_deadlines_get_deadline_exceeded() {
    let (gate_tx, gate) = Gate::new();
    let mut server = Server::new(ServerConfig::default().workers(1).max_batch(1));
    server.register("gate", Box::new(gate));
    let handle = server.start().expect("valid config");

    // A zero budget expires at submit time: typed error, nothing enqueued.
    let err = match handle.submit(Request::new("gate", px()).deadline(Duration::ZERO)) {
        Err(e) => e,
        Ok(_) => panic!("a zero-budget deadline must be rejected at submit"),
    };
    assert_eq!(
        err,
        ServeError::DeadlineExceeded {
            model: "gate".into()
        }
    );

    // Park the worker, then enqueue a short-deadline request behind it;
    // by the time the pipeline reaches it the deadline has passed, so the
    // dispatch- or execute-side check answers it with the typed error.
    let head = handle.submit(Request::new("gate", px())).unwrap();
    let doomed = handle
        .submit(Request::new("gate", px()).deadline(Duration::from_millis(10)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    drop(gate_tx);
    assert!(head.wait().is_ok(), "the parked head request completes");
    assert_eq!(
        doomed.wait().unwrap_err(),
        ServeError::DeadlineExceeded {
            model: "gate".into()
        }
    );
    let stats = handle.stats();
    assert_eq!(
        stats.expired, 2,
        "submit-time and queue-time expiries are both counted"
    );
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.queue_depth, 0);
    handle.shutdown();
}

#[test]
fn slo_admission_orders_traffic_by_priority() {
    // Service time ≥ 30ms; SLO 58ms. After one warm request seeds the
    // EWMA, the idle-shard wait estimate is ≥ 30ms: inside the Normal
    // budget (58ms), strictly outside the Low budget (29ms), bypassed
    // entirely by High.
    let service = Duration::from_millis(30);
    let mut server = Server::new(
        ServerConfig::default()
            .workers(1)
            .max_batch(1)
            .admission(AdmissionConfig::new().slo(Duration::from_millis(58))),
    );
    server.register("sleepy", Box::new(Sleeper { service }));
    let handle = server.start().expect("valid config");

    // Cold shard: the estimate is zero, so the seeding request is admitted.
    handle
        .infer(Request::new("sleepy", px()))
        .expect("cold server admits");

    // Low priority gets half the SLO (29ms) — the ≥30ms estimate busts it.
    let err = handle
        .infer(Request::new("sleepy", px()).priority(Priority::Low))
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::Overloaded {
            model: "sleepy".into()
        }
    );
    // Normal gets the full 58ms budget — admitted and served.
    handle
        .infer(Request::new("sleepy", px()))
        .expect("normal fits the full SLO");
    // High bypasses the estimate no matter what.
    handle
        .infer(Request::new("sleepy", px()).priority(Priority::High))
        .expect("high priority bypasses the SLO gate");

    let stats = handle.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.completed, 3);
    handle.shutdown();

    // A tight SLO sheds Normal traffic too, while High still lands.
    let mut server = Server::new(
        ServerConfig::default()
            .workers(1)
            .max_batch(1)
            .admission(AdmissionConfig::new().slo(Duration::from_millis(10))),
    );
    server.register("sleepy", Box::new(Sleeper { service }));
    let handle = server.start().expect("valid config");
    handle
        .infer(Request::new("sleepy", px()))
        .expect("cold server admits");
    let err = handle.infer(Request::new("sleepy", px())).unwrap_err();
    assert_eq!(
        err,
        ServeError::Overloaded {
            model: "sleepy".into()
        }
    );
    handle
        .infer(Request::new("sleepy", px()).priority(Priority::High))
        .expect("high priority still lands under a busted SLO");
    let stats = handle.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.completed, 2);
    handle.shutdown();
}

#[test]
fn rejections_and_answers_are_printable_errors() {
    // `ServeError: Display + Error` lets callers `?` it out of main and
    // log it without `{:?}`.
    let errs: Vec<Box<dyn std::error::Error>> = vec![
        Box::new(ServeError::Overloaded { model: "m".into() }),
        Box::new(ServeError::DeadlineExceeded { model: "m".into() }),
        Box::new(ServeError::UnknownModel("m".into())),
    ];
    for e in errs {
        let msg = e.to_string();
        assert!(msg.contains('m'), "{msg}");
        assert!(
            !msg.contains("ServeError"),
            "Display must not be Debug: {msg}"
        );
    }
}
