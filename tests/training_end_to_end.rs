//! Cross-crate integration: the paper's headline end-to-end behaviours,
//! checked as a single pipeline from data generation (mx-models) through
//! quantized training (mx-nn) against the cost model (mx-hw).

use mx::models::data::markov_corpus;
use mx::models::gpt::{train_lm, GptConfig};
use mx::nn::{QuantConfig, TensorFormat};

/// The drop-in-replacement claim: MX9 training lands within run-to-run
/// noise of FP32, while MX4 training visibly lags, on the same seed and
/// data.
#[test]
fn mx9_is_a_drop_in_replacement_mx4_is_not() {
    let corpus = markov_corpus(7, 12_000, 0.4);
    let run = |cfg| {
        train_lm(GptConfig::tiny(), cfg, &corpus, 80, 4, 3e-3, 5)
            .1
            .eval_loss
    };
    let fp32 = run(QuantConfig::fp32());
    let mx9 = run(QuantConfig::uniform(TensorFormat::MX9));
    let mx4 = run(QuantConfig::uniform(TensorFormat::MX4));
    assert!(
        (fp32 - mx9).abs() < 0.15,
        "MX9 should match FP32: {fp32:.3} vs {mx9:.3}"
    );
    assert!(
        mx4 > mx9 + 0.05,
        "MX4 training should visibly lag MX9: {mx4:.3} vs {mx9:.3}"
    );
}

/// Direct-cast degradation is monotone in format width, with the (MX4,MX4)
/// cliff of Table IV.
#[test]
fn direct_cast_degrades_monotonically() {
    let corpus = markov_corpus(8, 12_000, 0.4);
    // Training seed pinned against the vendored RNG's stream (see
    // vendor/rand): seed 4 leaves a wide margin on every assertion below.
    let (mut model, run) = train_lm(
        GptConfig::tiny(),
        QuantConfig::fp32(),
        &corpus,
        80,
        4,
        3e-3,
        4,
    );
    let mut losses = Vec::new();
    for (w, a) in [
        (TensorFormat::MX9, TensorFormat::MX9),
        (TensorFormat::MX6, TensorFormat::MX6),
        (TensorFormat::MX4, TensorFormat::MX4),
    ] {
        model.set_quant(QuantConfig::weights_activations(w, a));
        losses.push(model.evaluate(&corpus, 16, 77));
    }
    assert!(
        losses[0] < losses[1] + 0.02,
        "MX9 cast should beat MX6: {losses:?}"
    );
    assert!(
        losses[1] < losses[2],
        "MX6 cast should beat MX4: {losses:?}"
    );
    assert!(
        (losses[0] - run.eval_loss).abs() < 0.05,
        "MX9 cast should track FP32 ({:.3}): {losses:?}",
        run.eval_loss
    );
}

/// Fig. 9's economics: MX6 needs more iterations, but the per-iteration
/// cost model (mx-hw) says each one is much cheaper, so cost-to-quality
/// favours MX6.
#[test]
fn mx6_training_cost_economics() {
    use mx::core::bdr::BdrFormat;
    use mx::hw::cost::{CostModel, FormatConfig};
    let corpus = markov_corpus(9, 12_000, 0.4);
    let iters = 80;
    let (_, mx9) = train_lm(
        GptConfig::tiny(),
        QuantConfig::uniform(TensorFormat::MX9),
        &corpus,
        iters,
        4,
        3e-3,
        7,
    );
    let (_, mx6) = train_lm(
        GptConfig::tiny(),
        QuantConfig::uniform(TensorFormat::MX6),
        &corpus,
        iters * 3 / 2,
        4,
        3e-3,
        7,
    );
    // Quality parity within tolerance after 1.5x iterations.
    assert!(
        mx6.eval_loss < mx9.eval_loss + 0.15,
        "MX6 with 1.5x iters should approach MX9: {:.3} vs {:.3}",
        mx6.eval_loss,
        mx9.eval_loss
    );
    // And cost the tensor units less in total.
    let model = CostModel::new();
    let c9 = model.evaluate(&FormatConfig::Bdr(BdrFormat::MX9)).product;
    let c6 = model.evaluate(&FormatConfig::Bdr(BdrFormat::MX6)).product;
    let total9 = iters as f64 * c9;
    let total6 = (iters * 3 / 2) as f64 * c6;
    assert!(
        total6 < total9,
        "MX6 total cost {total6:.1} should undercut MX9 {total9:.1}"
    );
}
