//! Cross-crate integration: a compact Fig. 7 sweep — QSNR methodology
//! (mx-core), cost model (mx-hw), and Pareto machinery (mx-sweep) together
//! reproduce the paper's qualitative frontier.

use mx::core::bdr::BdrFormat;
use mx::core::qsnr::QsnrConfig;
use mx::hw::cost::FormatConfig;
use mx::sweep::eval::{evaluate_all, SweepSettings};
use mx::sweep::pareto::{db_below_frontier, pareto_indices};
use mx::sweep::space;

fn settings() -> SweepSettings {
    SweepSettings {
        qsnr: QsnrConfig {
            vectors: 96,
            vector_len: 1024,
            seed: 9,
        },
        ..SweepSettings::default()
    }
}

#[test]
fn compact_fig7_shape() {
    // MX ladder + BFP ladder + named scalar/INT/VSQ formats.
    let mut configs = Vec::new();
    for m in 1..=8u32 {
        configs.push(FormatConfig::Bdr(
            BdrFormat::new(m, 8, 1, 16, 2).expect("valid"),
        ));
        configs.push(FormatConfig::Bdr(
            BdrFormat::new(m, 8, 0, 16, 16).expect("valid"),
        ));
    }
    for (_, c) in space::named_formats() {
        if !configs.contains(&c) {
            configs.push(c);
        }
    }
    let points = evaluate_all(&configs, &settings());
    let frontier = pareto_indices(&points);
    assert!(
        frontier.len() >= 4,
        "frontier too small: {}",
        frontier.len()
    );

    let find = |f: BdrFormat| {
        points
            .iter()
            .find(|p| p.config == FormatConfig::Bdr(f))
            .expect("present")
    };
    let by_label = |l: &str| points.iter().find(|p| p.label == l).expect("present");

    let mx9 = find(BdrFormat::MX9);
    let mx6 = find(BdrFormat::MX6);
    let msfp16 = find(BdrFormat::MSFP16);
    let fp8 = by_label("FP8-E4M3");

    // Headline orderings from §IV-C.
    assert!(
        mx9.qsnr_db > fp8.qsnr_db + 10.0,
        "MX9 {} vs FP8 {}",
        mx9.qsnr_db,
        fp8.qsnr_db
    );
    assert!(
        mx9.qsnr_db > msfp16.qsnr_db + 2.0,
        "MX9 should clear MSFP16 by >2 dB"
    );
    assert!(
        mx9.product <= fp8.product * 1.15,
        "MX9 cost should be near FP8"
    );
    assert!(
        mx6.product < fp8.product * 0.6,
        "MX6 should cost well under FP8"
    );
    // MX points hug the frontier.
    for p in [mx9, mx6] {
        assert!(
            db_below_frontier(&points, p) < 3.0,
            "{} off-frontier",
            p.label
        );
    }
}

#[test]
fn full_space_is_large_and_unique() {
    let space = space::full_space();
    assert!(
        space.len() >= 800,
        "need the paper's 800+ configs, got {}",
        space.len()
    );
}
