//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no crates.io access, so this
//! vendored crate provides the subset of the `rand` 0.8 API the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 stream of upstream `rand`, so seeded
//! sequences differ from upstream, but every consumer in this repository only
//! relies on determinism-given-seed and on basic statistical quality, both of
//! which xoshiro256++ provides.

use std::ops::{Range, RangeInclusive};

/// A low-level source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Distributions that can produce a `T` from raw random bits.
pub trait Distribution<T> {
    /// Samples one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform floats in `[0, 1)`, uniform integers
/// over the full domain, fair booleans.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u: f32 = Standard.sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u: f64 = Standard.sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Maps a raw 64-bit draw onto `[0, span)` via the widening-multiply trick.
fn bounded(rng_value: u64, span: u128) -> u128 {
    (rng_value as u128 * span) >> 64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard.sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in s.iter_mut() {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four consecutive zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let j: usize = rng.gen_range(0..=4);
            assert!(j <= 4);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n: isize = rng.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_unit_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn bools_are_fair() {
        let mut rng = StdRng::seed_from_u64(17);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues));
        let p_trues = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&p_trues));
    }
}
