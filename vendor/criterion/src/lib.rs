//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock sampler: each benchmark is warmed up, then timed over batches
//! until a budget elapses, and the best/mean iteration times are printed.
//!
//! Control the per-benchmark measurement budget with the
//! `MX_BENCH_MEASURE_MS` environment variable (default 300 ms).
//!
//! Like upstream criterion, passing `--test` on the bench binary's command
//! line (`cargo bench --bench foo -- --test`) switches to **smoke mode**:
//! every benchmark closure runs exactly once, untimed, so CI can verify the
//! harnesses still execute without paying for measurements.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group; reported as elements or
/// bytes per second next to the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Types accepted as benchmark names by `bench_function`.
pub trait IntoBenchmarkId {
    /// Converts to the printed identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

fn measure_budget() -> Duration {
    // Vendored crate: cannot route through `mx_core::knobs::raw`, but the
    // knob is declared in that registry and documented in the README.
    #[allow(clippy::disallowed_methods)]
    let ms = std::env::var("MX_BENCH_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher {
    total: Duration,
    iters: u64,
    best: Duration,
    test_mode: bool,
}

impl Bencher {
    fn new(test_mode: bool) -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
            best: Duration::MAX,
            test_mode,
        }
    }

    /// Times repeated calls of `f` until the measurement budget elapses; in
    /// `--test` smoke mode runs `f` exactly once instead.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std_black_box(f());
            self.iters = 1;
            return;
        }
        // Warm-up: let caches/allocator settle and estimate the cost of one
        // call so batches amortize timer overhead.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(30) && warm_iters < 1_000_000 {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters.max(1) as u32);
        let batch = match per_iter {
            Some(d) if d > Duration::ZERO => {
                (Duration::from_millis(5).as_nanos() / d.as_nanos().max(1)).clamp(1, 65_536) as u64
            }
            _ => 1_000,
        };

        let budget = measure_budget();
        let start = Instant::now();
        while start.elapsed() < budget {
            let batch_start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = batch_start.elapsed();
            self.total += elapsed;
            self.iters += batch;
            let per = elapsed / batch as u32;
            if per < self.best {
                self.best = per;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.test_mode {
        println!("{name:<48} (smoke: ran once, untimed)");
        return;
    }
    if bencher.iters == 0 {
        println!("{name:<48} (no samples)");
        return;
    }
    let mean = bencher.total / bencher.iters as u32;
    let mut line = format!(
        "{name:<48} time: [best {} / mean {}]",
        fmt_duration(bencher.best),
        fmt_duration(mean)
    );
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line += &format!("  thrpt: {:.1} Melem/s", n as f64 / secs / 1e6);
                }
                Throughput::Bytes(n) => {
                    line += &format!("  thrpt: {:.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0));
                }
            }
        }
    }
    println!("{line}");
}

/// Benchmark registry; mirrors `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Reads the CLI arguments `cargo bench` forwards: `--test` selects
    /// smoke mode (each benchmark runs once, untimed); everything else is
    /// accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            test_mode,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.test_mode);
        f(&mut b);
        report(name, &b, None);
        self
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the wall-clock sampler sizes batches
    /// automatically.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.test_mode);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_benchmark_id()),
            &b,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.test_mode);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_samples() {
        std::env::set_var("MX_BENCH_MEASURE_MS", "5");
        let mut b = Bencher::new(false);
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert!(b.iters > 0);
        assert!(b.best < Duration::MAX);
    }

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let mut b = Bencher::new(true);
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(count, 1, "--test mode must run the closure exactly once");
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("quant", "MX9").to_string(), "quant/MX9");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("MX_BENCH_MEASURE_MS", "2");
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4)).sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1)));
    }
}
