//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, exposing the scoped-thread API this workspace uses
//! ([`thread::scope`]) implemented over [`std::thread::scope`] (stable since
//! Rust 1.63 — upstream crossbeam's scoped threads predate it).

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope, matching `std::thread::Result`.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle that can spawn threads borrowing from the environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// itself so workers can spawn nested workers (crossbeam's
        /// signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// joins every spawned thread before returning. Returns `Err` with the
    /// first panic payload if the closure or any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_all_threads() {
        let mut data = vec![0u32; 8];
        thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| {
                    *slot = i as u32 + 1;
                });
            }
        })
        .unwrap();
        assert_eq!(data, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn scope_reports_panics() {
        let result = thread::scope(|s| {
            s.spawn(|_| panic!("worker failure"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let result = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().map(|v| v * 2).unwrap_or(0))
                .join()
                .unwrap_or(0)
        })
        .unwrap();
        assert_eq!(result, 42);
    }
}
