//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, exposing the API surface this workspace uses: scoped threads
//! ([`thread::scope`], implemented over [`std::thread::scope`] — stable since
//! Rust 1.63, upstream crossbeam's scoped threads predate it) and MPMC
//! channels ([`channel::unbounded`] / [`channel::bounded`], a
//! `Mutex`+`Condvar` queue with upstream's disconnect semantics), which back
//! `mx-serve`'s request queue.

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope, matching `std::thread::Result`.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle that can spawn threads borrowing from the environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// itself so workers can spawn nested workers (crossbeam's
        /// signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// joins every spawned thread before returning. Returns `Err` with the
    /// first panic payload if the closure or any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Multi-producer multi-consumer FIFO channels (mirrors
/// `crossbeam::channel`).
///
/// Both flavors share one implementation: a `Mutex`-guarded `VecDeque` with
/// two `Condvar`s (consumers wait for items, bounded producers wait for
/// space). Disconnect semantics match upstream: [`Receiver::recv`] drains
/// remaining items after every [`Sender`] drops and only then reports
/// [`RecvError`]; [`Sender::send`] fails once every [`Receiver`] is gone.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// The sending half of a channel was disconnected; the value is handed
    /// back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// All senders disconnected and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a [`Receiver::try_recv`] returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty but senders remain connected.
        Empty,
        /// All senders disconnected and the queue is empty.
        Disconnected,
    }

    /// Why a [`Sender::try_send`] refused the value (handed back in both
    /// cases, matching upstream).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity right now.
        Full(T),
        /// Every receiver has disconnected.
        Disconnected(T),
    }

    struct State<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded.
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signaled when an item arrives or the last sender drops.
        on_item: Condvar,
        /// Signaled when space frees up or the last receiver drops.
        on_space: Condvar,
    }

    /// The sending half of a channel. Clonable; `send` takes `&self`, so one
    /// sender can be shared across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable (each message is delivered
    /// to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a channel with no capacity bound: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages: `send`
    /// blocks while full (backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (rendezvous channels are not implemented —
    /// nothing in the workspace uses them).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "zero-capacity channels are not supported");
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            on_item: Condvar::new(),
            on_space: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, blocking while a bounded channel is full.
        /// Returns the value back when every receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match state.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.shared.on_space.wait(state).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.on_item.notify_one();
            Ok(())
        }

        /// Enqueues `value` only if it fits right now: a full bounded
        /// channel returns [`TrySendError::Full`] instead of blocking —
        /// the primitive behind load-shedding admission control.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = state.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.on_item.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking until one arrives. Returns
        /// [`RecvError`] only when the queue is empty *and* every sender has
        /// disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.shared.on_space.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.on_item.wait(state).expect("channel poisoned");
            }
        }

        /// Dequeues the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.on_space.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake all blocked receivers so they observe the disconnect.
                self.shared.on_item.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake all blocked senders so they observe the disconnect.
                self.shared.on_space.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_all_threads() {
        let mut data = vec![0u32; 8];
        thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| {
                    *slot = i as u32 + 1;
                });
            }
        })
        .unwrap();
        assert_eq!(data, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn scope_reports_panics() {
        let result = thread::scope(|s| {
            s.spawn(|_| panic!("worker failure"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let result = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().map(|v| v * 2).unwrap_or(0))
                .join()
                .unwrap_or(0)
        })
        .unwrap();
        assert_eq!(result, 42);
    }
}

#[cfg(test)]
mod channel_tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError, TrySendError};
    use super::thread;

    #[test]
    fn try_send_sheds_when_full_and_reports_disconnect() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1u32), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        // Unbounded channels never report Full.
        let (utx, urx) = unbounded();
        for i in 0..64 {
            assert_eq!(utx.try_send(i), Ok(()));
        }
        drop(urx);
        assert_eq!(utx.try_send(64), Err(TrySendError::Disconnected(64)));
    }

    #[test]
    fn fifo_order_and_disconnect_drain() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        // Remaining items drain before the disconnect surfaces.
        assert_eq!(
            (0..5).map(|_| rx.recv().unwrap()).collect::<Vec<i32>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        thread::scope(|s| {
            s.spawn(|_| tx.send(2).unwrap()); // blocks until the recv below
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        })
        .unwrap();
        assert!(rx.is_empty());
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_each_once() {
        let (tx, rx) = unbounded();
        let total: usize = 64;
        let got = std::sync::Mutex::new(Vec::new());
        thread::scope(|s| {
            for p in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..total / 4 {
                        tx.send(p * (total / 4) + i).unwrap();
                    }
                });
            }
            drop(tx); // scope's senders are the only ones left
            for _ in 0..4 {
                let rx = rx.clone();
                let got = &got;
                s.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        got.lock().unwrap().push(v);
                    }
                });
            }
        })
        .unwrap();
        let mut got = got.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..total).collect::<Vec<_>>());
        assert_eq!(rx.len(), 0);
    }
}
