//! Train a small generative language model in FP32, then direct-cast it
//! down the MX ladder — the Table III/IV workflow in one file.
//!
//! ```sh
//! cargo run --release --example llm_direct_cast
//! ```

use mx::models::data::markov_corpus;
use mx::models::gpt::{train_lm, GptConfig};
use mx::nn::{QuantConfig, TensorFormat};

fn main() {
    let corpus = markov_corpus(3, 20_000, 0.4);
    println!("pretraining a small GPT in FP32...");
    let (mut model, run) = train_lm(
        GptConfig::ladder(1),
        QuantConfig::fp32(),
        &corpus,
        200,
        8,
        3e-3,
        42,
    );
    println!("  FP32 eval loss: {:.3}\n", run.eval_loss);

    println!("direct-casting the same weights (no fine-tuning):");
    for (name, w, a) in [
        ("(MX9, MX9)", TensorFormat::MX9, TensorFormat::MX9),
        ("(MX6, MX6)", TensorFormat::MX6, TensorFormat::MX6),
        ("(MX4, MX6)", TensorFormat::MX4, TensorFormat::MX6),
        ("(MX4, MX4)", TensorFormat::MX4, TensorFormat::MX4),
    ] {
        model.set_quant(QuantConfig::weights_activations(w, a));
        let loss = model.evaluate(&corpus, 24, 99);
        println!(
            "  {name:10} eval loss {loss:.3}  (delta {:+.3})",
            loss - run.eval_loss
        );
    }

    model.set_quant(QuantConfig::weights_activations(
        TensorFormat::MX9,
        TensorFormat::MX9,
    ));
    let sample = model.generate(&corpus[..8], 16);
    println!("\nMX9 greedy sample (token ids): {sample:?}");
    println!("\nExpected shape (Table IV): near-zero deltas until both operands");
    println!("reach MX4, where quality falls off a cliff.");
}
