//! Recommendation-model workflow (Tables III & VI): train a DLRM on
//! synthetic CTR logs with MX9, compare against FP32, and quantize the
//! embedding tables for memory-bound inference.
//!
//! ```sh
//! cargo run --release --example recommendation
//! ```

use mx::core::bdr::BdrFormat;
use mx::core::mx::MxTensor;
use mx::models::recsys::{run_recsys, Interaction};
use mx::nn::{QuantConfig, TensorFormat};

fn main() {
    println!("training DLRM on synthetic CTR logs...");
    let fp32 = run_recsys(Interaction::DotProduct, QuantConfig::fp32(), false, 90, 7);
    let mx9 = run_recsys(
        Interaction::DotProduct,
        QuantConfig::uniform(TensorFormat::MX9),
        false,
        90,
        7,
    );
    println!("  FP32: AUC {:.4}  NE {:.4}", fp32.auc, fp32.ne);
    println!(
        "  MX9:  AUC {:.4}  NE {:.4}  (dNE {:+.2}%)",
        mx9.auc,
        mx9.ne,
        100.0 * (mx9.ne - fp32.ne) / fp32.ne
    );

    // Storage story: a production embedding table row in MX6 vs FP32.
    println!("\nembedding-table storage at MX6 (the §V memory optimization):");
    let row: Vec<f32> = (0..256).map(|i| 0.01 * (i as f32 * 0.13).sin()).collect();
    let packed = MxTensor::encode(BdrFormat::MX6, &row);
    println!(
        "  256-dim row: FP32 = {} bytes, MX6 = {} bytes ({:.1}x smaller)",
        256 * 4,
        packed.as_bytes().len(),
        (256.0 * 4.0) / packed.as_bytes().len() as f64
    );
    let restored = packed.decode();
    let err: f32 = row
        .iter()
        .zip(&restored)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max);
    println!("  max abs reconstruction error: {err:.2e}");
}
