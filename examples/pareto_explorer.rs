//! Explore a custom corner of the BDR design space and see where it lands
//! against the MX formats and the Pareto frontier (a small interactive
//! version of Fig. 7).
//!
//! ```sh
//! cargo run --release --example pareto_explorer -- <m> <d2> <k1> <k2>
//! cargo run --release --example pareto_explorer -- 5 2 32 4
//! ```

use mx::core::bdr::BdrFormat;
use mx::core::qsnr::QsnrConfig;
use mx::hw::cost::FormatConfig;
use mx::sweep::eval::{evaluate_all, SweepSettings};
use mx::sweep::pareto::{db_below_frontier, pareto_indices};

fn main() -> std::process::ExitCode {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (m, d2, k1, k2) = match args.as_slice() {
        [m, d2, k1, k2] => (*m as u32, *d2 as u32, *k1, *k2),
        _ => {
            println!("usage: pareto_explorer <m> <d2> <k1> <k2>; using 5 2 32 4");
            (5, 2, 32, 4)
        }
    };
    let custom = match BdrFormat::new(m, 8, d2, k1, k2) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("invalid format: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };

    // A compact comparison space: the MX ladder shape plus the custom point.
    let mut configs: Vec<FormatConfig> = (1..=8)
        .map(|m| FormatConfig::Bdr(BdrFormat::new(m, 8, 1, 16, 2).expect("valid")))
        .collect();
    configs.push(FormatConfig::Bdr(custom));
    let settings = SweepSettings {
        qsnr: QsnrConfig {
            vectors: 128,
            vector_len: 1024,
            seed: 5,
        },
        ..SweepSettings::default()
    };
    let points = evaluate_all(&configs, &settings);
    let frontier = pareto_indices(&points);
    println!(
        "{:<28} {:>9} {:>9} {:>14}",
        "format", "QSNR dB", "product", "status"
    );
    for (i, p) in points.iter().enumerate() {
        let status = if frontier.contains(&i) {
            "frontier".to_string()
        } else {
            format!("{:.1} dB below", db_below_frontier(&points, p))
        };
        println!(
            "{:<28} {:>9.1} {:>9.3} {:>14}",
            p.label, p.qsnr_db, p.product, status
        );
    }
    std::process::ExitCode::SUCCESS
}
