//! Quickstart: quantize a tensor into the MX formats, inspect fidelity and
//! storage, and run a bit-accurate hardware dot product.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mx::core::bdr::{BdrFormat, BdrQuantizer};
use mx::core::mx::MxTensor;
use mx::core::qsnr::{measure_qsnr, qsnr_db, Distribution, QsnrConfig};
use mx::hw::cost::{CostModel, FormatConfig};
use mx::hw::pipeline::{DotProductPipeline, PipelineConfig};

fn main() {
    // Some activations with an awkward outlier (the case block formats with
    // microexponents are designed for).
    let mut activations: Vec<f32> = (0..64).map(|i| 0.02 * (i as f32 * 0.7).sin()).collect();
    activations[17] = 3.5;

    println!("== 1. Quantize with the Table II formats ==");
    let cost = CostModel::new();
    let fp8_area = cost
        .evaluate(&FormatConfig::ScalarSw {
            format: mx::core::scalar::ScalarFormat::E4M3,
            k1: 10_000,
        })
        .area_norm;
    for fmt in [BdrFormat::MX9, BdrFormat::MX6, BdrFormat::MX4] {
        let q = fmt.quantize_dequantize(&activations);
        let packed = MxTensor::encode(fmt, &activations);
        let report = cost.evaluate(&FormatConfig::Bdr(fmt));
        println!(
            "  {fmt}: QSNR {:5.1} dB | {:3} bytes packed | {:.0}% of an FP8 unit's silicon",
            qsnr_db(&activations, &q),
            packed.as_bytes().len(),
            100.0 * report.area_norm / fp8_area,
        );
    }

    println!("\n== 2. Statistical fidelity over a training-like distribution ==");
    let cfg = QsnrConfig {
        vectors: 128,
        vector_len: 1024,
        seed: 1,
    };
    for fmt in [
        BdrFormat::MX9,
        BdrFormat::MX6,
        BdrFormat::MX4,
        BdrFormat::MSFP12,
    ] {
        let mut q = BdrQuantizer::new(fmt);
        let db = measure_qsnr(&mut q, Distribution::NormalVariableVariance, cfg);
        let bound = mx::core::theory::qsnr_lower_bound_db(fmt, 1024);
        println!("  {fmt}: measured {db:5.1} dB (Theorem 1 floor {bound:5.1} dB)");
    }

    println!("\n== 3. Bit-accurate hardware dot product (Fig. 6 pipeline) ==");
    let engine = DotProductPipeline::new(PipelineConfig::Bdr(BdrFormat::MX9), 64);
    let weights: Vec<f32> = (0..64).map(|i| 0.1 * (i as f32 * 0.3).cos()).collect();
    let hw = engine.dot(&activations, &weights);
    let sw: f64 = BdrFormat::MX9
        .quantize_dequantize(&activations)
        .iter()
        .zip(BdrFormat::MX9.quantize_dequantize(&weights).iter())
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum();
    println!("  pipeline: {hw:.6}  |  quantized software reference: {sw:.6}");
    println!("\nSee DESIGN.md for the experiment index and EXPERIMENTS.md for results.");
}
