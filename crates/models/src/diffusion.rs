//! Denoising diffusion (DDPM) on 2-D Gaussian-mixture point clouds — the
//! Table III image-generation row, with the Fréchet distance between
//! generated and reference clouds standing in for FID (see DESIGN.md §4).
//! Both the conditioned (class-label) and unconditioned variants are
//! implemented.

use crate::data;
use crate::metrics::frechet_distance_2d;
use mx_core::qsnr::standard_normal;
use mx_nn::layers::{Activation, ActivationLayer, Layer, Linear, Sequential};
use mx_nn::loss::mse_loss;
use mx_nn::optim::Adam;
use mx_nn::param::{HasParams, Param};
use mx_nn::qflow::QuantConfig;
use mx_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of diffusion steps (the paper uses 4000 on ImageNet-64; 40
/// suffices for 2-D clouds).
pub const DIFFUSION_STEPS: usize = 40;

/// Epsilon-prediction network: input `(x, t-embedding[, class one-hot])`,
/// output predicted noise.
#[derive(Debug)]
pub struct DiffusionModel {
    net: Sequential,
    conditioned: bool,
    betas: Vec<f32>,
    alphas_cum: Vec<f32>,
}

/// Input feature width: 2 coords + 4 sinusoidal time features + optional 4
/// class bits.
fn input_dim(conditioned: bool) -> usize {
    2 + 4 + if conditioned { 4 } else { 0 }
}

impl DiffusionModel {
    /// Builds the model.
    pub fn new(rng: &mut StdRng, hidden: usize, conditioned: bool, qcfg: QuantConfig) -> Self {
        let d_in = input_dim(conditioned);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(rng, d_in, hidden, true, qcfg)));
        net.push(Box::new(ActivationLayer::new(
            Activation::Gelu,
            qcfg.elementwise,
        )));
        net.push(Box::new(Linear::new(rng, hidden, hidden, true, qcfg)));
        net.push(Box::new(ActivationLayer::new(
            Activation::Gelu,
            qcfg.elementwise,
        )));
        net.push(Box::new(Linear::new(rng, hidden, 2, true, qcfg)));
        // Linear beta schedule.
        let betas: Vec<f32> = (0..DIFFUSION_STEPS)
            .map(|t| 1e-3 + (0.05 - 1e-3) * t as f32 / (DIFFUSION_STEPS - 1) as f32)
            .collect();
        let mut alphas_cum = Vec::with_capacity(DIFFUSION_STEPS);
        let mut prod = 1.0f32;
        for &b in &betas {
            prod *= 1.0 - b;
            alphas_cum.push(prod);
        }
        DiffusionModel {
            net,
            conditioned,
            betas,
            alphas_cum,
        }
    }

    fn features(&self, x: &[f32; 2], t: usize, label: usize) -> Vec<f32> {
        let tf = t as f32 / DIFFUSION_STEPS as f32;
        let mut f = vec![
            x[0],
            x[1],
            (tf * std::f32::consts::TAU).sin(),
            (tf * std::f32::consts::TAU).cos(),
            (tf * 2.0 * std::f32::consts::TAU).sin(),
            tf,
        ];
        if self.conditioned {
            let mut onehot = [0.0f32; 4];
            onehot[label % 4] = 1.0;
            f.extend_from_slice(&onehot);
        }
        f
    }

    /// One epsilon-prediction training step over a batch of points; returns
    /// the MSE loss.
    pub fn train_step(
        &mut self,
        rng: &mut StdRng,
        points: &[[f32; 2]],
        labels: &[usize],
        opt: &mut Adam,
    ) -> f64 {
        let b = points.len();
        let mut inputs = Vec::new();
        let mut noise_target = Vec::with_capacity(b * 2);
        for (p, &label) in points.iter().zip(labels.iter()) {
            let t = rng.gen_range(0..DIFFUSION_STEPS);
            let ac = self.alphas_cum[t];
            let eps = [standard_normal(rng), standard_normal(rng)];
            let noisy = [
                ac.sqrt() * p[0] + (1.0 - ac).sqrt() * eps[0],
                ac.sqrt() * p[1] + (1.0 - ac).sqrt() * eps[1],
            ];
            inputs.extend_from_slice(&self.features(&noisy, t, label));
            noise_target.extend_from_slice(&eps);
        }
        let d_in = input_dim(self.conditioned);
        let x = Tensor::from_vec(inputs, &[b, d_in]);
        let target = Tensor::from_vec(noise_target, &[b, 2]);
        self.net.zero_grads();
        let pred = self.net.forward(&x, true);
        let (loss, grad) = mse_loss(&pred, &target);
        self.net.backward(&grad);
        opt.step(&mut self.net);
        loss
    }

    /// Ancestral sampling of `n` points (labels cycled 0..4 when
    /// conditioned).
    pub fn sample(&mut self, rng: &mut StdRng, n: usize) -> Vec<[f32; 2]> {
        let d_in = input_dim(self.conditioned);
        (0..n)
            .map(|i| {
                let label = i % 4;
                let mut x = [standard_normal(rng) * 2.5, standard_normal(rng) * 2.5];
                for t in (0..DIFFUSION_STEPS).rev() {
                    let feat = Tensor::from_vec(self.features(&x, t, label), &[1, d_in]);
                    let eps = self.net.forward(&feat, false);
                    let beta = self.betas[t];
                    let alpha = 1.0 - beta;
                    let ac = self.alphas_cum[t];
                    for (d, xd) in x.iter_mut().enumerate() {
                        *xd = (*xd - beta / (1.0 - ac).sqrt() * eps.data()[d]) / alpha.sqrt();
                        if t > 0 {
                            *xd += beta.sqrt() * standard_normal(rng);
                        }
                    }
                }
                x
            })
            .collect()
    }

    /// Switches the quantization config on the epsilon network.
    pub fn set_quant(&mut self, qcfg: QuantConfig) {
        self.net.set_quant(qcfg);
    }
}

impl HasParams for DiffusionModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f);
    }
}

/// Diffusion benchmark result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffusionResult {
    /// Fréchet distance between generated and reference clouds (lower is
    /// better; the FID stand-in).
    pub frechet: f64,
    /// Final epsilon-prediction loss.
    pub final_loss: f64,
}

/// Trains a DDPM and scores generated samples against a reference cloud.
pub fn run_diffusion(
    conditioned: bool,
    qcfg: QuantConfig,
    iters: usize,
    seed: u64,
) -> DiffusionResult {
    let (points, labels) = data::gaussian_mixture_2d(seed, 512);
    let mut rng = StdRng::seed_from_u64(seed ^ 2);
    let mut model = DiffusionModel::new(&mut rng, 48, conditioned, qcfg);
    let mut opt = Adam::new(2e-3);
    let mut loss = f64::NAN;
    let batch = 64;
    for i in 0..iters {
        let start = (i * batch) % (points.len() - batch + 1);
        loss = model.train_step(
            &mut rng,
            &points[start..start + batch],
            &labels[start..start + batch],
            &mut opt,
        );
    }
    let samples = model.sample(&mut rng, 256);
    let (reference, _) = data::gaussian_mixture_2d(seed ^ 3, 256);
    DiffusionResult {
        frechet: frechet_distance_2d(&samples, &reference),
        final_loss: loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_reduces_epsilon_loss() {
        let (points, labels) = data::gaussian_mixture_2d(1, 256);
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = DiffusionModel::new(&mut rng, 32, false, QuantConfig::fp32());
        let mut opt = Adam::new(2e-3);
        let first = m.train_step(&mut rng, &points[..64], &labels[..64], &mut opt);
        let mut last = f64::NAN;
        for i in 0..120 {
            let s = (i * 64) % 192;
            last = m.train_step(&mut rng, &points[s..s + 64], &labels[s..s + 64], &mut opt);
        }
        assert!(last < first, "no learning: {first} -> {last}");
    }

    #[test]
    fn trained_model_beats_untrained_on_frechet() {
        let trained = run_diffusion(false, QuantConfig::fp32(), 300, 7);
        let untrained = run_diffusion(false, QuantConfig::fp32(), 1, 7);
        assert!(
            trained.frechet < untrained.frechet,
            "trained FD {:.2} vs untrained {:.2}",
            trained.frechet,
            untrained.frechet
        );
    }

    #[test]
    fn sample_count_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = DiffusionModel::new(&mut rng, 16, true, QuantConfig::fp32());
        let samples = m.sample(&mut rng, 10);
        assert_eq!(samples.len(), 10);
        assert!(samples.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
    }
}
