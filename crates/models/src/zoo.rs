//! Uniform batched-inference entry point over the model zoo.
//!
//! Every servable model implements [`BatchModel`]: a per-request
//! input/output length contract (fixed, or variable up to a native maximum
//! for sequence models), a direct-cast [`BatchModel::set_quant`] switch, and
//! one [`BatchModel::forward_batch`] call that runs `batch` concatenated
//! requests in a single forward pass. The contract that makes batching
//! useful for serving is **row independence**: every tensor op in the zoo's
//! inference path (quantized GEMMs, layer norm, softmax, per-sequence
//! attention, per-image convolution) computes each request's outputs from
//! that request's inputs alone, so a coalesced batch is *bit-identical* to
//! running the requests one at a time — batching is semantically invisible
//! and purely a throughput lever (the weight-side code planes and the
//! per-call A-side packing are amortized across the whole batch).
//! `mx-serve` builds its batcher on exactly this guarantee, and the
//! workspace's `serve_end_to_end` suite asserts it bit for bit.
//!
//! Models are intentionally *inference-only* through this interface
//! (`train = false` internally): no activation caches are retained, so a
//! served model's memory footprint is its weights plus the cached weight
//! planes.

use crate::bert::BertQa;
use crate::data::{IMAGE_SIDE, SHAPE_CLASSES};
use crate::gpt::Gpt;
use crate::vision::{ImageClassifier, TinyMobileNet, TinyResNet, TinyViT};
use mx_nn::layers::{Layer, Linear};
use mx_nn::param::HasParams;
use mx_nn::plan::{CompiledPlan, Loc, PlanError, Planner, Stage};
use mx_nn::qflow::QuantConfig;
use mx_nn::tensor::Tensor;
use rand::rngs::StdRng;

/// Wrapping sum of every parameter tensor's generation counter — the
/// weight-staleness token behind [`BatchModel::plan_token`]. Generations
/// come from a process-global monotone counter, so any optimizer step or
/// in-place weight edit strictly changes the sum: a cached
/// [`CompiledPlan`] is valid exactly while the token it was compiled
/// under still matches.
fn weights_token<M: HasParams + ?Sized>(model: &mut M) -> u64 {
    let mut acc = 0u64;
    model.visit_params(&mut |p| acc = acc.wrapping_add(p.value.generation()));
    acc
}

/// What a model's flattened request payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Token ids (language models: GPT, BERT).
    Tokens,
    /// Raw `f32` features (vision models, dense layers).
    Pixels,
}

/// A borrowed batch payload: `batch × input_len` elements, concatenated
/// request-major.
#[derive(Debug, Clone, Copy)]
pub enum ZooInput<'a> {
    /// Token ids for [`InputKind::Tokens`] models.
    Tokens(&'a [usize]),
    /// Feature values for [`InputKind::Pixels`] models.
    Pixels(&'a [f32]),
}

impl ZooInput<'_> {
    /// Total element count across the batch.
    pub fn len(&self) -> usize {
        match self {
            ZooInput::Tokens(t) => t.len(),
            ZooInput::Pixels(p) => p.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload's kind (must match [`BatchModel::input_kind`]).
    pub fn kind(&self) -> InputKind {
        match self {
            ZooInput::Tokens(_) => InputKind::Tokens,
            ZooInput::Pixels(_) => InputKind::Pixels,
        }
    }
}

/// A zoo model servable through batched inference.
///
/// `Send` is a supertrait because serving moves models into worker threads;
/// every implementor below is a plain bundle of tensors, so the bound is
/// free.
pub trait BatchModel: Send {
    /// Payload kind a request must carry.
    fn input_kind(&self) -> InputKind;

    /// Native (maximum) flattened elements per request. Fixed-length
    /// models accept exactly this many; [`BatchModel::variable_len`]
    /// models accept any uniform length `1..=input_len()` per batch.
    fn input_len(&self) -> usize;

    /// Flattened `f32` outputs for one request of `len` input elements —
    /// the per-bucket output contract. Fixed-length models are only ever
    /// asked at `len == input_len()` (the degenerate single-bucket case);
    /// variable-length models must answer for every accepted length
    /// (e.g. `len · vocab` per-token logits).
    fn output_len(&self, len: usize) -> usize;

    /// Variable-length contract: when `true`, [`BatchModel::forward_batch`]
    /// accepts any uniform per-request length `1..=input_len()` (the
    /// server buckets mixed-length traffic and pads each request up to its
    /// bucket's length). When `false` (the default), only the native
    /// `input_len()` is served.
    fn variable_len(&self) -> bool {
        false
    }

    /// Switches every tensor op to `cfg` (the paper's direct cast) — this
    /// is how per-request format selection reaches a shared model. Weights
    /// are untouched, so cached weight planes stay valid per format.
    fn set_quant(&mut self, cfg: QuantConfig);

    /// Runs `batch` concatenated requests of one uniform per-request
    /// length `len = input.len() / batch` (`len == input_len()` unless
    /// [`BatchModel::variable_len`]), returning `batch · output_len(len)`
    /// floats, request-major. Output row `i` is bit-identical to running
    /// request `i` alone with `batch = 1` at the same length.
    ///
    /// # Panics
    ///
    /// Panics if the payload kind or length disagrees with the model.
    fn forward_batch(&mut self, input: ZooInput<'_>, batch: usize) -> Vec<f32>;

    /// Lowers this model's inference forward into a [`CompiledPlan`] for a
    /// `(cfg, batch, len)` bucket, with all weight prepacking, format
    /// gating, and scratch layout done at compile time. `len` is the
    /// per-request input length (always `input_len()` for fixed-length
    /// models). The plan's output is bit-identical to
    /// [`BatchModel::forward_batch`] after `set_quant(cfg)` — until a
    /// weight mutation changes [`BatchModel::plan_token`]. The default is
    /// a typed refusal so unplannable models fall back to the dynamic
    /// path.
    fn compile_plan(
        &self,
        _cfg: QuantConfig,
        _batch: usize,
        _len: usize,
    ) -> Result<CompiledPlan, PlanError> {
        Err(PlanError::Unsupported("no plan lowering for this model"))
    }

    /// Weight-staleness token: changes whenever any parameter tensor is
    /// mutated (optimizer step, in-place edit). Plan caches key their
    /// entries on this to invalidate stale plans.
    fn plan_token(&mut self) -> u64 {
        0
    }
}

/// Validates a payload against the model's contract, returning the pixels.
fn expect_pixels<'a>(input: ZooInput<'a>, batch: usize, per: usize) -> &'a [f32] {
    let ZooInput::Pixels(px) = input else {
        panic!("model expects pixel input, got {:?}", input.kind());
    };
    assert_eq!(
        px.len(),
        batch * per,
        "batch of {batch} needs {per} features each"
    );
    px
}

impl BatchModel for Gpt {
    fn input_kind(&self) -> InputKind {
        InputKind::Tokens
    }

    /// One full context window of tokens per request (maximum; shorter
    /// sequences are served through the variable-length contract).
    fn input_len(&self) -> usize {
        self.config().seq_len
    }

    /// Per-token logits over the vocabulary.
    fn output_len(&self, len: usize) -> usize {
        len * self.config().vocab
    }

    /// Positions are indexed `0..len`, so any prefix length of the context
    /// window is a valid request.
    fn variable_len(&self) -> bool {
        true
    }

    fn set_quant(&mut self, cfg: QuantConfig) {
        Gpt::set_quant(self, cfg);
    }

    fn forward_batch(&mut self, input: ZooInput<'_>, batch: usize) -> Vec<f32> {
        let ZooInput::Tokens(tokens) = input else {
            panic!("model expects token input, got {:?}", input.kind());
        };
        assert!(
            batch > 0 && tokens.len() % batch == 0,
            "batch of {batch} over {} tokens has no uniform length",
            tokens.len()
        );
        assert!(
            tokens.len() / batch <= self.input_len(),
            "sequence too long"
        );
        self.forward(tokens, batch, false).into_data()
    }

    fn compile_plan(
        &self,
        cfg: QuantConfig,
        batch: usize,
        len: usize,
    ) -> Result<CompiledPlan, PlanError> {
        Gpt::compile_plan(self, cfg, batch, len)
    }

    fn plan_token(&mut self) -> u64 {
        weights_token(self)
    }
}

impl BatchModel for BertQa {
    fn input_kind(&self) -> InputKind {
        InputKind::Tokens
    }

    fn input_len(&self) -> usize {
        self.seq_len()
    }

    /// Per-token start/end span logits.
    fn output_len(&self, len: usize) -> usize {
        len * 2
    }

    /// Any prefix length of the encoder window is a valid request.
    fn variable_len(&self) -> bool {
        true
    }

    fn set_quant(&mut self, cfg: QuantConfig) {
        BertQa::set_quant(self, cfg);
    }

    fn forward_batch(&mut self, input: ZooInput<'_>, batch: usize) -> Vec<f32> {
        let ZooInput::Tokens(tokens) = input else {
            panic!("model expects token input, got {:?}", input.kind());
        };
        assert!(
            batch > 0 && tokens.len() % batch == 0,
            "batch of {batch} over {} tokens has no uniform length",
            tokens.len()
        );
        assert!(
            tokens.len() / batch <= self.input_len(),
            "sequence too long"
        );
        self.span_logits(tokens, batch, false).into_data()
    }

    fn compile_plan(
        &self,
        cfg: QuantConfig,
        batch: usize,
        len: usize,
    ) -> Result<CompiledPlan, PlanError> {
        BertQa::compile_plan(self, cfg, batch, len)
    }

    fn plan_token(&mut self) -> u64 {
        weights_token(self)
    }
}

/// The three image classifiers share one implementation: a request is one
/// `IMAGE_SIDE × IMAGE_SIDE` image, the response its class logits.
macro_rules! impl_batch_model_for_classifier {
    ($($model:ty),+ $(,)?) => {$(
        impl BatchModel for $model {
            fn input_kind(&self) -> InputKind {
                InputKind::Pixels
            }

            fn input_len(&self) -> usize {
                IMAGE_SIDE * IMAGE_SIDE
            }

            fn output_len(&self, _len: usize) -> usize {
                SHAPE_CLASSES
            }

            fn set_quant(&mut self, cfg: QuantConfig) {
                ImageClassifier::set_quant(self, cfg);
            }

            fn forward_batch(&mut self, input: ZooInput<'_>, batch: usize) -> Vec<f32> {
                let px = expect_pixels(input, batch, self.input_len());
                let x = Tensor::from_vec(px.to_vec(), &[batch, 1, IMAGE_SIDE, IMAGE_SIDE]);
                self.logits(&x, false).into_data()
            }

            fn compile_plan(
                &self,
                cfg: QuantConfig,
                batch: usize,
                len: usize,
            ) -> Result<CompiledPlan, PlanError> {
                if len != IMAGE_SIDE * IMAGE_SIDE {
                    return Err(PlanError::Unsupported("classifier input length is fixed"));
                }
                <$model>::compile_plan(self, cfg, batch)
            }

            fn plan_token(&mut self) -> u64 {
                weights_token(self)
            }
        }
    )+};
}

impl_batch_model_for_classifier!(TinyViT, TinyResNet, TinyMobileNet);

/// A single quantized dense layer `[d_in → d_out]` — the GEMM-shaped
/// serving model. Each request is one feature row, so a coalesced batch is
/// exactly one `[batch, d_in] × [d_in, d_out]` quantized product over the
/// shared prepacked weight plane; the `serving_throughput` bench uses it to
/// isolate the batching win at GPT-ish layer shapes.
#[derive(Debug)]
pub struct DenseGemm {
    layer: Linear,
}

impl DenseGemm {
    /// Builds the layer with Xavier-initialized weights (no bias, so the
    /// output is the bare GEMM).
    pub fn new(rng: &mut StdRng, d_in: usize, d_out: usize, cfg: QuantConfig) -> Self {
        DenseGemm {
            layer: Linear::new(rng, d_in, d_out, false, cfg),
        }
    }

    /// Replaces the weight matrix (e.g. with a fixed test pattern).
    pub fn set_weights(&mut self, w: Tensor) {
        assert_eq!(
            w.shape(),
            self.layer.w.value.shape(),
            "weight shape mismatch"
        );
        self.layer.w.value = w;
    }
}

impl BatchModel for DenseGemm {
    fn input_kind(&self) -> InputKind {
        InputKind::Pixels
    }

    fn input_len(&self) -> usize {
        self.layer.d_in()
    }

    fn output_len(&self, _len: usize) -> usize {
        self.layer.d_out()
    }

    fn set_quant(&mut self, cfg: QuantConfig) {
        Layer::set_quant(&mut self.layer, cfg);
    }

    fn forward_batch(&mut self, input: ZooInput<'_>, batch: usize) -> Vec<f32> {
        let px = expect_pixels(input, batch, self.input_len());
        let x = Tensor::from_vec(px.to_vec(), &[batch, self.input_len()]);
        self.layer.forward(&x, false).into_data()
    }

    fn compile_plan(
        &self,
        cfg: QuantConfig,
        batch: usize,
        len: usize,
    ) -> Result<CompiledPlan, PlanError> {
        if batch == 0 || len != self.layer.d_in() {
            return Err(PlanError::Unsupported("dense layer input length is fixed"));
        }
        let mut p = Planner::new();
        p.pixels_input(batch * len);
        let mut s = Stage::new(batch * len, batch * self.layer.d_out());
        s.gemm(&self.layer, Loc::In, Loc::Out, batch, cfg, None)?;
        p.push_stage(s);
        p.finish()
    }

    fn plan_token(&mut self) -> u64 {
        weights_token(&mut self.layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use mx_nn::format::TensorFormat;
    use rand::SeedableRng;

    /// Runs `batch` requests of `per_in` elements each through one coalesced
    /// forward and one-at-a-time, asserting the outputs are bit-identical —
    /// the serving contract.
    fn assert_batch_equals_serial<M: BatchModel>(
        model: &mut M,
        inputs: ZooInput<'_>,
        batch: usize,
        per_in: usize,
    ) {
        let per_out = model.output_len(per_in);
        let batched = model.forward_batch(inputs, batch);
        assert_eq!(batched.len(), batch * per_out);
        for r in 0..batch {
            let alone = match inputs {
                ZooInput::Tokens(t) => {
                    model.forward_batch(ZooInput::Tokens(&t[r * per_in..(r + 1) * per_in]), 1)
                }
                ZooInput::Pixels(p) => {
                    model.forward_batch(ZooInput::Pixels(&p[r * per_in..(r + 1) * per_in]), 1)
                }
            };
            let slice = &batched[r * per_out..(r + 1) * per_out];
            assert!(
                slice
                    .iter()
                    .zip(alone.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "request {r} differs between batched and serial"
            );
        }
    }

    fn mx6() -> QuantConfig {
        QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6)
    }

    #[test]
    fn gpt_batched_forward_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = Gpt::new(&mut rng, crate::gpt::GptConfig::tiny(), mx6());
        let per = BatchModel::input_len(&m);
        let tokens: Vec<usize> = (0..3 * per).map(|i| i % data::LM_VOCAB).collect();
        assert_batch_equals_serial(&mut m, ZooInput::Tokens(&tokens), 3, per);
        assert_eq!(m.input_kind(), InputKind::Tokens);
    }

    #[test]
    fn gpt_variable_length_batches_are_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut m = Gpt::new(&mut rng, crate::gpt::GptConfig::tiny(), mx6());
        assert!(BatchModel::variable_len(&m));
        // A bucket shorter than the native context window: same contract.
        let per = BatchModel::input_len(&m) / 2;
        assert_eq!(BatchModel::output_len(&m, per), per * m.config().vocab);
        let tokens: Vec<usize> = (0..3 * per).map(|i| (i * 5) % data::LM_VOCAB).collect();
        assert_batch_equals_serial(&mut m, ZooInput::Tokens(&tokens), 3, per);
    }

    #[test]
    fn bert_variable_length_batches_are_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut m = BertQa::new(&mut rng, 16, 1, 12, mx6());
        assert!(BatchModel::variable_len(&m));
        let per = 7;
        assert_eq!(BatchModel::output_len(&m, per), per * 2);
        let tokens: Vec<usize> = (0..2 * per).map(|i| (i * 3) % data::QA_VOCAB).collect();
        assert_batch_equals_serial(&mut m, ZooInput::Tokens(&tokens), 2, per);
    }

    #[test]
    fn bert_batched_forward_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut m = BertQa::new(&mut rng, 16, 1, 12, mx6());
        let per = BatchModel::input_len(&m);
        assert_eq!(per, 12);
        let tokens: Vec<usize> = (0..2 * per).map(|i| (i * 7) % data::QA_VOCAB).collect();
        assert_batch_equals_serial(&mut m, ZooInput::Tokens(&tokens), 2, per);
    }

    #[test]
    fn vision_batched_forward_is_bit_identical_to_serial() {
        let images = data::shape_images(5, 3);
        let px: Vec<f32> = images.iter().flat_map(|im| im.pixels.clone()).collect();
        let mut rng = StdRng::seed_from_u64(13);
        let mut vit = TinyViT::new(&mut rng, 16, 1, mx6());
        let per = BatchModel::input_len(&vit);
        assert_batch_equals_serial(&mut vit, ZooInput::Pixels(&px), 3, per);
        let mut resnet = TinyResNet::new(&mut rng, 4, 1, mx6());
        assert_batch_equals_serial(&mut resnet, ZooInput::Pixels(&px), 3, per);
        let mut mobile = TinyMobileNet::new(&mut rng, 4, 1, mx6());
        assert_batch_equals_serial(&mut mobile, ZooInput::Pixels(&px), 3, per);
    }

    #[test]
    fn dense_gemm_batched_forward_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut m = DenseGemm::new(&mut rng, 64, 32, mx6());
        let px: Vec<f32> = (0..4 * 64).map(|i| (i as f32 * 0.17).sin()).collect();
        assert_batch_equals_serial(&mut m, ZooInput::Pixels(&px), 4, 64);
        assert_eq!((m.input_len(), m.output_len(64)), (64, 32));
        assert!(!BatchModel::variable_len(&m));
    }

    #[test]
    fn set_quant_switches_formats_in_place() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut m = DenseGemm::new(&mut rng, 32, 8, QuantConfig::fp32());
        let px: Vec<f32> = (0..32).map(|i| (i as f32 * 0.23).cos()).collect();
        let fp32 = m.forward_batch(ZooInput::Pixels(&px), 1);
        BatchModel::set_quant(&mut m, mx6());
        let q = m.forward_batch(ZooInput::Pixels(&px), 1);
        assert_ne!(fp32, q, "direct cast must change the output");
        BatchModel::set_quant(&mut m, QuantConfig::fp32());
        assert_eq!(m.forward_batch(ZooInput::Pixels(&px), 1), fp32);
    }

    #[test]
    #[should_panic(expected = "expects pixel input")]
    fn wrong_kind_panics() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut m = DenseGemm::new(&mut rng, 8, 4, QuantConfig::fp32());
        let _ = m.forward_batch(ZooInput::Tokens(&[0; 8]), 1);
    }
}
