//! Speech recognition stand-in (the Table III Wav2Vec row): a GRU frame
//! classifier over noisy "phoneme" frames, decoded by collapsing repeated
//! predictions, scored with word error rate.

use crate::data::{self, Utterance, SPEECH_DIM, SPEECH_SYMBOLS};
use crate::metrics::word_error_rate;
use mx_nn::layers::{Layer, Linear};
use mx_nn::loss::softmax_cross_entropy;
use mx_nn::optim::Adam;
use mx_nn::param::{HasParams, Param};
use mx_nn::qflow::QuantConfig;
use mx_nn::rnn::Gru;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// GRU acoustic model: frames → per-frame symbol logits.
#[derive(Debug)]
pub struct SpeechModel {
    gru: Gru,
    head: Linear,
    hidden: usize,
}

impl SpeechModel {
    /// Builds the model.
    pub fn new(rng: &mut StdRng, hidden: usize, qcfg: QuantConfig) -> Self {
        SpeechModel {
            gru: Gru::new(rng, SPEECH_DIM, hidden, qcfg),
            head: Linear::new(rng, hidden, SPEECH_SYMBOLS, true, qcfg),
            hidden,
        }
    }

    /// Switches the quantization config.
    pub fn set_quant(&mut self, qcfg: QuantConfig) {
        self.gru.set_quant(qcfg);
        self.head.set_quant(qcfg);
    }

    /// Per-frame frame labels: the symbol active at each frame (derived by
    /// aligning the utterance generator's repetition structure is not
    /// available, so training uses per-frame nearest-template targets passed
    /// in by the caller).
    pub fn train_step(&mut self, utt: &Utterance, frame_labels: &[usize], opt: &mut Adam) -> f64 {
        self.zero_grads();
        let t = utt.frames.shape()[1];
        let hs = self.gru.forward_sequence(&utt.frames, true);
        let h2d = hs.reshape(&[t, self.hidden]);
        let logits = self.head.forward(&h2d, true);
        let (loss, grad) = softmax_cross_entropy(&logits, frame_labels);
        let g = self.head.backward(&grad);
        let _ = self.gru.backward_sequence(&g.reshape(&[1, t, self.hidden]));
        self.clip_grad_norm(5.0);
        opt.step(self);
        loss
    }

    /// Greedy per-frame decode followed by repeat collapse.
    pub fn transcribe(&mut self, utt: &Utterance) -> Vec<usize> {
        let t = utt.frames.shape()[1];
        let hs = self.gru.forward_sequence(&utt.frames, false);
        let h2d = hs.reshape(&[t, self.hidden]);
        let logits = self.head.forward(&h2d, false);
        let mut out = Vec::new();
        let mut prev = usize::MAX;
        for f in 0..t {
            let row = &logits.data()[f * SPEECH_SYMBOLS..(f + 1) * SPEECH_SYMBOLS];
            let sym = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty");
            if sym != prev {
                out.push(sym);
                prev = sym;
            }
        }
        out
    }
}

impl HasParams for SpeechModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gru.visit_params(f);
        self.head.visit_params(f);
    }
}

/// Gold per-frame labels (the alignment a CTC loss would recover; the
/// generator exposes it directly — DESIGN.md documents the simplification).
pub fn frame_labels(utt: &Utterance) -> Vec<usize> {
    utt.frame_symbols.clone()
}

/// Speech benchmark result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeechResult {
    /// Word error rate percentage (lower is better).
    pub wer: f64,
}

/// Trains a speech model and reports WER on held-out utterances.
pub fn run_speech(qcfg: QuantConfig, hidden: usize, iters: usize, seed: u64) -> SpeechResult {
    let train_set = data::utterances(seed, 96, 5);
    let test_set = data::utterances(seed ^ 0x5afe, 32, 5);
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    let mut model = SpeechModel::new(&mut rng, hidden, qcfg);
    let mut opt = Adam::new(4e-3);
    for i in 0..iters {
        let utt = &train_set[i % train_set.len()];
        let labels = frame_labels(utt);
        let _ = model.train_step(utt, &labels, &mut opt);
    }
    let mut hyps = Vec::new();
    let mut refs = Vec::new();
    for utt in &test_set {
        hyps.push(model.transcribe(utt));
        refs.push(utt.transcript.clone());
    }
    SpeechResult {
        wer: word_error_rate(&hyps, &refs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_nn::TensorFormat;

    #[test]
    fn speech_model_learns() {
        let r = run_speech(QuantConfig::fp32(), 24, 300, 3);
        // Untrained WER is near 100%+; trained should be far lower.
        assert!(r.wer < 60.0, "WER too high: {:.1}", r.wer);
    }

    #[test]
    fn mx9_speech_tracks_fp32() {
        let base = run_speech(QuantConfig::fp32(), 16, 150, 5);
        let mx9 = run_speech(QuantConfig::uniform(TensorFormat::MX9), 16, 150, 5);
        assert!(
            (base.wer - mx9.wer).abs() < 20.0,
            "MX9 WER {:.1} vs FP32 {:.1}",
            mx9.wer,
            base.wer
        );
    }

    #[test]
    fn transcribe_collapses_repeats() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = SpeechModel::new(&mut rng, 8, QuantConfig::fp32());
        let utt = &data::utterances(2, 1, 4)[0];
        let out = m.transcribe(utt);
        for w in out.windows(2) {
            assert_ne!(w[0], w[1], "repeats must collapse");
        }
    }
}
