//! Deterministic synthetic datasets standing in for the paper's proprietary
//! or large-scale corpora (see DESIGN.md §4). Every generator is seeded and
//! reproducible, which is what lets FP32 and MX runs start from identical
//! data — the paper's "exact same seed, container, and node" methodology.

use mx_core::qsnr::standard_normal;
use mx_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Vocabulary size of the synthetic character-level corpus.
pub const LM_VOCAB: usize = 24;

/// Generates a character-level corpus from a sparse random Markov chain —
/// enough structure for a language model to have something to learn, with
/// entropy controlled by `temperature` (lower = more predictable).
pub fn markov_corpus(seed: u64, len: usize, temperature: f32) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random sparse transition logits: each state prefers ~4 successors.
    let mut logits = vec![f32::NEG_INFINITY; LM_VOCAB * LM_VOCAB];
    for s in 0..LM_VOCAB {
        for _ in 0..4 {
            let t = rng.gen_range(0..LM_VOCAB);
            logits[s * LM_VOCAB + t] = rng.gen_range(0.0f32..2.0) / temperature;
        }
        // Guarantee at least one successor.
        let t = rng.gen_range(0..LM_VOCAB);
        logits[s * LM_VOCAB + t] = 1.0 / temperature;
    }
    let mut corpus = Vec::with_capacity(len);
    let mut state = 0usize;
    for _ in 0..len {
        let row = &logits[state * LM_VOCAB..(state + 1) * LM_VOCAB];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let probs: Vec<f32> = row.iter().map(|&l| (l - max).exp()).collect();
        let total: f32 = probs.iter().sum();
        let mut u = rng.gen_range(0.0..total);
        let mut next = 0;
        for (i, p) in probs.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                next = i;
                break;
            }
        }
        corpus.push(next);
        state = next;
    }
    corpus
}

/// Samples `(inputs, targets)` next-token batches from a corpus:
/// `inputs[b] = corpus[o..o+t]`, `targets[b] = corpus[o+1..o+t+1]`.
pub fn lm_batch(
    rng: &mut StdRng,
    corpus: &[usize],
    batch: usize,
    seq: usize,
) -> (Vec<usize>, Vec<usize>) {
    let mut inputs = Vec::with_capacity(batch * seq);
    let mut targets = Vec::with_capacity(batch * seq);
    for _ in 0..batch {
        let o = rng.gen_range(0..corpus.len() - seq - 1);
        inputs.extend_from_slice(&corpus[o..o + seq]);
        targets.extend_from_slice(&corpus[o + 1..o + seq + 1]);
    }
    (inputs, targets)
}

/// A translation pair: source and target token sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslationPair {
    /// Source sequence.
    pub source: Vec<usize>,
    /// Target sequence (deterministic transform of the source).
    pub target: Vec<usize>,
}

/// Vocabulary size of the synthetic translation task (shared by source and
/// target sides).
pub const TRANSLATE_VOCAB: usize = 16;

/// Generates source/target pairs for a learnable "translation": the target
/// is the reversed source passed through a fixed substitution cipher.
pub fn translation_pairs(seed: u64, n: usize, len: usize) -> Vec<TranslationPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Fixed permutation as the "lexicon".
    let mut perm: Vec<usize> = (0..TRANSLATE_VOCAB).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    (0..n)
        .map(|_| {
            let source: Vec<usize> = (0..len)
                .map(|_| rng.gen_range(0..TRANSLATE_VOCAB))
                .collect();
            let target: Vec<usize> = source.iter().rev().map(|&s| perm[s]).collect();
            TranslationPair { source, target }
        })
        .collect()
}

/// Labeled grayscale image for the classification tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledImage {
    /// Pixels, `side × side`, row-major in `[0, 1]`.
    pub pixels: Vec<f32>,
    /// Class id in `0..SHAPE_CLASSES`.
    pub label: usize,
}

/// Number of shape classes.
pub const SHAPE_CLASSES: usize = 4;
/// Image side length.
pub const IMAGE_SIDE: usize = 12;

/// Procedural "shapes" image dataset: filled square, cross, diamond, and
/// horizontal stripes, with random offsets and pixel noise.
pub fn shape_images(seed: u64, n: usize) -> Vec<LabeledImage> {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = IMAGE_SIDE;
    (0..n)
        .map(|i| {
            let label = i % SHAPE_CLASSES;
            let mut px = vec![0.0f32; s * s];
            let cx = rng.gen_range(4..s - 4) as isize;
            let cy = rng.gen_range(4..s - 4) as isize;
            let r = rng.gen_range(2..4) as isize;
            for y in 0..s as isize {
                for x in 0..s as isize {
                    let dx = (x - cx).abs();
                    let dy = (y - cy).abs();
                    let on = match label {
                        0 => dx <= r && dy <= r, // square
                        1 => dx <= 1 || dy <= 1, // cross through centre
                        2 => dx + dy <= r + 1,   // diamond
                        _ => y % 3 == 0,         // stripes
                    };
                    if on {
                        px[(y * s as isize + x) as usize] = 1.0;
                    }
                }
            }
            for p in px.iter_mut() {
                *p = (*p + 0.15 * standard_normal(&mut rng)).clamp(0.0, 1.0);
            }
            LabeledImage { pixels: px, label }
        })
        .collect()
}

/// Packs images into a `[n, 1, side, side]` tensor plus labels.
pub fn images_to_tensor(images: &[LabeledImage]) -> (Tensor, Vec<usize>) {
    let s = IMAGE_SIDE;
    let mut data = Vec::with_capacity(images.len() * s * s);
    let mut labels = Vec::with_capacity(images.len());
    for im in images {
        data.extend_from_slice(&im.pixels);
        labels.push(im.label);
    }
    (Tensor::from_vec(data, &[images.len(), 1, s, s]), labels)
}

/// One synthetic click-through record.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrRecord {
    /// Categorical feature ids, one per field.
    pub categorical: Vec<usize>,
    /// Dense features.
    pub dense: Vec<f32>,
    /// Click label.
    pub clicked: bool,
}

/// Number of categorical fields in the synthetic CTR task.
pub const CTR_FIELDS: usize = 6;
/// Cardinality of each categorical field.
pub const CTR_CARDINALITY: usize = 40;
/// Number of dense features.
pub const CTR_DENSE: usize = 4;

/// Generates CTR logs with a planted nonlinear click model: certain field
/// co-occurrences and a dense interaction drive the click probability, and
/// field values follow a Zipf-ish skew (as production categorical data
/// does).
pub fn ctr_logs(seed: u64, n: usize) -> Vec<CtrRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Planted pairwise affinities between fields 0/1 and 2/3.
    let mut affinity = vec![0.0f32; CTR_CARDINALITY * CTR_CARDINALITY];
    for a in affinity.iter_mut() {
        *a = 0.6 * standard_normal(&mut rng);
    }
    (0..n)
        .map(|_| {
            let categorical: Vec<usize> = (0..CTR_FIELDS)
                .map(|_| {
                    // Zipf-ish skew via squaring a uniform draw.
                    let u: f32 = rng.gen_range(0.0f32..1.0);
                    ((u * u) * CTR_CARDINALITY as f32) as usize % CTR_CARDINALITY
                })
                .collect();
            let dense: Vec<f32> = (0..CTR_DENSE).map(|_| standard_normal(&mut rng)).collect();
            let logit = affinity[categorical[0] * CTR_CARDINALITY + categorical[1]]
                + affinity[categorical[2] * CTR_CARDINALITY + categorical[3]]
                + 0.8 * dense[0] * dense[1]
                + 0.4 * dense[2]
                - 0.5;
            let p = 1.0 / (1.0 + (-logit).exp());
            CtrRecord {
                categorical,
                dense,
                clicked: rng.gen_range(0.0f32..1.0) < p,
            }
        })
        .collect()
}

/// Samples `n` points from a fixed 4-component 2-D Gaussian mixture (the
/// diffusion benchmark's data distribution).
pub fn gaussian_mixture_2d(seed: u64, n: usize) -> (Vec<[f32; 2]>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = [[-2.0f32, -2.0], [2.0, -2.0], [-2.0, 2.0], [2.0, 2.0]];
    let mut pts = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % centers.len();
        let [cx, cy] = centers[c];
        pts.push([
            cx + 0.35 * standard_normal(&mut rng),
            cy + 0.35 * standard_normal(&mut rng),
        ]);
        labels.push(c);
    }
    (pts, labels)
}

/// A synthetic extractive-QA example: a token "passage" containing one
/// marked answer span that a question token points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QaExample {
    /// Token sequence (question token first, then the passage).
    pub tokens: Vec<usize>,
    /// Answer span start (inclusive), indexing into `tokens`.
    pub start: usize,
    /// Answer span end (inclusive).
    pub end: usize,
}

/// Number of distinct question keys in the QA task.
pub const QA_KEYS: usize = 5;
/// Total QA vocabulary size: keys + 2 value tokens per key + filler.
pub const QA_VOCAB: usize = QA_KEYS + 2 * QA_KEYS + 9;

/// First filler token id.
const QA_FILLER: usize = QA_KEYS + 2 * QA_KEYS;

/// Generates QA examples: the passage embeds one keyed span per key, of the
/// form `key-marker value+`, where each key has its own pair of value
/// tokens; the question token (position 0) selects which span is the
/// answer.
pub fn qa_examples(seed: u64, n: usize, passage_len: usize) -> Vec<QaExample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let q = rng.gen_range(0..QA_KEYS);
            let mut tokens = vec![q];
            let mut spans = Vec::new();
            // Lay out all keys in random order with filler between them.
            let mut keys: Vec<usize> = (0..QA_KEYS).collect();
            for i in (1..keys.len()).rev() {
                let j = rng.gen_range(0..=i);
                keys.swap(i, j);
            }
            for &key in &keys {
                let filler = rng.gen_range(0..3);
                for _ in 0..filler {
                    tokens.push(QA_FILLER + rng.gen_range(0..QA_VOCAB - QA_FILLER));
                }
                tokens.push(key); // marker
                let span_len = rng.gen_range(1..3);
                let start = tokens.len();
                for _ in 0..span_len {
                    // Key-specific value tokens.
                    tokens.push(QA_KEYS + 2 * key + rng.gen_range(0..2usize));
                }
                spans.push((key, start, start + span_len - 1));
            }
            while tokens.len() < passage_len {
                tokens.push(QA_FILLER + rng.gen_range(0..QA_VOCAB - QA_FILLER));
            }
            assert!(
                tokens.len() == passage_len,
                "passage_len too short for the layout"
            );
            let (_, s, e) = spans
                .iter()
                .find(|(k, _, _)| *k == q)
                .copied()
                .expect("span exists");
            QaExample {
                tokens,
                start: s,
                end: e,
            }
        })
        .collect()
}

/// A speech-like utterance: noisy frame vectors with repeated frames per
/// symbol (variable "speaking rate"), plus the clean symbol transcript.
#[derive(Debug, Clone)]
pub struct Utterance {
    /// Frames, `[t, SPEECH_DIM]`.
    pub frames: Tensor,
    /// Ground-truth symbol sequence (before repetition).
    pub transcript: Vec<usize>,
    /// Gold per-frame symbol (the alignment a CTC loss would learn; exposed
    /// directly as a documented simplification).
    pub frame_symbols: Vec<usize>,
}

/// Number of distinct "phoneme" symbols.
pub const SPEECH_SYMBOLS: usize = 8;
/// Frame feature dimension.
pub const SPEECH_DIM: usize = 12;

/// Generates utterances: each transcript symbol emits 1–3 noisy frames of a
/// symbol-specific template (so a frame classifier + repeat-collapse decoder
/// can recover the transcript).
///
/// The templates are the "acoustics" of the synthetic language and are fixed
/// globally (independent of `seed`), so train and held-out utterances share
/// them — only transcripts, rates, and noise vary with the seed.
pub fn utterances(seed: u64, n: usize, transcript_len: usize) -> Vec<Utterance> {
    let mut template_rng = StdRng::seed_from_u64(0x7e3a_11ce);
    let templates: Vec<Vec<f32>> = (0..SPEECH_SYMBOLS)
        .map(|_| {
            (0..SPEECH_DIM)
                .map(|_| 1.2 * standard_normal(&mut template_rng))
                .collect()
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut transcript = Vec::with_capacity(transcript_len);
            let mut prev = usize::MAX;
            for _ in 0..transcript_len {
                // No immediate repeats, so collapse decoding is well-posed.
                let mut sym = rng.gen_range(0..SPEECH_SYMBOLS);
                while sym == prev {
                    sym = rng.gen_range(0..SPEECH_SYMBOLS);
                }
                transcript.push(sym);
                prev = sym;
            }
            let mut frames = Vec::new();
            let mut frame_symbols = Vec::new();
            let mut t = 0;
            for &sym in &transcript {
                let reps = rng.gen_range(1..=3);
                for _ in 0..reps {
                    for &f in templates[sym].iter().take(SPEECH_DIM) {
                        frames.push(f + 0.4 * standard_normal(&mut rng));
                    }
                    frame_symbols.push(sym);
                    t += 1;
                }
            }
            Utterance {
                frames: Tensor::from_vec(frames, &[1, t, SPEECH_DIM]),
                transcript,
                frame_symbols,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markov_corpus_is_deterministic_and_structured() {
        let a = markov_corpus(1, 2000, 0.5);
        let b = markov_corpus(1, 2000, 0.5);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t < LM_VOCAB));
        // Structure: bigram entropy is far below uniform.
        let mut counts = vec![0usize; LM_VOCAB * LM_VOCAB];
        for w in a.windows(2) {
            counts[w[0] * LM_VOCAB + w[1]] += 1;
        }
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(
            nonzero < LM_VOCAB * LM_VOCAB / 2,
            "transitions too dense: {nonzero}"
        );
    }

    #[test]
    fn lm_batches_shift_by_one() {
        let corpus = markov_corpus(2, 500, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let (x, y) = lm_batch(&mut rng, &corpus, 4, 8);
        assert_eq!(x.len(), 32);
        assert_eq!(y.len(), 32);
        // Within each window the target is the next input token.
        for b in 0..4 {
            for t in 0..7 {
                assert_eq!(x[b * 8 + t + 1], y[b * 8 + t]);
            }
        }
    }

    #[test]
    fn translation_is_reversible_cipher() {
        let pairs = translation_pairs(5, 10, 6);
        assert_eq!(pairs.len(), 10);
        for p in &pairs {
            assert_eq!(p.source.len(), 6);
            assert_eq!(p.target.len(), 6);
        }
        // Deterministic mapping: same source prefix structure holds.
        let again = translation_pairs(5, 10, 6);
        assert_eq!(pairs, again);
    }

    #[test]
    fn shapes_have_distinct_classes() {
        let imgs = shape_images(7, 40);
        assert_eq!(imgs.len(), 40);
        let (t, labels) = images_to_tensor(&imgs);
        assert_eq!(t.shape(), &[40, 1, IMAGE_SIDE, IMAGE_SIDE]);
        assert!(labels.iter().all(|&l| l < SHAPE_CLASSES));
        // Stripes (class 3) light up more pixels than squares (class 0).
        let mass = |l: usize| -> f32 {
            imgs.iter()
                .filter(|im| im.label == l)
                .map(|im| im.pixels.iter().sum::<f32>())
                .sum()
        };
        assert!(mass(3) > mass(0));
    }

    #[test]
    fn ctr_click_rate_is_sane() {
        let logs = ctr_logs(11, 4000);
        let rate = logs.iter().filter(|r| r.clicked).count() as f64 / logs.len() as f64;
        assert!(rate > 0.15 && rate < 0.6, "click rate {rate}");
        assert!(logs
            .iter()
            .all(|r| r.categorical.iter().all(|&c| c < CTR_CARDINALITY)));
    }

    #[test]
    fn mixture_has_four_modes() {
        let (pts, labels) = gaussian_mixture_2d(3, 400);
        assert_eq!(pts.len(), 400);
        for c in 0..4 {
            let n = labels.iter().filter(|&&l| l == c).count();
            assert_eq!(n, 100);
        }
        // Points cluster near their centers.
        assert!(pts.iter().all(|p| p[0].abs() < 4.5 && p[1].abs() < 4.5));
    }

    #[test]
    fn qa_spans_are_consistent() {
        let exs = qa_examples(13, 50, 40);
        for ex in &exs {
            assert_eq!(ex.tokens.len(), 40);
            assert!(ex.start <= ex.end && ex.end < 40);
            let q = ex.tokens[0];
            assert!(q < QA_KEYS);
            // The token right before the span is the key marker.
            assert_eq!(ex.tokens[ex.start - 1], q);
        }
    }

    #[test]
    fn utterances_have_no_immediate_repeats_and_valid_frames() {
        let utts = utterances(17, 10, 5);
        for u in &utts {
            assert_eq!(u.transcript.len(), 5);
            for w in u.transcript.windows(2) {
                assert_ne!(w[0], w[1]);
            }
            assert!(u.frames.shape()[1] >= 5 && u.frames.shape()[1] <= 15);
        }
    }
}
