//! Image classification benchmarks (Table III "Image Classification"
//! family): a tiny vision transformer (DeiT stand-in), a residual CNN
//! (ResNet stand-in), and a pointwise-heavy CNN (MobileNet stand-in), all on
//! the procedural shapes dataset.

use crate::data::{self, LabeledImage, IMAGE_SIDE, SHAPE_CLASSES};
use crate::metrics::top1_accuracy;
use mx_nn::attention::TransformerBlock;
use mx_nn::conv::{Conv2d, GlobalAvgPool};
use mx_nn::layers::{Layer, LayerNorm, Linear};
use mx_nn::loss::softmax_cross_entropy;
use mx_nn::optim::Adam;
use mx_nn::param::{HasParams, Param};
use mx_nn::plan::{CompiledPlan, Loc, PlanError, Planner, Stage};
use mx_nn::qflow::QuantConfig;
use mx_nn::tensor::Tensor;
use rand::rngs::StdRng;

/// A classifier over `[B, 1, side, side]` image tensors.
pub trait ImageClassifier: HasParams {
    /// Produces logits `[B, SHAPE_CLASSES]`.
    fn logits(&mut self, x: &Tensor, train: bool) -> Tensor;
    /// Backpropagates from the logits gradient.
    fn backprop(&mut self, grad: &Tensor);
    /// Switches quantization config (direct cast).
    fn set_quant(&mut self, qcfg: QuantConfig);
}

/// Tiny vision transformer: 4×4 patches → linear embed → blocks → mean pool.
#[derive(Debug)]
pub struct TinyViT {
    patch_embed: Linear,
    blocks: Vec<TransformerBlock>,
    ln: LayerNorm,
    head: Linear,
    d_model: usize,
    patches: usize,
}

const PATCH: usize = 4;

impl TinyViT {
    /// Builds the model (`d_model` scales DeiT-Tiny vs DeiT-Small).
    pub fn new(rng: &mut StdRng, d_model: usize, n_layers: usize, qcfg: QuantConfig) -> Self {
        let per_side = IMAGE_SIDE / PATCH;
        TinyViT {
            patch_embed: Linear::new(rng, PATCH * PATCH, d_model, true, qcfg),
            blocks: (0..n_layers)
                .map(|_| TransformerBlock::new(rng, d_model, 2, false, qcfg))
                .collect(),
            ln: LayerNorm::new(d_model, qcfg.elementwise),
            head: Linear::new(rng, d_model, SHAPE_CLASSES, true, qcfg),
            d_model,
            patches: per_side * per_side,
        }
    }

    /// Lowers the inference forward into a [`CompiledPlan`] for a batch of
    /// `IMAGE_SIDE × IMAGE_SIDE` images under `cfg`: patchify + embed, the
    /// deduplicated transformer-block template over the patch sequence,
    /// then norm → mean pool → head.
    pub fn compile_plan(&self, cfg: QuantConfig, batch: usize) -> Result<CompiledPlan, PlanError> {
        if batch == 0 {
            return Err(PlanError::Unsupported("empty batch"));
        }
        let (d, t) = (self.d_model, self.patches);
        let rows = batch * t;
        let pixels = batch * IMAGE_SIDE * IMAGE_SIDE;
        let mut p = Planner::new();
        p.pixels_input(pixels);
        let mut s = Stage::new(pixels, rows * d);
        let patches = s.alloc(rows * PATCH * PATCH);
        s.patchify(Loc::In, patches, batch, IMAGE_SIDE, PATCH);
        s.gemm(&self.patch_embed, patches, Loc::Out, rows, cfg, None)?;
        p.push_stage(s);
        for blk in &self.blocks {
            p.transformer_block_stage(blk, cfg, batch, t)?;
        }
        let mut s = Stage::new(rows * d, batch * SHAPE_CLASSES);
        let normed = s.alloc(rows * d);
        s.norm(&self.ln, Loc::In, normed, rows);
        let pooled = s.alloc(batch * d);
        s.mean_pool(normed, pooled, batch, t, d);
        s.free(normed, rows * d);
        s.gemm(&self.head, pooled, Loc::Out, batch, cfg, None)?;
        p.push_stage(s);
        p.finish()
    }

    fn patchify(&self, x: &Tensor) -> Tensor {
        let b = x.shape()[0];
        let s = IMAGE_SIDE;
        let per_side = s / PATCH;
        let mut out = Vec::with_capacity(b * self.patches * PATCH * PATCH);
        for bi in 0..b {
            let img = &x.data()[bi * s * s..(bi + 1) * s * s];
            for py in 0..per_side {
                for px in 0..per_side {
                    for dy in 0..PATCH {
                        for dx in 0..PATCH {
                            out.push(img[(py * PATCH + dy) * s + px * PATCH + dx]);
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[b * self.patches, PATCH * PATCH])
    }
}

impl HasParams for TinyViT {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.patch_embed.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.ln.visit_params(f);
        self.head.visit_params(f);
    }
}

impl ImageClassifier for TinyViT {
    fn logits(&mut self, x: &Tensor, train: bool) -> Tensor {
        let b = x.shape()[0];
        let patches = self.patchify(x);
        let emb = self.patch_embed.forward(&patches, train);
        let mut h = emb.reshape(&[b, self.patches, self.d_model]);
        for blk in &mut self.blocks {
            h = blk.forward(&h, train);
        }
        let h2d = self
            .ln
            .forward(&h.reshape(&[b * self.patches, self.d_model]), train);
        // Mean pool over patches.
        let mut pooled = Tensor::zeros(&[b, self.d_model]);
        {
            let pd = pooled.data_mut();
            for bi in 0..b {
                for p in 0..self.patches {
                    for c in 0..self.d_model {
                        pd[bi * self.d_model + c] += h2d.data()
                            [(bi * self.patches + p) * self.d_model + c]
                            / self.patches as f32;
                    }
                }
            }
        }
        self.head.forward(&pooled, train)
    }

    fn backprop(&mut self, grad: &Tensor) {
        let b = grad.rows();
        let d_pooled = self.head.backward(grad);
        let mut g = Tensor::zeros(&[b * self.patches, self.d_model]);
        {
            let gd = g.data_mut();
            for bi in 0..b {
                for p in 0..self.patches {
                    for c in 0..self.d_model {
                        gd[(bi * self.patches + p) * self.d_model + c] =
                            d_pooled.data()[bi * self.d_model + c] / self.patches as f32;
                    }
                }
            }
        }
        let g = self.ln.backward(&g);
        let mut g3d = g.reshape(&[b, self.patches, self.d_model]);
        for blk in self.blocks.iter_mut().rev() {
            g3d = blk.backward(&g3d);
        }
        let g2d = g3d.reshape(&[b * self.patches, self.d_model]);
        let _ = self.patch_embed.backward(&g2d);
    }

    fn set_quant(&mut self, qcfg: QuantConfig) {
        self.patch_embed.set_quant(qcfg);
        for b in &mut self.blocks {
            b.set_quant(qcfg);
        }
        self.head.set_quant(qcfg);
    }
}

/// Residual CNN (ResNet stand-in): stem conv + `n_blocks` residual pairs +
/// global pool + linear.
#[derive(Debug)]
pub struct TinyResNet {
    stem: Conv2d,
    blocks: Vec<(Conv2d, Conv2d)>,
    pool: GlobalAvgPool,
    head: Linear,
    acts: Vec<(Tensor, Tensor)>, // per block: (pre-final-relu sum, a1 post-relu)
    stem_act: Option<Tensor>,
}

impl TinyResNet {
    /// Builds the model (`n_blocks` scales ResNet-18 vs ResNet-50).
    pub fn new(rng: &mut StdRng, channels: usize, n_blocks: usize, qcfg: QuantConfig) -> Self {
        TinyResNet {
            stem: Conv2d::new(rng, 1, channels, 3, qcfg),
            blocks: (0..n_blocks)
                .map(|_| {
                    (
                        Conv2d::new(rng, channels, channels, 3, qcfg),
                        Conv2d::new(rng, channels, channels, 3, qcfg),
                    )
                })
                .collect(),
            pool: GlobalAvgPool::new(),
            head: Linear::new(rng, channels, SHAPE_CLASSES, true, qcfg),
            acts: Vec::new(),
            stem_act: None,
        }
    }

    /// Lowers the inference forward into a [`CompiledPlan`] for a batch of
    /// `IMAGE_SIDE × IMAGE_SIDE` images under `cfg`: stem conv+ReLU, one
    /// deduplicated residual-block template (conv → conv → fused
    /// add+ReLU), then global pool → head.
    pub fn compile_plan(&self, cfg: QuantConfig, batch: usize) -> Result<CompiledPlan, PlanError> {
        if batch == 0 {
            return Err(PlanError::Unsupported("empty batch"));
        }
        let ch = self.head.d_in();
        let (side, hw) = (IMAGE_SIDE, IMAGE_SIDE * IMAGE_SIDE);
        let feat = batch * ch * hw;
        let mut p = Planner::new();
        p.pixels_input(batch * hw);
        let mut s = Stage::new(batch * hw, feat);
        s.conv(&self.stem, Loc::In, Loc::Out, batch, side, side, cfg, true)?;
        p.push_stage(s);
        for (c1, c2) in &self.blocks {
            let mut s = Stage::new(feat, feat);
            let a1 = s.alloc(feat);
            s.conv(c1, Loc::In, a1, batch, side, side, cfg, true)?;
            let a2 = s.alloc(feat);
            s.conv(c2, a1, a2, batch, side, side, cfg, false)?;
            s.free(a1, feat);
            s.add(Loc::In, a2, Loc::Out, feat, true);
            p.push_stage(s);
        }
        let mut s = Stage::new(feat, batch * SHAPE_CLASSES);
        let pooled = s.alloc(batch * ch);
        s.avg_pool(Loc::In, pooled, batch * ch, hw);
        s.gemm(&self.head, pooled, Loc::Out, batch, cfg, None)?;
        p.push_stage(s);
        p.finish()
    }
}

impl HasParams for TinyResNet {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        for (a, b) in &mut self.blocks {
            a.visit_params(f);
            b.visit_params(f);
        }
        self.head.visit_params(f);
    }
}

impl ImageClassifier for TinyResNet {
    fn logits(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.acts.clear();
        let mut h = self.stem.forward(x, train).map(|v| v.max(0.0));
        if train {
            self.stem_act = Some(h.clone());
        }
        for (c1, c2) in &mut self.blocks {
            let input = h.clone();
            let a1 = c1.forward(&h, train).map(|v| v.max(0.0));
            let a2 = c2.forward(&a1, train);
            let pre = input.add(&a2);
            h = pre.map(|v| v.max(0.0));
            if train {
                self.acts.push((pre, a1));
            }
        }
        let pooled = self.pool.forward(&h, train);
        self.head.forward(&pooled, train)
    }

    fn backprop(&mut self, grad: &Tensor) {
        let g = self.head.backward(grad);
        let mut g = self.pool.backward(&g);
        for (i, (c1, c2)) in self.blocks.iter_mut().enumerate().rev() {
            let (pre_relu, a1) = &self.acts[i];
            // Final ReLU of the block.
            let g_sum = g.zip_map(pre_relu, |gv, pv| if pv > 0.0 { gv } else { 0.0 });
            // Residual: gradient flows both into the conv path and the skip.
            let g_a1 = c2.backward(&g_sum);
            let g_a1 = g_a1.zip_map(a1, |gv, av| if av > 0.0 { gv } else { 0.0 });
            let g_in = c1.backward(&g_a1);
            g = g_sum.add(&g_in);
        }
        // Stem ReLU mask (post-activation sign is exact for ReLU).
        let stem_act = self.stem_act.take().expect("backward before forward");
        let g = g.zip_map(&stem_act, |gv, av| if av > 0.0 { gv } else { 0.0 });
        let _ = self.stem.backward(&g);
    }

    fn set_quant(&mut self, qcfg: QuantConfig) {
        self.stem.set_quant(qcfg);
        for (a, b) in &mut self.blocks {
            a.set_quant(qcfg);
            b.set_quant(qcfg);
        }
        self.head.set_quant(qcfg);
    }
}

/// Pointwise-heavy CNN (MobileNet stand-in): 3×3 stem then 1×1 "pointwise"
/// convolutions only.
#[derive(Debug)]
pub struct TinyMobileNet {
    stem: Conv2d,
    pointwise: Vec<Conv2d>,
    pool: GlobalAvgPool,
    head: Linear,
    acts: Vec<Tensor>,
}

impl TinyMobileNet {
    /// Builds the model.
    pub fn new(rng: &mut StdRng, channels: usize, n_layers: usize, qcfg: QuantConfig) -> Self {
        TinyMobileNet {
            stem: Conv2d::new(rng, 1, channels, 3, qcfg),
            pointwise: (0..n_layers)
                .map(|_| Conv2d::new(rng, channels, channels, 1, qcfg))
                .collect(),
            pool: GlobalAvgPool::new(),
            head: Linear::new(rng, channels, SHAPE_CLASSES, true, qcfg),
            acts: Vec::new(),
        }
    }

    /// Lowers the inference forward into a [`CompiledPlan`] for a batch of
    /// `IMAGE_SIDE × IMAGE_SIDE` images under `cfg`. Every pointwise layer
    /// produces a structurally identical conv+ReLU stage, so they all
    /// share a single template with per-layer weight bindings.
    pub fn compile_plan(&self, cfg: QuantConfig, batch: usize) -> Result<CompiledPlan, PlanError> {
        if batch == 0 {
            return Err(PlanError::Unsupported("empty batch"));
        }
        let ch = self.head.d_in();
        let (side, hw) = (IMAGE_SIDE, IMAGE_SIDE * IMAGE_SIDE);
        let feat = batch * ch * hw;
        let mut p = Planner::new();
        p.pixels_input(batch * hw);
        let mut s = Stage::new(batch * hw, feat);
        s.conv(&self.stem, Loc::In, Loc::Out, batch, side, side, cfg, true)?;
        p.push_stage(s);
        for c in &self.pointwise {
            let mut s = Stage::new(feat, feat);
            s.conv(c, Loc::In, Loc::Out, batch, side, side, cfg, true)?;
            p.push_stage(s);
        }
        let mut s = Stage::new(feat, batch * SHAPE_CLASSES);
        let pooled = s.alloc(batch * ch);
        s.avg_pool(Loc::In, pooled, batch * ch, hw);
        s.gemm(&self.head, pooled, Loc::Out, batch, cfg, None)?;
        p.push_stage(s);
        p.finish()
    }
}

impl HasParams for TinyMobileNet {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        for c in &mut self.pointwise {
            c.visit_params(f);
        }
        self.head.visit_params(f);
    }
}

impl ImageClassifier for TinyMobileNet {
    fn logits(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.acts.clear();
        let mut h = self.stem.forward(x, train).map(|v| v.max(0.0));
        for c in &mut self.pointwise {
            if train {
                self.acts.push(h.clone());
            }
            let pre = c.forward(&h, train);
            h = pre.map(|v| v.max(0.0));
            if train {
                self.acts.push(h.clone());
            }
        }
        let pooled = self.pool.forward(&h, train);
        self.head.forward(&pooled, train)
    }

    fn backprop(&mut self, grad: &Tensor) {
        let g = self.head.backward(grad);
        let mut g = self.pool.backward(&g);
        for (i, c) in self.pointwise.iter_mut().enumerate().rev() {
            let post = &self.acts[i * 2 + 1];
            let gv = g.zip_map(post, |gv, pv| if pv > 0.0 { gv } else { 0.0 });
            g = c.backward(&gv);
        }
        let _ = self.stem.backward(&g);
    }

    fn set_quant(&mut self, qcfg: QuantConfig) {
        self.stem.set_quant(qcfg);
        for c in &mut self.pointwise {
            c.set_quant(qcfg);
        }
        self.head.set_quant(qcfg);
    }
}

/// Result of a classification run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisionResult {
    /// Held-out top-1 accuracy (0–1).
    pub top1: f64,
    /// Final training loss.
    pub final_loss: f64,
}

/// Trains any [`ImageClassifier`] on the shapes dataset; returns held-out
/// accuracy.
pub fn train_classifier(
    model: &mut dyn ImageClassifier,
    iters: usize,
    lr: f32,
    seed: u64,
) -> VisionResult {
    let train_set = data::shape_images(seed, 192);
    let test_set = data::shape_images(seed ^ 0xff, 64);
    let mut opt = Adam::new(lr);
    let batch = 16;
    let mut loss = f64::NAN;
    for i in 0..iters {
        let start = (i * batch) % (train_set.len() - batch + 1);
        let chunk: Vec<LabeledImage> = train_set[start..start + batch].to_vec();
        let (x, y) = data::images_to_tensor(&chunk);
        model.zero_grads();
        let logits = model.logits(&x, true);
        let (l, grad) = softmax_cross_entropy(&logits, &y);
        model.backprop(&grad);
        opt.step(model as &mut dyn HasParams);
        loss = l;
    }
    let (x, y) = data::images_to_tensor(&test_set);
    let logits = model.logits(&x, false);
    VisionResult {
        top1: top1_accuracy(logits.data(), SHAPE_CLASSES, &y),
        final_loss: loss,
    }
}

/// Evaluates an already-trained classifier on a fresh held-out set.
pub fn evaluate_classifier(model: &mut dyn ImageClassifier, seed: u64) -> f64 {
    let test_set = data::shape_images(seed ^ 0xff, 64);
    let (x, y) = data::images_to_tensor(&test_set);
    let logits = model.logits(&x, false);
    top1_accuracy(logits.data(), SHAPE_CLASSES, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_nn::TensorFormat;
    use rand::SeedableRng;

    #[test]
    fn vit_learns_shapes() {
        // Seed pinned against the vendored RNG's stream (see vendor/rand).
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = TinyViT::new(&mut rng, 16, 1, QuantConfig::fp32());
        let r = train_classifier(&mut m, 40, 2e-3, 5);
        assert!(r.top1 > 0.6, "ViT accuracy {:.2}", r.top1);
    }

    #[test]
    fn resnet_learns_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = TinyResNet::new(&mut rng, 8, 1, QuantConfig::fp32());
        let r = train_classifier(&mut m, 30, 3e-3, 6);
        assert!(r.top1 > 0.6, "ResNet accuracy {:.2}", r.top1);
    }

    #[test]
    fn mobilenet_learns_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = TinyMobileNet::new(&mut rng, 8, 2, QuantConfig::fp32());
        let r = train_classifier(&mut m, 30, 3e-3, 7);
        assert!(r.top1 > 0.5, "MobileNet accuracy {:.2}", r.top1);
    }

    #[test]
    fn direct_cast_mx9_preserves_accuracy() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = TinyResNet::new(&mut rng, 8, 1, QuantConfig::fp32());
        let r = train_classifier(&mut m, 30, 3e-3, 8);
        let base = evaluate_classifier(&mut m, 8);
        m.set_quant(QuantConfig::uniform(TensorFormat::MX9));
        let cast = evaluate_classifier(&mut m, 8);
        assert!(
            (base - cast).abs() < 0.08,
            "MX9 cast moved accuracy {base:.2} -> {cast:.2} (trained to {:.2})",
            r.top1
        );
    }
}
