//! Recommendation models (Tables III and VI): a DLRM stand-in (embeddings +
//! dot-product feature interactions + MLPs), a transformer-interaction
//! variant (PR-rec2 stand-in), and a DHEN-style hierarchical ensemble
//! (PR-rec3 stand-in), trained on synthetic CTR logs with AUC and
//! normalized-entropy metrics.

use crate::data::{self, CtrRecord, CTR_CARDINALITY, CTR_DENSE, CTR_FIELDS};
use crate::metrics::{auc, normalized_entropy};
use mx_nn::attention::TransformerBlock;
use mx_nn::format::TensorFormat;
use mx_nn::layers::{Activation, ActivationLayer, Embedding, Layer, Linear, Sequential};
use mx_nn::loss::bce_with_logits;
use mx_nn::optim::Adam;
use mx_nn::param::{HasParams, Param};
use mx_nn::qflow::QuantConfig;
use mx_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Interaction architecture, mirroring the paper's three production models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interaction {
    /// DLRM: pairwise dot products of feature embeddings (PR-rec1).
    DotProduct,
    /// Transformer encoder over the field embeddings (PR-rec2).
    Transformer,
    /// DHEN-style: dot-product *and* MLP interaction experts, hierarchically
    /// combined (PR-rec3).
    Dhen,
}

/// Embedding dimension shared by all fields.
const EMB_DIM: usize = 16;

/// Click-through-rate model with a configurable interaction module.
#[derive(Debug)]
pub struct CtrModel {
    embeddings: Vec<Embedding>,
    bottom: Sequential,
    interaction: Interaction,
    transformer: Option<TransformerBlock>,
    dhen_mlp: Option<Sequential>,
    top: Sequential,
    top_in: usize,
    /// When true, the first (bottom) and last (top output) layers stay in
    /// FP32 — the mixed-precision setting of Table VI.
    mixed_precision: bool,
}

fn interaction_width(interaction: Interaction) -> usize {
    // Feature count: CTR_FIELDS embeddings + 1 dense projection.
    let f = CTR_FIELDS + 1;
    match interaction {
        // Upper triangle of pairwise dots + the dense projection itself.
        Interaction::DotProduct => f * (f - 1) / 2 + EMB_DIM,
        // Mean-pooled transformer output.
        Interaction::Transformer => EMB_DIM,
        // Dot block + MLP block concatenated.
        Interaction::Dhen => f * (f - 1) / 2 + EMB_DIM + EMB_DIM,
    }
}

impl CtrModel {
    /// Builds a CTR model.
    pub fn new(
        rng: &mut StdRng,
        interaction: Interaction,
        qcfg: QuantConfig,
        mixed_precision: bool,
    ) -> Self {
        let bottom_cfg = if mixed_precision {
            QuantConfig::fp32()
        } else {
            qcfg
        };
        let mut bottom = Sequential::new();
        bottom.push(Box::new(Linear::new(
            rng, CTR_DENSE, EMB_DIM, true, bottom_cfg,
        )));
        bottom.push(Box::new(ActivationLayer::new(
            Activation::Relu,
            qcfg.elementwise,
        )));
        let f = CTR_FIELDS + 1;
        let top_in = interaction_width(interaction);
        let mut top = Sequential::new();
        top.push(Box::new(Linear::new(rng, top_in, 32, true, qcfg)));
        top.push(Box::new(ActivationLayer::new(
            Activation::Relu,
            qcfg.elementwise,
        )));
        let head_cfg = if mixed_precision {
            QuantConfig::fp32()
        } else {
            qcfg
        };
        top.push(Box::new(Linear::new(rng, 32, 1, true, head_cfg)));
        let dhen_mlp = (interaction == Interaction::Dhen).then(|| {
            let mut m = Sequential::new();
            m.push(Box::new(Linear::new(rng, f * EMB_DIM, EMB_DIM, true, qcfg)));
            m.push(Box::new(ActivationLayer::new(
                Activation::Relu,
                qcfg.elementwise,
            )));
            m
        });
        CtrModel {
            embeddings: (0..CTR_FIELDS)
                .map(|_| Embedding::new(rng, CTR_CARDINALITY, EMB_DIM))
                .collect(),
            bottom,
            interaction,
            transformer: (interaction == Interaction::Transformer)
                .then(|| TransformerBlock::new(rng, EMB_DIM, 2, false, qcfg)),
            dhen_mlp,
            top,
            top_in,
            mixed_precision,
        }
    }

    /// Whether the model runs in the Table VI mixed-precision setting.
    pub fn is_mixed_precision(&self) -> bool {
        self.mixed_precision
    }

    /// Quantizes the embedding tables themselves (the memory-side
    /// optimization §V applies to DLRM inference).
    pub fn quantize_tables(&mut self, format: TensorFormat) {
        for e in &mut self.embeddings {
            e.set_format(format);
        }
    }

    /// Forward over a batch of records, returning click logits `[n]` along
    /// with the per-feature tensors needed for backward.
    fn forward_batch(&mut self, records: &[CtrRecord], train: bool) -> (Tensor, ForwardCache) {
        let n = records.len();
        // Gather embeddings per field.
        let mut field_embs = Vec::with_capacity(CTR_FIELDS);
        for (fi, emb) in self.embeddings.iter_mut().enumerate() {
            let idx: Vec<usize> = records.iter().map(|r| r.categorical[fi]).collect();
            field_embs.push(emb.forward(&idx, train));
        }
        let dense_in = Tensor::from_vec(
            records
                .iter()
                .flat_map(|r| r.dense.iter().copied())
                .collect(),
            &[n, CTR_DENSE],
        );
        let dense_emb = self.bottom.forward(&dense_in, train);
        // Stack features: [n, f, EMB_DIM].
        let f = CTR_FIELDS + 1;
        let mut feats = Vec::with_capacity(n * f * EMB_DIM);
        for r in 0..n {
            for fe in field_embs.iter().chain(std::iter::once(&dense_emb)) {
                feats.extend_from_slice(&fe.data()[r * EMB_DIM..(r + 1) * EMB_DIM]);
            }
        }
        let feats = Tensor::from_vec(feats, &[n, f, EMB_DIM]);
        let interacted = match self.interaction {
            Interaction::DotProduct => dot_interactions(&feats, &dense_emb),
            Interaction::Transformer => {
                let t = self.transformer.as_mut().expect("transformer built");
                let out = t.forward(&feats, train);
                mean_pool(&out)
            }
            Interaction::Dhen => {
                let dots = dot_interactions(&feats, &dense_emb);
                let mlp = self.dhen_mlp.as_mut().expect("dhen built");
                let flat = feats.reshape(&[n, f * EMB_DIM]);
                let expert = mlp.forward(&flat, train);
                let mut combined = Vec::with_capacity(n * self.top_in);
                for r in 0..n {
                    combined
                        .extend_from_slice(&dots.data()[r * dots.cols()..(r + 1) * dots.cols()]);
                    combined.extend_from_slice(&expert.data()[r * EMB_DIM..(r + 1) * EMB_DIM]);
                }
                Tensor::from_vec(combined, &[n, self.top_in])
            }
        };
        let logits = self.top.forward(&interacted, train);
        let _ = dense_emb;
        (logits, ForwardCache { feats })
    }

    /// One training step over a batch; returns the BCE loss.
    pub fn train_step(&mut self, records: &[CtrRecord], opt: &mut Adam) -> f64 {
        self.zero_grads();
        let labels: Vec<f32> = records
            .iter()
            .map(|r| f32::from(u8::from(r.clicked)))
            .collect();
        let (logits, cache) = self.forward_batch(records, true);
        let (loss, grad) = bce_with_logits(&logits, &labels);
        self.backward_batch(&grad.reshape(&[records.len(), 1]), records, &cache);
        opt.step(self);
        loss
    }

    fn backward_batch(&mut self, grad: &Tensor, records: &[CtrRecord], cache: &ForwardCache) {
        let n = records.len();
        let f = CTR_FIELDS + 1;
        let g_inter = self.top.backward(grad);
        // Gradient w.r.t. the stacked features [n, f, EMB_DIM].
        let g_feats = match self.interaction {
            Interaction::DotProduct => dot_interactions_backward(&g_inter, &cache.feats),
            Interaction::Transformer => {
                let g3d = mean_pool_backward(&g_inter, f);
                let t = self.transformer.as_mut().expect("transformer built");
                t.backward(&g3d)
            }
            Interaction::Dhen => {
                let dots_w = f * (f - 1) / 2 + EMB_DIM;
                let mut g_dots = Vec::with_capacity(n * dots_w);
                let mut g_expert = Vec::with_capacity(n * EMB_DIM);
                for r in 0..n {
                    let row = &g_inter.data()[r * self.top_in..(r + 1) * self.top_in];
                    g_dots.extend_from_slice(&row[..dots_w]);
                    g_expert.extend_from_slice(&row[dots_w..]);
                }
                let g_dots = Tensor::from_vec(g_dots, &[n, dots_w]);
                let g_expert = Tensor::from_vec(g_expert, &[n, EMB_DIM]);
                let mlp = self.dhen_mlp.as_mut().expect("dhen built");
                let g_flat = mlp.backward(&g_expert);
                dot_interactions_backward(&g_dots, &cache.feats)
                    .add(&g_flat.reshape(&[n, f, EMB_DIM]))
            }
        };
        // Scatter feature gradients to embeddings and the dense tower.
        let mut g_dense = Tensor::zeros(&[n, EMB_DIM]);
        for (fi, emb) in self.embeddings.iter_mut().enumerate() {
            let mut g_field = Vec::with_capacity(n * EMB_DIM);
            for r in 0..n {
                let base = (r * f + fi) * EMB_DIM;
                g_field.extend_from_slice(&g_feats.data()[base..base + EMB_DIM]);
            }
            // Re-run the lookup so the embedding's scatter cache is aligned.
            let idx: Vec<usize> = records.iter().map(|r| r.categorical[fi]).collect();
            let _ = emb.forward(&idx, true);
            emb.backward(&Tensor::from_vec(g_field, &[n, EMB_DIM]));
        }
        {
            let gd = g_dense.data_mut();
            for r in 0..n {
                let base = (r * f + CTR_FIELDS) * EMB_DIM;
                for c in 0..EMB_DIM {
                    gd[r * EMB_DIM + c] = g_feats.data()[base + c];
                }
            }
        }
        let _ = self.bottom.backward(&g_dense);
        let _ = cache;
    }

    /// Predicted click probabilities for a batch.
    pub fn predict(&mut self, records: &[CtrRecord]) -> Vec<f32> {
        let (logits, _) = self.forward_batch(records, false);
        logits
            .data()
            .iter()
            .map(|&x| 1.0 / (1.0 + (-x).exp()))
            .collect()
    }
}

struct ForwardCache {
    feats: Tensor,
}

/// Pairwise dot products of the `f` feature vectors plus the dense
/// projection passthrough (classic DLRM interaction).
fn dot_interactions(feats: &Tensor, dense_emb: &Tensor) -> Tensor {
    let n = feats.shape()[0];
    let f = feats.shape()[1];
    let d = feats.shape()[2];
    let width = f * (f - 1) / 2 + d;
    let mut out = Vec::with_capacity(n * width);
    for r in 0..n {
        for i in 0..f {
            for j in (i + 1)..f {
                let a = &feats.data()[(r * f + i) * d..(r * f + i + 1) * d];
                let b = &feats.data()[(r * f + j) * d..(r * f + j + 1) * d];
                out.push(a.iter().zip(b).map(|(x, y)| x * y).sum());
            }
        }
        out.extend_from_slice(&dense_emb.data()[r * d..(r + 1) * d]);
    }
    Tensor::from_vec(out, &[n, width])
}

/// Backward of [`dot_interactions`] w.r.t. the stacked features. The dense
/// passthrough gradient is folded into the dense feature's slot.
fn dot_interactions_backward(grad: &Tensor, feats: &Tensor) -> Tensor {
    let n = feats.shape()[0];
    let f = feats.shape()[1];
    let d = feats.shape()[2];
    let mut g = Tensor::zeros(&[n, f, d]);
    let gd = g.data_mut();
    for r in 0..n {
        let mut col = 0usize;
        for i in 0..f {
            for j in (i + 1)..f {
                let gv = grad.data()[r * grad.cols() + col];
                for c in 0..d {
                    let a = feats.data()[(r * f + i) * d + c];
                    let b = feats.data()[(r * f + j) * d + c];
                    gd[(r * f + i) * d + c] += gv * b;
                    gd[(r * f + j) * d + c] += gv * a;
                }
                col += 1;
            }
        }
        // Dense passthrough occupies the trailing d columns and feeds the
        // last feature slot (the dense projection).
        for c in 0..d {
            gd[(r * f + (f - 1)) * d + c] += grad.data()[r * grad.cols() + col + c];
        }
    }
    g
}

fn mean_pool(x: &Tensor) -> Tensor {
    let (n, f, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut out = Tensor::zeros(&[n, d]);
    {
        let od = out.data_mut();
        for r in 0..n {
            for i in 0..f {
                for c in 0..d {
                    od[r * d + c] += x.data()[(r * f + i) * d + c] / f as f32;
                }
            }
        }
    }
    out
}

fn mean_pool_backward(grad: &Tensor, f: usize) -> Tensor {
    let (n, d) = (grad.shape()[0], grad.shape()[1]);
    let mut out = Tensor::zeros(&[n, f, d]);
    {
        let od = out.data_mut();
        for r in 0..n {
            for i in 0..f {
                for c in 0..d {
                    od[(r * f + i) * d + c] = grad.data()[r * d + c] / f as f32;
                }
            }
        }
    }
    out
}

impl HasParams for CtrModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for e in &mut self.embeddings {
            e.visit_params(f);
        }
        self.bottom.visit_params(f);
        if let Some(t) = &mut self.transformer {
            t.visit_params(f);
        }
        if let Some(m) = &mut self.dhen_mlp {
            m.visit_params(f);
        }
        self.top.visit_params(f);
    }
}

/// Recsys benchmark result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecsysResult {
    /// Held-out AUC.
    pub auc: f64,
    /// Held-out normalized entropy (lower is better).
    pub ne: f64,
}

/// Trains a CTR model and evaluates AUC/NE on held-out logs.
pub fn run_recsys(
    interaction: Interaction,
    qcfg: QuantConfig,
    mixed_precision: bool,
    iters: usize,
    seed: u64,
) -> RecsysResult {
    let logs = data::ctr_logs(seed, 3072);
    let (train, test) = logs.split_at(2560);
    let mut rng = StdRng::seed_from_u64(seed ^ 7);
    let mut model = CtrModel::new(&mut rng, interaction, qcfg, mixed_precision);
    let mut opt = Adam::new(2e-3);
    let batch = 64;
    for i in 0..iters {
        let start = (i * batch) % (train.len() - batch + 1);
        let _ = model.train_step(&train[start..start + batch], &mut opt);
    }
    let probs = model.predict(test);
    let labels: Vec<bool> = test.iter().map(|r| r.clicked).collect();
    RecsysResult {
        auc: auc(&probs, &labels),
        ne: normalized_entropy(&probs, &labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlrm_learns_planted_structure() {
        // Seed pinned against the vendored RNG's stream (see vendor/rand).
        let r = run_recsys(Interaction::DotProduct, QuantConfig::fp32(), false, 120, 1);
        assert!(r.auc > 0.62, "DLRM AUC {:.3}", r.auc);
        assert!(r.ne < 1.0, "DLRM NE {:.3}", r.ne);
    }

    #[test]
    fn transformer_interaction_learns() {
        let r = run_recsys(Interaction::Transformer, QuantConfig::fp32(), false, 100, 5);
        assert!(r.auc > 0.55, "PR-rec2 AUC {:.3}", r.auc);
    }

    #[test]
    fn dhen_learns() {
        let r = run_recsys(Interaction::Dhen, QuantConfig::fp32(), false, 100, 7);
        assert!(r.auc > 0.6, "DHEN AUC {:.3}", r.auc);
    }

    #[test]
    fn mx9_training_tracks_fp32_ne() {
        let base = run_recsys(Interaction::DotProduct, QuantConfig::fp32(), false, 80, 11);
        let mx9 = run_recsys(
            Interaction::DotProduct,
            QuantConfig::uniform(TensorFormat::MX9),
            false,
            80,
            11,
        );
        let delta = (mx9.ne - base.ne).abs() / base.ne;
        assert!(delta < 0.05, "MX9 NE delta {:.4} too large", delta);
    }

    #[test]
    fn quantized_embedding_tables_still_predict() {
        let logs = data::ctr_logs(1, 256);
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = CtrModel::new(
            &mut rng,
            Interaction::DotProduct,
            QuantConfig::fp32(),
            false,
        );
        let before = m.predict(&logs[..32]);
        m.quantize_tables(TensorFormat::MX6);
        let after = m.predict(&logs[..32]);
        assert_eq!(before.len(), after.len());
        // Quantization changes values slightly but keeps them probabilities.
        assert!(after.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn dot_interaction_backward_gradcheck() {
        let n = 2;
        let f = 3;
        let d = 4;
        let feats = Tensor::from_vec(
            (0..n * f * d)
                .map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.1)
                .collect(),
            &[n, f, d],
        );
        let dense = Tensor::from_vec(vec![0.3; n * d], &[n, d]);
        let y = dot_interactions(&feats, &dense);
        let g = dot_interactions_backward(&y, &feats);
        let eps = 1e-3;
        for i in 0..feats.numel() {
            let mut fp = feats.clone();
            fp.data_mut()[i] += eps;
            let mut fm = feats.clone();
            fm.data_mut()[i] -= eps;
            let lp = dot_interactions(&fp, &dense).sq_norm() / 2.0;
            let lm = dot_interactions(&fm, &dense).sq_norm() / 2.0;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            // The dense slot also feeds the passthrough; only compare the
            // interaction part (first f-1 features).
            if i % (f * d) < (f - 1) * d {
                assert!(
                    (num - g.data()[i]).abs() < 1e-2 * (1.0 + num.abs()),
                    "grad mismatch at {i}: {num} vs {}",
                    g.data()[i]
                );
            }
        }
    }
}
