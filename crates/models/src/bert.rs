//! Encoder-only transformer with an extractive-QA span head — the BERT
//! benchmark of Tables III and V (SQuAD-style EM / F1 on the synthetic QA
//! task).

use crate::data::{self, QaExample, QA_VOCAB};
use crate::metrics::span_em_f1;
use mx_nn::attention::TransformerBlock;
use mx_nn::layers::{Embedding, Layer, LayerNorm, Linear};
use mx_nn::loss::softmax_cross_entropy;
use mx_nn::optim::Adam;
use mx_nn::param::{HasParams, Param};
use mx_nn::plan::{CompiledPlan, Loc, PlanError, Planner, Stage};
use mx_nn::qflow::QuantConfig;
use mx_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Encoder-only transformer with start/end span logits.
#[derive(Debug)]
pub struct BertQa {
    tok_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    ln: LayerNorm,
    span_head: Linear, // 2 outputs per token: start and end logits
    d_model: usize,
    seq_len: usize,
}

impl BertQa {
    /// Builds the model (`d_model`/`n_layers` scale base vs large).
    pub fn new(
        rng: &mut StdRng,
        d_model: usize,
        n_layers: usize,
        seq_len: usize,
        qcfg: QuantConfig,
    ) -> Self {
        BertQa {
            tok_emb: Embedding::new(rng, QA_VOCAB, d_model),
            pos_emb: Embedding::new(rng, seq_len, d_model),
            blocks: (0..n_layers)
                .map(|_| TransformerBlock::new(rng, d_model, 2, false, qcfg))
                .collect(),
            ln: LayerNorm::new(d_model, qcfg.elementwise),
            span_head: Linear::new(rng, d_model, 2, true, qcfg),
            d_model,
            seq_len,
        }
    }

    /// Switches the quantization config (direct cast).
    pub fn set_quant(&mut self, qcfg: QuantConfig) {
        for b in &mut self.blocks {
            b.set_quant(qcfg);
        }
        self.span_head.set_quant(qcfg);
    }

    /// Context length the model was built for.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Lowers the inference forward into a [`CompiledPlan`] for a
    /// `batch × t` bucket under `cfg` — the same skeleton as the GPT
    /// lowering (embed → shared block template → final norm + head), with
    /// non-causal attention and the two-logit span head.
    pub fn compile_plan(
        &self,
        cfg: QuantConfig,
        batch: usize,
        t: usize,
    ) -> Result<CompiledPlan, PlanError> {
        if batch == 0 || t == 0 || t > self.seq_len {
            return Err(PlanError::Unsupported("bucket outside the encoder window"));
        }
        let d = self.d_model;
        let rows = batch * t;
        let mut p = Planner::new();
        p.embed_stage(&self.tok_emb, &self.pos_emb, rows, t)?;
        for blk in &self.blocks {
            p.transformer_block_stage(blk, cfg, batch, t)?;
        }
        let mut s = Stage::new(rows * d, rows * 2);
        let normed = s.alloc(rows * d);
        s.norm(&self.ln, Loc::In, normed, rows);
        s.gemm(&self.span_head, normed, Loc::Out, rows, cfg, None)?;
        p.push_stage(s);
        p.finish()
    }

    /// Returns per-token `(start_logits, end_logits)` rows `[batch*seq, 2]`
    /// — the raw span head the QA metrics and the batched serving entry
    /// point ([`crate::zoo::BatchModel`]) both read.
    pub fn span_logits(&mut self, tokens: &[usize], batch: usize, train: bool) -> Tensor {
        let t = tokens.len() / batch;
        assert!(t <= self.seq_len);
        let tok = self.tok_emb.forward(tokens, train);
        let pos_idx: Vec<usize> = (0..batch).flat_map(|_| 0..t).collect();
        let pos = self.pos_emb.forward(&pos_idx, train);
        let mut x = tok.add(&pos).reshape(&[batch, t, self.d_model]);
        for b in &mut self.blocks {
            x = b.forward(&x, train);
        }
        let h = self
            .ln
            .forward(&x.reshape(&[batch * t, self.d_model]), train);
        self.span_head.forward(&h, train)
    }

    /// One training step on a batch of examples (all the same length);
    /// returns the loss (start CE + end CE).
    pub fn train_step(&mut self, batch: &[&QaExample], opt: &mut Adam) -> f64 {
        self.zero_grads();
        let b = batch.len();
        let t = batch[0].tokens.len();
        let tokens: Vec<usize> = batch
            .iter()
            .flat_map(|e| e.tokens.iter().copied())
            .collect();
        let logits = self.span_logits(&tokens, b, true);
        // Column 0 = start logits over positions, column 1 = end logits.
        let start_logits =
            Tensor::from_vec((0..b * t).map(|i| logits.data()[i * 2]).collect(), &[b, t]);
        let end_logits = Tensor::from_vec(
            (0..b * t).map(|i| logits.data()[i * 2 + 1]).collect(),
            &[b, t],
        );
        let starts: Vec<usize> = batch.iter().map(|e| e.start).collect();
        let ends: Vec<usize> = batch.iter().map(|e| e.end).collect();
        let (l1, g1) = softmax_cross_entropy(&start_logits, &starts);
        let (l2, g2) = softmax_cross_entropy(&end_logits, &ends);
        let mut grad = Tensor::zeros(&[b * t, 2]);
        {
            let gd = grad.data_mut();
            for i in 0..b * t {
                gd[i * 2] = g1.data()[i];
                gd[i * 2 + 1] = g2.data()[i];
            }
        }
        self.backprop(&grad, b, t);
        opt.step(self);
        l1 + l2
    }

    fn backprop(&mut self, grad: &Tensor, b: usize, t: usize) {
        let g = self.span_head.backward(grad);
        let g = self.ln.backward(&g);
        let mut g3d = g.reshape(&[b, t, self.d_model]);
        for blk in self.blocks.iter_mut().rev() {
            g3d = blk.backward(&g3d);
        }
        let g2d = g3d.reshape(&[b * t, self.d_model]);
        self.tok_emb.backward(&g2d);
        self.pos_emb.backward(&g2d);
    }

    /// Predicts the most likely `(start, end)` span (constrained to
    /// `start <= end`).
    pub fn predict(&mut self, tokens: &[usize]) -> (usize, usize) {
        let t = tokens.len();
        let logits = self.span_logits(tokens, 1, false);
        let start = (0..t)
            .max_by(|&a, &b| {
                logits.data()[a * 2]
                    .partial_cmp(&logits.data()[b * 2])
                    .expect("finite")
            })
            .expect("nonempty");
        let end = (start..t)
            .max_by(|&a, &b| {
                logits.data()[a * 2 + 1]
                    .partial_cmp(&logits.data()[b * 2 + 1])
                    .expect("finite")
            })
            .expect("nonempty");
        (start, end)
    }
}

impl HasParams for BertQa {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok_emb.visit_params(f);
        self.pos_emb.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.ln.visit_params(f);
        self.span_head.visit_params(f);
    }
}

/// QA benchmark result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QaResult {
    /// Exact-match percentage.
    pub em: f64,
    /// Token-level F1 percentage.
    pub f1: f64,
}

/// Trains a [`BertQa`] and returns it with its held-out metrics.
pub fn train_bert_qa(
    d_model: usize,
    n_layers: usize,
    qcfg: QuantConfig,
    iters: usize,
    seed: u64,
) -> (BertQa, QaResult) {
    let seq = 36; // long enough that no answer span is ever truncated
    let train_set = data::qa_examples(seed, 320, seq);
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    let mut model = BertQa::new(&mut rng, d_model, n_layers, seq, qcfg);
    let mut opt = Adam::new(2e-3);
    let batch = 8;
    for i in 0..iters {
        let refs: Vec<&data::QaExample> = (0..batch)
            .map(|k| &train_set[(i * batch + k) % train_set.len()])
            .collect();
        let _ = model.train_step(&refs, &mut opt);
    }
    let result = evaluate_bert_qa(&mut model, seed);
    (model, result)
}

/// Evaluates EM/F1 on a held-out set.
pub fn evaluate_bert_qa(model: &mut BertQa, seed: u64) -> QaResult {
    let test_set = data::qa_examples(seed ^ 0xabc, 48, 36);
    let mut pred = Vec::new();
    let mut gold = Vec::new();
    for ex in &test_set {
        pred.push(model.predict(&ex.tokens));
        gold.push((ex.start, ex.end));
    }
    let (em, f1) = span_em_f1(&pred, &gold);
    QaResult { em, f1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_nn::TensorFormat;

    #[test]
    fn bert_learns_span_extraction() {
        let (_, r) = train_bert_qa(32, 2, QuantConfig::fp32(), 400, 3);
        assert!(r.f1 > 50.0, "F1 too low: {:.1}", r.f1);
        assert!(r.em <= r.f1 + 1e-9, "EM cannot exceed F1");
    }

    #[test]
    fn direct_cast_mx9_preserves_qa() {
        let (mut model, base) = train_bert_qa(24, 1, QuantConfig::fp32(), 200, 5);
        model.set_quant(QuantConfig::uniform(TensorFormat::MX9));
        let cast = evaluate_bert_qa(&mut model, 5);
        assert!(
            (base.f1 - cast.f1).abs() < 6.0,
            "MX9 cast moved F1 {:.1} -> {:.1}",
            base.f1,
            cast.f1
        );
    }

    #[test]
    fn predict_respects_span_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = BertQa::new(&mut rng, 16, 1, 36, QuantConfig::fp32());
        let ex = &data::qa_examples(1, 1, 36)[0];
        let (s, e) = m.predict(&ex.tokens);
        assert!(s <= e && e < 36);
    }
}
