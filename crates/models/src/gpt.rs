//! Decoder-only generative transformer (GPT family) with optional
//! mixture-of-experts MLPs — the workhorse behind Table IV (zero/few-shot
//! direct cast), Table VII (generative training), and Fig. 9 (MX6 training
//! cost), at laptop scale.

use crate::data;
use mx_nn::attention::TransformerBlock;
use mx_nn::layers::{Embedding, Layer, LayerNorm, Linear};
use mx_nn::loss::softmax_cross_entropy;
use mx_nn::optim::Adam;
use mx_nn::param::{HasParams, Param};
use mx_nn::plan::{CompiledPlan, Loc, PlanError, Planner, Stage};
use mx_nn::qflow::{quantized_matmul, QuantConfig};
use mx_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Architecture hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GptConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Transformer blocks.
    pub n_layers: usize,
    /// Context length.
    pub seq_len: usize,
    /// Number of MoE experts in each block's MLP (0 or 1 = dense).
    pub experts: usize,
}

impl GptConfig {
    /// A tiny config for tests.
    pub fn tiny() -> Self {
        GptConfig {
            vocab: data::LM_VOCAB,
            d_model: 32,
            n_heads: 2,
            n_layers: 2,
            seq_len: 16,
            experts: 0,
        }
    }

    /// Scaled configs mirroring the paper's GPT size ladder (Table VII) at
    /// laptop scale: index 0..=4 maps to "XS, S, M, L, XL".
    pub fn ladder(step: usize) -> Self {
        let (d, l, h) = match step {
            0 => (16, 1, 1),
            1 => (24, 2, 2),
            2 => (32, 2, 2),
            3 => (48, 3, 3),
            _ => (64, 4, 4),
        };
        GptConfig {
            vocab: data::LM_VOCAB,
            d_model: d,
            n_heads: h,
            n_layers: l,
            seq_len: 24,
            experts: 0,
        }
    }

    /// The MoE variant of the ladder (Table VII's last row).
    pub fn moe(step: usize, experts: usize) -> Self {
        GptConfig {
            experts,
            ..Self::ladder(step)
        }
    }
}

/// Top-1 gated mixture-of-experts feed-forward layer (DeepSpeed-MoE style,
/// scaled down). The gate's softmax stays in FP32 per §V.
#[derive(Debug)]
struct MoeMlp {
    gate: Linear,
    experts: Vec<(Linear, Linear)>,
    cache: Option<(Tensor, Vec<usize>, Tensor, Vec<Tensor>)>, // x, choice, gate probs, hidden acts
}

impl MoeMlp {
    fn new(rng: &mut StdRng, d: usize, experts: usize, cfg: QuantConfig) -> Self {
        MoeMlp {
            gate: Linear::new(rng, d, experts, true, QuantConfig::fp32()),
            experts: (0..experts)
                .map(|_| {
                    (
                        Linear::new(rng, d, 2 * d, true, cfg),
                        Linear::new(rng, 2 * d, d, true, cfg),
                    )
                })
                .collect(),
            cache: None,
        }
    }

    fn set_quant(&mut self, cfg: QuantConfig) {
        for (a, b) in &mut self.experts {
            a.set_quant(cfg);
            b.set_quant(cfg);
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let n = x.rows();
        let d = x.cols();
        let gate_logits = self.gate.forward(x, train);
        let gate_probs = gate_logits.softmax_rows();
        let e = self.experts.len();
        let mut choice = Vec::with_capacity(n);
        for r in 0..n {
            let row = &gate_probs.data()[r * e..(r + 1) * e];
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty");
            choice.push(best);
        }
        let mut y = Tensor::zeros(&[n, d]);
        let mut hidden_acts = Vec::new();
        for (ei, (fc1, fc2)) in self.experts.iter_mut().enumerate() {
            let rows: Vec<usize> = (0..n).filter(|&r| choice[r] == ei).collect();
            if rows.is_empty() {
                hidden_acts.push(Tensor::zeros(&[0, 0]));
                continue;
            }
            let mut sub = Vec::with_capacity(rows.len() * d);
            for &r in &rows {
                sub.extend_from_slice(&x.data()[r * d..(r + 1) * d]);
            }
            let sub = Tensor::from_vec(sub, &[rows.len(), d]);
            let h = fc1.forward(&sub, train).map(|v| v.max(0.0));
            let out = fc2.forward(&h, train);
            let yd = y.data_mut();
            for (k, &r) in rows.iter().enumerate() {
                let p = gate_probs.data()[r * e + ei];
                for c in 0..d {
                    yd[r * d + c] = out.data()[k * d + c] * p;
                }
            }
            hidden_acts.push(h);
        }
        if train {
            self.cache = Some((x.clone(), choice, gate_probs, hidden_acts));
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (x, choice, gate_probs, hidden_acts) =
            self.cache.take().expect("backward before forward");
        let n = x.rows();
        let d = x.cols();
        let e = self.experts.len();
        let mut dx = Tensor::zeros(&[n, d]);
        let mut dgate_logits = Tensor::zeros(&[n, e]);
        for (ei, (fc1, fc2)) in self.experts.iter_mut().enumerate() {
            let rows: Vec<usize> = (0..n).filter(|&r| choice[r] == ei).collect();
            if rows.is_empty() {
                continue;
            }
            // Expert output gradient: dL/dout = grad * p; gate gradient via
            // dL/dp = grad . out, but out was not cached — recompute from the
            // cached hidden activations (cheap second matmul).
            let h = &hidden_acts[ei];
            let mut gsub = Vec::with_capacity(rows.len() * d);
            for &r in &rows {
                let p = gate_probs.data()[r * e + ei];
                for c in 0..d {
                    gsub.push(grad.data()[r * d + c] * p);
                }
            }
            let gsub = Tensor::from_vec(gsub, &[rows.len(), d]);
            // Gate prob gradient: out = fc2(relu(fc1(sub))).
            let out = quantized_matmul(h, &fc2.w.value, fc2.quant().fwd)
                .add_row(&fc2.b.as_ref().expect("bias").value);
            for (k, &r) in rows.iter().enumerate() {
                let mut dp = 0.0f32;
                for c in 0..d {
                    dp += grad.data()[r * d + c] * out.data()[k * d + c];
                }
                // Softmax backward restricted to the chosen logit (top-1
                // routing: straight-through on the winner).
                let p = gate_probs.data()[r * e + ei];
                let dgl = dgate_logits.data_mut();
                for j in 0..e {
                    let pj = gate_probs.data()[r * e + j];
                    let indicator = if j == ei { 1.0 } else { 0.0 };
                    dgl[r * e + j] += dp * p * (indicator - pj);
                }
            }
            let dh = fc2.backward(&gsub);
            let dh = dh.zip_map(h, |g, hv| if hv > 0.0 { g } else { 0.0 });
            let dsub = fc1.backward(&dh);
            let dxd = dx.data_mut();
            for (k, &r) in rows.iter().enumerate() {
                for c in 0..d {
                    dxd[r * d + c] += dsub.data()[k * d + c];
                }
            }
        }
        dx.add(&self.gate.backward(&dgate_logits))
    }
}

impl HasParams for MoeMlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gate.visit_params(f);
        for (a, b) in &mut self.experts {
            a.visit_params(f);
            b.visit_params(f);
        }
    }
}

/// A decoder-only transformer language model.
#[derive(Debug)]
pub struct Gpt {
    config: GptConfig,
    tok_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    moes: Vec<Option<MoeMlpWrapper>>,
    ln_f: LayerNorm,
    head: Linear,
}

/// Wrapper so Debug derives cleanly.
#[derive(Debug)]
struct MoeMlpWrapper(MoeMlp);

impl Gpt {
    /// Builds a model with the given quantization config.
    pub fn new(rng: &mut StdRng, config: GptConfig, qcfg: QuantConfig) -> Self {
        let blocks = (0..config.n_layers)
            .map(|_| TransformerBlock::new(rng, config.d_model, config.n_heads, true, qcfg))
            .collect();
        let moes = (0..config.n_layers)
            .map(|_| {
                (config.experts > 1)
                    .then(|| MoeMlpWrapper(MoeMlp::new(rng, config.d_model, config.experts, qcfg)))
            })
            .collect();
        Gpt {
            config,
            tok_emb: Embedding::new(rng, config.vocab, config.d_model),
            pos_emb: Embedding::new(rng, config.seq_len, config.d_model),
            blocks,
            moes,
            ln_f: LayerNorm::new(config.d_model, qcfg.elementwise),
            head: Linear::new(rng, config.d_model, config.vocab, false, qcfg),
        }
    }

    /// The architecture config.
    pub fn config(&self) -> GptConfig {
        self.config
    }

    /// Switches every tensor op to a new quantization config ("direct
    /// cast").
    pub fn set_quant(&mut self, qcfg: QuantConfig) {
        for b in &mut self.blocks {
            b.set_quant(qcfg);
        }
        for m in self.moes.iter_mut().flatten() {
            m.0.set_quant(qcfg);
        }
        self.head.set_quant(qcfg);
    }

    /// Lowers the inference forward into a [`CompiledPlan`] for a
    /// `batch × t` bucket under `cfg` (the config the server direct-casts
    /// to before every batch). The N transformer blocks dedupe into one
    /// template; the embedding tables and every weight plane are hoisted
    /// at plan time. Mixture-of-experts variants are unplannable (top-1
    /// routing is data-dependent) and fail with a typed error.
    pub fn compile_plan(
        &self,
        cfg: QuantConfig,
        batch: usize,
        t: usize,
    ) -> Result<CompiledPlan, PlanError> {
        if self.moes.iter().any(|m| m.is_some()) {
            return Err(PlanError::Unsupported(
                "mixture-of-experts routing is data-dependent",
            ));
        }
        if batch == 0 || t == 0 || t > self.config.seq_len {
            return Err(PlanError::Unsupported("bucket outside the context window"));
        }
        let d = self.config.d_model;
        let rows = batch * t;
        let mut p = Planner::new();
        p.embed_stage(&self.tok_emb, &self.pos_emb, rows, t)?;
        for blk in &self.blocks {
            p.transformer_block_stage(blk, cfg, batch, t)?;
        }
        let mut s = Stage::new(rows * d, rows * self.config.vocab);
        let normed = s.alloc(rows * d);
        s.norm(&self.ln_f, Loc::In, normed, rows);
        s.gemm(&self.head, normed, Loc::Out, rows, cfg, None)?;
        p.push_stage(s);
        p.finish()
    }

    /// Forward pass over `tokens` (`batch × seq`, flattened), returning
    /// logits `[batch*seq, vocab]`.
    pub fn forward(&mut self, tokens: &[usize], batch: usize, train: bool) -> Tensor {
        let t = tokens.len() / batch;
        assert!(t <= self.config.seq_len, "sequence too long");
        let tok = self.tok_emb.forward(tokens, train);
        let pos_idx: Vec<usize> = (0..batch).flat_map(|_| 0..t).collect();
        let pos = self.pos_emb.forward(&pos_idx, train);
        let mut x = tok.add(&pos).reshape(&[batch, t, self.config.d_model]);
        for (block, moe) in self.blocks.iter_mut().zip(self.moes.iter_mut()) {
            x = block.forward(&x, train);
            if let Some(m) = moe {
                let flat = x.reshape(&[batch * t, self.config.d_model]);
                let y = m.0.forward(&flat, train);
                x = x.add(&y.reshape(x.shape()));
            }
        }
        let x = self
            .ln_f
            .forward(&x.reshape(&[batch * t, self.config.d_model]), train);
        self.head.forward(&x, train)
    }

    /// Backward from the loss gradient on the logits.
    pub fn backward(&mut self, grad: &Tensor, batch: usize) {
        let t = grad.rows() / batch;
        let d = self.config.d_model;
        let g = self.head.backward(grad);
        let g = self.ln_f.backward(&g);
        let mut g = g.reshape(&[batch, t, d]);
        for (block, moe) in self.blocks.iter_mut().zip(self.moes.iter_mut()).rev() {
            if let Some(m) = moe {
                let flat = g.reshape(&[batch * t, d]);
                let dmoe = m.0.backward(&flat);
                g = g.add(&dmoe.reshape(g.shape()));
            }
            g = block.backward(&g);
        }
        let g2d = g.reshape(&[batch * t, d]);
        self.tok_emb.backward(&g2d);
        self.pos_emb.backward(&g2d);
    }

    /// One training step on a next-token batch; returns the LM loss (mean
    /// cross-entropy, natural log).
    pub fn train_step(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        opt: &mut Adam,
    ) -> f64 {
        self.zero_grads();
        let logits = self.forward(inputs, batch, true);
        let (loss, grad) = softmax_cross_entropy(&logits, targets);
        self.backward(&grad, batch);
        opt.step(self);
        loss
    }

    /// Mean LM loss over a held-out corpus slice (no gradients).
    pub fn evaluate(&mut self, corpus: &[usize], windows: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = self.config.seq_len;
        let mut total = 0.0f64;
        for _ in 0..windows {
            let o = rng.gen_range(0..corpus.len() - t - 1);
            let logits = self.forward(&corpus[o..o + t], 1, false);
            let (loss, _) = softmax_cross_entropy(&logits, &corpus[o + 1..o + t + 1]);
            total += loss;
        }
        total / windows as f64
    }

    /// Total log-probability of `tokens[1..]` given the running context —
    /// the scoring primitive behind the few-shot multiple-choice tasks.
    pub fn score(&mut self, tokens: &[usize]) -> f64 {
        let t = tokens.len().min(self.config.seq_len);
        let tokens = &tokens[tokens.len() - t..];
        let logits = self.forward(tokens, 1, false);
        let v = self.config.vocab;
        let mut total = 0.0f64;
        for i in 0..t - 1 {
            let row = &logits.data()[i * v..(i + 1) * v];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let logsum = max as f64
                + row
                    .iter()
                    .map(|&l| ((l - max) as f64).exp())
                    .sum::<f64>()
                    .ln();
            total += logits.data()[i * v + tokens[i + 1]] as f64 - logsum;
        }
        total
    }

    /// Greedy generation of `n` tokens after `prompt`.
    pub fn generate(&mut self, prompt: &[usize], n: usize) -> Vec<usize> {
        let mut seq = prompt.to_vec();
        for _ in 0..n {
            let t = seq.len().min(self.config.seq_len);
            let ctx = &seq[seq.len() - t..];
            let logits = self.forward(ctx, 1, false);
            let v = self.config.vocab;
            let row = &logits.data()[(t - 1) * v..t * v];
            let next = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty");
            seq.push(next);
        }
        seq
    }
}

impl HasParams for Gpt {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok_emb.visit_params(f);
        self.pos_emb.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        for m in self.moes.iter_mut().flatten() {
            m.0.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRun {
    /// Final training loss.
    pub final_loss: f64,
    /// Held-out evaluation loss.
    pub eval_loss: f64,
    /// Loss every `eval_every` iterations.
    pub curve: Vec<f64>,
}

/// Trains a GPT on the synthetic corpus; deterministic given seeds.
pub fn train_lm(
    config: GptConfig,
    qcfg: QuantConfig,
    corpus: &[usize],
    iters: usize,
    batch: usize,
    lr: f32,
    seed: u64,
) -> (Gpt, TrainingRun) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = Gpt::new(&mut rng, config, qcfg);
    let mut opt = Adam::new(lr);
    let mut data_rng = StdRng::seed_from_u64(seed ^ 0xdead);
    let mut curve = Vec::new();
    let mut loss_acc = 0.0;
    let mut final_loss = f64::NAN;
    let eval_every = (iters / 10).max(1);
    for i in 0..iters {
        let (x, y) = data::lm_batch(&mut data_rng, corpus, batch, config.seq_len);
        let loss = model.train_step(&x, &y, batch, &mut opt);
        loss_acc += loss;
        if (i + 1) % eval_every == 0 {
            curve.push(loss_acc / eval_every as f64);
            loss_acc = 0.0;
        }
        final_loss = loss;
    }
    let eval_loss = model.evaluate(corpus, 16, seed ^ 0xbeef);
    (
        model,
        TrainingRun {
            final_loss,
            eval_loss,
            curve,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_nn::TensorFormat;

    fn corpus() -> Vec<usize> {
        data::markov_corpus(1, 4000, 0.4)
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = Gpt::new(&mut rng, GptConfig::tiny(), QuantConfig::fp32());
        let tokens: Vec<usize> = (0..32).map(|i| i % data::LM_VOCAB).collect();
        let a = m.forward(&tokens, 2, false);
        assert_eq!(a.shape(), &[32, data::LM_VOCAB]);
        let b = m.forward(&tokens, 2, false);
        assert_eq!(a, b);
    }

    #[test]
    fn training_reduces_loss() {
        let c = corpus();
        let (_, run) = train_lm(GptConfig::tiny(), QuantConfig::fp32(), &c, 60, 4, 3e-3, 7);
        let first = run.curve.first().copied().expect("curve");
        assert!(
            run.eval_loss < first,
            "no learning: first {first} eval {}",
            run.eval_loss
        );
        // Better than the uniform baseline ln(24) ≈ 3.18.
        assert!(run.eval_loss < (data::LM_VOCAB as f64).ln());
    }

    #[test]
    fn mx9_training_tracks_fp32() {
        let c = corpus();
        let (_, fp32) = train_lm(GptConfig::tiny(), QuantConfig::fp32(), &c, 50, 4, 3e-3, 11);
        let (_, mx9) = train_lm(
            GptConfig::tiny(),
            QuantConfig::uniform(TensorFormat::MX9),
            &c,
            50,
            4,
            3e-3,
            11,
        );
        let gap = (fp32.eval_loss - mx9.eval_loss).abs();
        assert!(
            gap < 0.25,
            "MX9 diverged from FP32: {} vs {}",
            fp32.eval_loss,
            mx9.eval_loss
        );
    }

    #[test]
    fn score_prefers_likely_continuations() {
        let c = corpus();
        let (mut m, _) = train_lm(GptConfig::tiny(), QuantConfig::fp32(), &c, 80, 4, 3e-3, 13);
        // Score a real corpus fragment vs a shuffled one.
        let real: Vec<usize> = c[100..110].to_vec();
        let mut fake = real.clone();
        fake.reverse();
        let sr = m.score(&real);
        let sf = m.score(&fake);
        assert!(sr > sf, "real {sr} should beat shuffled {sf}");
    }

    #[test]
    fn generate_extends_prompt() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = Gpt::new(&mut rng, GptConfig::tiny(), QuantConfig::fp32());
        let out = m.generate(&[1, 2, 3], 5);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < data::LM_VOCAB));
    }

    #[test]
    fn moe_variant_trains() {
        let c = corpus();
        let cfg = GptConfig {
            experts: 4,
            ..GptConfig::tiny()
        };
        let (_, run) = train_lm(cfg, QuantConfig::fp32(), &c, 40, 4, 3e-3, 5);
        assert!(
            run.eval_loss < (data::LM_VOCAB as f64).ln() + 0.1,
            "MoE loss {}",
            run.eval_loss
        );
    }

    #[test]
    fn direct_cast_changes_outputs_but_not_much_for_mx9() {
        let c = corpus();
        let (mut m, _) = train_lm(GptConfig::tiny(), QuantConfig::fp32(), &c, 40, 4, 3e-3, 17);
        let base = m.evaluate(&c, 8, 99);
        m.set_quant(QuantConfig::weights_activations(
            TensorFormat::MX9,
            TensorFormat::MX9,
        ));
        let cast = m.evaluate(&c, 8, 99);
        assert!(
            (cast - base).abs() < 0.05,
            "MX9 direct cast moved loss {base} -> {cast}"
        );
        m.set_quant(QuantConfig::weights_activations(
            TensorFormat::MX4,
            TensorFormat::MX4,
        ));
        let cast4 = m.evaluate(&c, 8, 99);
        assert!(cast4 > cast, "MX4 cast should be worse: {cast4} vs {cast}");
    }

    #[test]
    fn ladder_configs_grow() {
        let mut prev = 0;
        for step in 0..5 {
            let c = GptConfig::ladder(step);
            let mut rng = StdRng::seed_from_u64(0);
            let mut m = Gpt::new(&mut rng, c, QuantConfig::fp32());
            let n = m.param_count();
            assert!(n > prev, "ladder step {step} did not grow: {n}");
            prev = n;
        }
    }
}
