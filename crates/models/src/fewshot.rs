//! Zero/few-shot multiple-choice evaluation (Table IV): score answer
//! candidates by language-model likelihood, optionally prepending k solved
//! examples. The four synthetic suites mirror the difficulty spread of the
//! paper's tasks (Hellaswag-like continuation, WIC-like near-chance
//! disambiguation, ANLI-like, Winogrande-like).

use crate::data;
use crate::gpt::Gpt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One multiple-choice item: a prompt and two candidate continuations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceItem {
    /// Prompt tokens.
    pub prompt: Vec<usize>,
    /// Candidate continuations (first is not necessarily correct).
    pub choices: Vec<Vec<usize>>,
    /// Index of the correct choice.
    pub answer: usize,
}

/// Task families with different signal strengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Continuation: real corpus continuation vs corrupted (strong signal —
    /// Hellaswag-like).
    Continuation,
    /// Same-context disambiguation with very weak signal (WIC-like,
    /// near-chance).
    Disambiguation,
    /// Mid-difficulty: continuation vs continuation from elsewhere
    /// (ANLI-like).
    Adversarial,
    /// Local coherence: choose the fragment whose bigrams fit (Winogrande-
    /// like).
    Coherence,
}

impl Task {
    /// All four suites in Table IV order.
    pub fn all() -> [Task; 4] {
        [
            Task::Continuation,
            Task::Disambiguation,
            Task::Adversarial,
            Task::Coherence,
        ]
    }

    /// Display name mapping to the paper's benchmark each suite stands in
    /// for.
    pub fn name(&self) -> &'static str {
        match self {
            Task::Continuation => "Hellaswag-syn",
            Task::Disambiguation => "WIC-syn",
            Task::Adversarial => "ANLI-r2-syn",
            Task::Coherence => "Winogrande-syn",
        }
    }
}

/// Builds `n` items of a task from a corpus.
pub fn build_items(task: Task, corpus: &[usize], n: usize, seed: u64) -> Vec<ChoiceItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let o = rng.gen_range(8..corpus.len() - 16);
            let prompt = corpus[o..o + 6].to_vec();
            let real = corpus[o + 6..o + 10].to_vec();
            let fake = match task {
                Task::Continuation => {
                    // Corrupt half the real continuation: rejecting it needs
                    // a calibrated model, not just vocabulary statistics.
                    let mut f = real.clone();
                    f[1] = rng.gen_range(0..data::LM_VOCAB);
                    f[3] = rng.gen_range(0..data::LM_VOCAB);
                    f
                }
                Task::Disambiguation => {
                    // A continuation sampled from *the same Markov state*
                    // elsewhere in the corpus: statistically as likely as
                    // the real one, so the task hovers near chance (like
                    // WIC for the paper's models).
                    let last = prompt[prompt.len() - 1];
                    let alt = (0..corpus.len() - 5)
                        .cycle()
                        .skip(rng.gen_range(0..corpus.len() - 5))
                        .take(corpus.len())
                        .find(|&i| corpus[i] == last && i != o + 5)
                        .map(|i| corpus[i + 1..i + 5].to_vec())
                        .unwrap_or_else(|| real.clone());
                    if alt == real {
                        let mut f = real.clone();
                        f[3] = (f[3] + 1) % data::LM_VOCAB;
                        f
                    } else {
                        alt
                    }
                }
                Task::Adversarial => {
                    // A genuine corpus fragment from elsewhere: plausible
                    // but contextually wrong.
                    let o2 = rng.gen_range(0..corpus.len() - 4);
                    corpus[o2..o2 + 4].to_vec()
                }
                Task::Coherence => {
                    // Reverse the real continuation: locally incoherent.
                    let mut f = real.clone();
                    f.reverse();
                    f
                }
            };
            // Guard against coincidental equality (short fragments over a
            // small vocabulary collide occasionally).
            let fake = if fake == real {
                let mut f = fake;
                f[0] = (f[0] + 1) % data::LM_VOCAB;
                f
            } else {
                fake
            };
            let answer = rng.gen_range(0..2);
            let choices = if answer == 0 {
                vec![real, fake]
            } else {
                vec![fake, real]
            };
            ChoiceItem {
                prompt,
                choices,
                answer,
            }
        })
        .collect()
}

/// Accuracy of `model` on `items` with `shots` solved examples prepended to
/// every prompt.
pub fn evaluate(model: &mut Gpt, items: &[ChoiceItem], shots: usize) -> f64 {
    let demos: Vec<&ChoiceItem> = items.iter().take(shots).collect();
    let eval_items = &items[shots..];
    let mut correct = 0usize;
    for item in eval_items {
        let mut context = Vec::new();
        for d in &demos {
            context.extend_from_slice(&d.prompt);
            context.extend_from_slice(&d.choices[d.answer]);
        }
        context.extend_from_slice(&item.prompt);
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (ci, choice) in item.choices.iter().enumerate() {
            let mut seq = context.clone();
            seq.extend_from_slice(choice);
            // Length-normalized continuation likelihood.
            let with = model.score(&seq);
            let without = model.score(&context);
            let score = (with - without) / choice.len() as f64;
            if score > best_score {
                best_score = score;
                best = ci;
            }
        }
        if best == item.answer {
            correct += 1;
        }
    }
    correct as f64 / eval_items.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpt::{train_lm, GptConfig};
    use mx_nn::qflow::QuantConfig;

    #[test]
    fn items_are_well_formed() {
        let corpus = data::markov_corpus(1, 2000, 0.5);
        for task in Task::all() {
            let items = build_items(task, &corpus, 20, 9);
            assert_eq!(items.len(), 20);
            for it in &items {
                assert_eq!(it.choices.len(), 2);
                assert!(it.answer < 2);
                assert_ne!(it.choices[0], it.choices[1], "{task:?} degenerate item");
            }
        }
    }

    #[test]
    fn trained_model_beats_chance_on_continuation() {
        let corpus = data::markov_corpus(2, 4000, 0.4);
        let (mut model, _) = train_lm(
            GptConfig::tiny(),
            QuantConfig::fp32(),
            &corpus,
            100,
            4,
            3e-3,
            3,
        );
        let items = build_items(Task::Continuation, &corpus, 40, 5);
        let acc = evaluate(&mut model, &items, 0);
        assert!(
            acc > 0.6,
            "continuation accuracy {acc:.2} should beat chance"
        );
    }

    #[test]
    fn disambiguation_is_near_chance() {
        let corpus = data::markov_corpus(2, 4000, 0.4);
        let (mut model, _) = train_lm(
            GptConfig::tiny(),
            QuantConfig::fp32(),
            &corpus,
            60,
            4,
            3e-3,
            3,
        );
        let items = build_items(Task::Disambiguation, &corpus, 40, 5);
        let acc = evaluate(&mut model, &items, 0);
        assert!(
            (0.2..=0.8).contains(&acc),
            "WIC-like accuracy {acc:.2} should hover near 0.5"
        );
    }

    #[test]
    fn few_shot_uses_context() {
        let corpus = data::markov_corpus(2, 4000, 0.4);
        let (mut model, _) = train_lm(
            GptConfig::tiny(),
            QuantConfig::fp32(),
            &corpus,
            40,
            4,
            3e-3,
            3,
        );
        let items = build_items(Task::Continuation, &corpus, 20, 7);
        // Just verify the k-shot path runs and returns a valid accuracy.
        for shots in [0, 1, 2] {
            let acc = evaluate(&mut model, &items, shots);
            assert!((0.0..=1.0).contains(&acc));
        }
    }
}
