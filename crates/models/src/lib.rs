//! # mx-models — the MX paper's benchmark suite at laptop scale
//!
//! Scaled-down, synthetic-data instantiations of every model family in the
//! paper's evaluation (§VI): generative transformers with optional MoE
//! ([`gpt`]), encoder QA ([`bert`]), GRU and transformer translation
//! ([`translate`]), vision transformers and CNNs ([`vision`]), denoising
//! diffusion ([`diffusion`]), speech recognition ([`speech`]), and three
//! recommendation topologies ([`recsys`]) — plus the zero/few-shot
//! multiple-choice harness ([`fewshot`]), seeded dataset generators
//! ([`data`]), the evaluation metrics ([`metrics`]), and the batched
//! serving entry point over the zoo ([`zoo::BatchModel`], consumed by
//! `mx-serve`).
//!
//! Every model takes an [`mx_nn::QuantConfig`], so the same code runs the
//! FP32 baseline, MX9/MX6/MX4 training, direct-cast inference, and
//! quantization-aware fine-tuning. DESIGN.md §4 documents how each synthetic
//! task preserves the behaviour the paper's full-scale benchmark exercises.
//!
//! ## Example
//!
//! ```no_run
//! use mx_models::gpt::{train_lm, GptConfig};
//! use mx_models::data::markov_corpus;
//! use mx_nn::{QuantConfig, TensorFormat};
//!
//! let corpus = markov_corpus(0, 20_000, 0.4);
//! let (_m, fp32) = train_lm(GptConfig::tiny(), QuantConfig::fp32(), &corpus, 300, 8, 3e-3, 1);
//! let (_m, mx9) = train_lm(
//!     GptConfig::tiny(),
//!     QuantConfig::uniform(TensorFormat::MX9),
//!     &corpus,
//!     300,
//!     8,
//!     3e-3,
//!     1,
//! );
//! println!("FP32 {:.3} vs MX9 {:.3}", fp32.eval_loss, mx9.eval_loss);
//! ```

#![warn(missing_docs)]

pub mod bert;
pub mod data;
pub mod diffusion;
pub mod fewshot;
pub mod gpt;
pub mod metrics;
pub mod recsys;
pub mod speech;
pub mod translate;
pub mod vision;
pub mod zoo;
