//! Neural machine translation benchmarks (the Table III "Language
//! Translation" family): a GRU encoder–decoder (GNMT stand-in) and a
//! transformer translator (decoder-only over `source ⟨sep⟩ target`,
//! Transformer-Base/Large stand-ins), evaluated with BLEU.

use crate::data::{self, TranslationPair};
use crate::metrics::bleu;
use mx_nn::layers::{Embedding, Layer, Linear};
use mx_nn::loss::softmax_cross_entropy;
use mx_nn::optim::Adam;
use mx_nn::param::{HasParams, Param};
use mx_nn::qflow::QuantConfig;
use mx_nn::rnn::Gru;
use mx_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Extended vocabulary: task tokens plus BOS.
const BOS: usize = data::TRANSLATE_VOCAB;
const VOCAB: usize = data::TRANSLATE_VOCAB + 1;

/// GRU encoder–decoder translator (the GNMT-family stand-in).
#[derive(Debug)]
pub struct GruTranslator {
    emb: Embedding,
    encoder: Gru,
    decoder: Gru,
    head: Linear,
    hidden: usize,
}

impl GruTranslator {
    /// Builds the model.
    pub fn new(rng: &mut StdRng, hidden: usize, qcfg: QuantConfig) -> Self {
        GruTranslator {
            emb: Embedding::new(rng, VOCAB, hidden),
            encoder: Gru::new(rng, hidden, hidden, qcfg),
            decoder: Gru::new(rng, hidden, hidden, qcfg),
            head: Linear::new(rng, hidden, VOCAB, true, qcfg),
            hidden,
        }
    }

    /// Switches the quantization config everywhere.
    pub fn set_quant(&mut self, qcfg: QuantConfig) {
        self.encoder.set_quant(qcfg);
        self.decoder.set_quant(qcfg);
        self.head.set_quant(qcfg);
    }

    fn embed(&mut self, tokens: &[usize], train: bool) -> Tensor {
        let e = self.emb.forward(tokens, train);
        e.reshape(&[1, tokens.len(), self.hidden])
    }

    /// Encoder state index the decoder attends to at target step `t`
    /// (location-based monotone-reverse alignment; GNMT learns this same
    /// alignment via attention, we wire it structurally to keep the model
    /// tiny).
    fn align(t_src: usize, t: usize) -> usize {
        t_src - 1 - t.min(t_src - 1)
    }

    /// Teacher-forced training step on one pair; returns the loss.
    pub fn train_step(&mut self, pair: &TranslationPair, opt: &mut Adam) -> f64 {
        self.zero_grads();
        let src = self.embed(&pair.source, true);
        let enc = self.encoder.forward_sequence(&src, true);
        let t_src = pair.source.len();
        let t_tgt = pair.target.len();
        let mut dec_tokens = vec![BOS];
        dec_tokens.extend_from_slice(&pair.target[..t_tgt - 1]);
        let dec_in = self.embed(&dec_tokens, true);
        // Condition each decoder step on its aligned encoder state.
        let mut cond = dec_in.clone();
        {
            let cd = cond.data_mut();
            for t in 0..t_tgt {
                let s = Self::align(t_src, t);
                for c in 0..self.hidden {
                    cd[t * self.hidden + c] += enc.data()[s * self.hidden + c];
                }
            }
        }
        let cond = cond.reshape(&[1, t_tgt, self.hidden]);
        let dec = self.decoder.forward_sequence(&cond, true);
        let dec2d = dec.reshape(&[t_tgt, self.hidden]);
        let logits = self.head.forward(&dec2d, true);
        let (loss, grad) = softmax_cross_entropy(&logits, &pair.target);
        // Backward.
        let g = self.head.backward(&grad);
        let g3d = g.reshape(&[1, t_tgt, self.hidden]);
        let g_cond = self.decoder.backward_sequence(&g3d);
        let mut g_enc = Tensor::zeros(&[1, t_src, self.hidden]);
        {
            let ge = g_enc.data_mut();
            for t in 0..t_tgt {
                let s = Self::align(t_src, t);
                for c in 0..self.hidden {
                    ge[s * self.hidden + c] += g_cond.data()[t * self.hidden + c];
                }
            }
        }
        let g_src = self.encoder.backward_sequence(&g_enc);
        // Embedding gradients: decoder tokens, then source tokens (re-run
        // the lookup so the scatter cache matches each gradient).
        self.emb.backward(&g_cond.reshape(&[t_tgt, self.hidden]));
        let _ = self.emb.forward(&pair.source, true);
        self.emb.backward(&g_src.reshape(&[t_src, self.hidden]));
        self.clip_grad_norm(5.0);
        opt.step(self);
        loss
    }

    /// Greedy decode of `len` target tokens for a source sequence.
    pub fn translate(&mut self, source: &[usize], len: usize) -> Vec<usize> {
        let src = self.embed(source, false);
        let enc = self.encoder.forward_sequence(&src, false);
        let t_src = source.len();
        let mut out = Vec::with_capacity(len);
        let mut prev = BOS;
        let mut h = Tensor::zeros(&[1, self.hidden]);
        for t in 0..len {
            let e = self.emb.forward(&[prev], false);
            let mut x = e.clone();
            let s = Self::align(t_src, t);
            let enc_row = &enc.data()[s * self.hidden..(s + 1) * self.hidden];
            for (xv, &ev) in x.data_mut().iter_mut().zip(enc_row.iter()) {
                *xv += ev;
            }
            h = self.decoder.step(&x, &h, false);
            let logits = self.head.forward(&h, false);
            prev = logits
                .data()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty");
            out.push(prev);
        }
        out
    }
}

impl HasParams for GruTranslator {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.emb.visit_params(f);
        self.encoder.visit_params(f);
        self.decoder.visit_params(f);
        self.head.visit_params(f);
    }
}

/// Result of a translation benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslationResult {
    /// BLEU on held-out pairs.
    pub bleu: f64,
    /// Final training loss.
    pub final_loss: f64,
}

/// Trains a GRU translator and reports held-out BLEU.
pub fn run_gru_translation(
    qcfg: QuantConfig,
    hidden: usize,
    iters: usize,
    seed: u64,
) -> TranslationResult {
    let pairs = data::translation_pairs(seed ^ 0x7a41, 256, 6);
    let (train, test) = pairs.split_at(224);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = GruTranslator::new(&mut rng, hidden, qcfg);
    let mut opt = Adam::new(5e-3);
    let mut loss = f64::NAN;
    for i in 0..iters {
        let pair = &train[i % train.len()];
        loss = model.train_step(pair, &mut opt);
    }
    let mut cands = Vec::new();
    let mut refs = Vec::new();
    for p in test {
        cands.push(model.translate(&p.source, p.target.len()));
        refs.push(p.target.clone());
    }
    TranslationResult {
        bleu: bleu(&cands, &refs),
        final_loss: loss,
    }
}

/// Trains a decoder-only transformer translator (`source ⟨sep⟩ target`
/// sequences trained as a language model) and reports held-out BLEU — the
/// Transformer-Base/Large stand-in; `d_model` scales the size.
pub fn run_transformer_translation(
    qcfg: QuantConfig,
    d_model: usize,
    n_layers: usize,
    iters: usize,
    seed: u64,
) -> TranslationResult {
    use crate::gpt::{Gpt, GptConfig};
    let pair_len = 5usize;
    let pairs = data::translation_pairs(seed ^ 0x7a41, 256, pair_len);
    let (train, test) = pairs.split_at(224);
    let seq_len = 2 * pair_len + 1;
    let config = GptConfig {
        vocab: VOCAB,
        d_model,
        n_heads: (d_model / 16).max(1),
        n_layers,
        seq_len,
        experts: 0,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = Gpt::new(&mut rng, config, qcfg);
    let mut opt = Adam::new(3e-3);
    let encode = |p: &TranslationPair| -> Vec<usize> {
        let mut s = p.source.clone();
        s.push(BOS);
        s.extend_from_slice(&p.target);
        s
    };
    let mut loss = f64::NAN;
    for i in 0..iters {
        let batch: Vec<&TranslationPair> =
            (0..4).map(|k| &train[(i * 4 + k) % train.len()]).collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for p in batch {
            let s = encode(p);
            xs.extend_from_slice(&s[..s.len() - 1]);
            ys.extend_from_slice(&s[1..]);
        }
        loss = model.train_step(&xs, &ys, 4, &mut opt);
    }
    let mut cands = Vec::new();
    let mut refs = Vec::new();
    for p in test {
        let mut prompt = p.source.clone();
        prompt.push(BOS);
        let full = model.generate(&prompt, p.target.len());
        cands.push(full[prompt.len()..].to_vec());
        refs.push(p.target.clone());
    }
    TranslationResult {
        bleu: bleu(&cands, &refs),
        final_loss: loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_nn::TensorFormat;

    #[test]
    fn gru_translator_learns_the_cipher() {
        let r = run_gru_translation(QuantConfig::fp32(), 32, 600, 3);
        assert!(r.bleu > 30.0, "GRU BLEU too low: {:.1}", r.bleu);
    }

    #[test]
    fn transformer_translator_learns_the_cipher() {
        let r = run_transformer_translation(QuantConfig::fp32(), 32, 2, 150, 3);
        assert!(r.bleu > 30.0, "Transformer BLEU too low: {:.1}", r.bleu);
    }

    #[test]
    fn mx9_matches_fp32_translation() {
        let base = run_gru_translation(QuantConfig::fp32(), 24, 300, 5);
        let mx9 = run_gru_translation(QuantConfig::uniform(TensorFormat::MX9), 24, 300, 5);
        assert!(
            (base.bleu - mx9.bleu).abs() < 12.0,
            "MX9 BLEU {:.1} vs FP32 {:.1}",
            mx9.bleu,
            base.bleu
        );
    }

    #[test]
    fn translate_output_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = GruTranslator::new(&mut rng, 16, QuantConfig::fp32());
        let out = m.translate(&[1, 2, 3], 3);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|&t| t < VOCAB));
    }
}
