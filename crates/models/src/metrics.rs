//! Evaluation metrics used across the Table III–VII experiments: BLEU,
//! top-1 accuracy, AUC, normalized entropy, Fréchet distance, exact-match /
//! F1 for spans, and word error rate.

/// BLEU score (n-gram precision up to 4 with brevity penalty), in the
/// conventional 0–100 range, averaged over candidate/reference pairs.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn bleu(candidates: &[Vec<usize>], references: &[Vec<usize>]) -> f64 {
    assert_eq!(candidates.len(), references.len());
    let max_n = 4;
    let mut match_counts = vec![0usize; max_n];
    let mut cand_counts = vec![0usize; max_n];
    let mut cand_len = 0usize;
    let mut ref_len = 0usize;
    for (c, r) in candidates.iter().zip(references.iter()) {
        cand_len += c.len();
        ref_len += r.len();
        for n in 1..=max_n {
            if c.len() < n {
                continue;
            }
            cand_counts[n - 1] += c.len() - n + 1;
            // Clipped n-gram matches.
            let mut ref_grams: Vec<(&[usize], usize)> = Vec::new();
            if r.len() >= n {
                for g in r.windows(n) {
                    match ref_grams.iter_mut().find(|(k, _)| *k == g) {
                        Some((_, cnt)) => *cnt += 1,
                        None => ref_grams.push((g, 1)),
                    }
                }
            }
            for g in c.windows(n) {
                if let Some((_, cnt)) = ref_grams.iter_mut().find(|(k, _)| *k == g) {
                    if *cnt > 0 {
                        *cnt -= 1;
                        match_counts[n - 1] += 1;
                    }
                }
            }
        }
    }
    // No unigram overlap at all: the candidate is unrelated.
    if match_counts[0] == 0 {
        return 0.0;
    }
    // Smoothed precisions for higher orders (Lin & Och style: 0.5 counts
    // for orders with no matches), standard for short-segment BLEU.
    let mut log_precision = 0.0f64;
    let mut orders = 0usize;
    for n in 0..max_n {
        if cand_counts[n] == 0 {
            continue;
        }
        let p = if match_counts[n] > 0 {
            match_counts[n] as f64 / cand_counts[n] as f64
        } else {
            0.5 / cand_counts[n] as f64
        };
        log_precision += p.ln();
        orders += 1;
    }
    let bp = if cand_len >= ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / cand_len as f64).exp()
    };
    100.0 * bp * (log_precision / orders.max(1) as f64).exp()
}

/// Top-1 classification accuracy given logits `[n, classes]` (row-major) and
/// integer labels.
pub fn top1_accuracy(logits: &[f32], classes: usize, labels: &[usize]) -> f64 {
    assert_eq!(logits.len(), classes * labels.len());
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits[i * classes..(i + 1) * classes];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(j, _)| j)
            .expect("nonempty row");
        if pred == label {
            correct += 1;
        }
    }
    correct as f64 / labels.len().max(1) as f64
}

/// Area under the ROC curve from scores and boolean labels (rank statistic;
/// ties get half credit).
pub fn auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    // Sum of ranks of positives (1-based, averaging tied groups).
    let mut rank_sum = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum - positives as f64 * (positives as f64 + 1.0) / 2.0)
        / (positives as f64 * negatives as f64)
}

/// Normalized [cross] entropy: logloss divided by the entropy of the base
/// click rate — the recommendation-model metric of Table VI (lower is
/// better; 1.0 = no better than predicting the base rate).
pub fn normalized_entropy(probs: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    let n = labels.len().max(1) as f64;
    let base = labels.iter().filter(|&&l| l).count() as f64 / n;
    let base = base.clamp(1e-6, 1.0 - 1e-6);
    let base_entropy = -(base * base.ln() + (1.0 - base) * (1.0 - base).ln());
    let mut ll = 0.0f64;
    for (&p, &y) in probs.iter().zip(labels.iter()) {
        let p = (p as f64).clamp(1e-7, 1.0 - 1e-7);
        ll -= if y { p.ln() } else { (1.0 - p).ln() };
    }
    (ll / n) / base_entropy
}

/// Fréchet distance between Gaussians fitted to two 2-D point clouds (what
/// FID computes on feature embeddings; here the raw points are the
/// features — see DESIGN.md §4).
pub fn frechet_distance_2d(a: &[[f32; 2]], b: &[[f32; 2]]) -> f64 {
    let stats = |pts: &[[f32; 2]]| -> ([f64; 2], [[f64; 2]; 2]) {
        let n = pts.len().max(1) as f64;
        let mut mean = [0.0f64; 2];
        for p in pts {
            mean[0] += p[0] as f64 / n;
            mean[1] += p[1] as f64 / n;
        }
        let mut cov = [[0.0f64; 2]; 2];
        for p in pts {
            let d = [p[0] as f64 - mean[0], p[1] as f64 - mean[1]];
            for i in 0..2 {
                for j in 0..2 {
                    cov[i][j] += d[i] * d[j] / n;
                }
            }
        }
        (mean, cov)
    };
    let (m1, c1) = stats(a);
    let (m2, c2) = stats(b);
    let mean_term = (m1[0] - m2[0]).powi(2) + (m1[1] - m2[1]).powi(2);
    // tr(C1 + C2 - 2 (C1 C2)^{1/2}) via the closed form for 2x2 SPD
    // matrices: tr(sqrt(M)) = sqrt(tr(M) + 2 sqrt(det M)).
    let prod = [
        [
            c1[0][0] * c2[0][0] + c1[0][1] * c2[1][0],
            c1[0][0] * c2[0][1] + c1[0][1] * c2[1][1],
        ],
        [
            c1[1][0] * c2[0][0] + c1[1][1] * c2[1][0],
            c1[1][0] * c2[0][1] + c1[1][1] * c2[1][1],
        ],
    ];
    let tr_prod = prod[0][0] + prod[1][1];
    let det_prod = (prod[0][0] * prod[1][1] - prod[0][1] * prod[1][0]).max(0.0);
    let tr_sqrt = (tr_prod + 2.0 * det_prod.sqrt()).max(0.0).sqrt();
    mean_term + c1[0][0] + c1[1][1] + c2[0][0] + c2[1][1] - 2.0 * tr_sqrt
}

/// Exact-match and token-level F1 for predicted vs gold spans
/// `(start, end)` inclusive — the SQuAD-style metrics of Table V.
pub fn span_em_f1(pred: &[(usize, usize)], gold: &[(usize, usize)]) -> (f64, f64) {
    assert_eq!(pred.len(), gold.len());
    let mut em = 0.0f64;
    let mut f1 = 0.0f64;
    for (&(ps, pe), &(gs, ge)) in pred.iter().zip(gold.iter()) {
        if ps == gs && pe == ge {
            em += 1.0;
        }
        let overlap_start = ps.max(gs);
        let overlap_end = pe.min(ge);
        if overlap_end < overlap_start {
            continue;
        }
        let overlap = overlap_end - overlap_start + 1;
        let p_len = pe - ps + 1;
        let g_len = ge - gs + 1;
        let precision = overlap as f64 / p_len as f64;
        let recall = overlap as f64 / g_len as f64;
        f1 += 2.0 * precision * recall / (precision + recall);
    }
    let n = pred.len().max(1) as f64;
    (100.0 * em / n, 100.0 * f1 / n)
}

/// Word error rate: Levenshtein distance between hypothesis and reference,
/// normalized by reference length, averaged and scaled to percent.
pub fn word_error_rate(hyps: &[Vec<usize>], refs: &[Vec<usize>]) -> f64 {
    assert_eq!(hyps.len(), refs.len());
    let mut total_edits = 0usize;
    let mut total_len = 0usize;
    for (h, r) in hyps.iter().zip(refs.iter()) {
        total_edits += edit_distance(h, r);
        total_len += r.len();
    }
    100.0 * total_edits as f64 / total_len.max(1) as f64
}

fn edit_distance(a: &[usize], b: &[usize]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bleu_perfect_and_zero() {
        let c = vec![vec![1, 2, 3, 4, 5]];
        assert!((bleu(&c, &c) - 100.0).abs() < 1e-9);
        let r = vec![vec![6, 7, 8, 9, 10]];
        assert_eq!(bleu(&c, &r), 0.0);
    }

    #[test]
    fn bleu_partial_overlap_is_between() {
        let c = vec![vec![1, 2, 3, 9, 9, 9, 9]];
        let r = vec![vec![1, 2, 3, 4, 5, 6, 7]];
        let s = bleu(&c, &r);
        assert!(s > 0.0 && s < 100.0, "{s}");
        // More overlap scores higher.
        let c2 = vec![vec![1, 2, 3, 4, 5, 9, 9]];
        assert!(bleu(&c2, &r) > s);
    }

    #[test]
    fn bleu_brevity_penalty() {
        // A too-short candidate with perfect n-gram precision is penalized.
        let c = vec![vec![1, 2, 3, 4, 5]];
        let r = vec![vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]];
        let s = bleu(&c, &r);
        assert!(s < 100.0 * (1.0 - 2.0f64).exp() + 1.0, "{s}");
    }

    #[test]
    fn top1_counts_correct_rows() {
        let logits = vec![1.0, 2.0, /* pred 1 */ 5.0, 0.0 /* pred 0 */];
        assert_eq!(top1_accuracy(&logits, 2, &[1, 1]), 0.5);
    }

    #[test]
    fn auc_perfect_random_inverted() {
        let labels = [true, true, false, false];
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &labels), 1.0);
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &labels), 0.0);
        let tied = auc(&[0.5, 0.5, 0.5, 0.5], &labels);
        assert!((tied - 0.5).abs() < 1e-9);
    }

    #[test]
    fn normalized_entropy_of_base_rate_is_one() {
        let labels: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect();
        let probs = vec![0.25f32; 100];
        let ne = normalized_entropy(&probs, &labels);
        assert!((ne - 1.0).abs() < 1e-6, "{ne}");
        // Perfect predictions get NE near 0.
        let perfect: Vec<f32> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        assert!(normalized_entropy(&perfect, &labels) < 0.01);
    }

    #[test]
    fn frechet_identical_clouds_is_zero() {
        let (pts, _) = crate::data::gaussian_mixture_2d(1, 500);
        let d = frechet_distance_2d(&pts, &pts);
        assert!(d.abs() < 1e-6, "{d}");
        // A shifted cloud has distance ~ shift^2.
        let shifted: Vec<[f32; 2]> = pts.iter().map(|p| [p[0] + 3.0, p[1]]).collect();
        let d = frechet_distance_2d(&pts, &shifted);
        assert!((d - 9.0).abs() < 0.5, "{d}");
    }

    #[test]
    fn span_metrics() {
        let (em, f1) = span_em_f1(&[(2, 4), (5, 6)], &[(2, 4), (7, 8)]);
        assert_eq!(em, 50.0);
        assert!((50.0 - 1e-9..100.0).contains(&f1));
        // Half-overlapping span gets partial F1.
        let (_, f1) = span_em_f1(&[(0, 3)], &[(2, 5)]);
        assert!((f1 - 50.0).abs() < 1.0, "{f1}");
    }

    #[test]
    fn wer_basics() {
        let r = vec![vec![1, 2, 3, 4]];
        assert_eq!(word_error_rate(&r, &r), 0.0);
        let h = vec![vec![1, 9, 3, 4]];
        assert_eq!(word_error_rate(&h, &r), 25.0);
        let h = vec![vec![1, 2, 3]];
        assert_eq!(word_error_rate(&h, &r), 25.0);
    }
}
