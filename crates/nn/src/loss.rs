//! Loss functions returning `(loss, dL/dlogits)` pairs.

use crate::tensor::Tensor;

/// Softmax cross-entropy over logits `[N, C]` with integer class targets.
///
/// Returns the mean loss (natural log) and the gradient w.r.t. the logits.
///
/// # Panics
///
/// Panics if `targets.len()` differs from the number of rows or a target is
/// out of range.
///
/// # Examples
///
/// ```
/// # use mx_nn::loss::softmax_cross_entropy;
/// # use mx_nn::tensor::Tensor;
/// let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0, 10.0], &[2, 2]);
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0, 1]);
/// assert!(loss < 0.01); // confidently correct
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f64, Tensor) {
    let n = logits.rows();
    let c = logits.cols();
    assert_eq!(targets.len(), n, "one target per row");
    let probs = logits.softmax_rows();
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < c, "target {t} out of range {c}");
        let p = probs.data()[i * c + t].max(1e-12);
        loss -= (p as f64).ln();
        grad.data_mut()[i * c + t] -= 1.0;
    }
    let scale = 1.0 / n as f32;
    (loss / n as f64, grad.scale(scale))
}

/// Mean squared error between `pred` and `target` (same shape).
///
/// Returns `mean((pred-target)^2)` and `dL/dpred`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f64, Tensor) {
    assert_eq!(pred.shape(), target.shape());
    let n = pred.numel().max(1);
    let diff = pred.sub(target);
    let loss = diff.sq_norm() / n as f64;
    let grad = diff.scale(2.0 / n as f32);
    (loss, grad)
}

/// Binary cross-entropy with logits: `logits` is `[N]` or `[N,1]`, `targets`
/// in `{0.0, 1.0}` (soft labels allowed).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn bce_with_logits(logits: &Tensor, targets: &[f32]) -> (f64, Tensor) {
    assert_eq!(logits.numel(), targets.len());
    let n = targets.len().max(1);
    let mut grad = logits.clone();
    let mut loss = 0.0f64;
    for (g, (&x, &y)) in grad
        .data_mut()
        .iter_mut()
        .zip(logits.data().iter().zip(targets))
    {
        // Numerically stable: log(1+e^-|x|) + max(x,0) - x*y.
        let max_part = x.max(0.0) as f64;
        loss += max_part + ((-(x.abs() as f64)).exp() + 1.0).ln() - (x as f64) * y as f64;
        let p = 1.0 / (1.0 + (-x).exp());
        *g = (p - y) / n as f32;
    }
    (loss / n as f64, grad)
}

/// Perplexity from a mean natural-log cross-entropy loss.
pub fn perplexity(mean_ce: f64) -> f64 {
    mean_ce.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(&[3, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1, 2]);
        assert!((loss - 4.0f64.ln()).abs() < 1e-6);
        // Gradient rows sum to zero.
        for r in 0..3 {
            let s: f32 = grad.data()[r * 4..(r + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits = Tensor::from_vec(vec![0.2, -0.5, 1.0, 0.7, 0.1, -0.3, 0.9, -1.1], &[2, 4]);
        let targets = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (a, _) = softmax_cross_entropy(&lp, &targets);
            let (b, _) = softmax_cross_entropy(&lm, &targets);
            let num = ((a - b) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - grad.data()[i]).abs() < 1e-4,
                "at {i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn mse_known_values() {
        let p = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let t = Tensor::from_vec(vec![0.0, 4.0], &[2]);
        let (loss, grad) = mse_loss(&p, &t);
        assert!((loss - 2.5).abs() < 1e-9); // (1 + 4)/2
        assert_eq!(grad.data(), &[1.0, -2.0]);
    }

    #[test]
    fn bce_matches_manual() {
        let logits = Tensor::from_vec(vec![0.0, 3.0, -3.0], &[3]);
        let (loss, grad) = bce_with_logits(&logits, &[1.0, 1.0, 0.0]);
        // Manual: -ln(sigmoid(0)) = ln 2; -ln(sigmoid(3)); -ln(1-sigmoid(-3)).
        let expect =
            (2.0f64.ln() + (1.0 + (-3.0f64).exp()).ln() + (1.0 + (-3.0f64).exp()).ln()) / 3.0;
        assert!((loss - expect).abs() < 1e-9, "{loss} vs {expect}");
        // Gradient signs: wrong-confidence positive targets get negative grads.
        assert!(grad.data()[0] < 0.0 && grad.data()[1] < 0.0 && grad.data()[2] > 0.0);
    }

    #[test]
    fn bce_gradcheck() {
        let logits = Tensor::from_vec(vec![0.3, -0.9, 2.0, -2.0], &[4]);
        let targets = [1.0f32, 0.0, 0.0, 1.0];
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (a, _) = bce_with_logits(&lp, &targets);
            let (b, _) = bce_with_logits(&lm, &targets);
            let num = ((a - b) / (2.0 * eps as f64)) as f32;
            assert!((num - grad.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn perplexity_of_uniform() {
        assert!((perplexity(4.0f64.ln()) - 4.0).abs() < 1e-9);
    }
}
