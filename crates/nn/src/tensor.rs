//! Dense row-major `f32` tensors with the operations the model zoo needs.
//!
//! This is deliberately a small, predictable tensor library: shapes are
//! explicit, operations are eager, and there is no broadcasting beyond the
//! row-wise bias case. The quantized compute flow of Fig. 8 lives in
//! [`crate::qflow`]; this module provides the exact arithmetic underneath.

use mx_core::bdr::BdrFormat;
use mx_core::gemm::PackedOperand;
use mx_core::{fgemm, parallel};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
// (`Arc` is still used by `CachedPlane::plane`, shared with the executing
// GEMM after the slot's lock is released.)

/// Process-wide monotone counter behind [`Tensor::generation`]: every
/// tensor construction or mutable-data access draws a fresh, globally
/// unique value, so "same generation" implies "same bits".
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

fn next_gen() -> u64 {
    NEXT_GEN.fetch_add(1, Ordering::Relaxed)
}

/// A weight code plane cached on a tensor: the [`PackedOperand`] built for
/// one weight format, stamped with the generation of the data it was
/// packed from. A lookup only hits when the stamp still matches
/// [`Tensor::generation`] — any in-place mutation (optimizer steps
/// included) bumps the generation and thereby invalidates the entry. The
/// activation format is not part of the key: the codes depend only on the
/// weight format (see `crate::qflow`).
#[derive(Clone)]
pub(crate) struct CachedPlane {
    pub(crate) gen: u64,
    pub(crate) fb: BdrFormat,
    pub(crate) plane: Arc<PackedOperand>,
}

/// Per-tensor plane cache: a small set of [`CachedPlane`]s, one per weight
/// format, allocated lazily so tensors that never serve as quantized
/// weights pay nothing. Holding every live format (rather than one entry)
/// is what makes the cache safe to share under serving traffic: requests
/// that alternate weight formats against one model each keep their own
/// plane instead of perpetually evicting each other's (see `crate::qflow`
/// for the bound and the eviction rule). The `Mutex` makes concurrent
/// lookups from N serving threads safe; each clone still gets its own
/// (cold) cache — sharing would let two diverged clones used as weights
/// thrash each other's entries.
type PlaneSlot = Mutex<Vec<CachedPlane>>;

/// A dense row-major tensor of `f32` values.
///
/// Each tensor carries a globally unique *generation* that changes on every
/// mutable-data access — the invalidation signal for the cached weight code
/// plane (see [`crate::qflow`]).
///
/// # Examples
///
/// ```
/// # use mx_nn::tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::eye(2);
/// assert_eq!(a.matmul(&b).data(), a.data());
/// ```
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
    gen: u64,
    plane: OnceLock<PlaneSlot>,
}

impl Clone for Tensor {
    /// Clones data and generation but **not** the plane-cache slot: the
    /// clone starts cold (at worst one repack per format) instead of
    /// sharing a cache that diverged clones would thrash.
    fn clone(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.clone(),
            gen: self.gen,
            plane: OnceLock::new(),
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, ... ({} values)]",
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} != shape {:?}",
            data.len(),
            shape
        );
        Tensor::with_data(shape.to_vec(), data)
    }

    /// The one constructor every tensor goes through: stamps a fresh
    /// generation and an empty (unallocated) plane-cache slot.
    fn with_data(shape: Vec<usize>, data: Vec<f32>) -> Self {
        Tensor {
            shape,
            data,
            gen: next_gen(),
            plane: OnceLock::new(),
        }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::with_data(shape.to_vec(), vec![0.0; shape.iter().product()])
    }

    /// Tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor::with_data(shape.to_vec(), vec![value; shape.iter().product()])
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    ///
    /// Bumps the tensor's [`generation`](Tensor::generation): any cached
    /// weight code plane built from the previous contents is invalidated,
    /// whether or not the caller actually writes.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.gen = next_gen();
        &mut self.data
    }

    /// The tensor's data generation: a globally unique stamp that changes
    /// on every mutable-data access. Two reads returning the same value
    /// guarantee the data bits have not changed in between — this is the
    /// staleness check behind the weight-plane cache (see
    /// [`crate::qflow`]).
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// The lazily allocated weight-plane cache slot.
    pub(crate) fn plane_slot(&self) -> &Mutex<Vec<CachedPlane>> {
        self.plane.get_or_init(PlaneSlot::default)
    }

    /// Generation stamp of the most recently cached weight code plane, if
    /// any has been built. A `Some` equal to [`Tensor::generation`] means
    /// the next quantized matmul with matching formats will reuse a plane;
    /// any other value means the cache is cold or stale.
    pub fn cached_plane_generation(&self) -> Option<u64> {
        self.plane.get().and_then(|slot| {
            slot.lock()
                .expect("plane cache poisoned")
                .last()
                .map(|c| c.gen)
        })
    }

    /// Number of weight code planes currently cached on this tensor (one
    /// per weight format seen since the last data mutation).
    pub fn cached_plane_count(&self) -> usize {
        self.plane
            .get()
            .map(|slot| slot.lock().expect("plane cache poisoned").len())
            .unwrap_or(0)
    }

    /// Consumes the tensor, returning its data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows when viewed as 2-D (product of all but the last
    /// dimension).
    ///
    /// # Panics
    ///
    /// Panics on 0-dimensional tensors.
    pub fn rows(&self) -> usize {
        assert!(!self.shape.is_empty());
        self.numel() / self.cols()
    }

    /// Size of the last dimension.
    pub fn cols(&self) -> usize {
        *self
            .shape
            .last()
            .expect("tensor must have at least one dimension")
    }

    /// Returns a reshaped copy (same data, new shape).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Matrix product `self[M,K] × other[K,N]`, viewing `self` as 2-D with
    /// its last dimension as `K`.
    ///
    /// Runs on [`mx_core::fgemm`]'s cache-blocked, vectorized kernel
    /// (row-parallel on large products) — bit-identical to the seed's
    /// naive triple loop, including the zero-skip rule: zero lhs elements
    /// are only skipped when the rhs is entirely finite, so `0.0 × ∞` and
    /// `0.0 × NaN` still propagate NaN.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let m = self.rows();
        let k = self.cols();
        assert_eq!(other.shape.len(), 2, "rhs of matmul must be 2-D");
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dims: {k} vs {k2}");
        let out = fgemm::matmul(
            &self.data,
            &other.data,
            m,
            k,
            n,
            parallel::default_threads(),
        );
        let mut shape: Vec<usize> = self.shape[..self.shape.len() - 1].to_vec();
        shape.push(n);
        Tensor::from_vec(out, &shape)
    }

    /// 2-D transpose (views the tensor as `[rows, cols]`).
    pub fn transpose2d(&self) -> Tensor {
        let m = self.rows();
        let n = self.cols();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise product (Hadamard).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Applies `f` element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::with_data(
            self.shape.clone(),
            self.data.iter().map(|&x| f(x)).collect(),
        )
    }

    /// Applies `f` pairwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        Tensor::with_data(
            self.shape.clone(),
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Adds `row` (a 1-D tensor of length `cols()`) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not 1-D of matching width.
    pub fn add_row(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.shape.len(), 1);
        assert_eq!(row.numel(), self.cols(), "bias width mismatch");
        let n = self.cols();
        let mut out = self.data.clone();
        for (i, v) in out.iter_mut().enumerate() {
            *v += row.data[i % n];
        }
        Tensor::with_data(self.shape.clone(), out)
    }

    /// Sums over all rows, returning a 1-D tensor of length `cols()`.
    pub fn sum_rows(&self) -> Tensor {
        let n = self.cols();
        let mut out = vec![0.0f32; n];
        for (i, &v) in self.data.iter().enumerate() {
            out[i % n] += v;
        }
        Tensor::from_vec(out, &[n])
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Largest absolute value (0 for empty tensors).
    pub fn amax(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Sum of squares.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// Row-wise softmax over the last dimension.
    pub fn softmax_rows(&self) -> Tensor {
        let n = self.cols();
        let mut out = self.data.clone();
        for row in out.chunks_mut(n) {
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        Tensor::with_data(self.shape.clone(), out)
    }

    /// Extracts rows `start..end` (2-D view).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        let n = self.cols();
        assert!(end <= self.rows() && start <= end, "row slice out of range");
        Tensor::from_vec(self.data[start * n..end * n].to_vec(), &[end - start, n])
    }

    /// Stacks 2-D tensors on top of each other.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or `parts` is empty.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat of nothing");
        let n = parts[0].cols();
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols(), n, "width mismatch in concat");
            data.extend_from_slice(&p.data);
            rows += p.rows();
        }
        Tensor::from_vec(data, &[rows, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_3d_lhs_flattens_leading_dims() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 2, 3]);
        let b = Tensor::eye(3);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 3]);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let t = a.transpose2d();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        assert_eq!(t.transpose2d(), a);
    }

    #[test]
    fn matmul_transpose_identity() {
        // (A B)^T == B^T A^T
        let a = Tensor::from_vec((0..6).map(|i| (i as f32).sin()).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).cos()).collect(), &[3, 4]);
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn elementwise_and_bias() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[2, 2]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.mul(&a).data(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
        let bias = Tensor::from_vec(vec![100.0, 200.0], &[2]);
        assert_eq!(a.add_row(&bias).data(), &[101.0, 202.0, 103.0, 204.0]);
    }

    #[test]
    fn sum_rows_and_mean() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.amax(), 4.0);
        assert_eq!(a.sq_norm(), 30.0);
    }

    #[test]
    fn softmax_rows_normalizes() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = a.softmax_rows();
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Large logits do not overflow (max subtraction).
        assert!((s.data()[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn slicing_and_concat() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[4, 3]);
        let top = a.slice_rows(0, 2);
        let bottom = a.slice_rows(2, 4);
        assert_eq!(Tensor::concat_rows(&[&top, &bottom]), a);
    }

    #[test]
    fn eye_is_matmul_identity() {
        let a = Tensor::from_vec((0..9).map(|i| i as f32 * 0.3).collect(), &[3, 3]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(3).matmul(&a), a);
    }

    #[test]
    fn matmul_zero_rows_propagate_non_finite_rhs() {
        // 0·∞ and 0·NaN must reach the output as NaN; the zero-skip
        // shortcut used to silently drop them.
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let b = Tensor::from_vec(vec![f32::INFINITY, 2.0], &[2, 1]);
        assert!(a.matmul(&b).data()[0].is_nan(), "0 x inf must be NaN");
        let bn = Tensor::from_vec(vec![f32::NAN, 2.0], &[2, 1]);
        assert!(a.matmul(&bn).data()[0].is_nan(), "0 x NaN must be NaN");
        // A fully finite rhs still takes the fast path and stays exact.
        let bf = Tensor::from_vec(vec![3.0, 2.0], &[2, 1]);
        assert_eq!(a.matmul(&bf).data(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn generation_bumps_on_mutable_access_only() {
        let mut t = Tensor::zeros(&[2, 2]);
        let g0 = t.generation();
        let _ = t.data(); // immutable reads do not bump
        assert_eq!(t.generation(), g0);
        let _ = t.data_mut();
        let g1 = t.generation();
        assert_ne!(g1, g0, "data_mut must invalidate");
        // Fresh tensors never reuse a generation.
        let u = Tensor::zeros(&[2, 2]);
        assert_ne!(u.generation(), g1);
    }

    #[test]
    fn clone_shares_generation_until_mutated() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let mut c = t.clone();
        assert_eq!(c.generation(), t.generation(), "identical data, same gen");
        c.data_mut()[0] = 9.0;
        assert_ne!(c.generation(), t.generation());
        assert_eq!(t.data(), &[1.0, 2.0], "original untouched");
    }

    #[test]
    fn matmul_matches_naive_triple_loop_bits() {
        // The blocked kernel must be bit-identical to the seed's loop,
        // 3-D lhs included.
        let (b, m, k, n) = (2, 5, 33, 9);
        let a = Tensor::from_vec(
            (0..b * m * k)
                .map(|i| {
                    if i % 13 == 0 {
                        0.0
                    } else {
                        (i as f32 * 0.17).sin()
                    }
                })
                .collect(),
            &[b, m, k],
        );
        let w = Tensor::from_vec(
            (0..k * n).map(|i| (i as f32 * 0.29).cos()).collect(),
            &[k, n],
        );
        let y = a.matmul(&w);
        assert_eq!(y.shape(), &[b, m, n]);
        let mut want = vec![0.0f32; b * m * n];
        for i in 0..b * m {
            for p in 0..k {
                let av = a.data()[i * k + p];
                if av == 0.0 {
                    continue; // w is finite
                }
                for j in 0..n {
                    want[i * n + j] += av * w.data()[p * n + j];
                }
            }
        }
        for (x, y) in y.data().iter().zip(want.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn debug_formatting() {
        let small = Tensor::zeros(&[2]);
        assert!(format!("{small:?}").contains("Tensor[2]"));
        let big = Tensor::zeros(&[100]);
        assert!(format!("{big:?}").contains("100 values"));
    }
}
