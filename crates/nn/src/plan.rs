//! Compiled execution plans: lower a model forward pass **once** into a
//! flat operator IR, then execute it with zero per-call planning.
//!
//! The dynamic path (walking `Layer::forward` implementations) re-decides
//! format support, re-consults the per-tensor weight-plane cache, and
//! re-allocates every intermediate tensor on each call. A [`CompiledPlan`]
//! hoists all of that to plan-compile time for one `(QuantConfig,
//! batch-bucket)` key:
//!
//! - **Prepack hoist** — every weight-side `pack_cols` runs at plan time;
//!   the shift-aligned code planes are pinned on the plan as
//!   `Arc<PackedOperand>`s (shared with the tensor's own cache, so dynamic
//!   and planned execution read the *same* plane bits). Weight staleness is
//!   checked once per execute via the cache key (see `plan_token` on the
//!   model zoo), not once per layer.
//! - **Format gate hoist** — the `pair_class` support decision runs once
//!   per GEMM at plan time: a plan either compiles with the code-domain
//!   path (or the `f32` identity path) or fails with a typed
//!   [`PlanError`], instead of silently re-checking per call.
//! - **Fusion** — quantize → GEMM → bias → activation → element-wise cast
//!   chains collapse into single [`PlanNode::PackedGemm`] nodes (the A-side
//!   quantize is already fused into the gemm kernel's execute loop).
//! - **Template dedup** — repeated subgraph structure (e.g. the N identical
//!   transformer blocks) shares one node [`Template`]; per-layer weights
//!   live in per-instance binding tables.
//! - **Arena scratch** — one liveness-ordered first-fit layout maps every
//!   intermediate into a single reusable buffer ([`PlanArena`]); steady
//!   state allocates nothing beyond the arena and the GEMM outputs.
//!
//! Bit-identity with the dynamic path is by construction: every node
//! executes through the *same* crate-internal helper the corresponding
//! layer's `forward` uses (`gemm::quantized_gemm_prepacked_scratch`,
//! [`crate::layers::normalize_rows`], [`crate::attention::attention_mix`],
//! [`crate::conv::im2col`], [`crate::format::cast_rows`], …), with the same
//! thread count and the same operand values. The `plan_consistency` suite
//! asserts equality to the bit for every zoo model × format preset ×
//! batch bucket.

use crate::attention::{attention_mix, TransformerBlock};
use crate::conv::{im2col, Conv2d};
use crate::format::{cast_rows, TensorFormat};
use crate::layers::{normalize_rows, scale_shift_rows, Activation, Embedding, LayerNorm, Linear};
use crate::qflow::{weight_plane, QuantConfig};
use crate::tensor::Tensor;
use mx_core::bdr::BdrFormat;
use mx_core::gemm::{self, PackScratch, PackedOperand};
use mx_core::{fgemm, parallel};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of plans compiled ([`Planner::finish`] calls).
static PLANS_COMPILED: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of weight planes pinned at plan time (prepack hoists).
static PREPACK_HOISTS: AtomicU64 = AtomicU64::new(0);
/// Process-wide cumulative arena bytes laid out by compiled plans.
static ARENA_BYTES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide plan counters as
/// `(plans_compiled, prepack_hoists, arena_bytes)`. Cumulative over the
/// process; consumers such as `mx-serve`'s `ServeStats` report deltas
/// against a baseline.
pub fn plan_counters() -> (u64, u64, u64) {
    (
        PLANS_COMPILED.load(Ordering::Relaxed),
        PREPACK_HOISTS.load(Ordering::Relaxed),
        ARENA_BYTES.load(Ordering::Relaxed),
    )
}

/// Typed plan-compile / plan-execute failure. Compilation errors are
/// decided **once** at plan time (the hoisted format-support gate);
/// executors treat any error as "fall back to the dynamic path".
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The model (or one of its layers) has no plan lowering — e.g.
    /// data-dependent routing (MoE) or a storage format that cannot be
    /// hoisted.
    Unsupported(&'static str),
    /// The `(activation, weight)` format pair supports neither the `f32`
    /// identity path nor the integer code-domain path. The dynamic path
    /// would silently take the fake-quantize fallback; a plan refuses at
    /// compile time instead.
    UnsupportedFormats {
        /// Activation-side format.
        fa: TensorFormat,
        /// Weight-side format.
        fb: TensorFormat,
    },
    /// The execute-time input does not match what the plan was compiled
    /// for (wrong kind, wrong length, or an out-of-range token index).
    Input(&'static str),
    /// An invariant the planner established did not hold at execute time.
    Internal(&'static str),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Unsupported(what) => write!(f, "unplannable model: {what}"),
            PlanError::UnsupportedFormats { fa, fb } => {
                write!(
                    f,
                    "format pair {fa}/{fb} has no code-domain or f32 plan path"
                )
            }
            PlanError::Input(what) => write!(f, "plan input mismatch: {what}"),
            PlanError::Internal(what) => write!(f, "plan invariant violated: {what}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Where a node reads or writes, resolved against the arena at execute
/// time. Stages flow through two ping-pong buffers; everything else lives
/// at liveness-ordered offsets in the stage's locals region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// The executing stage's flow input (the previous stage's output).
    In,
    /// The executing stage's flow output (the next stage's input).
    Out,
    /// Offset into the locals region of the arena.
    Local(usize),
}

/// One operator of the compiled IR. Weight-like state (planes, biases,
/// tables) is *not* stored on the node — nodes reference per-instance
/// binding slots, which is what lets repeated structure share a template.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Fused quantize → GEMM → bias → activation → element-wise cast. The
    /// A-side quantize is fused inside the gemm kernel's execute loop; the
    /// weight plane (or raw `f32` weights) lives in the binding at `slot`.
    PackedGemm {
        /// Input location, `m × k` row-major.
        src: Loc,
        /// Output location, `m × n` row-major.
        dst: Loc,
        /// Row count.
        m: usize,
        /// Reduction dimension.
        k: usize,
        /// Output width.
        n: usize,
        /// Relative binding slot of the [`Binding::Gemm`].
        slot: usize,
        /// Fused activation applied after the bias, if any.
        act: Option<Activation>,
        /// Fused element-wise cast applied last, if any.
        cast: Option<TensorFormat>,
    },
    /// Layer norm over `rows × cols`, including the layer's element-wise
    /// cast; gain/bias/epsilon live in the binding.
    Norm {
        /// Input location.
        src: Loc,
        /// Output location.
        dst: Loc,
        /// Row count.
        rows: usize,
        /// Normalized width.
        cols: usize,
        /// Relative binding slot of the [`Binding::Norm`].
        slot: usize,
    },
    /// Standalone element-wise node: optional activation then a
    /// quantize/cast (either may be trivial).
    Eltwise {
        /// Input location.
        src: Loc,
        /// Output location.
        dst: Loc,
        /// Element count.
        len: usize,
        /// Row width for block-format casts.
        cols: usize,
        /// Activation to apply, if any.
        act: Option<Activation>,
        /// Element-wise cast format.
        cast: TensorFormat,
    },
    /// Element-wise sum `dst = a + b`, optionally fused with a ReLU (the
    /// residual-then-ReLU idiom of the CNN blocks).
    Add {
        /// Left operand location.
        a: Loc,
        /// Right operand location.
        b: Loc,
        /// Output location.
        dst: Loc,
        /// Element count.
        len: usize,
        /// Fuse `max(·, 0)` after the sum.
        relu: bool,
    },
    /// Token-embedding gather plus positional add, from tables hoisted
    /// (and pre-cast) at plan time.
    Embed {
        /// Output location, `rows × dim`.
        dst: Loc,
        /// Relative binding slot of the token [`Binding::Table`].
        table: usize,
        /// Relative binding slot of the positional [`Binding::Rows`].
        pos: usize,
        /// Sequence length (positional rows repeat every `t` tokens).
        t: usize,
        /// Embedding width.
        dim: usize,
    },
    /// The attention head mix: per (batch, head) `softmax(Q·Kᵀ/√dh)·V`,
    /// executed by the exact helper the dynamic path uses.
    AttnMix {
        /// Q location, `b·t × d`.
        q: Loc,
        /// K location, `b·t × d`.
        k: Loc,
        /// V location, `b·t × d`.
        v: Loc,
        /// Concat output location, `b·t × d`.
        dst: Loc,
        /// Batch size.
        b: usize,
        /// Sequence length.
        t: usize,
        /// Model width.
        d: usize,
        /// Head count.
        heads: usize,
        /// Causal masking.
        causal: bool,
        /// Tensor-op format for `Q·Kᵀ` and `P·V`.
        fwd: TensorFormat,
        /// Element-wise format the probabilities are cast to.
        elem: TensorFormat,
    },
    /// 2-D convolution (im2col → packed GEMM → bias → channel-major
    /// reorder), optionally fused with a ReLU.
    Conv {
        /// Input location, `b × in_ch × h × w`.
        src: Loc,
        /// Output location, `b × out_ch × h × w`.
        dst: Loc,
        /// Relative binding slot of the [`Binding::Conv`].
        slot: usize,
        /// Batch size.
        b: usize,
        /// Image height.
        h: usize,
        /// Image width.
        w: usize,
        /// Fuse `max(·, 0)` into the reorder.
        relu: bool,
    },
    /// ViT patch extraction: `b × side×side` pixels into
    /// `b·patches × patch²` rows.
    Patchify {
        /// Input location (flat images).
        src: Loc,
        /// Output location (patch rows).
        dst: Loc,
        /// Batch size.
        b: usize,
        /// Image side length.
        side: usize,
        /// Patch side length.
        patch: usize,
    },
    /// Mean over `groups` rows per batch item (the ViT pooling loop,
    /// divide-then-accumulate to match the dynamic path bit-for-bit).
    MeanPool {
        /// Input location, `b·groups × cols`.
        src: Loc,
        /// Output location, `b × cols`.
        dst: Loc,
        /// Batch size.
        b: usize,
        /// Rows averaged per batch item.
        groups: usize,
        /// Row width.
        cols: usize,
    },
    /// Global average pool: mean over each `spatial`-sized chunk
    /// (sum-then-divide, matching `GlobalAvgPool`).
    AvgPool {
        /// Input location, `chunks × spatial`.
        src: Loc,
        /// Output location, `chunks`.
        dst: Loc,
        /// Number of `(batch, channel)` chunks.
        chunks: usize,
        /// Elements per chunk (`h·w`).
        spatial: usize,
    },
}

/// How `f32` weights reach a GEMM node: raw values for the identity
/// (`FP32`) path, or a shift-aligned code plane pinned at plan time for
/// the integer code-domain path.
enum GemmWeights {
    /// Identity formats: plain `f32` GEMM against the copied weights.
    F32 { w: Vec<f32> },
    /// Code-domain path: the activation-side format plus the pinned plane.
    Code {
        fa: BdrFormat,
        plane: Arc<PackedOperand>,
    },
}

/// Per-instance state a [`PlanNode`] references by relative slot.
enum Binding {
    /// A [`PlanNode::PackedGemm`]'s weights and optional bias.
    Gemm {
        weights: GemmWeights,
        bias: Option<Vec<f32>>,
    },
    /// A [`PlanNode::Norm`]'s gain, bias, epsilon, and element-wise format.
    Norm {
        gamma: Vec<f32>,
        beta: Vec<f32>,
        eps: f32,
        elem: TensorFormat,
    },
    /// A [`PlanNode::Conv`]'s weights, bias, and geometry.
    Conv {
        weights: GemmWeights,
        bias: Vec<f32>,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        pad: usize,
    },
    /// A hoisted (pre-cast) lookup table, `rows × dim`.
    Table {
        data: Vec<f32>,
        rows: usize,
        dim: usize,
    },
    /// A hoisted block of pre-computed rows (e.g. the positional slice).
    Rows(Vec<f32>),
}

/// A deduplicated node sequence. Two stages with structurally identical
/// node lists (same shapes, formats, and relative binding slots — e.g.
/// the N transformer blocks of one model) share a single template; their
/// weights stay per-instance in the binding table.
struct Template {
    nodes: Vec<PlanNode>,
}

/// One execution of a [`Template`] with its own binding window.
struct Instance {
    template: usize,
    base: usize,
}

/// How the plan's first stage consumes the request payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InputSpec {
    /// Flat pixel payload of exactly `len` values, copied into the flow.
    Pixels { len: usize },
    /// Exactly `rows` token indices, consumed by an [`PlanNode::Embed`].
    Tokens { rows: usize },
}

/// The input payload for [`CompiledPlan::execute`]. Mirrors the zoo's
/// input kinds without depending on the models crate.
#[derive(Debug, Clone, Copy)]
pub enum PlanInput<'a> {
    /// Token indices (uniform batch, `batch · len` entries).
    Tokens(&'a [usize]),
    /// Flat `f32` feature/pixel payload.
    Pixels(&'a [f32]),
}

/// Reusable per-worker scratch for plan execution: the arena buffer (two
/// ping-pong flow regions plus the locals region) and the A-side pack
/// scratch the gemm kernels reuse across calls. Cheap to create, intended
/// to live one-per-thread.
#[derive(Default)]
pub struct PlanArena {
    buf: Vec<f32>,
    scratch: PackScratch,
}

impl PlanArena {
    /// Creates an empty arena; the first execute sizes it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A lowered, optimized, immutable forward pass for one
/// `(QuantConfig, batch-bucket)` key. Shareable across threads (`Arc`);
/// each executing thread brings its own [`PlanArena`].
pub struct CompiledPlan {
    templates: Vec<Template>,
    instances: Vec<Instance>,
    bindings: Vec<Binding>,
    input: InputSpec,
    flow_len: usize,
    locals_len: usize,
    out_len: usize,
}

/// Builder for one stage: a node sequence that reads the stage's flow
/// input and leaves its result in the flow output, with locals placed by
/// a liveness-ordered first-fit allocator. Push completed stages into a
/// [`Planner`].
pub struct Stage {
    nodes: Vec<PlanNode>,
    bindings: Vec<Binding>,
    in_len: usize,
    out_len: usize,
    free: Vec<(usize, usize)>,
    high: usize,
}

impl Stage {
    /// Starts a stage transforming `in_len` flow elements into `out_len`.
    pub fn new(in_len: usize, out_len: usize) -> Self {
        Stage {
            nodes: Vec::new(),
            bindings: Vec::new(),
            in_len,
            out_len,
            free: Vec::new(),
            high: 0,
        }
    }

    /// Reserves `len` elements of stage-local scratch (first-fit over the
    /// free list, growing the high-water mark only when nothing fits).
    pub fn alloc(&mut self, len: usize) -> Loc {
        for i in 0..self.free.len() {
            let (off, flen) = self.free[i];
            if flen >= len {
                if flen == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = (off + len, flen - len);
                }
                return Loc::Local(off);
            }
        }
        let off = self.high;
        self.high += len;
        Loc::Local(off)
    }

    /// Returns a local reservation to the free list (coalescing with
    /// adjacent free ranges) once its last reader has been pushed. `In`
    /// and `Out` are not allocator-managed and are ignored.
    pub fn free(&mut self, loc: Loc, len: usize) {
        let Loc::Local(off) = loc else { return };
        let at = self
            .free
            .iter()
            .position(|&(o, _)| o > off)
            .unwrap_or(self.free.len());
        self.free.insert(at, (off, len));
        // Coalesce right, then left.
        if at + 1 < self.free.len() && self.free[at].0 + self.free[at].1 == self.free[at + 1].0 {
            self.free[at].1 += self.free[at + 1].1;
            self.free.remove(at + 1);
        }
        if at > 0 && self.free[at - 1].0 + self.free[at - 1].1 == self.free[at].0 {
            self.free[at - 1].1 += self.free[at].1;
            self.free.remove(at);
        }
    }

    fn bind(&mut self, b: Binding) -> usize {
        self.bindings.push(b);
        self.bindings.len() - 1
    }

    /// Lowers a [`Linear`] into a fused [`PlanNode::PackedGemm`] over `m`
    /// rows, running the hoisted format-support gate and pinning the
    /// weight plane. `fused` optionally folds a following activation
    /// layer's `(activation, element-wise format)` into the node.
    pub fn gemm(
        &mut self,
        lin: &Linear,
        src: Loc,
        dst: Loc,
        m: usize,
        cfg: QuantConfig,
        fused: Option<(Activation, TensorFormat)>,
    ) -> Result<(), PlanError> {
        let (k, n) = (lin.d_in(), lin.d_out());
        let weights = lower_weights(&lin.w.value, cfg.fwd, cfg.fwd_w, k, n)?;
        let bias = lin.b.as_ref().map(|b| b.value.data().to_vec());
        let slot = self.bind(Binding::Gemm { weights, bias });
        self.nodes.push(PlanNode::PackedGemm {
            src,
            dst,
            m,
            k,
            n,
            slot,
            act: fused.map(|(a, _)| a),
            cast: fused.map(|(_, f)| f),
        });
        Ok(())
    }

    /// Lowers a [`LayerNorm`] over `rows` rows into a [`PlanNode::Norm`].
    pub fn norm(&mut self, ln: &LayerNorm, src: Loc, dst: Loc, rows: usize) {
        let (eps, elem) = ln.plan_parts();
        let cols = ln.gamma.value.numel();
        let slot = self.bind(Binding::Norm {
            gamma: ln.gamma.value.data().to_vec(),
            beta: ln.beta.value.data().to_vec(),
            eps,
            elem,
        });
        self.nodes.push(PlanNode::Norm {
            src,
            dst,
            rows,
            cols,
            slot,
        });
    }

    /// Pushes a standalone element-wise node (activation and/or cast).
    pub fn eltwise(
        &mut self,
        src: Loc,
        dst: Loc,
        len: usize,
        cols: usize,
        act: Option<Activation>,
        cast: TensorFormat,
    ) {
        self.nodes.push(PlanNode::Eltwise {
            src,
            dst,
            len,
            cols,
            act,
            cast,
        });
    }

    /// Pushes `dst = a + b`, optionally fused with a ReLU.
    pub fn add(&mut self, a: Loc, b: Loc, dst: Loc, len: usize, relu: bool) {
        self.nodes.push(PlanNode::Add {
            a,
            b,
            dst,
            len,
            relu,
        });
    }

    /// Pushes the attention head mix for `b × t × d` with `heads` heads.
    /// Six locations/dimensions plus the two formats genuinely vary per
    /// call site, so this mirrors the dynamic helper's signature.
    #[allow(clippy::too_many_arguments)]
    pub fn attn_mix(
        &mut self,
        q: Loc,
        k: Loc,
        v: Loc,
        dst: Loc,
        b: usize,
        t: usize,
        d: usize,
        heads: usize,
        causal: bool,
        cfg: QuantConfig,
    ) {
        self.nodes.push(PlanNode::AttnMix {
            q,
            k,
            v,
            dst,
            b,
            t,
            d,
            heads,
            causal,
            fwd: cfg.fwd,
            elem: cfg.elementwise,
        });
    }

    /// Lowers a [`Conv2d`] over a `b × in_ch × h × w` input, running the
    /// hoisted format gate on the im2col GEMM and pinning its plane.
    /// The geometry triplet plus fusion flag genuinely vary per call site.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        &mut self,
        conv: &Conv2d,
        src: Loc,
        dst: Loc,
        b: usize,
        h: usize,
        w: usize,
        cfg: QuantConfig,
        relu: bool,
    ) -> Result<(), PlanError> {
        let (in_ch, out_ch, k, pad) = conv.plan_parts();
        let patch = in_ch * k * k;
        let weights = lower_weights(&conv.w.value, cfg.fwd, cfg.fwd_w, patch, out_ch)?;
        let slot = self.bind(Binding::Conv {
            weights,
            bias: conv.b.value.data().to_vec(),
            in_ch,
            out_ch,
            k,
            pad,
        });
        self.nodes.push(PlanNode::Conv {
            src,
            dst,
            slot,
            b,
            h,
            w,
            relu,
        });
        Ok(())
    }

    /// Pushes ViT patch extraction for `b` images of `side × side` pixels.
    pub fn patchify(&mut self, src: Loc, dst: Loc, b: usize, side: usize, patch: usize) {
        self.nodes.push(PlanNode::Patchify {
            src,
            dst,
            b,
            side,
            patch,
        });
    }

    /// Pushes the ViT-style mean pool over `groups` rows per batch item.
    pub fn mean_pool(&mut self, src: Loc, dst: Loc, b: usize, groups: usize, cols: usize) {
        self.nodes.push(PlanNode::MeanPool {
            src,
            dst,
            b,
            groups,
            cols,
        });
    }

    /// Pushes a global average pool over `chunks` chunks of `spatial`
    /// elements.
    pub fn avg_pool(&mut self, src: Loc, dst: Loc, chunks: usize, spatial: usize) {
        self.nodes.push(PlanNode::AvgPool {
            src,
            dst,
            chunks,
            spatial,
        });
    }
}

/// The hoisted format-support gate (the per-call `pair_class` check of the
/// dynamic path, run once at plan time): identity pairs take the `f32`
/// path, supported BDR pairs pin a code plane, anything else is a typed
/// compile error.
fn lower_weights(
    w: &Tensor,
    fa: TensorFormat,
    fb: TensorFormat,
    k: usize,
    n: usize,
) -> Result<GemmWeights, PlanError> {
    if fa.is_identity() && fb.is_identity() {
        return Ok(GemmWeights::F32 {
            w: w.data().to_vec(),
        });
    }
    if let (TensorFormat::Bdr(ba), TensorFormat::Bdr(bb)) = (fa, fb) {
        if gemm::code_domain_supported(&ba, &bb) {
            let plane = pin_plane(w, ba, bb, k, n)?;
            PREPACK_HOISTS.fetch_add(1, Ordering::Relaxed);
            return Ok(GemmWeights::Code { fa: ba, plane });
        }
    }
    Err(PlanError::UnsupportedFormats { fa, fb })
}

/// Fetches (or packs) `w`'s plane from the same generation-keyed cache the
/// dynamic path uses, then proves it matches `fa`'s kernel class with a
/// one-row probe — the cross-class retry the dynamic path does per call,
/// hoisted to plan time.
fn pin_plane(
    w: &Tensor,
    ba: BdrFormat,
    bb: BdrFormat,
    k: usize,
    n: usize,
) -> Result<Arc<PackedOperand>, PlanError> {
    let probe_row = vec![0.0f32; k];
    let mut scratch = PackScratch::new();
    let mut probe = |plane: &PackedOperand| {
        gemm::quantized_gemm_prepacked_scratch(&probe_row, 1, ba, plane, 1, &mut scratch).is_some()
    };
    let plane = weight_plane(w, ba, bb, k, n, false);
    if probe(&plane) {
        return Ok(plane);
    }
    // Cached plane was packed for the other kernel class: repack for this
    // exact pair (replacing the cache entry, as the dynamic retry does).
    let plane = weight_plane(w, ba, bb, k, n, true);
    if probe(&plane) {
        Ok(plane)
    } else {
        Err(PlanError::Internal("freshly packed plane failed its probe"))
    }
}

/// Lowers a model forward into a [`CompiledPlan`]: collects stages,
/// deduplicates structurally identical ones into shared templates, and
/// computes the arena layout.
#[derive(Default)]
pub struct Planner {
    templates: Vec<Template>,
    instances: Vec<Instance>,
    bindings: Vec<Binding>,
    input: Option<InputSpec>,
    flow_len: usize,
    locals_len: usize,
    out_len: usize,
}

impl Planner {
    /// Starts an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the plan's input as a flat pixel payload of `len` values.
    pub fn pixels_input(&mut self, len: usize) {
        self.input = Some(InputSpec::Pixels { len });
    }

    /// Appends a completed stage, deduplicating its node sequence against
    /// existing templates and folding its sizes into the arena layout.
    pub fn push_stage(&mut self, stage: Stage) {
        let Stage {
            nodes,
            bindings,
            in_len,
            out_len,
            high,
            ..
        } = stage;
        self.flow_len = self.flow_len.max(in_len).max(out_len);
        self.locals_len = self.locals_len.max(high);
        let template = match self.templates.iter().position(|t| t.nodes == nodes) {
            Some(i) => i,
            None => {
                self.templates.push(Template { nodes });
                self.templates.len() - 1
            }
        };
        self.instances.push(Instance {
            template,
            base: self.bindings.len(),
        });
        self.bindings.extend(bindings);
        self.out_len = out_len;
    }

    /// Builds the token-embedding stage shared by the GPT/BERT lowerings:
    /// hoists (and pre-casts) the token table and the first `t` positional
    /// rows, for `rows = batch · t` output rows. Fails for storage formats
    /// whose cast is not element-wise (per-tensor scaled), where hoisting
    /// would change bits.
    pub fn embed_stage(
        &mut self,
        tok: &Embedding,
        pos: &Embedding,
        rows: usize,
        t: usize,
    ) -> Result<(), PlanError> {
        let (vocab, dim) = (tok.table.value.shape()[0], tok.table.value.shape()[1]);
        if pos.table.value.shape()[0] < t {
            return Err(PlanError::Unsupported("positional table shorter than seq"));
        }
        let table = hoist_table(tok)?;
        let pos_block = hoist_table(pos)?[..t * dim].to_vec();
        let mut s = Stage::new(0, rows * dim);
        let table = s.bind(Binding::Table {
            data: table,
            rows: vocab,
            dim,
        });
        let pos = s.bind(Binding::Rows(pos_block));
        s.nodes.push(PlanNode::Embed {
            dst: Loc::Out,
            table,
            pos,
            t,
            dim,
        });
        self.input = Some(InputSpec::Tokens { rows });
        self.push_stage(s);
        Ok(())
    }

    /// Lowers one pre-norm [`TransformerBlock`] over `b × t` rows into a
    /// stage. All layers of all blocks of one model produce structurally
    /// identical stages, so `push_stage` dedupes them into one template
    /// with per-block weight bindings.
    pub fn transformer_block_stage(
        &mut self,
        blk: &TransformerBlock,
        cfg: QuantConfig,
        b: usize,
        t: usize,
    ) -> Result<(), PlanError> {
        let (ln1, attn, ln2, fc1, act, fc2) = blk.plan_parts();
        let (wq, wk, wv, wo, heads, causal) = attn.plan_parts();
        let d = wq.d_in();
        let rows = b * t;
        let len = rows * d;
        let mut s = Stage::new(len, len);
        let normed = s.alloc(len);
        s.norm(ln1, Loc::In, normed, rows);
        let (q, k, v) = (s.alloc(len), s.alloc(len), s.alloc(len));
        s.gemm(wq, normed, q, rows, cfg, None)?;
        s.gemm(wk, normed, k, rows, cfg, None)?;
        s.gemm(wv, normed, v, rows, cfg, None)?;
        s.free(normed, len);
        let concat = s.alloc(len);
        s.attn_mix(q, k, v, concat, b, t, d, heads, causal, cfg);
        s.free(q, len);
        s.free(k, len);
        s.free(v, len);
        let attn_out = s.alloc(len);
        s.gemm(wo, concat, attn_out, rows, cfg, None)?;
        s.free(concat, len);
        let x1 = s.alloc(len);
        s.add(Loc::In, attn_out, x1, len, false);
        s.free(attn_out, len);
        let normed2 = s.alloc(len);
        s.norm(ln2, x1, normed2, rows);
        let h = s.alloc(rows * fc1.d_out());
        s.gemm(fc1, normed2, h, rows, cfg, Some(act.plan_parts()))?;
        s.free(normed2, len);
        let h2 = s.alloc(len);
        s.gemm(fc2, h, h2, rows, cfg, None)?;
        s.free(h, rows * fc1.d_out());
        s.add(x1, h2, Loc::Out, len, false);
        self.push_stage(s);
        Ok(())
    }

    /// Seals the plan. Fails if no stage declared the input contract.
    pub fn finish(self) -> Result<CompiledPlan, PlanError> {
        let input = self.input.ok_or(PlanError::Internal("plan has no input"))?;
        if self.instances.is_empty() {
            return Err(PlanError::Internal("plan has no stages"));
        }
        PLANS_COMPILED.fetch_add(1, Ordering::Relaxed);
        let arena = 2 * self.flow_len + self.locals_len;
        ARENA_BYTES.fetch_add(
            (arena * std::mem::size_of::<f32>()) as u64,
            Ordering::Relaxed,
        );
        Ok(CompiledPlan {
            templates: self.templates,
            instances: self.instances,
            bindings: self.bindings,
            input,
            flow_len: self.flow_len,
            locals_len: self.locals_len,
            out_len: self.out_len,
        })
    }
}

/// Pre-casts an embedding table through its storage format at plan time.
/// Valid exactly when the cast commutes with row gathering: identity,
/// element-wise scalar, and row-blocked BDR formats qualify; per-tensor
/// amax scaling does not (its scale depends on the gathered values).
fn hoist_table(e: &Embedding) -> Result<Vec<f32>, PlanError> {
    let fmt = e.plan_format();
    if matches!(fmt, TensorFormat::ScalarScaled(_)) {
        return Err(PlanError::Unsupported(
            "per-tensor-scaled embedding tables cannot be hoisted",
        ));
    }
    let dim = e.table.value.shape()[1];
    let mut data = e.table.value.data().to_vec();
    cast_rows(&mut data, dim, fmt);
    Ok(data)
}

impl fmt::Debug for CompiledPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledPlan")
            .field("templates", &self.templates.len())
            .field("instances", &self.instances.len())
            .field("bindings", &self.bindings.len())
            .field("arena_elems", &self.arena_elems())
            .field("out_len", &self.out_len)
            .finish()
    }
}

impl CompiledPlan {
    /// Number of deduplicated node templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Number of template instances (stages) executed per call.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Arena footprint in `f32` elements (two flow buffers plus locals).
    pub fn arena_elems(&self) -> usize {
        2 * self.flow_len + self.locals_len
    }

    /// Output length in elements.
    pub fn out_len(&self) -> usize {
        self.out_len
    }

    /// Executes the plan against `input` using `arena` for all scratch,
    /// returning the flat output. Thread-safe on a shared `&self`; each
    /// calling thread must bring its own arena.
    pub fn execute(
        &self,
        input: PlanInput<'_>,
        arena: &mut PlanArena,
    ) -> Result<Vec<f32>, PlanError> {
        let flow = self.flow_len;
        let need = 2 * flow + self.locals_len;
        if arena.buf.len() < need {
            arena.buf.resize(need, 0.0);
        }
        let PlanArena { buf, scratch } = arena;
        let tokens = match (input, self.input) {
            (PlanInput::Pixels(px), InputSpec::Pixels { len }) => {
                if px.len() != len {
                    return Err(PlanError::Input("pixel payload length"));
                }
                buf[..len].copy_from_slice(px);
                None
            }
            (PlanInput::Tokens(tk), InputSpec::Tokens { rows }) => {
                if tk.len() != rows {
                    return Err(PlanError::Input("token count"));
                }
                Some(tk)
            }
            _ => return Err(PlanError::Input("input kind")),
        };
        let mut parity = 0usize;
        for inst in &self.instances {
            let tpl = self
                .templates
                .get(inst.template)
                .ok_or(PlanError::Internal("template index"))?;
            let (in_base, out_base) = if parity == 0 { (0, flow) } else { (flow, 0) };
            for node in &tpl.nodes {
                self.run_node(
                    node,
                    inst.base,
                    in_base,
                    out_base,
                    2 * flow,
                    buf,
                    scratch,
                    tokens,
                )?;
            }
            parity ^= 1;
        }
        let final_base = if parity == 0 { 0 } else { flow };
        Ok(buf[final_base..final_base + self.out_len].to_vec())
    }

    fn binding(&self, base: usize, slot: usize) -> Result<&Binding, PlanError> {
        self.bindings
            .get(base + slot)
            .ok_or(PlanError::Internal("binding slot"))
    }

    /// Executes one node. The base offsets resolve `Loc`s against the
    /// arena; `base` is the instance's binding window. Internal, but the
    /// offsets genuinely vary per instance.
    #[allow(clippy::too_many_arguments)]
    fn run_node(
        &self,
        node: &PlanNode,
        base: usize,
        in_base: usize,
        out_base: usize,
        locals_base: usize,
        buf: &mut [f32],
        scratch: &mut PackScratch,
        tokens: Option<&[usize]>,
    ) -> Result<(), PlanError> {
        let off = |loc: Loc| match loc {
            Loc::In => in_base,
            Loc::Out => out_base,
            Loc::Local(o) => locals_base + o,
        };
        match *node {
            PlanNode::PackedGemm {
                src,
                dst,
                m,
                k,
                n,
                slot,
                act,
                cast,
            } => {
                let Binding::Gemm { weights, bias } = self.binding(base, slot)? else {
                    return Err(PlanError::Internal("gemm binding type"));
                };
                let s = off(src);
                let y = run_gemm(weights, &buf[s..s + m * k], m, k, n, scratch)?;
                let d = off(dst);
                let out = &mut buf[d..d + m * n];
                match bias {
                    Some(bias) => {
                        for (i, v) in out.iter_mut().enumerate() {
                            *v = y[i] + bias[i % n];
                        }
                    }
                    None => out.copy_from_slice(&y),
                }
                if let Some(a) = act {
                    for v in out.iter_mut() {
                        *v = a.apply(*v);
                    }
                }
                if let Some(f) = cast {
                    cast_rows(out, n, f);
                }
            }
            PlanNode::Norm {
                src,
                dst,
                rows,
                cols,
                slot,
            } => {
                let Binding::Norm {
                    gamma,
                    beta,
                    eps,
                    elem,
                } = self.binding(base, slot)?
                else {
                    return Err(PlanError::Internal("norm binding type"));
                };
                let len = rows * cols;
                let (s, d) = (off(src), off(dst));
                buf.copy_within(s..s + len, d);
                let out = &mut buf[d..d + len];
                let _ = normalize_rows(out, cols, *eps);
                scale_shift_rows(out, cols, gamma, beta);
                cast_rows(out, cols, *elem);
            }
            PlanNode::Eltwise {
                src,
                dst,
                len,
                cols,
                act,
                cast,
            } => {
                let (s, d) = (off(src), off(dst));
                buf.copy_within(s..s + len, d);
                let out = &mut buf[d..d + len];
                if let Some(a) = act {
                    for v in out.iter_mut() {
                        *v = a.apply(*v);
                    }
                }
                cast_rows(out, cols, cast);
            }
            PlanNode::Add {
                a,
                b,
                dst,
                len,
                relu,
            } => {
                let (ao, bo, d) = (off(a), off(b), off(dst));
                for i in 0..len {
                    let v = buf[ao + i] + buf[bo + i];
                    buf[d + i] = if relu { v.max(0.0) } else { v };
                }
            }
            PlanNode::Embed {
                dst,
                table,
                pos,
                t,
                dim,
            } => {
                let Binding::Table {
                    data,
                    rows,
                    dim: tdim,
                } = self.binding(base, table)?
                else {
                    return Err(PlanError::Internal("table binding type"));
                };
                let Binding::Rows(pos_block) = self.binding(base, pos)? else {
                    return Err(PlanError::Internal("rows binding type"));
                };
                if *tdim != dim {
                    return Err(PlanError::Internal("table width"));
                }
                let tk = tokens.ok_or(PlanError::Input("token plan fed pixels"))?;
                let d = off(dst);
                for (r, &idx) in tk.iter().enumerate() {
                    if idx >= *rows {
                        return Err(PlanError::Input("token index out of range"));
                    }
                    let row = &data[idx * dim..(idx + 1) * dim];
                    let p = &pos_block[(r % t) * dim..(r % t + 1) * dim];
                    let out = &mut buf[d + r * dim..d + (r + 1) * dim];
                    for (o, (x, y)) in out.iter_mut().zip(row.iter().zip(p.iter())) {
                        *o = x + y;
                    }
                }
            }
            PlanNode::AttnMix {
                q,
                k,
                v,
                dst,
                b,
                t,
                d,
                heads,
                causal,
                fwd,
                elem,
            } => {
                let len = b * t * d;
                let grab =
                    |o: usize, buf: &[f32]| Tensor::from_vec(buf[o..o + len].to_vec(), &[b * t, d]);
                let (qt, kt, vt) = (grab(off(q), buf), grab(off(k), buf), grab(off(v), buf));
                let concat = attention_mix(&qt, &kt, &vt, b, t, heads, causal, fwd, elem, None);
                let o = off(dst);
                buf[o..o + len].copy_from_slice(concat.data());
            }
            PlanNode::Conv {
                src,
                dst,
                slot,
                b,
                h,
                w,
                relu,
            } => {
                let Binding::Conv {
                    weights,
                    bias,
                    in_ch,
                    out_ch,
                    k,
                    pad,
                } = self.binding(base, slot)?
                else {
                    return Err(PlanError::Internal("conv binding type"));
                };
                let (chw, ohw, patch) = (in_ch * h * w, h * w, in_ch * k * k);
                let (s, d) = (off(src), off(dst));
                for bi in 0..b {
                    let cols = im2col(
                        &buf[s + bi * chw..s + (bi + 1) * chw],
                        *in_ch,
                        *k,
                        *pad,
                        h,
                        w,
                    );
                    let y = run_gemm(weights, cols.data(), ohw, patch, *out_ch, scratch)?;
                    let bbase = d + bi * out_ch * ohw;
                    for oc in 0..*out_ch {
                        for p in 0..ohw {
                            let mut v = y[p * out_ch + oc] + bias[oc];
                            if relu {
                                v = v.max(0.0);
                            }
                            buf[bbase + oc * ohw + p] = v;
                        }
                    }
                }
            }
            PlanNode::Patchify {
                src,
                dst,
                b,
                side,
                patch,
            } => {
                let per = side * side;
                let grid = side / patch;
                let (s, d) = (off(src), off(dst));
                let mut idx = d;
                for bi in 0..b {
                    let img = s + bi * per;
                    for py in 0..grid {
                        for px in 0..grid {
                            for dy in 0..patch {
                                for dx in 0..patch {
                                    buf[idx] =
                                        buf[img + (py * patch + dy) * side + px * patch + dx];
                                    idx += 1;
                                }
                            }
                        }
                    }
                }
            }
            PlanNode::MeanPool {
                src,
                dst,
                b,
                groups,
                cols,
            } => {
                let (s, d) = (off(src), off(dst));
                buf[d..d + b * cols].fill(0.0);
                for bi in 0..b {
                    for p in 0..groups {
                        for c in 0..cols {
                            buf[d + bi * cols + c] +=
                                buf[s + (bi * groups + p) * cols + c] / groups as f32;
                        }
                    }
                }
            }
            PlanNode::AvgPool {
                src,
                dst,
                chunks,
                spatial,
            } => {
                let (s, d) = (off(src), off(dst));
                for i in 0..chunks {
                    let sum: f32 = buf[s + i * spatial..s + (i + 1) * spatial].iter().sum();
                    buf[d + i] = sum / spatial as f32;
                }
            }
        }
        Ok(())
    }
}

/// Runs the GEMM core of a node on its plan-time-chosen path, with the
/// per-execute thread count the dynamic path also reads.
fn run_gemm(
    weights: &GemmWeights,
    a: &[f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut PackScratch,
) -> Result<Vec<f32>, PlanError> {
    let threads = parallel::default_threads();
    match weights {
        GemmWeights::F32 { w } => Ok(fgemm::matmul(a, w, m, k, n, threads)),
        GemmWeights::Code { fa, plane } => {
            gemm::quantized_gemm_prepacked_scratch(a, m, *fa, plane, threads, scratch)
                .ok_or(PlanError::Internal("pinned plane lost its kernel class"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn bits(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn first_fit_allocator_reuses_freed_ranges() {
        let mut s = Stage::new(0, 0);
        let a = s.alloc(16);
        let b = s.alloc(8);
        assert_eq!((a, b), (Loc::Local(0), Loc::Local(16)));
        s.free(a, 16);
        // A smaller request carves the freed range; the remainder survives.
        assert_eq!(s.alloc(8), Loc::Local(0));
        assert_eq!(s.alloc(8), Loc::Local(8));
        assert_eq!(s.high, 24, "no growth past the high-water mark");
        // Freeing adjacent ranges coalesces them back into one.
        s.free(Loc::Local(0), 8);
        s.free(Loc::Local(8), 8);
        assert_eq!(s.alloc(16), Loc::Local(0));
    }

    #[test]
    fn planned_linear_matches_dynamic_bits() {
        for cfg in [
            QuantConfig::fp32(),
            QuantConfig::uniform(TensorFormat::MX6),
            QuantConfig::weights_activations(TensorFormat::MX4, TensorFormat::MX9),
        ] {
            let mut lin = Linear::new(&mut rng(), 32, 8, true, cfg);
            let x: Vec<f32> = (0..3 * 32).map(|i| (i as f32 * 0.23).sin()).collect();
            let want = lin
                .forward(&Tensor::from_vec(x.clone(), &[3, 32]), false)
                .into_data();
            let mut p = Planner::new();
            p.pixels_input(3 * 32);
            let mut s = Stage::new(3 * 32, 3 * 8);
            s.gemm(&lin, Loc::In, Loc::Out, 3, cfg, None).unwrap();
            p.push_stage(s);
            let plan = p.finish().unwrap();
            let mut arena = PlanArena::new();
            let got = plan.execute(PlanInput::Pixels(&x), &mut arena).unwrap();
            assert!(bits(&want, &got), "{cfg}");
            // Re-executing with the warm arena stays identical.
            let again = plan.execute(PlanInput::Pixels(&x), &mut arena).unwrap();
            assert!(bits(&want, &again), "{cfg} (warm arena)");
        }
    }

    #[test]
    fn unsupported_pair_fails_at_plan_time() {
        let cfg = QuantConfig::uniform(TensorFormat::Bf16);
        let lin = Linear::new(&mut rng(), 16, 4, false, cfg);
        let mut s = Stage::new(16, 4);
        let err = s.gemm(&lin, Loc::In, Loc::Out, 1, cfg, None).unwrap_err();
        assert!(matches!(err, PlanError::UnsupportedFormats { .. }), "{err}");
    }

    #[test]
    fn execute_validates_input_shape_and_kind() {
        let cfg = QuantConfig::fp32();
        let lin = Linear::new(&mut rng(), 8, 2, false, cfg);
        let mut p = Planner::new();
        p.pixels_input(8);
        let mut s = Stage::new(8, 2);
        s.gemm(&lin, Loc::In, Loc::Out, 1, cfg, None).unwrap();
        p.push_stage(s);
        let plan = p.finish().unwrap();
        let mut arena = PlanArena::new();
        assert!(plan
            .execute(PlanInput::Pixels(&[0.0; 7]), &mut arena)
            .is_err());
        assert!(plan
            .execute(PlanInput::Tokens(&[1, 2]), &mut arena)
            .is_err());
        assert!(plan
            .execute(PlanInput::Pixels(&[0.0; 8]), &mut arena)
            .is_ok());
    }

    #[test]
    fn counters_move_on_compile() {
        let (p0, h0, a0) = plan_counters();
        let cfg = QuantConfig::uniform(TensorFormat::MX9);
        let lin = Linear::new(&mut rng(), 32, 4, false, cfg);
        let mut p = Planner::new();
        p.pixels_input(32);
        let mut s = Stage::new(32, 4);
        s.gemm(&lin, Loc::In, Loc::Out, 1, cfg, None).unwrap();
        p.push_stage(s);
        let plan = p.finish().unwrap();
        let (p1, h1, a1) = plan_counters();
        assert!(p1 > p0, "plans compiled must advance");
        assert!(h1 > h0, "the MX9 weight plane was a prepack hoist");
        assert!(a1 >= a0 + (plan.arena_elems() * 4) as u64);
    }
}
