//! # mx-nn — a minimal DNN training stack with MX/BDR quantized compute
//!
//! The substrate behind the paper's end-to-end experiments (§V–§VI): dense
//! tensors, layers with explicit backward passes, FP32 master-weight
//! optimizers, and — the point of the exercise — the Fig. 8 quantized
//! compute flow, where every tensor operation quantizes both operands along
//! the reduction dimension and element-wise ops run in a scalar format.
//!
//! Quantization is *directional*: `Q(Wᵀ) ≠ Q(W)ᵀ`, so the backward pass
//! re-quantizes transposed tensors fresh (two quantized weight copies per
//! Fig. 8). Switching a trained model between FP32 and MX formats is a
//! one-line [`qflow::QuantConfig`] change, which is exactly what "direct
//! cast" means in Tables III–V.
//!
//! ## Example: train a quantized MLP
//!
//! ```
//! use mx_nn::format::TensorFormat;
//! use mx_nn::layers::{Activation, ActivationLayer, Layer, Linear, Sequential};
//! use mx_nn::loss::softmax_cross_entropy;
//! use mx_nn::optim::Sgd;
//! use mx_nn::param::HasParams;
//! use mx_nn::qflow::QuantConfig;
//! use mx_nn::tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = QuantConfig::uniform(TensorFormat::MX9);
//! let mut model = Sequential::new();
//! model.push(Box::new(Linear::new(&mut rng, 4, 16, true, cfg)));
//! model.push(Box::new(ActivationLayer::new(Activation::Relu, cfg.elementwise)));
//! model.push(Box::new(Linear::new(&mut rng, 16, 2, true, cfg)));
//!
//! let x = Tensor::from_vec(vec![0.1, 0.7, -0.3, 0.2, 0.9, -0.1, 0.4, 0.0], &[2, 4]);
//! let targets = [0usize, 1];
//! let opt = Sgd::new(0.1);
//! for _ in 0..10 {
//!     model.zero_grads();
//!     let logits = model.forward(&x, true);
//!     let (_loss, grad) = softmax_cross_entropy(&logits, &targets);
//!     model.backward(&grad);
//!     opt.step(&mut model);
//! }
//! ```

#![warn(missing_docs)]

pub mod attention;
pub mod conv;
pub mod format;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod param;
pub mod plan;
pub mod qflow;
pub mod rnn;
pub mod tensor;

pub use format::TensorFormat;
pub use param::{HasParams, Param};
pub use qflow::QuantConfig;
pub use tensor::Tensor;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, ActivationLayer, Layer, Linear, Sequential};
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// End-to-end sanity: a small MLP learns XOR under FP32 and MX9, and the
    /// two runs reach similar losses (the drop-in-replacement claim in
    /// miniature).
    #[test]
    fn xor_learns_in_fp32_and_mx9() {
        let losses: Vec<f64> = [QuantConfig::fp32(), QuantConfig::uniform(TensorFormat::MX9)]
            .into_iter()
            .map(|cfg| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut model = Sequential::new();
                model.push(Box::new(Linear::new(&mut rng, 2, 16, true, cfg)));
                model.push(Box::new(ActivationLayer::new(
                    Activation::Tanh,
                    cfg.elementwise,
                )));
                model.push(Box::new(Linear::new(&mut rng, 16, 2, true, cfg)));
                let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
                let t = [0usize, 1, 1, 0];
                let mut opt = Adam::new(0.02);
                let mut last = f64::NAN;
                for _ in 0..300 {
                    model.zero_grads();
                    let logits = model.forward(&x, true);
                    let (loss, grad) = softmax_cross_entropy(&logits, &t);
                    model.backward(&grad);
                    opt.step(&mut model);
                    last = loss;
                }
                last
            })
            .collect();
        assert!(losses[0] < 0.05, "FP32 failed to learn XOR: {}", losses[0]);
        assert!(losses[1] < 0.05, "MX9 failed to learn XOR: {}", losses[1]);
        assert!(
            (losses[0] - losses[1]).abs() < 0.05,
            "FP32 {} vs MX9 {}",
            losses[0],
            losses[1]
        );
    }

    /// MX4 forward + FP32 backward (QAT config) still trains, just noisier.
    #[test]
    fn qat_mx4_still_learns() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = QuantConfig::qat(TensorFormat::MX4);
        let mut model = Sequential::new();
        model.push(Box::new(Linear::new(&mut rng, 2, 32, true, cfg)));
        model.push(Box::new(ActivationLayer::new(
            Activation::Relu,
            cfg.elementwise,
        )));
        model.push(Box::new(Linear::new(&mut rng, 32, 2, true, cfg)));
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
        let t = [0usize, 1, 1, 0];
        let mut opt = Adam::new(0.02);
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        for i in 0..400 {
            model.zero_grads();
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &t);
            model.backward(&grad);
            opt.step(&mut model);
            if i == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(
            last < first * 0.5,
            "QAT-MX4 did not improve: {first} -> {last}"
        );
    }
}
