//! Tensor-level numeric formats and directional quantization.
//!
//! MX is a *directional* format: hardware benefits require quantizing along
//! the dot-product reduction dimension, which makes quantization and
//! transposition non-commutative (§V of the paper). [`TensorFormat`]
//! abstracts over the formats a tensor operation can run in, and
//! [`quantize_along`] implements axis-aware quantization for 2-D tensors.
//!
//! Block (BDR) formats route through the unified
//! [`mx_core::engine::QuantEngine`]: row-axis quantization uses the
//! engine's row kernel and column-axis quantization uses the *strided*
//! column kernel, which walks `k1`-blocks directly down each column —
//! the seed's transpose → quantize → transpose round trip is gone. Large
//! tensors are split across cores by the engine's chunked parallel
//! front-end (bit-identical to serial).
//!
//! Note that [`quantize_along`] is the *fake-quantization* view (values
//! come back as `f32`). Matrix products between two BDR-format operands
//! never materialize that view: [`crate::qflow::quantized_matmul_ab`]
//! routes them through [`mx_core::gemm`], which consumes the integer block
//! codes directly and is bit-identical to fake-quantize + blocked `f32`
//! matmul.

use crate::tensor::Tensor;
use mx_core::bdr::BdrFormat;
use mx_core::engine::QuantEngine;
use mx_core::scalar::ScalarFormat;
use std::fmt;

/// Numeric format for a tensor operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TensorFormat {
    /// Full precision (no quantization).
    Fp32,
    /// BFloat16 element-wise rounding.
    Bf16,
    /// Scalar narrow float with per-tensor amax scaling (FP8-style; the
    /// scale maps the tensor's amax onto the format's max finite value).
    ScalarScaled(ScalarFormat),
    /// Block format quantized along the reduction dimension.
    Bdr(BdrFormat),
}

impl TensorFormat {
    /// Convenience constant: MX9 block format.
    pub const MX9: Self = TensorFormat::Bdr(BdrFormat::MX9);
    /// Convenience constant: MX6 block format.
    pub const MX6: Self = TensorFormat::Bdr(BdrFormat::MX6);
    /// Convenience constant: MX4 block format.
    pub const MX4: Self = TensorFormat::Bdr(BdrFormat::MX4);

    /// Whether this format leaves values untouched.
    pub fn is_identity(&self) -> bool {
        matches!(self, TensorFormat::Fp32)
    }

    /// Average storage bits per element.
    pub fn bits_per_element(&self) -> f64 {
        match self {
            TensorFormat::Fp32 => 32.0,
            TensorFormat::Bf16 => 16.0,
            TensorFormat::ScalarScaled(f) => f.total_bits() as f64,
            TensorFormat::Bdr(f) => f.bits_per_element(),
        }
    }
}

impl fmt::Display for TensorFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorFormat::Fp32 => f.write_str("FP32"),
            TensorFormat::Bf16 => f.write_str("BF16"),
            TensorFormat::ScalarScaled(s) => write!(f, "{s}"),
            TensorFormat::Bdr(b) => write!(f, "{b}"),
        }
    }
}

/// Axis along which a 2-D tensor is quantized (the reduction dimension of
/// the tensor op that will consume it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Blocks run along each row (the last dimension) — e.g. the activations
    /// `A[M,K]` of `A·W`, quantized along `K`.
    Row,
    /// Blocks run down each column — e.g. the weights `W[K,N]` of `A·W`,
    /// quantized along `K`.
    Col,
}

/// Quantizes `t` (viewed as 2-D) to `format` along `axis`, returning the
/// dequantized ("fake-quantized") tensor.
///
/// Scalar formats are direction-free; block formats tile their `k1`-blocks
/// along the requested axis.
///
/// # Examples
///
/// ```
/// # use mx_nn::format::{quantize_along, Axis, TensorFormat};
/// # use mx_nn::tensor::Tensor;
/// let t = Tensor::from_vec((0..32).map(|i| i as f32 * 0.1).collect(), &[2, 16]);
/// let row_q = quantize_along(&t, TensorFormat::MX6, Axis::Row);
/// let col_q = quantize_along(&t, TensorFormat::MX6, Axis::Col);
/// // Quantization is directional: the two results differ.
/// assert_ne!(row_q.data(), col_q.data());
/// ```
pub fn quantize_along(t: &Tensor, format: TensorFormat, axis: Axis) -> Tensor {
    match (format, axis) {
        (TensorFormat::Fp32, _) => t.clone(),
        (TensorFormat::Bdr(fmt), Axis::Col) => {
            let cols = t.cols();
            let mut out = t.clone();
            QuantEngine::auto(fmt).quantize_dequantize_cols(out.data_mut(), cols);
            out
        }
        // Scalar formats are direction-free and BDR row-axis quantization is
        // the row kernel: all of them share the slice-level cast the plan
        // executor also runs, so planned and dynamic outputs cannot drift.
        _ => {
            let cols = t.cols();
            let mut out = t.clone();
            cast_rows(out.data_mut(), cols, format);
            out
        }
    }
}

/// Slice-level row-axis / element-wise cast: quantize-dequantizes `data`
/// (viewed as rows of `cols` elements) through `format` in place.
///
/// This is the one implementation behind [`quantize_along`]'s row axis,
/// [`cast_elementwise`], and the `plan` executor's fused cast steps —
/// sharing it is what makes compiled plans bit-identical to the dynamic
/// layer walk by construction.
pub(crate) fn cast_rows(data: &mut [f32], cols: usize, format: TensorFormat) {
    match format {
        TensorFormat::Fp32 => {}
        TensorFormat::Bf16 => {
            for v in data.iter_mut() {
                *v = ScalarFormat::BF16.cast(*v);
            }
        }
        TensorFormat::ScalarScaled(f) => {
            let amax = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if amax == 0.0 {
                return;
            }
            let s = amax as f64 / f.max_finite() as f64;
            for v in data.iter_mut() {
                *v = (f.cast((*v as f64 / s) as f32) as f64 * s) as f32;
            }
        }
        TensorFormat::Bdr(fmt) => QuantEngine::auto(fmt).quantize_dequantize_rows(data, cols),
    }
}

/// Casts every element of `t` through `format` without directional blocking
/// (used for element-wise operation outputs, e.g. BF16 vector ops).
pub fn cast_elementwise(t: &Tensor, format: TensorFormat) -> Tensor {
    match format {
        TensorFormat::Fp32 => t.clone(),
        // Element-wise casting has no reduction direction; BDR formats are
        // treated as row-blocked and hit the engine's row kernel.
        other => quantize_along(t, other, Axis::Row),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(
            (0..rows * cols)
                .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.037)
                .collect(),
            &[rows, cols],
        )
    }

    #[test]
    fn fp32_is_identity() {
        let t = ramp(4, 16);
        assert_eq!(quantize_along(&t, TensorFormat::Fp32, Axis::Row), t);
        assert!(TensorFormat::Fp32.is_identity());
    }

    #[test]
    fn row_quantization_matches_per_row_vectors() {
        let t = ramp(3, 32);
        let q = quantize_along(&t, TensorFormat::MX6, Axis::Row);
        for r in 0..3 {
            let row = t.slice_rows(r, r + 1);
            let expect = BdrFormat::MX6.quantize_dequantize(row.data());
            assert_eq!(&q.data()[r * 32..(r + 1) * 32], &expect[..]);
        }
    }

    #[test]
    fn col_quantization_matches_transposed_rows() {
        let t = ramp(32, 3);
        let q = quantize_along(&t, TensorFormat::MX6, Axis::Col);
        let tt = t.transpose2d();
        for c in 0..3 {
            let col = tt.slice_rows(c, c + 1);
            let expect = BdrFormat::MX6.quantize_dequantize(col.data());
            for (r, &e) in expect.iter().enumerate() {
                assert_eq!(q.data()[r * 3 + c], e);
            }
        }
    }

    #[test]
    fn quantize_transpose_noncommutative() {
        // Fig. 8: Q(W^T) != Q(W)^T for directional formats.
        let t = ramp(16, 16);
        let q_then_t = quantize_along(&t, TensorFormat::MX4, Axis::Row).transpose2d();
        let t_then_q = quantize_along(&t.transpose2d(), TensorFormat::MX4, Axis::Row);
        assert_ne!(q_then_t.data(), t_then_q.data());
    }

    #[test]
    fn bf16_casting_clears_low_bits() {
        let t = ramp(2, 8);
        let q = cast_elementwise(&t, TensorFormat::Bf16);
        for &v in q.data() {
            assert_eq!(v.to_bits() & 0xffff, 0);
        }
    }

    #[test]
    fn scalar_scaled_maps_amax_to_max_finite() {
        let t = Tensor::from_vec(vec![3.0, -1.5, 0.75, 0.0], &[2, 2]);
        let q = quantize_along(
            &t,
            TensorFormat::ScalarScaled(ScalarFormat::E4M3),
            Axis::Row,
        );
        // Max element and power-of-two fractions of it survive exactly.
        assert_eq!(q.data(), t.data());
    }

    #[test]
    fn zero_tensor_is_fixed_point_for_all_formats() {
        let t = Tensor::zeros(&[4, 16]);
        for f in [
            TensorFormat::Fp32,
            TensorFormat::Bf16,
            TensorFormat::ScalarScaled(ScalarFormat::E5M2),
            TensorFormat::MX9,
        ] {
            assert_eq!(quantize_along(&t, f, Axis::Row), t, "{f}");
        }
    }

    #[test]
    fn bits_per_element() {
        assert_eq!(TensorFormat::Fp32.bits_per_element(), 32.0);
        assert_eq!(TensorFormat::Bf16.bits_per_element(), 16.0);
        assert_eq!(TensorFormat::MX9.bits_per_element(), 9.0);
        assert_eq!(
            TensorFormat::ScalarScaled(ScalarFormat::E4M3).bits_per_element(),
            8.0
        );
    }

    #[test]
    fn display_labels() {
        assert_eq!(TensorFormat::MX6.to_string(), "MX6");
        assert_eq!(TensorFormat::Bf16.to_string(), "BF16");
    }
}
