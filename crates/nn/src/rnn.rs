//! Gated recurrent unit with full backpropagation through time — the
//! recurrent-topology substrate for the GNMT-style translation row of
//! Table III. All six gate matmuls are quantized per the Fig. 8 rules.

use crate::init;
use crate::param::{HasParams, Param};
use crate::qflow::{quantized_matmul, QuantConfig};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-timestep cache for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,
    h_prev: Tensor,
    r: Tensor,
    z: Tensor,
    n: Tensor,
    hn_term: Tensor, // h_prev·W_hn + b_hn (pre-gating)
}

/// A single-layer GRU.
///
/// Update rules (PyTorch convention):
/// `r = σ(x·Wxr + h·Whr + br)`, `z = σ(x·Wxz + h·Whz + bz)`,
/// `n = tanh(x·Wxn + bxn + r ∘ (h·Whn + bhn))`, `h' = (1−z)∘n + z∘h`.
#[derive(Debug, Clone)]
pub struct Gru {
    /// Input weights `[d_in, hidden]` for the r, z, n gates.
    pub wxr: Param,
    /// See [`Gru::wxr`].
    pub wxz: Param,
    /// See [`Gru::wxr`].
    pub wxn: Param,
    /// Hidden weights `[hidden, hidden]` for the r, z, n gates.
    pub whr: Param,
    /// See [`Gru::whr`].
    pub whz: Param,
    /// See [`Gru::whr`].
    pub whn: Param,
    /// Gate biases `[hidden]`.
    pub br: Param,
    /// See [`Gru::br`].
    pub bz: Param,
    /// Input-side bias of the candidate gate.
    pub bxn: Param,
    /// Hidden-side bias of the candidate gate.
    pub bhn: Param,
    hidden: usize,
    cfg: QuantConfig,
    caches: Vec<StepCache>,
}

impl Gru {
    /// Creates a GRU layer.
    pub fn new(rng: &mut StdRng, d_in: usize, hidden: usize, cfg: QuantConfig) -> Self {
        let mk_x = |rng: &mut StdRng| Param::new(init::xavier_uniform(rng, d_in, hidden));
        let mk_h = |rng: &mut StdRng| Param::new(init::xavier_uniform(rng, hidden, hidden));
        Gru {
            wxr: mk_x(rng),
            wxz: mk_x(rng),
            wxn: mk_x(rng),
            whr: mk_h(rng),
            whz: mk_h(rng),
            whn: mk_h(rng),
            br: Param::new(Tensor::zeros(&[hidden])),
            bz: Param::new(Tensor::zeros(&[hidden])),
            bxn: Param::new(Tensor::zeros(&[hidden])),
            bhn: Param::new(Tensor::zeros(&[hidden])),
            hidden,
            cfg,
            caches: Vec::new(),
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Replaces the quantization config.
    pub fn set_quant(&mut self, cfg: QuantConfig) {
        self.cfg = cfg;
    }

    /// One step: `x [B, d_in]`, `h [B, hidden]` → new hidden state.
    pub fn step(&mut self, x: &Tensor, h: &Tensor, train: bool) -> Tensor {
        use crate::qflow::quantized_matmul_ab as qmm;
        let (fa, fw) = (self.cfg.fwd, self.cfg.fwd_w);
        let r_pre = qmm(x, &self.wxr.value, fa, fw)
            .add(&qmm(h, &self.whr.value, fa, fw))
            .add_row(&self.br.value);
        let z_pre = qmm(x, &self.wxz.value, fa, fw)
            .add(&qmm(h, &self.whz.value, fa, fw))
            .add_row(&self.bz.value);
        let r = r_pre.map(sigmoid);
        let z = z_pre.map(sigmoid);
        let hn_term = qmm(h, &self.whn.value, fa, fw).add_row(&self.bhn.value);
        let n_pre = qmm(x, &self.wxn.value, fa, fw)
            .add_row(&self.bxn.value)
            .add(&r.mul(&hn_term));
        let n = n_pre.map(f32::tanh);
        let h_new = z.mul(h).add(&n.sub(&z.mul(&n)));
        if train {
            self.caches.push(StepCache {
                x: x.clone(),
                h_prev: h.clone(),
                r,
                z,
                n,
                hn_term,
            });
        }
        h_new
    }

    /// Runs a full sequence `[B, T, d_in]`, returning all hidden states
    /// `[B, T, hidden]` (initial state zero).
    pub fn forward_sequence(&mut self, xs: &Tensor, train: bool) -> Tensor {
        let (b, t, d) = (xs.shape()[0], xs.shape()[1], xs.shape()[2]);
        self.caches.clear();
        let mut h = Tensor::zeros(&[b, self.hidden]);
        let mut outs: Vec<f32> = Vec::with_capacity(b * t * self.hidden);
        let mut per_step = Vec::with_capacity(t);
        for ti in 0..t {
            // Gather x_t across the batch.
            let mut xt = Vec::with_capacity(b * d);
            for bi in 0..b {
                let base = (bi * t + ti) * d;
                xt.extend_from_slice(&xs.data()[base..base + d]);
            }
            let xt = Tensor::from_vec(xt, &[b, d]);
            h = self.step(&xt, &h, train);
            per_step.push(h.clone());
        }
        for bi in 0..b {
            for step in per_step.iter() {
                outs.extend_from_slice(&step.data()[bi * self.hidden..(bi + 1) * self.hidden]);
            }
        }
        Tensor::from_vec(outs, &[b, t, self.hidden])
    }

    /// BPTT from `grads [B, T, hidden]` (gradient w.r.t. every step's
    /// output). Returns the gradient w.r.t. the input sequence.
    pub fn backward_sequence(&mut self, grads: &Tensor) -> Tensor {
        let (b, t, hd) = (grads.shape()[0], grads.shape()[1], grads.shape()[2]);
        assert_eq!(t, self.caches.len(), "backward/forward step mismatch");
        let d_in = self.wxr.value.shape()[0];
        let bq = self.cfg.bwd;
        let mut dh_next = Tensor::zeros(&[b, hd]);
        let mut dx_all = vec![0.0f32; b * t * d_in];
        for ti in (0..t).rev() {
            let cache = &self.caches[ti];
            // Output grad for this step + carry from the future.
            let mut dh = dh_next.clone();
            {
                let dhd = dh.data_mut();
                for bi in 0..b {
                    for j in 0..hd {
                        dhd[bi * hd + j] += grads.data()[(bi * t + ti) * hd + j];
                    }
                }
            }
            let dz = dh.mul(&cache.h_prev.sub(&cache.n));
            let dn = dh.mul(&cache.z.map(|z| 1.0 - z));
            let mut dh_prev = dh.mul(&cache.z);
            let dn_pre = dn.zip_map(&cache.n, |g, n| g * (1.0 - n * n));
            let dr = dn_pre.mul(&cache.hn_term);
            let dhn_term = dn_pre.mul(&cache.r);
            let dz_pre = dz.zip_map(&cache.z, |g, z| g * z * (1.0 - z));
            let dr_pre = dr.zip_map(&cache.r, |g, r| g * r * (1.0 - r));
            // Parameter gradients (quantized backward matmuls).
            let xt = cache.x.transpose2d();
            let ht = cache.h_prev.transpose2d();
            self.wxn.accumulate(&quantized_matmul(&xt, &dn_pre, bq));
            self.wxz.accumulate(&quantized_matmul(&xt, &dz_pre, bq));
            self.wxr.accumulate(&quantized_matmul(&xt, &dr_pre, bq));
            self.whn.accumulate(&quantized_matmul(&ht, &dhn_term, bq));
            self.whz.accumulate(&quantized_matmul(&ht, &dz_pre, bq));
            self.whr.accumulate(&quantized_matmul(&ht, &dr_pre, bq));
            self.bxn.accumulate(&dn_pre.sum_rows());
            self.bhn.accumulate(&dhn_term.sum_rows());
            self.bz.accumulate(&dz_pre.sum_rows());
            self.br.accumulate(&dr_pre.sum_rows());
            // Input and hidden-state gradients.
            let dx = quantized_matmul(&dn_pre, &self.wxn.value.transpose2d(), bq)
                .add(&quantized_matmul(
                    &dz_pre,
                    &self.wxz.value.transpose2d(),
                    bq,
                ))
                .add(&quantized_matmul(
                    &dr_pre,
                    &self.wxr.value.transpose2d(),
                    bq,
                ));
            dh_prev = dh_prev
                .add(&quantized_matmul(
                    &dhn_term,
                    &self.whn.value.transpose2d(),
                    bq,
                ))
                .add(&quantized_matmul(
                    &dz_pre,
                    &self.whz.value.transpose2d(),
                    bq,
                ))
                .add(&quantized_matmul(
                    &dr_pre,
                    &self.whr.value.transpose2d(),
                    bq,
                ));
            for bi in 0..b {
                for j in 0..d_in {
                    dx_all[(bi * t + ti) * d_in + j] = dx.data()[bi * d_in + j];
                }
            }
            dh_next = dh_prev;
        }
        self.caches.clear();
        Tensor::from_vec(dx_all, &[b, t, d_in])
    }
}

impl HasParams for Gru {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in [
            &mut self.wxr,
            &mut self.wxz,
            &mut self.wxn,
            &mut self.whr,
            &mut self.whz,
            &mut self.whn,
            &mut self.br,
            &mut self.bz,
            &mut self.bxn,
            &mut self.bhn,
        ] {
            f(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn seq(b: usize, t: usize, d: usize) -> Tensor {
        Tensor::from_vec(
            (0..b * t * d)
                .map(|i| ((i * 13 % 19) as f32 - 9.0) * 0.08)
                .collect(),
            &[b, t, d],
        )
    }

    #[test]
    fn shapes() {
        let mut gru = Gru::new(&mut rng(), 3, 5, QuantConfig::fp32());
        let xs = seq(2, 4, 3);
        let hs = gru.forward_sequence(&xs, true);
        assert_eq!(hs.shape(), &[2, 4, 5]);
        let dx = gru.backward_sequence(&hs);
        assert_eq!(dx.shape(), &[2, 4, 3]);
    }

    #[test]
    fn hidden_state_carries_information() {
        // Output at the last step must depend on the first input.
        let mut gru = Gru::new(&mut rng(), 2, 4, QuantConfig::fp32());
        let x1 = seq(1, 5, 2);
        let mut x2 = x1.clone();
        x2.data_mut()[0] += 1.0;
        let h1 = gru.forward_sequence(&x1, false);
        let h2 = gru.forward_sequence(&x2, false);
        let last1 = &h1.data()[4 * 4..];
        let last2 = &h2.data()[4 * 4..];
        let diff: f32 = last1.iter().zip(last2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-5, "GRU forgot its first input");
    }

    #[test]
    fn bptt_gradcheck() {
        let mut gru = Gru::new(&mut rng(), 2, 3, QuantConfig::fp32());
        let xs = seq(1, 3, 2);
        let hs = gru.forward_sequence(&xs, true);
        let dx = gru.backward_sequence(&hs);
        let eps = 1e-3;
        for i in 0..xs.numel() {
            let mut xp = xs.clone();
            xp.data_mut()[i] += eps;
            let mut xm = xs.clone();
            xm.data_mut()[i] -= eps;
            let lp = gru.forward_sequence(&xp, false).sq_norm() / 2.0;
            let lm = gru.forward_sequence(&xm, false).sq_norm() / 2.0;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "GRU grad mismatch at {i}: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn weight_gradcheck_single_matrix() {
        let mut gru = Gru::new(&mut rng(), 2, 3, QuantConfig::fp32());
        let xs = seq(1, 3, 2);
        let hs = gru.forward_sequence(&xs, true);
        let _ = gru.backward_sequence(&hs);
        let analytic = gru.whn.grad.clone();
        let eps = 1e-3;
        for i in 0..analytic.numel() {
            let orig = gru.whn.value.data()[i];
            gru.whn.value.data_mut()[i] = orig + eps;
            let lp = gru.forward_sequence(&xs, false).sq_norm() / 2.0;
            gru.whn.value.data_mut()[i] = orig - eps;
            let lm = gru.forward_sequence(&xs, false).sq_norm() / 2.0;
            gru.whn.value.data_mut()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - analytic.data()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "whn grad mismatch at {i}: {num} vs {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn param_count() {
        let mut gru = Gru::new(&mut rng(), 4, 8, QuantConfig::fp32());
        // 3 * (4*8) + 3 * (8*8) + 4 * 8 biases.
        assert_eq!(gru.param_count(), 96 + 192 + 32);
    }
}
