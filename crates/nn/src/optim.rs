//! Optimizers operating on FP32 master weights (Fig. 8's optimizer stage is
//! always full precision, regardless of the tensor-op format).

use crate::param::{HasParams, Param};
use crate::tensor::Tensor;

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables the velocity buffer).
    pub momentum: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// Applies one update to every parameter of `model`.
    pub fn step(&self, model: &mut dyn HasParams) {
        model.visit_params(&mut |p: &mut Param| {
            if self.weight_decay != 0.0 {
                let wd = self.weight_decay;
                let decay: Vec<f32> = p.value.data().iter().map(|w| w * wd).collect();
                for (g, d) in p.grad.data_mut().iter_mut().zip(decay) {
                    *g += d;
                }
            }
            if self.momentum != 0.0 {
                let vel = p
                    .moment1
                    .get_or_insert_with(|| Tensor::zeros(p.value.shape()));
                for (v, &g) in vel.data_mut().iter_mut().zip(p.grad.data().iter()) {
                    *v = self.momentum * *v + g;
                }
                let vel = vel.clone();
                for (w, &v) in p.value.data_mut().iter_mut().zip(vel.data().iter()) {
                    *w -= self.lr * v;
                }
            } else {
                let lr = self.lr;
                let grads: Vec<f32> = p.grad.data().to_vec();
                for (w, g) in p.value.data_mut().iter_mut().zip(grads) {
                    *w -= lr * g;
                }
            }
        });
    }
}

/// Adam with decoupled weight decay (AdamW-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    step_count: u64,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step_count: 0,
        }
    }

    /// Sets decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Resets the bias-correction clock and lets moments rebuild (the
    /// "reset the optimizer" step the paper recommends before
    /// quantization-aware fine-tuning).
    pub fn reset(&mut self, model: &mut dyn HasParams) {
        self.step_count = 0;
        model.visit_params(&mut |p| {
            p.moment1 = None;
            p.moment2 = None;
        });
    }

    /// Applies one update to every parameter of `model`.
    pub fn step(&mut self, model: &mut dyn HasParams) {
        self.step_count += 1;
        let t = self.step_count as f64;
        let bc1 = 1.0 - (self.beta1 as f64).powf(t);
        let bc2 = 1.0 - (self.beta2 as f64).powf(t);
        let (b1, b2, eps, lr, wd) = (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
        model.visit_params(&mut |p: &mut Param| {
            if p.moment1.is_none() {
                p.moment1 = Some(Tensor::zeros(p.value.shape()));
            }
            if p.moment2.is_none() {
                p.moment2 = Some(Tensor::zeros(p.value.shape()));
            }
            let n = p.value.numel();
            // Borrow the buffers once, outside the element loop: the
            // fields are disjoint, and `data_mut` bumps the tensor
            // generation (weight-cache invalidation) per call — one bump
            // per tensor per step, not three per element.
            let Param {
                value,
                grad,
                moment1,
                moment2,
            } = p;
            let g = grad.data();
            let m = moment1.as_mut().expect("allocated above").data_mut();
            let v = moment2.as_mut().expect("allocated above").data_mut();
            let w = value.data_mut();
            for i in 0..n {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                let mhat = m[i] as f64 / bc1;
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                let vhat = v[i] as f64 / bc2;
                w[i] -= lr * (mhat / (vhat.sqrt() + eps as f64)) as f32 + lr * wd * w[i];
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct One {
        p: Param,
    }

    impl HasParams for One {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p)
        }
    }

    fn quadratic_grad(m: &mut One) {
        // Loss = 0.5 * ||w - 3||^2, grad = w - 3.
        let g = m.p.value.map(|w| w - 3.0);
        m.p.zero_grad();
        m.p.accumulate(&g);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut m = One {
            p: Param::new(Tensor::from_vec(vec![0.0, 10.0], &[2])),
        };
        let opt = Sgd::new(0.1);
        for _ in 0..200 {
            quadratic_grad(&mut m);
            opt.step(&mut m);
        }
        for &w in m.p.value.data() {
            assert!((w - 3.0).abs() < 1e-3, "w = {w}");
        }
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = One {
            p: Param::new(Tensor::from_vec(vec![10.0], &[1])),
        };
        let mut mom = One {
            p: Param::new(Tensor::from_vec(vec![10.0], &[1])),
        };
        let o1 = Sgd::new(0.01);
        let o2 = Sgd {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        for _ in 0..50 {
            quadratic_grad(&mut plain);
            o1.step(&mut plain);
            quadratic_grad(&mut mom);
            o2.step(&mut mom);
        }
        let e1 = (plain.p.value.data()[0] - 3.0).abs();
        let e2 = (mom.p.value.data()[0] - 3.0).abs();
        assert!(e2 < e1, "momentum ({e2}) should beat plain ({e1})");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut m = One {
            p: Param::new(Tensor::from_vec(vec![-5.0, 20.0], &[2])),
        };
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            quadratic_grad(&mut m);
            opt.step(&mut m);
        }
        for &w in m.p.value.data() {
            // Adam with a fixed lr hovers near the optimum rather than
            // converging exactly.
            assert!((w - 3.0).abs() < 5e-2, "w = {w}");
        }
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adam_reset_clears_moments() {
        let mut m = One {
            p: Param::new(Tensor::from_vec(vec![1.0], &[1])),
        };
        let mut opt = Adam::new(0.1);
        quadratic_grad(&mut m);
        opt.step(&mut m);
        assert!(m.p.moment1.is_some());
        opt.reset(&mut m);
        assert!(m.p.moment1.is_none());
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut m = One {
            p: Param::new(Tensor::from_vec(vec![1.0], &[1])),
        };
        let mut opt = Adam::new(0.1).with_weight_decay(0.1);
        // Zero gradient: only the (decoupled, lr-scaled) decay acts.
        m.p.zero_grad();
        opt.step(&mut m);
        assert!((m.p.value.data()[0] - 0.99).abs() < 1e-6);
    }
}
