//! The quantized compute flow of Fig. 8: which tensors get quantized, in
//! which format, along which axis, in the forward and backward passes.
//!
//! Every tensor (matrix-multiply / convolution) operation quantizes *both*
//! operands along the reduction dimension. Element-wise operations run in a
//! scalar format (BF16 in the paper; FP32 here by default — see
//! [`QuantConfig::elementwise`]). The backward pass may use a different
//! (usually wider) format than the forward pass, which is how
//! quantization-aware fine-tuning with an MX6/MX4 forward and an FP32
//! backward is expressed.
//!
//! # The weight-plane cache and its invalidation contract
//!
//! When both operands of [`quantized_matmul_ab`] are BDR formats, the
//! product runs on `mx_core::gemm`'s prepack/execute split: the right
//! (weight) operand must be lowered to a shift-aligned integer code plane
//! ([`mx_core::gemm::PackedOperand`]) before the integer GEMM executes.
//! The left (activation) operand goes through the gemm module's
//! shape-aware dispatch (`quantized_gemm_prepacked_scratch`): at serving
//! shapes (`m ≤ FUSED_MAX_M` rows) it is quantized per row tile *inside*
//! the execute loop (pack-on-the-fly), at training shapes it is lowered in
//! one two-pass sweep — bit-identical either way, so every layer and the
//! `mx-serve` batch path picked the fused hot path up with no call-site
//! changes.
//! That lowering is cached **on the weight tensor itself**, keyed by the
//! weight format (the codes depend only on it, so one plane serves every
//! activation format in the same kernel class), and attention, linear,
//! RNN, and conv im2col all amortize packing across forward passes with no
//! call-site changes — at inference steady state the weight operand is
//! never re-quantized. The cache holds one plane *per weight format* (see
//! [`MAX_CACHED_PLANES`]) behind a mutex, so concurrent serving threads
//! that select formats per request share the same warm planes instead of
//! evicting each other — `mx-serve` leans on exactly this to lower each
//! model's weights once across all in-flight requests, and
//! [`plane_cache_counters`] exposes the hit/pack tallies its `ServeStats`
//! reports as "packs avoided".
//!
//! The invalidation contract is generation-based and cannot go stale:
//!
//! - every [`Tensor`] carries a globally unique generation stamp that
//!   changes on **every** mutable-data access ([`Tensor::data_mut`]);
//! - a cached plane records the generation it was packed at and is only
//!   reused while the stamps still match;
//! - optimizer steps (`Sgd::step` / `Adam::step` write through `data_mut`),
//!   direct `Param` weight writes, and wholesale tensor replacement
//!   therefore all invalidate the cache automatically — the next matmul
//!   repacks from the updated values and is bit-identical to an uncached
//!   run (asserted by the `weight_cache` regression suite).

use crate::format::{quantize_along, Axis, TensorFormat};
use crate::tensor::{CachedPlane, Tensor};
use mx_core::bdr::BdrFormat;
use mx_core::gemm::{self, PackScratch, PackedOperand};
use mx_core::parallel;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Most weight code planes a tensor caches at once (one per weight format).
/// Large enough for every preset plus headroom; past it the oldest entry is
/// evicted. Serving traffic that cycles through the presets therefore never
/// repacks after warmup, and a pathological format fuzzer cannot hoard
/// memory.
const MAX_CACHED_PLANES: usize = 8;

/// Process-wide count of weight-plane cache hits (a B-side lowering that
/// was skipped because a cached plane matched).
static PLANE_HITS: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of weight-plane packs actually performed (cold slot,
/// stale generation, new format, or forced cross-class repack).
static PLANE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide weight-plane cache counters as
/// `(hits, packs_performed)`. Hits are packs *avoided*: each one is a full
/// B-side lowering that a cached plane made unnecessary. The counters are
/// cumulative over the process (all models, all threads); consumers such as
/// `mx-serve`'s `ServeStats` report deltas against a baseline.
pub fn plane_cache_counters() -> (u64, u64) {
    (
        PLANE_HITS.load(Ordering::Relaxed),
        PLANE_MISSES.load(Ordering::Relaxed),
    )
}

thread_local! {
    /// Per-thread scratch for A-side (activation) packing: reusing the code
    /// plane buffers across forward passes removes the last per-call
    /// allocation on the inference steady-state path. Thread-local rather
    /// than per-tensor because activations are short-lived — the buffers
    /// belong to the compute thread, not the data.
    static PACK_SCRATCH: RefCell<PackScratch> = RefCell::new(PackScratch::new());
}

/// Format assignment for a model's tensor and vector operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Format of forward-pass *activation* operands.
    pub fwd: TensorFormat,
    /// Format of forward-pass *weight* operands (Table IV evaluates
    /// weight/activation format combinations independently).
    pub fwd_w: TensorFormat,
    /// Format of backward-pass tensor-op operands (errors, transposed
    /// weights and activations).
    pub bwd: TensorFormat,
    /// Format element-wise (vector) operation outputs are rounded to.
    pub elementwise: TensorFormat,
}

impl QuantConfig {
    /// Full-precision baseline: nothing is quantized.
    pub fn fp32() -> Self {
        QuantConfig {
            fwd: TensorFormat::Fp32,
            fwd_w: TensorFormat::Fp32,
            bwd: TensorFormat::Fp32,
            elementwise: TensorFormat::Fp32,
        }
    }

    /// The paper's MX training setup: the same block format on every tensor
    /// operand in forward and backward, element-wise ops left in full
    /// precision.
    pub fn uniform(format: TensorFormat) -> Self {
        QuantConfig {
            fwd: format,
            fwd_w: format,
            bwd: format,
            elementwise: TensorFormat::Fp32,
        }
    }

    /// Quantization-aware fine-tuning: narrow forward, full-precision
    /// backward (§V "the forward pass might use MX6 or MX4 and the backward
    /// pass a higher bit-width format").
    pub fn qat(fwd: TensorFormat) -> Self {
        QuantConfig {
            fwd,
            fwd_w: fwd,
            bwd: TensorFormat::Fp32,
            elementwise: TensorFormat::Fp32,
        }
    }

    /// Inference-style config with separate weight and activation formats —
    /// the `(w, a)` tuples of Table IV.
    pub fn weights_activations(w: TensorFormat, a: TensorFormat) -> Self {
        QuantConfig {
            fwd: a,
            fwd_w: w,
            bwd: TensorFormat::Fp32,
            elementwise: TensorFormat::Fp32,
        }
    }

    /// Overrides the element-wise format (e.g. BF16 to match the paper's
    /// vector-op precision exactly).
    pub fn with_elementwise(mut self, format: TensorFormat) -> Self {
        self.elementwise = format;
        self
    }

    /// Whether any tensor op quantizes at all.
    pub fn is_fp32(&self) -> bool {
        self.fwd.is_identity()
            && self.fwd_w.is_identity()
            && self.bwd.is_identity()
            && self.elementwise.is_identity()
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self::fp32()
    }
}

impl fmt::Display for QuantConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fwd={} fwd_w={} bwd={} elem={}",
            self.fwd, self.fwd_w, self.bwd, self.elementwise
        )
    }
}

/// Quantized matrix product: quantizes `a` along its rows (the reduction
/// dimension `K`) and `b` along its columns, then multiplies.
///
/// This is the single primitive every tensor op in the repository routes
/// through; it encodes the directional-quantization rule of §V.
///
/// # Examples
///
/// ```
/// # use mx_nn::qflow::quantized_matmul;
/// # use mx_nn::format::TensorFormat;
/// # use mx_nn::tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0; 32], &[2, 16]);
/// let b = Tensor::from_vec(vec![0.5; 32], &[16, 2]);
/// let y = quantized_matmul(&a, &b, TensorFormat::MX6);
/// assert_eq!(y.data(), &[8.0, 8.0, 8.0, 8.0]);
/// ```
pub fn quantized_matmul(a: &Tensor, b: &Tensor, format: TensorFormat) -> Tensor {
    quantized_matmul_ab(a, b, format, format)
}

/// [`quantized_matmul`] with distinct operand formats: `a` (activations)
/// quantizes in `fa`, `b` (weights) in `fb`.
///
/// When both operands are block (BDR) formats the product runs on
/// [`mx_core::gemm`]'s integer code-domain path through its
/// prepack/execute split: `b`'s shift-aligned code plane is fetched from
/// the tensor's generation-keyed cache (packed on a miss — see the module
/// docs for the invalidation contract), `a`'s rows are lowered fresh —
/// fused into the execute loop per row tile at serving shapes, two-pass at
/// training shapes (the gemm module's shape-aware dispatch) — and
/// every K-block dot product is computed in integer arithmetic with a
/// single `f32` scale-out per block pair — bit-identical to the dequantize
/// reference with blocked accumulation (and exactly equal to the naive
/// `f32` product whenever `K ≤ k1`), cached plane or not. Identity
/// (`FP32`) and scalar formats fall back to fake-quantize + `f32` matmul.
pub fn quantized_matmul_ab(a: &Tensor, b: &Tensor, fa: TensorFormat, fb: TensorFormat) -> Tensor {
    if fa.is_identity() && fb.is_identity() {
        return a.matmul(b);
    }
    if let (TensorFormat::Bdr(ba), TensorFormat::Bdr(bb)) = (fa, fb) {
        if gemm::code_domain_supported(&ba, &bb) {
            let (m, k) = (a.rows(), a.cols());
            assert_eq!(b.shape().len(), 2, "rhs of matmul must be 2-D");
            let (kb, n) = (b.shape()[0], b.shape()[1]);
            assert_eq!(k, kb, "inner dims: {k} vs {kb}");
            let threads = parallel::default_threads();
            let plane = weight_plane(b, ba, bb, k, n, false);
            let run = |plane: &PackedOperand| {
                PACK_SCRATCH.with(|scratch| {
                    gemm::quantized_gemm_prepacked_scratch(
                        a.data(),
                        m,
                        ba,
                        plane,
                        threads,
                        &mut scratch.borrow_mut(),
                    )
                })
            };
            let out = match run(&plane) {
                Some(out) => out,
                // The cached plane was packed for a partner in the other
                // kernel class (exotic mixed-format direct cast): repack
                // for this pair and replace the entry.
                None => {
                    let plane = weight_plane(b, ba, bb, k, n, true);
                    run(&plane).expect("plane freshly packed for this exact pair")
                }
            };
            let mut shape = a.shape()[..a.shape().len() - 1].to_vec();
            shape.push(n);
            return Tensor::from_vec(out, &shape);
        }
    }
    let aq = quantize_along(a, fa, Axis::Row);
    let bq = quantize_along(b, fb, Axis::Col);
    aq.matmul(&bq)
}

/// Returns `b`'s cached weight code plane for weight format `fb`, packing
/// (for the `(fa, fb)` pair) and caching on a cold or stale slot, or
/// unconditionally when `force` is set. A hit requires the stored
/// generation stamp to equal [`Tensor::generation`] — the contract that
/// makes optimizer steps and direct weight writes invalidate automatically.
/// Stale entries (from any older generation) are purged wholesale on the
/// first lookup after a mutation.
///
/// The cache holds one plane **per weight format** (up to
/// [`MAX_CACHED_PLANES`], oldest evicted): serving traffic that selects
/// formats per request keeps every live format's plane warm instead of
/// thrashing a single slot. The activation format is deliberately not part
/// of the key: the codes depend only on `fb`, so one plane serves every
/// activation format in the same kernel class (direct-cast sweeps that
/// alternate activation formats against one weight tensor keep hitting).
/// The rare cross-class pairing is caught by the prepacked GEMM returning
/// `None`, and the caller retries with `force`, which replaces that
/// format's entry.
///
/// The packing work is needed by the GEMM either way, so caching costs no
/// extra compute; for short-lived activation tensors that pass through as
/// the right operand, the entry simply drops with the tensor. (Activation
/// tensors a training cache retains — e.g. attention's per-head V — keep
/// their plane, roughly half the tensor's size again, alive for one step;
/// an accepted cost at this repo's scales, and inference retains no such
/// caches.)
///
/// Hits and packs are tallied in the process-wide counters behind
/// [`plane_cache_counters`]. `pub(crate)` so the `plan` module can pin the
/// same planes (same cache, same bits) at plan-compile time.
pub(crate) fn weight_plane(
    b: &Tensor,
    fa: BdrFormat,
    fb: BdrFormat,
    k: usize,
    n: usize,
    force: bool,
) -> Arc<PackedOperand> {
    let mut slot = b.plane_slot().lock().expect("plane cache poisoned");
    let gen = b.generation();
    // The data changed since these planes were packed: all of them are dead.
    slot.retain(|c| c.gen == gen);
    if !force {
        if let Some(cached) = slot.iter().find(|c| c.fb == fb) {
            PLANE_HITS.fetch_add(1, Ordering::Relaxed);
            return cached.plane.clone();
        }
    }
    PLANE_MISSES.fetch_add(1, Ordering::Relaxed);
    let plane = Arc::new(
        PackedOperand::pack_cols(b.data(), k, n, fa, fb).expect("pair passed the support gate"),
    );
    // A forced repack replaces this format's entry (it was packed for the
    // other kernel class); bounded eviction drops the oldest format.
    slot.retain(|c| c.fb != fb);
    if slot.len() >= MAX_CACHED_PLANES {
        slot.remove(0);
    }
    slot.push(CachedPlane {
        gen,
        fb,
        plane: plane.clone(),
    });
    plane
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_core::bdr::BdrFormat;

    #[test]
    fn fp32_config_is_identity() {
        let cfg = QuantConfig::fp32();
        assert!(cfg.is_fp32());
        let a = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[2, 4]);
        let b = Tensor::eye(4);
        assert_eq!(quantized_matmul(&a, &b, cfg.fwd), a);
    }

    #[test]
    fn uniform_and_qat_constructors() {
        let mx9 = QuantConfig::uniform(TensorFormat::MX9);
        assert_eq!(mx9.fwd, TensorFormat::MX9);
        assert_eq!(mx9.bwd, TensorFormat::MX9);
        let qat = QuantConfig::qat(TensorFormat::MX6);
        assert_eq!(qat.fwd, TensorFormat::MX6);
        assert!(qat.bwd.is_identity());
    }

    #[test]
    fn quantized_matmul_matches_manual_quantization() {
        // K = 16 is a single k1-block, where the code-domain GEMM is exactly
        // equal to the dequantize + naive f32 matmul composition.
        let a = Tensor::from_vec((0..64).map(|i| (i as f32 * 0.17).sin()).collect(), &[4, 16]);
        let b = Tensor::from_vec((0..64).map(|i| (i as f32 * 0.13).cos()).collect(), &[16, 4]);
        let y = quantized_matmul(&a, &b, TensorFormat::MX6);
        let aq = quantize_along(&a, TensorFormat::MX6, Axis::Row);
        let bq = quantize_along(&b, TensorFormat::MX6, Axis::Col);
        assert_eq!(y, aq.matmul(&bq));
        // And it differs from the unquantized product.
        assert_ne!(y, a.matmul(&b));
    }

    #[test]
    fn quantized_matmul_routes_through_code_domain_gemm() {
        use mx_core::gemm;
        // Multi-block K: the result is the integer-domain GEMM output
        // (bit-identical to the blocked dequantize reference).
        let (m, k, n) = (3, 40, 5);
        let a = Tensor::from_vec(
            (0..m * k).map(|i| (i as f32 * 0.19).sin()).collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n).map(|i| (i as f32 * 0.23).cos()).collect(),
            &[k, n],
        );
        for (fa, fb) in [
            (TensorFormat::MX6, TensorFormat::MX6),
            (TensorFormat::MX9, TensorFormat::MX4),
        ] {
            let y = quantized_matmul_ab(&a, &b, fa, fb);
            let (TensorFormat::Bdr(ba), TensorFormat::Bdr(bb)) = (fa, fb) else {
                unreachable!()
            };
            let want = gemm::reference_gemm(a.data(), b.data(), m, k, n, ba, bb);
            assert!(
                y.data()
                    .iter()
                    .zip(want.iter())
                    .all(|(x, w)| x.to_bits() == w.to_bits()),
                "{fa}/{fb}"
            );
        }
    }

    #[test]
    fn quantized_matmul_3d_lhs_keeps_leading_dims() {
        let a = Tensor::from_vec(
            (0..2 * 2 * 24).map(|i| (i as f32 * 0.11).sin()).collect(),
            &[2, 2, 24],
        );
        let b = Tensor::from_vec(
            (0..24 * 3).map(|i| (i as f32 * 0.07).cos()).collect(),
            &[24, 3],
        );
        let y = quantized_matmul(&a, &b, TensorFormat::MX9);
        assert_eq!(y.shape(), &[2, 2, 3]);
    }

    #[test]
    fn narrow_formats_add_more_noise() {
        let a = Tensor::from_vec(
            (0..256).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[16, 16],
        );
        let b = Tensor::from_vec(
            (0..256).map(|i| (i as f32 * 0.29).cos()).collect(),
            &[16, 16],
        );
        let exact = a.matmul(&b);
        let err = |fmt| {
            let y = quantized_matmul(&a, &b, TensorFormat::Bdr(fmt));
            y.sub(&exact).sq_norm()
        };
        let e9 = err(BdrFormat::MX9);
        let e6 = err(BdrFormat::MX6);
        let e4 = err(BdrFormat::MX4);
        assert!(e9 < e6 && e6 < e4, "{e9} {e6} {e4}");
    }

    #[test]
    fn weight_plane_cache_hits_and_invalidates() {
        let (m, k, n) = (3, 40, 5);
        let a = Tensor::from_vec(
            (0..m * k).map(|i| (i as f32 * 0.19).sin()).collect(),
            &[m, k],
        );
        let mut b = Tensor::from_vec(
            (0..k * n).map(|i| (i as f32 * 0.23).cos()).collect(),
            &[k, n],
        );
        assert_eq!(b.cached_plane_generation(), None, "cold before first use");
        let y1 = quantized_matmul(&a, &b, TensorFormat::MX6);
        assert_eq!(
            b.cached_plane_generation(),
            Some(b.generation()),
            "warm after first use"
        );
        // Second call hits the cache and is bit-identical.
        let y2 = quantized_matmul(&a, &b, TensorFormat::MX6);
        assert_eq!(y1, y2);
        // Same weight format under a different activation format reuses
        // the plane (the codes depend only on the weight format) and is
        // still bit-exact against the uncached reference for that pair.
        let y_mixed = quantized_matmul_ab(&a, &b, TensorFormat::MX9, TensorFormat::MX6);
        let (TensorFormat::Bdr(a9), TensorFormat::Bdr(w6)) = (TensorFormat::MX9, TensorFormat::MX6)
        else {
            unreachable!()
        };
        let want_mixed = gemm::reference_gemm(a.data(), b.data(), m, k, n, a9, w6);
        assert!(y_mixed
            .data()
            .iter()
            .zip(want_mixed.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        // A different *weight* format replaces the entry (still correct).
        let y9 = quantized_matmul(&a, &b, TensorFormat::MX9);
        let (TensorFormat::Bdr(f9), TensorFormat::Bdr(f9b)) =
            (TensorFormat::MX9, TensorFormat::MX9)
        else {
            unreachable!()
        };
        let want9 = gemm::reference_gemm(a.data(), b.data(), m, k, n, f9, f9b);
        assert_eq!(y9.data(), &want9[..]);
        // Clones do not share the slot: a clone starts cold (one repack at
        // worst) rather than thrashing a shared one-entry cache once the
        // copies diverge.
        let b_clone = b.clone();
        assert_eq!(b_clone.cached_plane_generation(), None);
        assert!(b.cached_plane_generation().is_some());
        // Mutating the weights invalidates: the stored stamp goes stale ...
        let stamp = b.cached_plane_generation().unwrap();
        b.data_mut()[0] += 1.0;
        assert_ne!(b.cached_plane_generation(), Some(b.generation()));
        assert_eq!(
            b.cached_plane_generation(),
            Some(stamp),
            "entry not yet replaced"
        );
        // ... and the next product repacks from the new values,
        // bit-identical to the uncached reference.
        let y3 = quantized_matmul(&a, &b, TensorFormat::MX6);
        let (TensorFormat::Bdr(f6), _) = (TensorFormat::MX6, ()) else {
            unreachable!()
        };
        let want = gemm::reference_gemm(a.data(), b.data(), m, k, n, f6, f6);
        assert!(y3
            .data()
            .iter()
            .zip(want.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_ne!(y3, y1);
    }

    #[test]
    fn plane_cache_keeps_one_plane_per_weight_format() {
        let (m, k, n) = (2, 32, 4);
        let a = Tensor::from_vec(
            (0..m * k).map(|i| (i as f32 * 0.31).sin()).collect(),
            &[m, k],
        );
        let mut b = Tensor::from_vec(
            (0..k * n).map(|i| (i as f32 * 0.27).cos()).collect(),
            &[k, n],
        );
        assert_eq!(b.cached_plane_count(), 0);
        let y6 = quantized_matmul(&a, &b, TensorFormat::MX6);
        let y9 = quantized_matmul(&a, &b, TensorFormat::MX9);
        assert_eq!(b.cached_plane_count(), 2, "MX6 and MX9 planes must coexist");
        // Re-running either format hits its own plane (bit-identical) and
        // the count stays put — no thrash between formats. The hit counter
        // is process-wide (parallel tests inflate it), so assert the ≥
        // direction only; "no repack of *this* tensor" is proven by the
        // stable generation stamp and entry count instead.
        let stamp = b.cached_plane_generation();
        let (h0, _) = plane_cache_counters();
        assert_eq!(quantized_matmul(&a, &b, TensorFormat::MX6), y6);
        assert_eq!(quantized_matmul(&a, &b, TensorFormat::MX9), y9);
        let (h1, _) = plane_cache_counters();
        assert!(h1 >= h0 + 2, "both lookups must hit ({h0} -> {h1})");
        assert_eq!(b.cached_plane_count(), 2);
        assert_eq!(b.cached_plane_generation(), stamp, "no repack, no evict");
        // Mutation drops every format's plane at the next lookup.
        b.data_mut()[0] += 1.0;
        let _ = quantized_matmul(&a, &b, TensorFormat::MX6);
        assert_eq!(b.cached_plane_count(), 1, "stale planes must be purged");
    }

    #[test]
    fn display() {
        let cfg = QuantConfig::uniform(TensorFormat::MX9);
        assert_eq!(cfg.to_string(), "fwd=MX9 fwd_w=MX9 bwd=MX9 elem=FP32");
        // Table IV-style (w, a) configs with different weight formats must
        // not print identically.
        let w4a6 = QuantConfig::weights_activations(TensorFormat::MX4, TensorFormat::MX6);
        let w9a6 = QuantConfig::weights_activations(TensorFormat::MX9, TensorFormat::MX6);
        assert_eq!(w4a6.to_string(), "fwd=MX6 fwd_w=MX4 bwd=FP32 elem=FP32");
        assert_ne!(w4a6.to_string(), w9a6.to_string());
    }
}
