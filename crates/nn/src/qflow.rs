//! The quantized compute flow of Fig. 8: which tensors get quantized, in
//! which format, along which axis, in the forward and backward passes.
//!
//! Every tensor (matrix-multiply / convolution) operation quantizes *both*
//! operands along the reduction dimension. Element-wise operations run in a
//! scalar format (BF16 in the paper; FP32 here by default — see
//! [`QuantConfig::elementwise`]). The backward pass may use a different
//! (usually wider) format than the forward pass, which is how
//! quantization-aware fine-tuning with an MX6/MX4 forward and an FP32
//! backward is expressed.

use crate::format::{quantize_along, Axis, TensorFormat};
use crate::tensor::Tensor;
use std::fmt;

/// Format assignment for a model's tensor and vector operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Format of forward-pass *activation* operands.
    pub fwd: TensorFormat,
    /// Format of forward-pass *weight* operands (Table IV evaluates
    /// weight/activation format combinations independently).
    pub fwd_w: TensorFormat,
    /// Format of backward-pass tensor-op operands (errors, transposed
    /// weights and activations).
    pub bwd: TensorFormat,
    /// Format element-wise (vector) operation outputs are rounded to.
    pub elementwise: TensorFormat,
}

impl QuantConfig {
    /// Full-precision baseline: nothing is quantized.
    pub fn fp32() -> Self {
        QuantConfig {
            fwd: TensorFormat::Fp32,
            fwd_w: TensorFormat::Fp32,
            bwd: TensorFormat::Fp32,
            elementwise: TensorFormat::Fp32,
        }
    }

    /// The paper's MX training setup: the same block format on every tensor
    /// operand in forward and backward, element-wise ops left in full
    /// precision.
    pub fn uniform(format: TensorFormat) -> Self {
        QuantConfig {
            fwd: format,
            fwd_w: format,
            bwd: format,
            elementwise: TensorFormat::Fp32,
        }
    }

    /// Quantization-aware fine-tuning: narrow forward, full-precision
    /// backward (§V "the forward pass might use MX6 or MX4 and the backward
    /// pass a higher bit-width format").
    pub fn qat(fwd: TensorFormat) -> Self {
        QuantConfig {
            fwd,
            fwd_w: fwd,
            bwd: TensorFormat::Fp32,
            elementwise: TensorFormat::Fp32,
        }
    }

    /// Inference-style config with separate weight and activation formats —
    /// the `(w, a)` tuples of Table IV.
    pub fn weights_activations(w: TensorFormat, a: TensorFormat) -> Self {
        QuantConfig {
            fwd: a,
            fwd_w: w,
            bwd: TensorFormat::Fp32,
            elementwise: TensorFormat::Fp32,
        }
    }

    /// Overrides the element-wise format (e.g. BF16 to match the paper's
    /// vector-op precision exactly).
    pub fn with_elementwise(mut self, format: TensorFormat) -> Self {
        self.elementwise = format;
        self
    }

    /// Whether any tensor op quantizes at all.
    pub fn is_fp32(&self) -> bool {
        self.fwd.is_identity()
            && self.fwd_w.is_identity()
            && self.bwd.is_identity()
            && self.elementwise.is_identity()
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self::fp32()
    }
}

impl fmt::Display for QuantConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fwd={} bwd={} elem={}",
            self.fwd, self.bwd, self.elementwise
        )
    }
}

/// Quantized matrix product: quantizes `a` along its rows (the reduction
/// dimension `K`) and `b` along its columns, then multiplies.
///
/// This is the single primitive every tensor op in the repository routes
/// through; it encodes the directional-quantization rule of §V.
///
/// # Examples
///
/// ```
/// # use mx_nn::qflow::quantized_matmul;
/// # use mx_nn::format::TensorFormat;
/// # use mx_nn::tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0; 32], &[2, 16]);
/// let b = Tensor::from_vec(vec![0.5; 32], &[16, 2]);
/// let y = quantized_matmul(&a, &b, TensorFormat::MX6);
/// assert_eq!(y.data(), &[8.0, 8.0, 8.0, 8.0]);
/// ```
pub fn quantized_matmul(a: &Tensor, b: &Tensor, format: TensorFormat) -> Tensor {
    quantized_matmul_ab(a, b, format, format)
}

/// [`quantized_matmul`] with distinct operand formats: `a` (activations)
/// quantizes in `fa`, `b` (weights) in `fb`.
pub fn quantized_matmul_ab(a: &Tensor, b: &Tensor, fa: TensorFormat, fb: TensorFormat) -> Tensor {
    if fa.is_identity() && fb.is_identity() {
        return a.matmul(b);
    }
    let aq = quantize_along(a, fa, Axis::Row);
    let bq = quantize_along(b, fb, Axis::Col);
    aq.matmul(&bq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_core::bdr::BdrFormat;

    #[test]
    fn fp32_config_is_identity() {
        let cfg = QuantConfig::fp32();
        assert!(cfg.is_fp32());
        let a = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[2, 4]);
        let b = Tensor::eye(4);
        assert_eq!(quantized_matmul(&a, &b, cfg.fwd), a);
    }

    #[test]
    fn uniform_and_qat_constructors() {
        let mx9 = QuantConfig::uniform(TensorFormat::MX9);
        assert_eq!(mx9.fwd, TensorFormat::MX9);
        assert_eq!(mx9.bwd, TensorFormat::MX9);
        let qat = QuantConfig::qat(TensorFormat::MX6);
        assert_eq!(qat.fwd, TensorFormat::MX6);
        assert!(qat.bwd.is_identity());
    }

    #[test]
    fn quantized_matmul_matches_manual_quantization() {
        let a = Tensor::from_vec((0..64).map(|i| (i as f32 * 0.17).sin()).collect(), &[4, 16]);
        let b = Tensor::from_vec((0..64).map(|i| (i as f32 * 0.13).cos()).collect(), &[16, 4]);
        let y = quantized_matmul(&a, &b, TensorFormat::MX6);
        let aq = quantize_along(&a, TensorFormat::MX6, Axis::Row);
        let bq = quantize_along(&b, TensorFormat::MX6, Axis::Col);
        assert_eq!(y, aq.matmul(&bq));
        // And it differs from the unquantized product.
        assert_ne!(y, a.matmul(&b));
    }

    #[test]
    fn narrow_formats_add_more_noise() {
        let a = Tensor::from_vec(
            (0..256).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[16, 16],
        );
        let b = Tensor::from_vec(
            (0..256).map(|i| (i as f32 * 0.29).cos()).collect(),
            &[16, 16],
        );
        let exact = a.matmul(&b);
        let err = |fmt| {
            let y = quantized_matmul(&a, &b, TensorFormat::Bdr(fmt));
            y.sub(&exact).sq_norm()
        };
        let e9 = err(BdrFormat::MX9);
        let e6 = err(BdrFormat::MX6);
        let e4 = err(BdrFormat::MX4);
        assert!(e9 < e6 && e6 < e4, "{e9} {e6} {e4}");
    }

    #[test]
    fn display() {
        let cfg = QuantConfig::uniform(TensorFormat::MX9);
        assert_eq!(cfg.to_string(), "fwd=MX9 bwd=MX9 elem=FP32");
    }
}
