//! 2-D convolution via im2col, sharing the quantized matmul primitive — the
//! reduction dimension of a convolution is the flattened patch
//! (`in_channels × kh × kw`), so MX blocks tile along it exactly as the
//! paper's compute flow requires for CNN benchmarks (ResNet/MobileNet rows
//! of Table III).

use crate::param::{HasParams, Param};
use crate::qflow::{quantized_matmul, QuantConfig};
use crate::tensor::Tensor;
use crate::{init, layers::Layer};
use rand::rngs::StdRng;

/// Stride-1, same-padding im2col lowering of one `[in_ch, h, w]` image into
/// `[h·w, in_ch·k·k]` patch rows. The one implementation behind both
/// [`Conv2d`]'s forward pass and the `plan` executor's `Conv` node — sharing
/// it keeps planned and dynamic convolutions bit-identical.
pub(crate) fn im2col(x: &[f32], in_ch: usize, k: usize, pad: usize, h: usize, w: usize) -> Tensor {
    let pad = pad as isize;
    let (oh, ow) = (h, w); // stride 1, same padding
    let patch = in_ch * k * k;
    let mut out = vec![0.0f32; oh * ow * patch];
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * patch;
            let mut idx = row;
            for c in 0..in_ch {
                for ky in 0..k {
                    let iy = oy as isize + ky as isize - pad;
                    for kx in 0..k {
                        let ix = ox as isize + kx as isize - pad;
                        out[idx] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            x[c * h * w + iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        idx += 1;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[oh * ow, patch])
}

/// 2-D convolution with square kernels, stride 1, and symmetric zero
/// padding.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Kernel as `[in_ch * k * k, out_ch]` (im2col layout).
    pub w: Param,
    /// Per-output-channel bias.
    pub b: Param,
    in_ch: usize,
    out_ch: usize,
    k: usize,
    pad: usize,
    cfg: QuantConfig,
    cache: Option<(Vec<Tensor>, [usize; 4])>, // im2col per batch item, input shape
}

impl Conv2d {
    /// Creates a `k × k` convolution (`pad = k/2` keeps spatial dims for odd
    /// `k`).
    pub fn new(rng: &mut StdRng, in_ch: usize, out_ch: usize, k: usize, cfg: QuantConfig) -> Self {
        let fan_in = in_ch * k * k;
        Conv2d {
            w: Param::new(init::he_normal(rng, fan_in, &[fan_in, out_ch])),
            b: Param::new(Tensor::zeros(&[out_ch])),
            in_ch,
            out_ch,
            k,
            pad: k / 2,
            cfg,
            cache: None,
        }
    }

    fn im2col(&self, x: &[f32], h: usize, w: usize) -> Tensor {
        im2col(x, self.in_ch, self.k, self.pad, h, w)
    }

    /// `(in_ch, out_ch, kernel, pad)` — what the `plan` module needs to
    /// lower this convolution into a `Conv` node.
    pub(crate) fn plan_parts(&self) -> (usize, usize, usize, usize) {
        (self.in_ch, self.out_ch, self.k, self.pad)
    }

    fn col2im(&self, cols: &Tensor, h: usize, w: usize) -> Vec<f32> {
        let k = self.k;
        let pad = self.pad as isize;
        let patch = self.in_ch * k * k;
        let mut out = vec![0.0f32; self.in_ch * h * w];
        for oy in 0..h {
            for ox in 0..w {
                let row = (oy * w + ox) * patch;
                let mut idx = row;
                for c in 0..self.in_ch {
                    for ky in 0..k {
                        let iy = oy as isize + ky as isize - pad;
                        for kx in 0..k {
                            let ix = ox as isize + kx as isize - pad;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                out[c * h * w + iy as usize * w + ix as usize] += cols.data()[idx];
                            }
                            idx += 1;
                        }
                    }
                }
            }
        }
        out
    }
}

impl HasParams for Conv2d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

impl Layer for Conv2d {
    /// Forward over `[batch, in_ch, h, w]`, returning `[batch, out_ch, h, w]`.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "Conv2d expects [B, C, H, W]");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.in_ch, "channel mismatch");
        let mut out = Vec::with_capacity(b * self.out_ch * h * w);
        let mut cols_cache = Vec::new();
        for bi in 0..b {
            let xb = &x.data()[bi * c * h * w..(bi + 1) * c * h * w];
            let cols = self.im2col(xb, h, w);
            // y [oh*ow, out_ch] = quantized cols · W.
            let y = crate::qflow::quantized_matmul_ab(
                &cols,
                &self.w.value,
                self.cfg.fwd,
                self.cfg.fwd_w,
            )
            .add_row(&self.b.value);
            // Reorder to [out_ch, h, w].
            for oc in 0..self.out_ch {
                for p in 0..h * w {
                    out.push(y.data()[p * self.out_ch + oc]);
                }
            }
            if train {
                cols_cache.push(cols);
            }
        }
        if train {
            self.cache = Some((cols_cache, [b, c, h, w]));
        }
        Tensor::from_vec(out, &[b, self.out_ch, h, w])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (cols_cache, [b, c, h, w]) = self.cache.take().expect("backward before forward");
        let mut dx = Vec::with_capacity(b * c * h * w);
        for (bi, cols) in cols_cache.iter().enumerate() {
            // Back to [oh*ow, out_ch] layout.
            let gb = &grad_out.data()[bi * self.out_ch * h * w..(bi + 1) * self.out_ch * h * w];
            let mut g2d = vec![0.0f32; h * w * self.out_ch];
            for oc in 0..self.out_ch {
                for p in 0..h * w {
                    g2d[p * self.out_ch + oc] = gb[oc * h * w + p];
                }
            }
            let g2d = Tensor::from_vec(g2d, &[h * w, self.out_ch]);
            let dw = quantized_matmul(&cols.transpose2d(), &g2d, self.cfg.bwd);
            self.w.accumulate(&dw);
            self.b.accumulate(&g2d.sum_rows());
            let dcols = quantized_matmul(&g2d, &self.w.value.transpose2d(), self.cfg.bwd);
            dx.extend_from_slice(&self.col2im(&dcols, h, w));
        }
        self.cache = None;
        Tensor::from_vec(dx, &[b, c, h, w])
    }

    fn set_quant(&mut self, cfg: QuantConfig) {
        self.cfg = cfg;
    }
}

/// Global average pooling: `[B, C, H, W] -> [B, C]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cache: Option<[usize; 4]>,
}

impl GlobalAvgPool {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HasParams for GlobalAvgPool {
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape();
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        if train {
            self.cache = Some([b, c, h, w]);
        }
        let mut out = Vec::with_capacity(b * c);
        for bc in 0..b * c {
            let sum: f32 = x.data()[bc * h * w..(bc + 1) * h * w].iter().sum();
            out.push(sum / (h * w) as f32);
        }
        Tensor::from_vec(out, &[b, c])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [b, c, h, w] = self.cache.take().expect("backward before forward");
        let scale = 1.0 / (h * w) as f32;
        let mut dx = Vec::with_capacity(b * c * h * w);
        for &g in grad_out.data() {
            dx.extend(std::iter::repeat_n(g * scale, h * w));
        }
        Tensor::from_vec(dx, &[b, c, h, w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn conv_identity_kernel() {
        // A 1x1 conv with identity weights passes channels through.
        let mut conv = Conv2d::new(&mut rng(), 2, 2, 1, QuantConfig::fp32());
        conv.w.value = Tensor::eye(2);
        conv.b.value = Tensor::zeros(&[2]);
        let x = Tensor::from_vec(
            (0..2 * 2 * 3 * 3).map(|i| i as f32).collect(),
            &[2, 2, 3, 3],
        );
        let y = conv.forward(&x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn conv_shapes_and_padding() {
        let mut conv = Conv2d::new(&mut rng(), 3, 8, 3, QuantConfig::fp32());
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn conv_known_3x3_sum_kernel() {
        // All-ones 3x3 kernel on a constant image: interior pixels see 9,
        // corners see 4 (padding zeros).
        let mut conv = Conv2d::new(&mut rng(), 1, 1, 3, QuantConfig::fp32());
        conv.w.value = Tensor::full(&[9, 1], 1.0);
        conv.b.value = Tensor::zeros(&[1]);
        let x = Tensor::full(&[1, 1, 4, 4], 1.0);
        let y = conv.forward(&x, false);
        assert_eq!(y.data()[0], 4.0); // corner
        assert_eq!(y.data()[5], 9.0); // interior
    }

    #[test]
    fn conv_gradcheck() {
        let mut conv = Conv2d::new(&mut rng(), 2, 3, 3, QuantConfig::fp32());
        let x = Tensor::from_vec(
            (0..2 * 2 * 4 * 4)
                .map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.1)
                .collect(),
            &[2, 2, 4, 4],
        );
        let y = conv.forward(&x, true);
        let dx = conv.backward(&y);
        let eps = 1e-2;
        for i in (0..x.numel()).step_by(9) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = conv.forward(&xp, false).sq_norm() / 2.0;
            let lm = conv.forward(&xm, false).sq_norm() / 2.0;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "conv grad mismatch at {i}: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn pool_averages_and_distributes() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]);
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let dy = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let dx = pool.backward(&dy);
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn quantized_conv_close_to_fp32() {
        let x = Tensor::from_vec(
            (0..2 * 6 * 6)
                .map(|i| ((i * 11 % 23) as f32 - 11.0) * 0.08)
                .collect(),
            &[1, 2, 6, 6],
        );
        let mut c32 = Conv2d::new(&mut rng(), 2, 4, 3, QuantConfig::fp32());
        let mut c9 = Conv2d::new(
            &mut rng(),
            2,
            4,
            3,
            QuantConfig::uniform(crate::format::TensorFormat::MX9),
        );
        let y32 = c32.forward(&x, false);
        let y9 = c9.forward(&x, false);
        let rel = y9.sub(&y32).sq_norm() / y32.sq_norm().max(1e-12);
        assert!(rel < 1e-3, "MX9 conv relative error {rel}");
    }
}
