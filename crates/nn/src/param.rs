//! Trainable parameters: FP32 master values plus gradient and optimizer
//! state (the weight-update stage of Fig. 8 always runs in FP32).

use crate::tensor::Tensor;

/// One trainable parameter tensor with its gradient accumulator and
/// (lazily allocated) optimizer moments.
///
/// # The cached weight code plane
///
/// `value` carries a lazily built, format-keyed cached code plane (the
/// prepacked integer form of the weights that `mx_nn::qflow`'s quantized
/// matmuls consume): the first BDR×BDR product against this parameter
/// packs the plane, subsequent forward passes reuse it. The cache is keyed
/// by [`Tensor::generation`], so *any* mutable access to the weight data —
/// an optimizer step, a direct `p.value.data_mut()` write, or replacing
/// `value` wholesale — invalidates it automatically, and the next product
/// repacks bit-identically to an uncached run. See `mx_nn::qflow` for the
/// full contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// FP32 master value.
    pub value: Tensor,
    /// Gradient accumulated by the backward pass.
    pub grad: Tensor,
    /// First-moment buffer (SGD momentum / Adam m).
    pub moment1: Option<Tensor>,
    /// Second-moment buffer (Adam v).
    pub moment2: Option<Tensor>,
}

impl Param {
    /// Wraps a value tensor as a trainable parameter with a zero gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            value,
            grad,
            moment1: None,
            moment2: None,
        }
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Adds `g` into the gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, g: &Tensor) {
        assert_eq!(self.grad.shape(), g.shape(), "gradient shape mismatch");
        for (a, b) in self.grad.data_mut().iter_mut().zip(g.data().iter()) {
            *a += b;
        }
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Generation stamp of the weight tensor's cached code plane, if one
    /// has been built (see [`Tensor::cached_plane_generation`]). A value
    /// equal to `self.value.generation()` means the plane is current; a
    /// quantized matmul still re-packs if it asks for a different format
    /// pair than the one cached.
    pub fn weight_plane_generation(&self) -> Option<u64> {
        self.value.cached_plane_generation()
    }
}

/// Anything that owns parameters and can expose them to an optimizer.
pub trait HasParams {
    /// Calls `f` on every parameter exactly once.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes every parameter gradient.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Global L2 norm of all gradients.
    fn grad_norm(&mut self) -> f64 {
        let mut s = 0.0;
        self.visit_params(&mut |p| s += p.grad.sq_norm());
        s.sqrt()
    }

    /// Scales all gradients so their global norm is at most `max_norm`.
    fn clip_grad_norm(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = (max_norm / norm) as f32;
            self.visit_params(&mut |p| {
                for g in p.grad.data_mut() {
                    *g *= s;
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two {
        a: Param,
        b: Param,
    }

    impl HasParams for Two {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    fn two() -> Two {
        Two {
            a: Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2])),
            b: Param::new(Tensor::from_vec(vec![3.0; 4], &[2, 2])),
        }
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.accumulate(&Tensor::from_vec(vec![1.0, 2.0], &[2]));
        p.accumulate(&Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(p.grad.data(), &[2.0, 4.0]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn param_count_and_visit() {
        let mut t = two();
        assert_eq!(t.param_count(), 6);
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut t = two();
        t.a.grad = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((t.grad_norm() - 5.0).abs() < 1e-9);
        t.clip_grad_norm(1.0);
        assert!((t.grad_norm() - 1.0).abs() < 1e-6);
        // Clipping below the threshold is a no-op.
        t.clip_grad_norm(10.0);
        assert!((t.grad_norm() - 1.0).abs() < 1e-6);
    }
}
