//! Core layers with explicit forward/backward passes and Fig. 8 quantization
//! at every tensor-op boundary.
//!
//! Layers cache whatever the backward pass needs (always the *unquantized*
//! activations: the backward pass re-quantizes transposed tensors fresh,
//! which is exactly the transpose-before-quantize rule of §V).

use crate::format::{cast_elementwise, TensorFormat};
use crate::init;
use crate::param::{HasParams, Param};
use crate::qflow::{quantized_matmul, QuantConfig};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// A differentiable module mapping one tensor to another.
pub trait Layer: HasParams {
    /// Forward pass. When `train` is true, caches activations for
    /// [`Layer::backward`].
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backward pass: consumes `dL/dy`, accumulates parameter gradients,
    /// returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding training-mode
    /// forward pass.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Replaces the quantization configuration on every tensor op this layer
    /// owns (no-op for layers without tensor ops). This is the paper's
    /// "direct cast": switching a trained model's formats in place.
    fn set_quant(&mut self, _cfg: QuantConfig) {}
}

/// Fully connected layer `y = x·W + b` with quantized operands (Fig. 8).
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix `[in, out]`.
    pub w: Param,
    /// Optional bias `[out]`.
    pub b: Option<Param>,
    cfg: QuantConfig,
    cached_x: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Xavier-initialized weights.
    pub fn new(rng: &mut StdRng, d_in: usize, d_out: usize, bias: bool, cfg: QuantConfig) -> Self {
        Linear {
            w: Param::new(init::xavier_uniform(rng, d_in, d_out)),
            b: bias.then(|| Param::new(Tensor::zeros(&[d_out]))),
            cfg,
            cached_x: None,
        }
    }

    /// Current quantization configuration.
    pub fn quant(&self) -> QuantConfig {
        self.cfg
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.w.value.shape()[0]
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.w.value.shape()[1]
    }
}

impl HasParams for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        if let Some(b) = &mut self.b {
            f(b);
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_x = Some(x.clone());
        }
        let y = crate::qflow::quantized_matmul_ab(x, &self.w.value, self.cfg.fwd, self.cfg.fwd_w);
        match &self.b {
            Some(b) => y.add_row(&b.value),
            None => y,
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_x.as_ref().expect("backward before forward");
        let x2d = x.reshape(&[x.rows(), x.cols()]);
        let g2d = grad_out.reshape(&[grad_out.rows(), grad_out.cols()]);
        // dW[K,N] = Q(x^T)·Q(g): reduction over the batch dimension M.
        let dw = quantized_matmul(&x2d.transpose2d(), &g2d, self.cfg.bwd);
        self.w.accumulate(&dw);
        if let Some(b) = &mut self.b {
            b.accumulate(&g2d.sum_rows());
        }
        // dX[M,K] = Q(g)·Q(W^T): reduction over N; note the transpose
        // happens *before* quantization (transpose and MX quantization do
        // not commute).
        let dx = quantized_matmul(&g2d, &self.w.value.transpose2d(), self.cfg.bwd);
        dx.reshape(x.shape())
    }

    fn set_quant(&mut self, cfg: QuantConfig) {
        self.cfg = cfg;
    }
}

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Scalar application, shared verbatim by the dynamic layer walk and the
    /// `plan` executor's fused activation steps (bit-identity by sharing).
    pub(crate) fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Gelu => {
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Gelu => {
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                let u = c * (x + 0.044715 * x * x * x);
                let t = u.tanh();
                let du = c * (1.0 + 3.0 * 0.044715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
            }
            Activation::Sigmoid => {
                let s = Activation::Sigmoid.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
        }
    }
}

/// Activation layer (a "vector op" in Fig. 8: runs in the element-wise
/// format, BF16 in the paper).
#[derive(Debug, Clone)]
pub struct ActivationLayer {
    act: Activation,
    elem: TensorFormat,
    cached_x: Option<Tensor>,
}

impl ActivationLayer {
    /// Creates an activation layer computing in `elem` precision.
    pub fn new(act: Activation, elem: TensorFormat) -> Self {
        ActivationLayer {
            act,
            elem,
            cached_x: None,
        }
    }

    /// `(activation, element-wise format)` — what the `plan` module needs to
    /// fuse this layer into the preceding GEMM node.
    pub(crate) fn plan_parts(&self) -> (Activation, TensorFormat) {
        (self.act, self.elem)
    }
}

impl HasParams for ActivationLayer {
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

impl Layer for ActivationLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_x = Some(x.clone());
        }
        let y = x.map(|v| self.act.apply(v));
        cast_elementwise(&y, self.elem)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_x.as_ref().expect("backward before forward");
        let g = x.zip_map(grad_out, |xv, gv| self.act.derivative(xv) * gv);
        cast_elementwise(&g, self.elem)
    }
}

/// Layer normalization over the last dimension, with learnable gain/bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Per-feature gain.
    pub gamma: Param,
    /// Per-feature bias.
    pub beta: Param,
    eps: f32,
    elem: TensorFormat,
    cache: Option<(Tensor, Vec<f32>)>, // normalized x, 1/std per row
}

impl LayerNorm {
    /// Creates a layer norm over `dim` features.
    pub fn new(dim: usize, elem: TensorFormat) -> Self {
        LayerNorm {
            gamma: Param::new(Tensor::full(&[dim], 1.0)),
            beta: Param::new(Tensor::zeros(&[dim])),
            eps: 1e-5,
            elem,
            cache: None,
        }
    }

    /// `(epsilon, element-wise format)` — what the `plan` module needs to
    /// lower this layer into a `Norm` node.
    pub(crate) fn plan_parts(&self) -> (f32, TensorFormat) {
        (self.eps, self.elem)
    }
}

/// In-place row normalization (mean 0, variance 1 per `cols`-wide row),
/// returning the per-row `1/std`. The one implementation behind both
/// [`LayerNorm::forward`] and the `plan` executor's `Norm` node — sharing
/// the exact accumulation order is what keeps the two paths bit-identical.
pub(crate) fn normalize_rows(data: &mut [f32], cols: usize, eps: f32) -> Vec<f32> {
    let mut inv_stds = Vec::with_capacity(data.len() / cols.max(1));
    for row in data.chunks_mut(cols) {
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let inv_std = 1.0 / (var + eps).sqrt();
        inv_stds.push(inv_std);
        for v in row.iter_mut() {
            *v = (*v - mean) * inv_std;
        }
    }
    inv_stds
}

/// In-place per-feature gain/bias (`v ← v·γ[i % cols] + β[i % cols]`), the
/// second half of layer norm, shared with the `plan` executor.
pub(crate) fn scale_shift_rows(data: &mut [f32], cols: usize, gamma: &[f32], beta: &[f32]) {
    for (i, v) in data.iter_mut().enumerate() {
        *v = *v * gamma[i % cols] + beta[i % cols];
    }
}

impl HasParams for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let n = x.cols();
        let mut normalized = x.clone();
        let inv_stds = normalize_rows(normalized.data_mut(), n, self.eps);
        let mut y = normalized.clone();
        scale_shift_rows(
            y.data_mut(),
            n,
            self.gamma.value.data(),
            self.beta.value.data(),
        );
        if train {
            self.cache = Some((normalized, inv_stds));
        }
        cast_elementwise(&y, self.elem)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (normalized, inv_stds) = self.cache.as_ref().expect("backward before forward");
        let n = grad_out.cols();
        let g: Vec<f32> = self.gamma.value.data().to_vec();
        // Parameter gradients.
        let mut dgamma = vec![0.0f32; n];
        let mut dbeta = vec![0.0f32; n];
        for (i, &go) in grad_out.data().iter().enumerate() {
            dgamma[i % n] += go * normalized.data()[i];
            dbeta[i % n] += go;
        }
        self.gamma.accumulate(&Tensor::from_vec(dgamma, &[n]));
        self.beta.accumulate(&Tensor::from_vec(dbeta, &[n]));
        // Input gradient (standard layer-norm backward).
        let mut dx = grad_out.clone();
        for (r, row) in dx.data_mut().chunks_mut(n).enumerate() {
            let x_row = &normalized.data()[r * n..(r + 1) * n];
            let mut sum_gy = 0.0f32;
            let mut sum_gy_x = 0.0f32;
            for (j, gv) in row.iter().enumerate() {
                let gy = gv * g[j];
                sum_gy += gy;
                sum_gy_x += gy * x_row[j];
            }
            let inv_std = inv_stds[r];
            for (j, gv) in row.iter_mut().enumerate() {
                let gy = *gv * g[j];
                *gv = inv_std * (gy - sum_gy / n as f32 - x_row[j] * sum_gy_x / n as f32);
            }
        }
        cast_elementwise(&dx, self.elem)
    }
}

/// Embedding table with gather forward / scatter-add backward. Rows can be
/// quantized on lookup (the paper quantizes DLRM embedding tables to MX for
/// memory-bound inference).
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table, `[vocab, dim]`.
    pub table: Param,
    format: TensorFormat,
    cached_indices: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates an embedding table initialized from `N(0, 0.02²)`.
    pub fn new(rng: &mut StdRng, vocab: usize, dim: usize) -> Self {
        Embedding {
            table: Param::new(init::normal(rng, 0.02, &[vocab, dim])),
            format: TensorFormat::Fp32,
            cached_indices: None,
        }
    }

    /// Quantizes rows on every lookup (storage-side quantization).
    pub fn set_format(&mut self, format: TensorFormat) {
        self.format = format;
    }

    /// The lookup-side storage format, for the `plan` module's table hoist.
    pub(crate) fn plan_format(&self) -> TensorFormat {
        self.format
    }

    /// Looks up `indices`, returning `[indices.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn forward(&mut self, indices: &[usize], train: bool) -> Tensor {
        let (vocab, dim) = (self.table.value.shape()[0], self.table.value.shape()[1]);
        let mut out = Vec::with_capacity(indices.len() * dim);
        for &idx in indices {
            assert!(idx < vocab, "embedding index {idx} out of range {vocab}");
            out.extend_from_slice(&self.table.value.data()[idx * dim..(idx + 1) * dim]);
        }
        if train {
            self.cached_indices = Some(indices.to_vec());
        }
        let t = Tensor::from_vec(out, &[indices.len(), dim]);
        cast_elementwise(&t, self.format)
    }

    /// Scatter-adds `grad` (shape `[n, dim]`) into the table gradient.
    pub fn backward(&mut self, grad: &Tensor) {
        let indices = self
            .cached_indices
            .as_ref()
            .expect("backward before forward");
        let dim = self.table.value.shape()[1];
        assert_eq!(grad.rows(), indices.len());
        for (i, &idx) in indices.iter().enumerate() {
            let dst = &mut self.table.grad.data_mut()[idx * dim..(idx + 1) * dim];
            let src = &grad.data()[i * dim..(i + 1) * dim];
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
    }
}

impl HasParams for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

/// A simple feed-forward stack of layers sharing one quantization config.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Applies `f` to every [`Linear`]'s quantization config — used to
    /// direct-cast a trained model to a different format.
    pub fn for_each_layer(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        for l in &mut self.layers {
            f(l.as_mut());
        }
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl HasParams for Sequential {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = x.clone();
        for l in &mut self.layers {
            y = l.forward(&y, train);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    fn set_quant(&mut self, cfg: QuantConfig) {
        for l in &mut self.layers {
            l.set_quant(cfg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// Finite-difference check of a layer's input gradient.
    fn check_input_grad(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let y = layer.forward(x, true);
        // Loss = sum(y^2)/2 -> dL/dy = y.
        let dx = layer.backward(&y);
        let eps = 1e-3;
        for i in (0..x.numel()).step_by((x.numel() / 7).max(1)) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = layer.forward(&xp, false).sq_norm() / 2.0;
            let lm = layer.forward(&xm, false).sq_norm() / 2.0;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[i]).abs() <= tol * (1.0 + num.abs()),
                "grad mismatch at {i}: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn linear_forward_known_values() {
        let mut l = Linear::new(&mut rng(), 2, 2, true, QuantConfig::fp32());
        l.w.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        l.b.as_mut().unwrap().value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let y = l.forward(&Tensor::from_vec(vec![1.0, 1.0], &[1, 2]), false);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn linear_gradcheck_fp32() {
        let mut l = Linear::new(&mut rng(), 4, 3, true, QuantConfig::fp32());
        let x = Tensor::from_vec((0..8).map(|i| (i as f32 * 0.7).sin()).collect(), &[2, 4]);
        check_input_grad(&mut l, &x, 1e-2);
    }

    #[test]
    fn linear_weight_gradcheck_fp32() {
        let mut l = Linear::new(&mut rng(), 3, 2, false, QuantConfig::fp32());
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.8, 0.1, 0.5, -0.7], &[2, 3]);
        let y = l.forward(&x, true);
        let _ = l.backward(&y);
        let analytic = l.w.grad.clone();
        let eps = 1e-3;
        for i in 0..analytic.numel() {
            let orig = l.w.value.data()[i];
            l.w.value.data_mut()[i] = orig + eps;
            let lp = l.forward(&x, false).sq_norm() / 2.0;
            l.w.value.data_mut()[i] = orig - eps;
            let lm = l.forward(&x, false).sq_norm() / 2.0;
            l.w.value.data_mut()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - analytic.data()[i]).abs() < 1e-2 * (1.0 + num.abs()),
                "dW mismatch at {i}"
            );
        }
    }

    #[test]
    fn linear_quantized_forward_differs_from_fp32() {
        let x = Tensor::from_vec((0..32).map(|i| (i as f32 * 0.33).sin()).collect(), &[2, 16]);
        let mut l32 = Linear::new(&mut rng(), 16, 4, false, QuantConfig::fp32());
        let mut l4 = Linear::new(
            &mut rng(),
            16,
            4,
            false,
            QuantConfig::uniform(TensorFormat::MX4),
        );
        // Same weights (same seed).
        assert_eq!(l32.w.value, l4.w.value);
        let y32 = l32.forward(&x, false);
        let y4 = l4.forward(&x, false);
        assert_ne!(y32.data(), y4.data());
        // But MX9 stays close.
        let mut l9 = Linear::new(
            &mut rng(),
            16,
            4,
            false,
            QuantConfig::uniform(TensorFormat::MX9),
        );
        let y9 = l9.forward(&x, false);
        let e9 = y9.sub(&y32).sq_norm();
        let e4 = y4.sub(&y32).sq_norm();
        assert!(e9 < e4 * 0.1, "MX9 err {e9} vs MX4 err {e4}");
    }

    #[test]
    fn activations_gradcheck() {
        for act in [
            Activation::Relu,
            Activation::Gelu,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            let mut l = ActivationLayer::new(act, TensorFormat::Fp32);
            let x = Tensor::from_vec(vec![0.5, -0.3, 1.2, -1.7, 0.01, 2.5, -0.9, 0.33], &[2, 4]);
            check_input_grad(&mut l, &x, 2e-2);
        }
    }

    #[test]
    fn gelu_known_values() {
        let a = Activation::Gelu;
        assert!((a.apply(0.0)).abs() < 1e-7);
        assert!((a.apply(100.0) - 100.0).abs() < 1e-3);
        assert!(a.apply(-100.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut ln = LayerNorm::new(8, TensorFormat::Fp32);
        let x = Tensor::from_vec((0..16).map(|i| i as f32 * 3.0 + 5.0).collect(), &[2, 8]);
        let y = ln.forward(&x, false);
        for row in y.data().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut ln = LayerNorm::new(4, TensorFormat::Fp32);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.3, -0.8, 1.5, 0.2, -0.1], &[2, 4]);
        check_input_grad(&mut ln, &x, 2e-2);
    }

    #[test]
    fn embedding_gather_and_scatter() {
        let mut e = Embedding::new(&mut rng(), 10, 4);
        let out = e.forward(&[3, 3, 7], true);
        assert_eq!(out.shape(), &[3, 4]);
        assert_eq!(&out.data()[0..4], &out.data()[4..8]);
        let g = Tensor::full(&[3, 4], 1.0);
        e.backward(&g);
        // Index 3 appears twice: gradient 2.0; index 7 once: 1.0.
        assert_eq!(e.table.grad.data()[3 * 4], 2.0);
        assert_eq!(e.table.grad.data()[7 * 4], 1.0);
        assert_eq!(e.table.grad.data()[0], 0.0);
    }

    #[test]
    fn sequential_mlp_gradcheck() {
        let mut rng = rng();
        let mut seq = Sequential::new();
        seq.push(Box::new(Linear::new(
            &mut rng,
            4,
            8,
            true,
            QuantConfig::fp32(),
        )));
        seq.push(Box::new(ActivationLayer::new(
            Activation::Tanh,
            TensorFormat::Fp32,
        )));
        seq.push(Box::new(Linear::new(
            &mut rng,
            8,
            2,
            true,
            QuantConfig::fp32(),
        )));
        let x = Tensor::from_vec((0..8).map(|i| (i as f32 * 0.31).cos()).collect(), &[2, 4]);
        check_input_grad(&mut seq, &x, 2e-2);
        assert_eq!(seq.len(), 3);
        assert!(seq.param_count() > 0);
    }

    #[test]
    fn qat_config_uses_full_precision_backward() {
        // With fwd=MX4, bwd=FP32: forward is noisy but the backward matmuls
        // match the FP32 gradients of the quantized forward graph.
        let mut l = Linear::new(
            &mut rng(),
            16,
            2,
            false,
            QuantConfig::qat(TensorFormat::MX4),
        );
        let x = Tensor::from_vec((0..16).map(|i| (i as f32 * 0.3).sin()).collect(), &[1, 16]);
        let y = l.forward(&x, true);
        let dx = l.backward(&y);
        assert_eq!(dx.shape(), x.shape());
        assert!(l.w.grad.sq_norm() > 0.0);
    }
}
