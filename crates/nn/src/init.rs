//! Seeded weight initializers (deterministic across runs, which is what lets
//! the experiments compare FP32 and MX training from identical starting
//! points, as the paper does with fixed seeds/containers).

use crate::tensor::Tensor;
use mx_core::qsnr::standard_normal;
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Tensor::from_vec(data, &[fan_in, fan_out])
}

/// He (Kaiming) normal initialization with gain for ReLU networks.
pub fn he_normal(rng: &mut StdRng, fan_in: usize, shape: &[usize]) -> Tensor {
    let std = (2.0 / fan_in as f64).sqrt() as f32;
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| std * standard_normal(rng)).collect();
    Tensor::from_vec(data, shape)
}

/// Plain normal initialization with the given standard deviation.
pub fn normal(rng: &mut StdRng, std: f32, shape: &[usize]) -> Tensor {
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| std * standard_normal(rng)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(xavier_uniform(&mut a, 8, 8), xavier_uniform(&mut b, 8, 8));
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(&mut rng, 100, 100);
        let limit = (6.0f64 / 200.0).sqrt() as f32;
        assert!(t.data().iter().all(|x| x.abs() <= limit));
        // Spread covers a good part of the range.
        assert!(t.amax() > limit * 0.8);
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = he_normal(&mut rng, 128, &[128, 128]);
        let var = t.sq_norm() / t.numel() as f64;
        let expect = 2.0 / 128.0;
        assert!(
            (var - expect).abs() / expect < 0.15,
            "var {var} vs {expect}"
        );
    }

    #[test]
    fn normal_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = normal(&mut rng, 0.02, &[3, 4, 5]);
        assert_eq!(t.shape(), &[3, 4, 5]);
        assert_eq!(t.numel(), 60);
    }
}
