//! Multi-head self-attention and the transformer block, with MX quantization
//! on every internal tensor op (the paper quantizes *all* tensor reductions,
//! including `Q·Kᵀ` and `P·V`, while softmax stays a vector op).

use crate::format::cast_elementwise;
use crate::layers::{Activation, ActivationLayer, Layer, LayerNorm, Linear};
use crate::param::{HasParams, Param};
use crate::qflow::{quantized_matmul, QuantConfig};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Extracts columns `start..end` of a 2-D tensor.
fn slice_cols(t: &Tensor, start: usize, end: usize) -> Tensor {
    let n = t.cols();
    let m = t.rows();
    let w = end - start;
    let mut out = Vec::with_capacity(m * w);
    for r in 0..m {
        out.extend_from_slice(&t.data()[r * n + start..r * n + end]);
    }
    Tensor::from_vec(out, &[m, w])
}

/// Per-(batch, head) cache for the backward pass.
#[derive(Debug, Clone)]
pub(crate) struct HeadCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Tensor,
}

/// The head-mixing core of attention — per (batch, head): `softmax(Q·Kᵀ/√dh)`
/// (optionally causally masked), cast to the element-wise format, times `V`,
/// scattered back into a `[b·t, d]` concat.
///
/// Shared verbatim by [`MultiHeadAttention::forward`] and the `plan`
/// executor's `AttnMix` node, which is what keeps planned execution
/// bit-identical to the dynamic path. `caches` collects the per-head
/// tensors the backward pass needs (training only; the plan path passes
/// `None`). The geometry/format sextet genuinely varies per call site.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attention_mix(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    b: usize,
    t: usize,
    n_heads: usize,
    causal: bool,
    fwd: crate::format::TensorFormat,
    elem: crate::format::TensorFormat,
    mut caches: Option<&mut Vec<HeadCache>>,
) -> Tensor {
    let d = q.cols();
    let dh = d / n_heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let mut concat = Tensor::zeros(&[b * t, d]);
    for bi in 0..b {
        let q_b = q.slice_rows(bi * t, (bi + 1) * t);
        let k_b = k.slice_rows(bi * t, (bi + 1) * t);
        let v_b = v.slice_rows(bi * t, (bi + 1) * t);
        for h in 0..n_heads {
            let q_h = slice_cols(&q_b, h * dh, (h + 1) * dh);
            let k_h = slice_cols(&k_b, h * dh, (h + 1) * dh);
            let v_h = slice_cols(&v_b, h * dh, (h + 1) * dh);
            // Scores: Q·Kᵀ is a tensor op -> quantized operands.
            let mut scores = quantized_matmul(&q_h, &k_h.transpose2d(), fwd).scale(scale);
            if causal {
                // One data_mut borrow for the whole mask (each call
                // bumps the tensor generation).
                let s = scores.data_mut();
                for i in 0..t {
                    for j in (i + 1)..t {
                        s[i * t + j] = -1e9;
                    }
                }
            }
            let probs = cast_elementwise(&scores.softmax_rows(), elem);
            // Context: P·V is a tensor op -> quantized operands.
            let out_h = quantized_matmul(&probs, &v_h, fwd);
            let cdata = concat.data_mut();
            for r in 0..t {
                let dst_row = bi * t + r;
                for c in 0..dh {
                    cdata[dst_row * d + h * dh + c] = out_h.data()[r * dh + c];
                }
            }
            if let Some(caches) = caches.as_deref_mut() {
                caches.push(HeadCache {
                    q: q_h,
                    k: k_h,
                    v: v_h,
                    probs,
                });
            }
        }
    }
    concat
}

/// Multi-head self-attention with optional causal masking.
#[derive(Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    n_heads: usize,
    causal: bool,
    cfg: QuantConfig,
    cache: Option<(Vec<HeadCache>, usize, usize)>, // caches, batch, seq_len
}

impl MultiHeadAttention {
    /// Creates an attention module over `d_model` features with `n_heads`
    /// heads.
    ///
    /// # Panics
    ///
    /// Panics if `n_heads` does not divide `d_model`.
    pub fn new(
        rng: &mut StdRng,
        d_model: usize,
        n_heads: usize,
        causal: bool,
        cfg: QuantConfig,
    ) -> Self {
        assert!(d_model.is_multiple_of(n_heads), "heads must divide d_model");
        MultiHeadAttention {
            wq: Linear::new(rng, d_model, d_model, true, cfg),
            wk: Linear::new(rng, d_model, d_model, true, cfg),
            wv: Linear::new(rng, d_model, d_model, true, cfg),
            wo: Linear::new(rng, d_model, d_model, true, cfg),
            n_heads,
            causal,
            cfg,
            cache: None,
        }
    }

    /// Replaces the quantization config on all projections and internal ops.
    pub fn set_quant(&mut self, cfg: QuantConfig) {
        self.cfg = cfg;
        self.wq.set_quant(cfg);
        self.wk.set_quant(cfg);
        self.wv.set_quant(cfg);
        self.wo.set_quant(cfg);
    }

    /// Forward over `x` of shape `[batch, seq, d_model]`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let x2d = x.reshape(&[b * t, d]);
        let q = self.wq.forward(&x2d, train);
        let k = self.wk.forward(&x2d, train);
        let v = self.wv.forward(&x2d, train);
        let mut caches = Vec::new();
        let concat = attention_mix(
            &q,
            &k,
            &v,
            b,
            t,
            self.n_heads,
            self.causal,
            self.cfg.fwd,
            self.cfg.elementwise,
            train.then_some(&mut caches),
        );
        if train {
            self.cache = Some((caches, b, t));
        }
        self.wo.forward(&concat, train).reshape(&[b, t, d])
    }

    /// `(wq, wk, wv, wo, n_heads, causal)` — what the `plan` module needs to
    /// lower this attention into projection GEMMs plus an `AttnMix` node.
    pub(crate) fn plan_parts(&self) -> (&Linear, &Linear, &Linear, &Linear, usize, bool) {
        (
            &self.wq,
            &self.wk,
            &self.wv,
            &self.wo,
            self.n_heads,
            self.causal,
        )
    }

    /// Backward from `grad` of shape `[batch, seq, d_model]`.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (caches, b, t) = self.cache.take().expect("backward before forward");
        let d = grad.shape()[2];
        let dh = d / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let g2d = grad.reshape(&[b * t, d]);
        let d_concat = self.wo.backward(&g2d);
        let mut dq_all = Tensor::zeros(&[b * t, d]);
        let mut dk_all = Tensor::zeros(&[b * t, d]);
        let mut dv_all = Tensor::zeros(&[b * t, d]);
        for bi in 0..b {
            for h in 0..self.n_heads {
                let cache = &caches[bi * self.n_heads + h];
                let d_out = {
                    let rows = d_concat.slice_rows(bi * t, (bi + 1) * t);
                    slice_cols(&rows, h * dh, (h + 1) * dh)
                };
                // dV = Q(Pᵀ)·Q(dOut); dP = Q(dOut)·Q(Vᵀ).
                let dv = quantized_matmul(&cache.probs.transpose2d(), &d_out, self.cfg.bwd);
                let dp = quantized_matmul(&d_out, &cache.v.transpose2d(), self.cfg.bwd);
                // Softmax backward: dS = P ∘ (dP − rowsum(dP ∘ P)).
                let mut ds = dp.mul(&cache.probs);
                {
                    let dsd = ds.data_mut();
                    for r in 0..t {
                        let row_sum: f32 = dsd[r * t..(r + 1) * t].iter().sum();
                        for j in 0..t {
                            let p = cache.probs.data()[r * t + j];
                            dsd[r * t + j] -= p * row_sum;
                        }
                    }
                }
                let ds = ds.scale(scale);
                let dq = quantized_matmul(&ds, &cache.k, self.cfg.bwd);
                let dk = quantized_matmul(&ds.transpose2d(), &cache.q, self.cfg.bwd);
                let base = bi * t;
                let (dqd, dkd, dvd) = (dq_all.data_mut(), dk_all.data_mut(), dv_all.data_mut());
                for r in 0..t {
                    for c in 0..dh {
                        dqd[(base + r) * d + h * dh + c] = dq.data()[r * dh + c];
                        dkd[(base + r) * d + h * dh + c] = dk.data()[r * dh + c];
                        dvd[(base + r) * d + h * dh + c] = dv.data()[r * dh + c];
                    }
                }
            }
        }
        let dx = self
            .wq
            .backward(&dq_all)
            .add(&self.wk.backward(&dk_all))
            .add(&self.wv.backward(&dv_all));
        dx.reshape(grad.shape())
    }
}

impl HasParams for MultiHeadAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

/// Pre-norm transformer block: `x + Attn(LN(x))`, then `x + MLP(LN(x))`.
#[derive(Debug)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    fc1: Linear,
    act: ActivationLayer,
    fc2: Linear,
}

impl TransformerBlock {
    /// Creates a block with a 4× MLP expansion.
    pub fn new(
        rng: &mut StdRng,
        d_model: usize,
        n_heads: usize,
        causal: bool,
        cfg: QuantConfig,
    ) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(d_model, cfg.elementwise),
            attn: MultiHeadAttention::new(rng, d_model, n_heads, causal, cfg),
            ln2: LayerNorm::new(d_model, cfg.elementwise),
            fc1: Linear::new(rng, d_model, 4 * d_model, true, cfg),
            act: ActivationLayer::new(Activation::Gelu, cfg.elementwise),
            fc2: Linear::new(rng, 4 * d_model, d_model, true, cfg),
        }
    }

    /// Replaces the quantization config everywhere in the block.
    pub fn set_quant(&mut self, cfg: QuantConfig) {
        self.attn.set_quant(cfg);
        self.fc1.set_quant(cfg);
        self.fc2.set_quant(cfg);
    }

    /// `(ln1, attn, ln2, fc1, act, fc2)` — what the `plan` module needs to
    /// lower one pre-norm block into a shared node template.
    pub(crate) fn plan_parts(
        &self,
    ) -> (
        &LayerNorm,
        &MultiHeadAttention,
        &LayerNorm,
        &Linear,
        &ActivationLayer,
        &Linear,
    ) {
        (
            &self.ln1, &self.attn, &self.ln2, &self.fc1, &self.act, &self.fc2,
        )
    }

    /// Forward over `[batch, seq, d_model]`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let normed = self.ln1.forward(x, train);
        let attn_out = self.attn.forward(&normed.reshape(x.shape()), train);
        let x1 = x.add(&attn_out);
        let normed2 = self.ln2.forward(&x1, train);
        let h = self.fc1.forward(&normed2, train);
        let h = self.act.forward(&h, train);
        let h = self.fc2.forward(&h, train);
        x1.add(&h.reshape(x.shape()))
    }

    /// Backward from `[batch, seq, d_model]`.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g_mlp = self.fc2.backward(grad);
        let g_mlp = self.act.backward(&g_mlp);
        let g_mlp = self.fc1.backward(&g_mlp);
        let g_ln2 = self.ln2.backward(&g_mlp);
        let g_x1 = grad.add(&g_ln2.reshape(grad.shape()));
        let g_attn = self.attn.backward(&g_x1);
        let g_ln1 = self.ln1.backward(&g_attn);
        g_x1.add(&g_ln1.reshape(grad.shape()))
    }
}

impl HasParams for TransformerBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.fc1.visit_params(f);
        self.act.visit_params(f);
        self.fc2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn input(b: usize, t: usize, d: usize) -> Tensor {
        Tensor::from_vec(
            (0..b * t * d)
                .map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.05)
                .collect(),
            &[b, t, d],
        )
    }

    #[test]
    fn attention_shapes() {
        let mut attn = MultiHeadAttention::new(&mut rng(), 8, 2, true, QuantConfig::fp32());
        let x = input(2, 4, 8);
        let y = attn.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4, 8]);
        let dx = attn.backward(&y);
        assert_eq!(dx.shape(), &[2, 4, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        // With causal masking, output at position 0 must not depend on
        // later positions.
        let mut attn = MultiHeadAttention::new(&mut rng(), 8, 2, true, QuantConfig::fp32());
        let x1 = input(1, 4, 8);
        let mut x2 = x1.clone();
        // Perturb the last position only.
        for c in 0..8 {
            x2.data_mut()[3 * 8 + c] += 1.0;
        }
        let y1 = attn.forward(&x1, false);
        let y2 = attn.forward(&x2, false);
        for c in 0..8 {
            assert_eq!(y1.data()[c], y2.data()[c], "position 0 leaked future info");
        }
    }

    #[test]
    fn non_causal_attends_everywhere() {
        let mut attn = MultiHeadAttention::new(&mut rng(), 8, 1, false, QuantConfig::fp32());
        let x1 = input(1, 4, 8);
        let mut x2 = x1.clone();
        for c in 0..8 {
            x2.data_mut()[3 * 8 + c] += 1.0;
        }
        let y1 = attn.forward(&x1, false);
        let y2 = attn.forward(&x2, false);
        let diff: f32 = (0..8).map(|c| (y1.data()[c] - y2.data()[c]).abs()).sum();
        assert!(diff > 1e-6, "bidirectional attention should see position 3");
    }

    #[test]
    fn attention_input_gradcheck() {
        let mut attn = MultiHeadAttention::new(&mut rng(), 4, 1, true, QuantConfig::fp32());
        let x = input(1, 3, 4);
        let y = attn.forward(&x, true);
        let dx = attn.backward(&y);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = attn.forward(&xp, false).sq_norm() / 2.0;
            let lm = attn.forward(&xm, false).sq_norm() / 2.0;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "attention grad mismatch at {i}: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn transformer_block_gradcheck() {
        let mut blk = TransformerBlock::new(&mut rng(), 4, 1, true, QuantConfig::fp32());
        let x = input(1, 3, 4);
        let y = blk.forward(&x, true);
        assert_eq!(y.shape(), x.shape());
        let dx = blk.backward(&y);
        let eps = 1e-3;
        for i in (0..x.numel()).step_by(3) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = blk.forward(&xp, false).sq_norm() / 2.0;
            let lm = blk.forward(&xm, false).sq_norm() / 2.0;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[i]).abs() < 5e-2 * (1.0 + num.abs()),
                "block grad mismatch at {i}: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn quantized_attention_stays_close_to_fp32() {
        let x = input(1, 8, 16);
        let mut a32 = MultiHeadAttention::new(&mut rng(), 16, 2, true, QuantConfig::fp32());
        let mut a9 = MultiHeadAttention::new(
            &mut rng(),
            16,
            2,
            true,
            QuantConfig::uniform(crate::format::TensorFormat::MX9),
        );
        let y32 = a32.forward(&x, false);
        let y9 = a9.forward(&x, false);
        let rel = y9.sub(&y32).sq_norm() / y32.sq_norm().max(1e-12);
        assert!(rel < 1e-3, "MX9 attention relative error {rel}");
    }

    #[test]
    fn param_counts() {
        let mut attn = MultiHeadAttention::new(&mut rng(), 8, 2, true, QuantConfig::fp32());
        // 4 projections of 8x8 + bias 8.
        assert_eq!(attn.param_count(), 4 * (64 + 8));
        let mut blk = TransformerBlock::new(&mut rng(), 8, 2, true, QuantConfig::fp32());
        // attention + 2 layernorms (2*8 each) + fc1 (8*32+32) + fc2 (32*8+8).
        assert_eq!(blk.param_count(), 4 * 72 + 2 * 16 + (256 + 32) + (256 + 8));
    }
}
