//! Memory-footprint model: packing a 256-element tile into a 64-byte memory
//! interface (§IV-B of the paper).
//!
//! DRAM/HBM interfaces have a fixed width; tensor tiles that do not pack
//! into whole interface beats waste capacity and bandwidth. The paper's
//! Fig. 7 x-axis therefore multiplies normalized dot-product area by the
//! *memory cost*: the number of 64B lines a 256-element tile occupies,
//! normalized to FP8's exactly-4-line tile.

/// Tile size used by the paper's packing analysis.
pub const TILE_ELEMENTS: usize = 256;
/// Memory interface width in bytes.
pub const INTERFACE_BYTES: usize = 64;

/// Packing of one tile into interface lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Payload bits actually needed by the tile (elements + amortized
    /// scales).
    pub payload_bits: usize,
    /// Bytes after rounding up to whole interface lines.
    pub padded_bytes: usize,
    /// Number of 64B interface lines.
    pub lines: usize,
}

impl MemoryFootprint {
    /// Fraction of the fetched bits that are payload (1.0 = perfect
    /// packing).
    pub fn packing_efficiency(&self) -> f64 {
        if self.padded_bytes == 0 {
            return 1.0;
        }
        self.payload_bits as f64 / (self.padded_bytes * 8) as f64
    }
}

/// Computes the tile footprint for a format storing `bits_per_element`
/// (including amortized scale-factor bits).
///
/// # Examples
///
/// ```
/// # use mx_hw::memory::tile_footprint;
/// let fp8 = tile_footprint(8.0);
/// assert_eq!(fp8.lines, 4); // 256 bytes exactly
/// let mx9 = tile_footprint(9.0);
/// assert_eq!(mx9.lines, 5); // 288 bytes -> 5 lines
/// ```
pub fn tile_footprint(bits_per_element: f64) -> MemoryFootprint {
    assert!(bits_per_element > 0.0, "bits per element must be positive");
    let payload_bits = (TILE_ELEMENTS as f64 * bits_per_element).ceil() as usize;
    let payload_bytes = payload_bits.div_ceil(8);
    let lines = payload_bytes.div_ceil(INTERFACE_BYTES);
    MemoryFootprint {
        payload_bits,
        padded_bytes: lines * INTERFACE_BYTES,
        lines,
    }
}

/// Memory cost of a format relative to FP8 (whose 256-element tile is
/// exactly four 64B lines).
///
/// # Examples
///
/// ```
/// # use mx_hw::memory::memory_cost_rel_fp8;
/// assert_eq!(memory_cost_rel_fp8(8.0), 1.0);
/// assert_eq!(memory_cost_rel_fp8(9.0), 1.25);
/// assert_eq!(memory_cost_rel_fp8(4.0), 0.5);
/// ```
pub fn memory_cost_rel_fp8(bits_per_element: f64) -> f64 {
    let fp8 = tile_footprint(8.0);
    tile_footprint(bits_per_element).padded_bytes as f64 / fp8.padded_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_core::bdr::BdrFormat;

    #[test]
    fn table_ii_formats() {
        assert_eq!(memory_cost_rel_fp8(BdrFormat::MX9.bits_per_element()), 1.25);
        assert_eq!(memory_cost_rel_fp8(BdrFormat::MX6.bits_per_element()), 0.75);
        assert_eq!(memory_cost_rel_fp8(BdrFormat::MX4.bits_per_element()), 0.5);
    }

    #[test]
    fn msfp_padding_shows_up() {
        // MSFP12: 4.5 bits/element -> 1152 bits -> 144 bytes -> 3 lines,
        // i.e. packing efficiency 0.75.
        let f = tile_footprint(BdrFormat::MSFP12.bits_per_element());
        assert_eq!(f.lines, 3);
        assert!((f.packing_efficiency() - 1152.0 / 1536.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_bits_round_up() {
        // 4.03125 bits/element -> 1032 bits -> 129 bytes -> spills into a
        // third line. (Per-tensor scales are excluded upstream precisely to
        // avoid this artifact; see `FormatConfig::tile_bits_per_element`.)
        let f = tile_footprint(4.0 + 32.0 / 1024.0);
        assert_eq!(f.lines, 3);
        // A tile-resident scale granularity keeps the overhead real: INT4
        // with a 32-bit scale per 128 elements genuinely needs more lines.
        assert_eq!(tile_footprint(4.25).lines, 3);
    }

    #[test]
    fn perfect_packing_for_byte_formats() {
        for bits in [4.0, 8.0, 16.0] {
            assert_eq!(tile_footprint(bits).packing_efficiency(), 1.0);
        }
    }

    #[test]
    fn monotone_in_bits() {
        let mut prev = 0.0;
        for tenths in 10..200 {
            let cost = memory_cost_rel_fp8(tenths as f64 / 10.0);
            assert!(cost >= prev);
            prev = cost;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_bits() {
        let _ = tile_footprint(0.0);
    }
}
