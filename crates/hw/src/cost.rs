//! The Fig. 7 x-axis: normalized area × memory efficiency product, plus the
//! [`FormatConfig`] enum that names every point in the evaluated design
//! space.

use crate::area::{AreaModel, PipelineGeometry};
use crate::memory::memory_cost_rel_fp8;
use mx_core::bdr::{BdrFormat, BdrQuantizer};
use mx_core::fp_scaled::FpScaledQuantizer;
use mx_core::int_quant::{IntQuantizer, FP32_SCALE_BITS};
use mx_core::scalar::ScalarFormat;
use mx_core::scaling::ScaleStrategy;
use mx_core::vsq::{VsqQuantizer, VSQ_VECTOR};
use mx_core::VectorQuantizer;
use std::fmt;

/// One evaluable point in the quantization design space: a format family
/// plus its scaling configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatConfig {
    /// Hardware two-level block format (MX, MSFP, generic BDR).
    Bdr(BdrFormat),
    /// Scalar float with software first-level scaling over `k1` elements.
    ScalarSw {
        /// The element format.
        format: ScalarFormat,
        /// Software scale granularity (the paper uses ≈10K for FP8).
        k1: usize,
    },
    /// Software-scaled integer.
    Int {
        /// Integer width including sign.
        bits: u32,
        /// FP32 scale granularity.
        k1: usize,
    },
    /// Per-vector scaled quantization.
    Vsq {
        /// Integer data width including sign.
        bits: u32,
        /// Integer sub-scale width.
        d2: u32,
        /// FP32 scale granularity.
        k1: usize,
    },
}

impl FormatConfig {
    /// Display label matching the paper's naming.
    pub fn label(&self) -> String {
        match self {
            FormatConfig::Bdr(f) => f.to_string(),
            FormatConfig::ScalarSw { format, .. } => format.to_string(),
            FormatConfig::Int { bits, .. } => format!("scaled INT{bits}"),
            FormatConfig::Vsq { bits, d2, .. } => format!("VSQ{bits}(d2={d2})"),
        }
    }

    /// Average storage bits per element including amortized scales.
    pub fn bits_per_element(&self) -> f64 {
        match self {
            FormatConfig::Bdr(f) => f.bits_per_element(),
            FormatConfig::ScalarSw { format, k1 } => {
                format.total_bits() as f64 + FP32_SCALE_BITS / *k1 as f64
            }
            FormatConfig::Int { bits, k1 } => *bits as f64 + FP32_SCALE_BITS / *k1 as f64,
            FormatConfig::Vsq { bits, d2, k1 } => {
                *bits as f64 + *d2 as f64 / VSQ_VECTOR as f64 + FP32_SCALE_BITS / *k1 as f64
            }
        }
    }

    /// Storage bits per element *as seen by a 256-element tile*: scale
    /// factors whose granularity exceeds the tile (per-tensor software
    /// scales) are fetched once per tensor and do not travel with the tile,
    /// so they are excluded from the packing analysis — this is why the
    /// paper's FP8 tile packs into exactly four 64B lines.
    pub fn tile_bits_per_element(&self) -> f64 {
        let tile = crate::memory::TILE_ELEMENTS;
        match self {
            FormatConfig::Bdr(f) => f.bits_per_element(),
            FormatConfig::ScalarSw { format, k1 } => {
                let scale = if *k1 <= tile {
                    FP32_SCALE_BITS / *k1 as f64
                } else {
                    0.0
                };
                format.total_bits() as f64 + scale
            }
            FormatConfig::Int { bits, k1 } => {
                let scale = if *k1 <= tile {
                    FP32_SCALE_BITS / *k1 as f64
                } else {
                    0.0
                };
                *bits as f64 + scale
            }
            FormatConfig::Vsq { bits, d2, k1 } => {
                let scale = if *k1 <= tile {
                    FP32_SCALE_BITS / *k1 as f64
                } else {
                    0.0
                };
                *bits as f64 + *d2 as f64 / VSQ_VECTOR as f64 + scale
            }
        }
    }

    /// Builds the matching [`VectorQuantizer`] with the given software
    /// scaling strategy (ignored by hardware-scaled BDR formats).
    pub fn quantizer(&self, strategy: ScaleStrategy) -> Box<dyn VectorQuantizer + Send> {
        match self {
            FormatConfig::Bdr(f) => Box::new(BdrQuantizer::new(*f)),
            FormatConfig::ScalarSw { format, k1 } => {
                Box::new(FpScaledQuantizer::new(*format, strategy).with_block(*k1))
            }
            FormatConfig::Int { bits, k1 } => Box::new(IntQuantizer::new(*bits, *k1, strategy)),
            FormatConfig::Vsq { bits, d2, k1 } => {
                Box::new(VsqQuantizer::new(*bits, *d2, *k1, strategy))
            }
        }
    }
}

impl fmt::Display for FormatConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Area + memory cost model with a fixed geometry, normalized to the dual
/// FP8 baseline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostModel {
    area: AreaModel,
    geometry: PipelineGeometry,
}

/// Cost of one configuration (all relative values are FP8 = 1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Absolute datapath area in NAND2-equivalent gates.
    pub area_gates: f64,
    /// Area normalized to the dual-mode FP8 baseline.
    pub area_norm: f64,
    /// Memory cost of a 256-element tile relative to FP8.
    pub memory_norm: f64,
    /// The Fig. 7 x-axis: `area_norm × memory_norm`.
    pub product: f64,
}

impl CostModel {
    /// Model with the default gate costs and geometry (r = 64, IO
    /// registered).
    pub fn new() -> Self {
        Self::default()
    }

    /// Model with custom area model and geometry.
    pub fn with_parts(area: AreaModel, geometry: PipelineGeometry) -> Self {
        CostModel { area, geometry }
    }

    /// The pipeline geometry in use.
    pub fn geometry(&self) -> PipelineGeometry {
        self.geometry
    }

    /// Area of the dual-mode FP8 normalization baseline, in gates.
    pub fn baseline_gates(&self) -> f64 {
        self.area.fp8_dual_baseline(self.geometry)
    }

    /// Evaluates one configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mx_hw::cost::{CostModel, FormatConfig};
    /// # use mx_core::bdr::BdrFormat;
    /// let model = CostModel::new();
    /// let mx6 = model.evaluate(&FormatConfig::Bdr(BdrFormat::MX6));
    /// let fp8 = model.evaluate(&FormatConfig::ScalarSw {
    ///     format: mx_core::scalar::ScalarFormat::E4M3,
    ///     k1: 10_000,
    /// });
    /// // The paper's headline: MX6 costs about half of FP8.
    /// assert!(mx6.product < 0.65 * fp8.product);
    /// ```
    pub fn evaluate(&self, config: &FormatConfig) -> CostReport {
        let geom = self.geometry;
        let area_gates = match config {
            FormatConfig::Bdr(f) => {
                // Geometry r must tile k1; round up to the nearest multiple.
                let r = geom.r.max(f.k1()).next_multiple_of(f.k1());
                let g = PipelineGeometry { r, ..geom };
                self.area.bdr_unit(f, g).total() * geom.r as f64 / r as f64
            }
            FormatConfig::ScalarSw { format, .. } => self.area.scalar_unit(format, geom).total(),
            FormatConfig::Int { bits, .. } => self.area.int_unit(*bits, geom).total(),
            FormatConfig::Vsq { bits, d2, .. } => self.area.vsq_unit(*bits, *d2, geom).total(),
        };
        let area_norm = area_gates / self.baseline_gates();
        let memory_norm = memory_cost_rel_fp8(config.tile_bits_per_element());
        CostReport {
            area_gates,
            area_norm,
            memory_norm,
            product: area_norm * memory_norm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new()
    }

    fn fp8_config() -> FormatConfig {
        FormatConfig::ScalarSw {
            format: ScalarFormat::E4M3,
            k1: 10_000,
        }
    }

    /// The calibration targets from §IV-C of the paper: MX9 hardware
    /// efficiency close to FP8; MX6 ≈ 2× cheaper; MX4 ≈ 4× cheaper.
    #[test]
    fn paper_calibration_targets() {
        let m = model();
        let fp8 = m.evaluate(&fp8_config()).product;
        let mx9 = m.evaluate(&FormatConfig::Bdr(BdrFormat::MX9)).product;
        let mx6 = m.evaluate(&FormatConfig::Bdr(BdrFormat::MX6)).product;
        let mx4 = m.evaluate(&FormatConfig::Bdr(BdrFormat::MX4)).product;
        assert!(
            (0.7..=1.15).contains(&(mx9 / fp8)),
            "MX9/FP8 product ratio {:.2} should be near 1",
            mx9 / fp8
        );
        assert!(
            (0.30..=0.60).contains(&(mx6 / fp8)),
            "MX6/FP8 product ratio {:.2} should be near 1/2",
            mx6 / fp8
        );
        assert!(
            (0.12..=0.35).contains(&(mx4 / fp8)),
            "MX4/FP8 product ratio {:.2} should be near 1/4",
            mx4 / fp8
        );
    }

    #[test]
    fn fp8_baseline_normalizes_near_one() {
        let m = model();
        let r = m.evaluate(&fp8_config());
        // Single-mode E4M3 sits just below the dual-mode baseline.
        assert!(
            r.area_norm > 0.8 && r.area_norm <= 1.0,
            "area_norm = {}",
            r.area_norm
        );
        assert_eq!(r.memory_norm, 1.0);
    }

    #[test]
    fn quantizers_construct_for_every_variant() {
        let configs = [
            FormatConfig::Bdr(BdrFormat::MX6),
            fp8_config(),
            FormatConfig::Int { bits: 8, k1: 1024 },
            FormatConfig::Vsq {
                bits: 4,
                d2: 4,
                k1: 1024,
            },
        ];
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.11).sin()).collect();
        for c in configs {
            let mut q = c.quantizer(ScaleStrategy::Amax);
            assert_eq!(q.quantize_dequantize(&x).len(), 64, "{c}");
            assert!(
                (q.bits_per_element() - c.bits_per_element()).abs() < 1e-9,
                "{c}"
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(FormatConfig::Bdr(BdrFormat::MX9).label(), "MX9");
        assert_eq!(fp8_config().label(), "FP8-E4M3");
        assert_eq!(
            FormatConfig::Int { bits: 4, k1: 1024 }.label(),
            "scaled INT4"
        );
        assert_eq!(
            FormatConfig::Vsq {
                bits: 6,
                d2: 4,
                k1: 1024
            }
            .label(),
            "VSQ6(d2=4)"
        );
    }

    #[test]
    fn product_scales_with_both_axes() {
        let m = model();
        let mx6 = m.evaluate(&FormatConfig::Bdr(BdrFormat::MX6));
        assert!((mx6.product - mx6.area_norm * mx6.memory_norm).abs() < 1e-12);
        assert_eq!(mx6.memory_norm, 0.75);
    }

    #[test]
    fn msfp_cheaper_than_equal_mantissa_mx() {
        // MSFP16 (no microexponents) must be cheaper in area than MX9 but
        // costs more than MX6 overall.
        let m = model();
        let msfp16 = m.evaluate(&FormatConfig::Bdr(BdrFormat::MSFP16));
        let mx9 = m.evaluate(&FormatConfig::Bdr(BdrFormat::MX9));
        assert!(msfp16.area_norm < mx9.area_norm);
    }

    #[test]
    fn int_vs_fp_datapath_costs() {
        let m = model();
        let int8 = m.evaluate(&FormatConfig::Int { bits: 8, k1: 1024 });
        let fp8 = m.evaluate(&fp8_config());
        assert!(int8.area_norm < fp8.area_norm);
        // But INT needs the same memory.
        assert!(int8.memory_norm >= 1.0);
    }
}
