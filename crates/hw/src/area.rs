//! Analytic standard-cell area model for the Fig. 6 dot-product pipeline.
//!
//! The paper synthesizes each configuration with Synopsys Design Compiler on
//! a leading process node, with a relaxed 10ns timing constraint and only
//! inputs/outputs registered, precisely so that the reported numbers reflect
//! the *core datapath area* rather than pipelining or synthesis-mapping
//! noise. That regime is what an analytic gate-count model captures: this
//! module prices each block of the Fig. 6 pipeline in NAND2-equivalent gate
//! units using standard asymptotics — array multipliers quadratic in
//! mantissa width, barrel shifters `width · log2(range)`, ripple adder trees
//! linear in operand width — and sums them. All relative comparisons in this
//! repository (Fig. 7's x-axis, Table II's knee analysis) are ratios of
//! these totals against the same dual-mode FP8 baseline the paper divides
//! by. See DESIGN.md §4 for the substitution rationale and calibration
//! targets.

use crate::pipeline::{PipelineConfig, DEFAULT_F_CAP};
use mx_core::bdr::BdrFormat;
use mx_core::scalar::ScalarFormat;
use std::fmt;

/// Per-primitive gate costs in NAND2-equivalent units.
///
/// The defaults follow standard-cell rules of thumb (full adder ≈ 5 gates,
/// 2:1 mux ≈ 3 gates/bit, flip-flop ≈ 4 gates); ablations may perturb them
/// to test the robustness of the Pareto frontier (the `ablation_area_model`
/// bench does exactly that).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateCosts {
    /// Full-adder cell (per bit of a ripple/array stage).
    pub full_adder: f64,
    /// 2-input AND (partial-product generation).
    pub and2: f64,
    /// 2-input XOR (sign logic).
    pub xor2: f64,
    /// Per-bit cost of one 2:1 mux stage (barrel shifters, max selection).
    pub mux_bit: f64,
    /// Per-bit cost of a magnitude comparator.
    pub comparator_bit: f64,
    /// Per-bit cost of two's-complement conversion.
    pub tc_bit: f64,
    /// Per-bit cost of a leading-zero counter.
    pub lzc_bit: f64,
    /// One flip-flop bit (IO registers only; see module docs).
    pub register_bit: f64,
    /// Fixed cost of the FP32 convert + accumulate tail of the pipeline.
    pub fp32_tail: f64,
    /// Fixed per-unit control/decode overhead.
    pub control: f64,
    /// Per-element operand routing/muxing (format-independent wiring that
    /// real layouts pay regardless of mantissa width).
    pub operand_routing: f64,
}

impl Default for GateCosts {
    fn default() -> Self {
        GateCosts {
            full_adder: 5.0,
            and2: 1.0,
            xor2: 2.5,
            mux_bit: 3.0,
            comparator_bit: 3.0,
            tc_bit: 3.0,
            lzc_bit: 2.0,
            register_bit: 4.0,
            fp32_tail: 2600.0,
            control: 2500.0,
            operand_routing: 40.0,
        }
    }
}

/// Physical shape of the dot-product unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineGeometry {
    /// Reduction dimension (elements consumed per pass). The paper's Fig. 7
    /// normalizes against a 64-element FP8 unit.
    pub r: usize,
    /// Whether operand/result registers are counted (the paper registers
    /// only inputs and outputs).
    pub io_registered: bool,
}

impl Default for PipelineGeometry {
    fn default() -> Self {
        PipelineGeometry {
            r: 64,
            io_registered: true,
        }
    }
}

/// Area of one dot-product unit, broken down by pipeline block (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Mantissa/significand multipliers.
    pub multipliers: f64,
    /// Sign XOR array.
    pub sign_logic: f64,
    /// Sub-block scale adders (microexponents or VSQ integer scales).
    pub scale_add: f64,
    /// Two's-complement converters.
    pub tc_convert: f64,
    /// Conditional right-shifters at depth `log2(k2)`.
    pub cond_shift: f64,
    /// Intra-block adder trees (`k1 − 1` adders per block).
    pub block_tree: f64,
    /// Exponent adders, vector max, and subtract blocks.
    pub exponent_logic: f64,
    /// Normalization shifters aligning block results to the max exponent.
    pub align_shift: f64,
    /// Fixed-point reduction tree over `r/k1` block results.
    pub fixed_sum: f64,
    /// LZC + FP32 convert + FP32 accumulate tail.
    pub fp32_tail: f64,
    /// IO registers.
    pub registers: f64,
    /// Control/decode overhead.
    pub control: f64,
}

impl AreaBreakdown {
    /// Total NAND2-equivalent gate count.
    pub fn total(&self) -> f64 {
        self.multipliers
            + self.sign_logic
            + self.scale_add
            + self.tc_convert
            + self.cond_shift
            + self.block_tree
            + self.exponent_logic
            + self.align_shift
            + self.fixed_sum
            + self.fp32_tail
            + self.registers
            + self.control
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mult {:.0} | tc {:.0} | shift {:.0}+{:.0} | tree {:.0}+{:.0} | exp {:.0} | tail {:.0} | regs {:.0} | total {:.0}",
            self.multipliers,
            self.tc_convert,
            self.cond_shift,
            self.align_shift,
            self.block_tree,
            self.fixed_sum,
            self.exponent_logic,
            self.fp32_tail,
            self.registers,
            self.total()
        )
    }
}

/// The analytic area model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaModel {
    costs: GateCosts,
}

impl AreaModel {
    /// Model with the default gate costs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model with custom gate costs (for sensitivity ablations).
    pub fn with_costs(costs: GateCosts) -> Self {
        AreaModel { costs }
    }

    /// The gate-cost table in use.
    pub fn costs(&self) -> &GateCosts {
        &self.costs
    }

    fn adder(&self, bits: u32) -> f64 {
        self.costs.full_adder * bits as f64
    }

    /// Unsigned array multiplier, `a × b` bits.
    fn multiplier(&self, a: u32, b: u32) -> f64 {
        if a == 0 || b == 0 {
            return 0.0;
        }
        self.costs.and2 * (a * b) as f64 + self.costs.full_adder * (a.saturating_sub(1) * b) as f64
    }

    /// Barrel shifter of `width` bits supporting shifts up to `max_shift`.
    fn shifter(&self, width: u32, max_shift: u32) -> f64 {
        if max_shift == 0 {
            return 0.0;
        }
        let stages = (max_shift + 1).next_power_of_two().trailing_zeros().max(1);
        self.costs.mux_bit * width as f64 * stages as f64
    }

    fn comparator(&self, bits: u32) -> f64 {
        self.costs.comparator_bit * bits as f64
    }

    fn lzc(&self, bits: u32) -> f64 {
        self.costs.lzc_bit * bits as f64
    }

    fn tc(&self, bits: u32) -> f64 {
        self.costs.tc_bit * bits as f64
    }

    /// Area of a BDR (MX / MSFP / generic block) unit per Fig. 6.
    pub fn bdr_unit(&self, fmt: &BdrFormat, geom: PipelineGeometry) -> AreaBreakdown {
        let r = geom.r as f64;
        let m = fmt.m();
        let beta = fmt.max_shift();
        let k1 = fmt.k1() as u32;
        let blocks = (geom.r / fmt.k1()).max(1) as f64;
        let log2_k1 = (k1 as f64).log2().ceil() as u32;
        // Width of the in-block accumulator: product (2m) + fractional bits
        // retained by the conditional shift (2β) + carry growth (log2 k1).
        let w_blk = 2 * m + 2 * beta + log2_k1;
        let f = DEFAULT_F_CAP.min(PipelineConfig::Bdr(*fmt).natural_width());
        let exp_w = fmt.d1() + 1;
        let log2_blocks = (blocks.log2().ceil() as u32).max(1);

        let mut a = AreaBreakdown {
            multipliers: r * self.multiplier(m, m),
            sign_logic: r * self.costs.xor2,
            tc_convert: r * self.tc(2 * m + 2 * beta),
            block_tree: blocks * (k1 - 1) as f64 * self.adder(w_blk),
            exponent_logic: blocks * self.adder(exp_w)              // Ea + Eb
                + (blocks - 1.0).max(0.0) * (self.comparator(exp_w) + self.costs.mux_bit * exp_w as f64) // Vector Max
                + blocks * self.adder(exp_w), // Subtract
            align_shift: blocks * self.shifter(f, f),
            fixed_sum: (blocks - 1.0).max(0.0) * self.adder(f + log2_blocks),
            fp32_tail: self.lzc(f + log2_blocks) + self.costs.fp32_tail,
            control: self.costs.control + r * self.costs.operand_routing,
            ..AreaBreakdown::default()
        };
        if beta > 0 {
            // One d2-bit scale adder per element pair's sub-block lane plus
            // the conditional right shift inside the summation tree.
            a.scale_add = (geom.r / fmt.k2()) as f64 * self.adder(fmt.d2() + 1);
            a.cond_shift = r * self.shifter(2 * m + 2 * beta, 2 * beta);
        }
        if geom.io_registered {
            let elem_bits = fmt.bits_per_element();
            a.registers = self.costs.register_bit * (2.0 * r * elem_bits + 32.0);
        }
        a
    }

    /// Area of a scalar floating-point unit (`k1 = k2 = 1`): per-element
    /// exponent handling and per-element normalization shifters dominate.
    pub fn scalar_unit(&self, fmt: &ScalarFormat, geom: PipelineGeometry) -> AreaBreakdown {
        let r = geom.r as f64;
        let sig = fmt.man_bits() + 1; // implicit leading one materialized
        let exp_w = fmt.exp_bits() + 1;
        let f = DEFAULT_F_CAP.min(PipelineConfig::Scalar(*fmt).natural_width());
        let log2_r = ((r.log2()).ceil() as u32).max(1);

        let mut a = AreaBreakdown {
            multipliers: r * self.multiplier(sig, sig),
            sign_logic: r * self.costs.xor2,
            tc_convert: r * self.tc(2 * sig),
            exponent_logic: r * self.adder(exp_w)
                + (r - 1.0) * (self.comparator(exp_w) + self.costs.mux_bit * exp_w as f64)
                + r * self.adder(exp_w),
            align_shift: r * self.shifter(f, f),
            fixed_sum: (r - 1.0) * self.adder(f + log2_r),
            fp32_tail: self.lzc(f + log2_r) + self.costs.fp32_tail,
            control: self.costs.control + r * self.costs.operand_routing,
            ..AreaBreakdown::default()
        };
        if geom.io_registered {
            a.registers = self.costs.register_bit * (2.0 * r * fmt.total_bits() as f64 + 32.0);
        }
        a
    }

    /// Area of a software-scaled INT unit: bare multiplier + adder-tree
    /// datapath (scaling lives in software), plus one FP32 descale at the
    /// output.
    pub fn int_unit(&self, bits: u32, geom: PipelineGeometry) -> AreaBreakdown {
        let r = geom.r as f64;
        let w = 2 * bits;
        let log2_r = ((r.log2()).ceil() as u32).max(1);
        let mut a = AreaBreakdown {
            multipliers: r * self.multiplier(bits, bits),
            fixed_sum: (r - 1.0) * self.adder(w + log2_r),
            fp32_tail: self.costs.fp32_tail, // FP32 descale multiply-accumulate
            control: self.costs.control + r * self.costs.operand_routing,
            ..AreaBreakdown::default()
        };
        if geom.io_registered {
            a.registers = self.costs.register_bit * (2.0 * r * bits as f64 + 32.0);
        }
        a
    }

    /// Area of a VSQ unit (the paper's separate pipeline for second-level
    /// INT scaling): INT data multipliers, per-16-vector trees, an integer
    /// sub-scale multiplier per vector, then alignment and reduction.
    pub fn vsq_unit(&self, bits: u32, d2: u32, geom: PipelineGeometry) -> AreaBreakdown {
        let r = geom.r as f64;
        let vectors = (geom.r / mx_core::vsq::VSQ_VECTOR).max(1) as f64;
        let w_vec = 2 * bits + 4; // products + carry growth over 16 elements
        let f = DEFAULT_F_CAP;
        let log2_v = (vectors.log2().ceil() as u32).max(1);
        let mut a = AreaBreakdown {
            multipliers: r * self.multiplier(bits, bits)
                + vectors * self.multiplier(d2, d2)          // ss_a * ss_b
                + vectors * self.multiplier(w_vec, 2 * d2), // rescale vector sum
            sign_logic: r * self.costs.xor2,
            tc_convert: r * self.tc(2 * bits),
            block_tree: vectors * (mx_core::vsq::VSQ_VECTOR as u32 - 1) as f64 * self.adder(w_vec),
            align_shift: vectors * self.shifter(f, f),
            fixed_sum: (vectors - 1.0).max(0.0) * self.adder(f + log2_v),
            fp32_tail: self.lzc(f + log2_v) + self.costs.fp32_tail,
            control: self.costs.control + r * self.costs.operand_routing,
            ..AreaBreakdown::default()
        };
        if geom.io_registered {
            let elem_bits = bits as f64 + d2 as f64 / mx_core::vsq::VSQ_VECTOR as f64;
            a.registers = self.costs.register_bit * (2.0 * r * elem_bits + 32.0);
        }
        a
    }

    /// Area of the paper's normalization baseline: a configurable FP8 unit
    /// supporting both E4M3 and E5M2. Modeled as the per-block worst case of
    /// the two layouts plus a 10% reconfiguration overhead.
    pub fn fp8_dual_baseline(&self, geom: PipelineGeometry) -> f64 {
        let a = self.scalar_unit(&ScalarFormat::E4M3, geom);
        let b = self.scalar_unit(&ScalarFormat::E5M2, geom);
        let max = AreaBreakdown {
            multipliers: a.multipliers.max(b.multipliers),
            sign_logic: a.sign_logic.max(b.sign_logic),
            scale_add: a.scale_add.max(b.scale_add),
            tc_convert: a.tc_convert.max(b.tc_convert),
            cond_shift: a.cond_shift.max(b.cond_shift),
            block_tree: a.block_tree.max(b.block_tree),
            exponent_logic: a.exponent_logic.max(b.exponent_logic),
            align_shift: a.align_shift.max(b.align_shift),
            fixed_sum: a.fixed_sum.max(b.fixed_sum),
            fp32_tail: a.fp32_tail.max(b.fp32_tail),
            registers: a.registers.max(b.registers),
            control: a.control.max(b.control),
        };
        max.total() * 1.10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> PipelineGeometry {
        PipelineGeometry::default()
    }

    #[test]
    fn mx_family_area_ordering() {
        let m = AreaModel::new();
        let a4 = m.bdr_unit(&BdrFormat::MX4, geom()).total();
        let a6 = m.bdr_unit(&BdrFormat::MX6, geom()).total();
        let a9 = m.bdr_unit(&BdrFormat::MX9, geom()).total();
        assert!(a4 < a6 && a6 < a9, "{a4} {a6} {a9}");
    }

    #[test]
    fn mx9_cheaper_than_fp8_baseline() {
        let m = AreaModel::new();
        let mx9 = m.bdr_unit(&BdrFormat::MX9, geom()).total();
        let fp8 = m.fp8_dual_baseline(geom());
        assert!(
            mx9 < fp8,
            "MX9 datapath ({mx9:.0}) should undercut dual FP8 ({fp8:.0}): block scaling \
             amortizes the per-element shifters"
        );
    }

    #[test]
    fn scalar_shifters_dominate() {
        // The per-element normalization shifters are the scalar pipeline's
        // biggest block — the core reason fine-grained HW scaling wins.
        let m = AreaModel::new();
        let a = m.scalar_unit(&ScalarFormat::E4M3, geom());
        assert!(a.align_shift > a.multipliers);
        assert!(a.align_shift > a.fixed_sum);
    }

    #[test]
    fn bfp_drops_microexponent_logic() {
        let m = AreaModel::new();
        let mx = m.bdr_unit(&BdrFormat::new(7, 8, 1, 16, 2).unwrap(), geom());
        let bfp = m.bdr_unit(&BdrFormat::new(7, 8, 0, 16, 16).unwrap(), geom());
        assert_eq!(bfp.cond_shift, 0.0);
        assert_eq!(bfp.scale_add, 0.0);
        assert!(mx.cond_shift > 0.0 && mx.scale_add > 0.0);
        assert!(bfp.total() < mx.total());
    }

    #[test]
    fn microexponent_overhead_is_marginal() {
        // Table II knee analysis: the d2 = 1 second level costs only a few
        // percent of the unit.
        let m = AreaModel::new();
        let mx9 = m.bdr_unit(&BdrFormat::MX9, geom());
        let overhead = (mx9.cond_shift + mx9.scale_add) / mx9.total();
        assert!(
            overhead < 0.15,
            "microexponent overhead {overhead:.3} should be small"
        );
    }

    #[test]
    fn int_unit_is_cheapest_datapath() {
        let m = AreaModel::new();
        let int8 = m.int_unit(8, geom()).total();
        let fp8 = m.fp8_dual_baseline(geom());
        assert!(int8 < fp8);
    }

    #[test]
    fn vsq_between_int_and_fp() {
        let m = AreaModel::new();
        let int4 = m.int_unit(4, geom()).total();
        let vsq4 = m.vsq_unit(4, 4, geom()).total();
        let fp8 = m.fp8_dual_baseline(geom());
        assert!(int4 < vsq4, "integer rescale logic costs something");
        assert!(vsq4 < fp8);
    }

    #[test]
    fn larger_r_amortizes_fixed_costs() {
        let m = AreaModel::new();
        let small = m.bdr_unit(
            &BdrFormat::MX6,
            PipelineGeometry {
                r: 16,
                io_registered: true,
            },
        );
        let large = m.bdr_unit(
            &BdrFormat::MX6,
            PipelineGeometry {
                r: 256,
                io_registered: true,
            },
        );
        let per_elem_small = small.total() / 16.0;
        let per_elem_large = large.total() / 256.0;
        assert!(per_elem_large < per_elem_small);
    }

    #[test]
    fn registers_can_be_excluded() {
        let m = AreaModel::new();
        let with = m.bdr_unit(
            &BdrFormat::MX6,
            PipelineGeometry {
                r: 64,
                io_registered: true,
            },
        );
        let without = m.bdr_unit(
            &BdrFormat::MX6,
            PipelineGeometry {
                r: 64,
                io_registered: false,
            },
        );
        assert_eq!(without.registers, 0.0);
        assert!(with.total() > without.total());
        // Registers stay a modest slice, consistent with the paper's ~10%.
        assert!(with.registers / with.total() < 0.25);
    }

    #[test]
    fn breakdown_total_sums_fields() {
        let m = AreaModel::new();
        let a = m.bdr_unit(&BdrFormat::MX9, geom());
        let manual = a.multipliers
            + a.sign_logic
            + a.scale_add
            + a.tc_convert
            + a.cond_shift
            + a.block_tree
            + a.exponent_logic
            + a.align_shift
            + a.fixed_sum
            + a.fp32_tail
            + a.registers
            + a.control;
        assert!((a.total() - manual).abs() < 1e-9);
        assert!(!a.to_string().is_empty());
    }

    #[test]
    fn shifter_stage_math() {
        let m = AreaModel::new();
        // max_shift 2 needs 2 stages (shift by 1 and 2); width 10.
        assert_eq!(m.shifter(10, 2), 3.0 * 10.0 * 2.0);
        // max_shift 1 -> 1 stage.
        assert_eq!(m.shifter(8, 1), 3.0 * 8.0);
        assert_eq!(m.shifter(8, 0), 0.0);
    }
}
