//! # mx-hw — hardware substrate for the MX/BDR reproduction
//!
//! Models the hardware half of the paper's methodology (§IV-B):
//!
//! - [`pipeline`] — a **bit-accurate functional simulator** of the Fig. 6
//!   dot-product datapath: sign-magnitude mantissa multipliers, conditional
//!   sub-block right-shifts (the "little shifting" of the title), exponent
//!   max/normalize, `f`-bit fixed-point reduction with real truncation, and
//!   FP32 accumulation. Configurable for MX/MSFP/BDR block formats and for
//!   conventional scalar floats (`k1 = k2 = 1`).
//! - [`area`] — an **analytic standard-cell area model** standing in for the
//!   paper's Synopsys DC synthesis (see DESIGN.md §4 for why the
//!   substitution preserves the relative comparisons Fig. 7 needs).
//! - [`memory`] — the 256-element-tile / 64-byte-interface **packing model**.
//! - [`cost`] — the Fig. 7 x-axis: normalized **area × memory product**
//!   against a dual-mode FP8 baseline, plus [`cost::FormatConfig`], the
//!   namespace of every design point the sweep evaluates.
//!
//! ## Example
//!
//! ```
//! use mx_core::bdr::BdrFormat;
//! use mx_hw::cost::{CostModel, FormatConfig};
//! use mx_hw::pipeline::{DotProductPipeline, PipelineConfig};
//!
//! // How much silicon does an MX6 dot product cost relative to FP8?
//! let model = CostModel::new();
//! let report = model.evaluate(&FormatConfig::Bdr(BdrFormat::MX6));
//! assert!(report.product < 0.6);
//!
//! // And what does its datapath actually compute?
//! let engine = DotProductPipeline::new(PipelineConfig::Bdr(BdrFormat::MX6), 64);
//! let y = engine.dot(&[1.0; 64], &[0.5; 64]);
//! assert_eq!(y, 32.0);
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod cost;
pub mod memory;
pub mod pipeline;

pub use area::{AreaModel, PipelineGeometry};
pub use cost::{CostModel, CostReport, FormatConfig};
pub use pipeline::{DotProductPipeline, PipelineConfig};
