//! Bit-accurate functional model of the paper's dot-product pipeline
//! (Fig. 6).
//!
//! The datapath quantizes both operands, multiplies sign-magnitude mantissa
//! codes, applies the conditional sub-block right-shift at depth `log2(k2)`
//! while summing the `k1` elements of each block (kept lossless here: the
//! accumulator carries the `2β` fractional bits the shift can introduce),
//! then normalizes the `r/k1` block results to the largest exponent and
//! reduces them in `f`-bit fixed point — where low-order bits *are*
//! discarded, exactly as hardware does — before converting to FP32 and
//! accumulating.
//!
//! Setting `k1 = k2 = 1` with a [`ScalarConfig`](PipelineConfig::Scalar)
//! recovers a conventional scalar floating-point dot product (the paper's
//! optimistic approximation: elements normalize to the largest product and
//! reduce in fixed point rather than through a full FP adder tree).

use mx_core::bdr::BdrFormat;
use mx_core::scalar::ScalarFormat;
use mx_core::util::{exponent_of, pow2, round_half_even};

/// Default fixed-point reduction width cap (the paper selects
/// `f = min(25, max dynamic range)`).
pub const DEFAULT_F_CAP: u32 = 25;

/// Which format family the pipeline is configured for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PipelineConfig {
    /// Block format with hardware two-level scaling (MX, MSFP, generic BDR).
    Bdr(BdrFormat),
    /// Scalar floating point (`k1 = k2 = 1`, private per-element exponents).
    Scalar(ScalarFormat),
}

impl PipelineConfig {
    /// Natural (lossless) width of a block result before fixed-point
    /// truncation, used to derive the default `f`.
    pub fn natural_width(&self) -> u32 {
        match self {
            PipelineConfig::Bdr(fmt) => {
                let beta = fmt.max_shift();
                2 * fmt.m() + 2 * beta + (fmt.k1() as f64).log2().ceil() as u32 + 1
            }
            PipelineConfig::Scalar(fmt) => {
                // Scalar products span the format's full exponent range, so
                // the lossless width covers both mantissa and exponent span.
                let span = fmt.max_exp() - fmt.min_normal_exp();
                2 * (fmt.man_bits() + 1) + 2 * span.max(0) as u32
            }
        }
    }
}

/// One block result inside the pipeline: an exact integer significand and a
/// power-of-two scale (`value = significand · 2^exponent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockResult {
    significand: i128,
    exponent: i32,
}

/// Bit-accurate dot-product engine for one format configuration.
///
/// # Examples
///
/// ```
/// # use mx_hw::pipeline::{DotProductPipeline, PipelineConfig};
/// # use mx_core::bdr::BdrFormat;
/// let engine = DotProductPipeline::new(PipelineConfig::Bdr(BdrFormat::MX9), 64);
/// let a = vec![0.5f32; 64];
/// let b = vec![2.0f32; 64];
/// // All values are exactly representable: the dot product is exact.
/// assert_eq!(engine.dot(&a, &b), 64.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DotProductPipeline {
    config: PipelineConfig,
    r: usize,
    f: u32,
}

impl DotProductPipeline {
    /// Creates a pipeline with reduction dimension `r` and the paper's
    /// default accumulator width `f = min(25, natural width)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero or, for block formats, not a multiple of `k1`.
    pub fn new(config: PipelineConfig, r: usize) -> Self {
        if let PipelineConfig::Bdr(fmt) = &config {
            assert!(
                r.is_multiple_of(fmt.k1()),
                "reduction dimension {r} must be a multiple of k1 = {}",
                fmt.k1()
            );
        }
        assert!(r > 0, "reduction dimension must be nonzero");
        let f = DEFAULT_F_CAP.min(config.natural_width().max(4));
        DotProductPipeline { config, r, f }
    }

    /// Overrides the fixed-point reduction width (e.g. to study truncation
    /// effects, or to make the pipeline lossless for verification).
    pub fn with_accumulator_bits(mut self, f: u32) -> Self {
        assert!(
            (4..=100).contains(&f),
            "accumulator width {f} outside 4..=100"
        );
        self.f = f;
        self
    }

    /// The configured format.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Reduction dimension per pipeline pass.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Fixed-point reduction width.
    pub fn f(&self) -> u32 {
        self.f
    }

    /// Computes the dot product of `a` and `b`, quantizing both operands to
    /// the configured format and processing `r` elements per pass with FP32
    /// accumulation across passes (Fig. 6 end-to-end).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(
            a.len(),
            b.len(),
            "dot product operands must have equal length"
        );
        let mut acc = 0.0f32;
        for (ca, cb) in a.chunks(self.r).zip(b.chunks(self.r)) {
            let chunk = self.chunk_value(ca, cb);
            // FP32 Convert followed by FP32 Accumulate.
            acc += chunk as f32;
        }
        acc
    }

    /// Processes one `r`-element pass and returns its exact value after
    /// `f`-bit fixed-point reduction (before the FP32 convert).
    fn chunk_value(&self, a: &[f32], b: &[f32]) -> f64 {
        let blocks = match &self.config {
            PipelineConfig::Bdr(fmt) => self.bdr_blocks(fmt, a, b),
            PipelineConfig::Scalar(fmt) => self.scalar_blocks(fmt, a, b),
        };
        self.fixed_point_reduce(&blocks)
    }

    /// First half of the pipeline for block formats: mantissa multipliers,
    /// sign XOR, sub-block scale addition, conditional right shift (kept in
    /// extra fractional bits), and the intra-block adder tree.
    fn bdr_blocks(&self, fmt: &BdrFormat, a: &[f32], b: &[f32]) -> Vec<BlockResult> {
        let beta = fmt.max_shift();
        let mut out = Vec::with_capacity(a.len().div_ceil(fmt.k1()));
        for (ba, bb) in a.chunks(fmt.k1()).zip(b.chunks(fmt.k1())) {
            let qa = fmt.quantize_block_codes(ba);
            let qb = fmt.quantize_block_codes(bb);
            let mut sum: i128 = 0;
            for i in 0..ba.len() {
                let sub = i / fmt.k2();
                // Combined sub-block shift for this Hadamard product.
                let shift = qa.shifts[sub] + qb.shifts[sub];
                let mag = (qa.codes[i] as i128) * (qb.codes[i] as i128);
                let signed = if qa.signs[i] ^ qb.signs[i] { -mag } else { mag };
                // Keep 2*beta fractional bits so the conditional right shift
                // is lossless inside the block accumulator.
                sum += signed << (2 * beta - shift);
            }
            let exponent =
                qa.shared_exp + qb.shared_exp - 2 * (fmt.m() as i32 - 1) - 2 * beta as i32;
            out.push(BlockResult {
                significand: sum,
                exponent,
            });
        }
        out
    }

    /// First half of the pipeline for scalar floats: each element is its own
    /// "block" with a private exponent.
    fn scalar_blocks(&self, fmt: &ScalarFormat, a: &[f32], b: &[f32]) -> Vec<BlockResult> {
        a.iter()
            .zip(b.iter())
            .map(|(&xa, &xb)| {
                let (sa, ca, ea) = scalar_decompose(fmt, xa);
                let (sb, cb, eb) = scalar_decompose(fmt, xb);
                let mag = (ca as i128) * (cb as i128);
                let signed = if sa ^ sb { -mag } else { mag };
                BlockResult {
                    significand: signed,
                    exponent: ea + eb,
                }
            })
            .collect()
    }

    /// Second half of the pipeline: normalize all block results to the
    /// largest and reduce in `f`-bit fixed point (low bits truncate), then
    /// express the sum as an exact `f64`.
    fn fixed_point_reduce(&self, blocks: &[BlockResult]) -> f64 {
        // Vector Max over block magnitudes (exponent + significand width).
        let msb_max = blocks
            .iter()
            .filter(|b| b.significand != 0)
            .map(|b| b.exponent + int_bit_len(b.significand))
            .max();
        let Some(msb_max) = msb_max else {
            return 0.0;
        };
        let target_lsb = msb_max - self.f as i32;
        let mut sum: i128 = 0;
        for blk in blocks {
            let shift = blk.exponent - target_lsb;
            // Arithmetic shifts: left when the block has headroom, right
            // (truncating low bits, exactly like hardware) otherwise.
            let aligned = if shift >= 0 {
                blk.significand << shift.min(120)
            } else {
                let s = (-shift).min(127);
                blk.significand >> s
            };
            sum += aligned;
        }
        sum as f64 * pow2(target_lsb.clamp(-1000, 1000))
    }
}

/// Number of bits needed to represent `|v|` (0 for zero).
fn int_bit_len(v: i128) -> i32 {
    (128 - v.unsigned_abs().leading_zeros()) as i32
}

/// Decomposes `x` into the (sign, significand code, code exponent) triple a
/// scalar FP datapath reads out of a register: the value equals
/// `(−1)^sign · code · 2^exponent` after casting `x` into `fmt`.
fn scalar_decompose(fmt: &ScalarFormat, x: f32) -> (bool, u32, i32) {
    let y = fmt.cast(x);
    if y == 0.0 {
        return (false, 0, 0);
    }
    let e = exponent_of(y).max(fmt.min_normal_exp());
    let lsb_exp = e - fmt.man_bits() as i32;
    let code = round_half_even(y.abs() as f64 / pow2(lsb_exp)) as u32;
    (y.is_sign_negative(), code, lsb_exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: FP32-accumulated chunked dot product of the quantized
    /// values, computed in f64 (exact for the mantissa widths used here).
    fn reference_dot(qa: &[f32], qb: &[f32], r: usize) -> f32 {
        let mut acc = 0.0f32;
        for (ca, cb) in qa.chunks(r).zip(qb.chunks(r)) {
            let chunk: f64 = ca
                .iter()
                .zip(cb.iter())
                .map(|(&x, &y)| x as f64 * y as f64)
                .sum();
            acc += chunk as f32;
        }
        acc
    }

    fn test_vectors(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 4.0 - 2.0
        };
        let a = (0..n).map(|_| next()).collect();
        let b = (0..n).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn lossless_pipeline_matches_reference_for_mx_formats() {
        for fmt in [
            BdrFormat::MX4,
            BdrFormat::MX6,
            BdrFormat::MX9,
            BdrFormat::MSFP12,
        ] {
            let engine =
                DotProductPipeline::new(PipelineConfig::Bdr(fmt), 64).with_accumulator_bits(90);
            let (a, b) = test_vectors(256, 7);
            let qa = fmt.quantize_dequantize(&a);
            let qb = fmt.quantize_dequantize(&b);
            let expect = reference_dot(&qa, &qb, 64);
            let got = engine.dot(&a, &b);
            assert_eq!(got, expect, "format {fmt}");
        }
    }

    #[test]
    fn default_f_truncation_is_small() {
        let fmt = BdrFormat::MX9;
        let engine = DotProductPipeline::new(PipelineConfig::Bdr(fmt), 64);
        // MX9's natural block width (2m + 2β + log2 k1 + 1 = 21) is below the
        // 25-bit cap.
        assert_eq!(engine.f(), 21);
        let (a, b) = test_vectors(512, 3);
        let qa = fmt.quantize_dequantize(&a);
        let qb = fmt.quantize_dequantize(&b);
        let expect = reference_dot(&qa, &qb, 64);
        let got = engine.dot(&a, &b);
        let scale = qa.iter().map(|x| x.abs()).fold(0.0f32, f32::max);
        assert!(
            (got - expect).abs() <= scale * 1e-3,
            "truncation too large: {got} vs {expect}"
        );
    }

    #[test]
    fn scalar_pipeline_matches_cast_reference() {
        for fmt in [
            ScalarFormat::E4M3,
            ScalarFormat::E5M2,
            ScalarFormat::FP6_E2M3,
        ] {
            let engine =
                DotProductPipeline::new(PipelineConfig::Scalar(fmt), 32).with_accumulator_bits(90);
            let (a, b) = test_vectors(128, 11);
            let qa = fmt.cast_slice(&a);
            let qb = fmt.cast_slice(&b);
            let expect = reference_dot(&qa, &qb, 32);
            let got = engine.dot(&a, &b);
            assert_eq!(got, expect, "format {fmt}");
        }
    }

    #[test]
    fn zero_inputs() {
        let engine = DotProductPipeline::new(PipelineConfig::Bdr(BdrFormat::MX6), 16);
        assert_eq!(engine.dot(&[0.0; 32], &[0.0; 32]), 0.0);
        let a = vec![1.0f32; 16];
        assert_eq!(engine.dot(&a, &[0.0; 16]), 0.0);
    }

    #[test]
    fn orthogonal_vectors_cancel_exactly() {
        let engine = DotProductPipeline::new(PipelineConfig::Bdr(BdrFormat::MX9), 16);
        let a = vec![
            1.0f32, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0,
            -1.0,
        ];
        let b = vec![1.0f32; 16];
        assert_eq!(engine.dot(&a, &b), 0.0);
    }

    #[test]
    fn partial_tail_chunk() {
        let fmt = BdrFormat::MX6;
        let engine =
            DotProductPipeline::new(PipelineConfig::Bdr(fmt), 32).with_accumulator_bits(90);
        let (a, b) = test_vectors(40, 5); // 32 + tail of 8
        let qa = fmt.quantize_dequantize(&a);
        let qb = fmt.quantize_dequantize(&b);
        assert_eq!(engine.dot(&a, &b), reference_dot(&qa, &qb, 32));
    }

    #[test]
    fn scalar_decompose_round_trips() {
        let fmt = ScalarFormat::E4M3;
        for x in [1.0f32, -3.5, 0.015625, 448.0, 0.0, -0.001953125] {
            let (s, c, e) = scalar_decompose(&fmt, x);
            let v = (if s { -1.0 } else { 1.0 }) * c as f64 * pow2(e.clamp(-100, 100));
            assert_eq!(v as f32, fmt.cast(x), "x = {x}");
        }
    }

    #[test]
    fn wide_dynamic_range_survives() {
        let fmt = BdrFormat::MX9;
        let engine = DotProductPipeline::new(PipelineConfig::Bdr(fmt), 16);
        let mut a = vec![0.0f32; 32];
        a[0] = 1e20;
        a[16] = 1e-20;
        let b = vec![1.0f32; 32];
        let got = engine.dot(&a, &b);
        // The 1e-20 chunk is summed separately and FP32-accumulated: it
        // vanishes against 1e20 exactly as real hardware would behave. MX9's
        // 7-bit mantissa leaves up to ~2^-8 relative error on 1e20 itself.
        assert!((got - 1e20).abs() / 1e20 < 1e-2);
    }

    #[test]
    #[should_panic(expected = "multiple of k1")]
    fn rejects_misaligned_r() {
        let _ = DotProductPipeline::new(PipelineConfig::Bdr(BdrFormat::MX9), 24);
    }

    #[test]
    fn natural_width() {
        assert_eq!(
            PipelineConfig::Bdr(BdrFormat::MX9).natural_width(),
            14 + 2 + 4 + 1
        );
        // E4M3: mantissa product 8 bits + exponent span 2*(8 - (-6)) = 28.
        assert_eq!(
            PipelineConfig::Scalar(ScalarFormat::E4M3).natural_width(),
            36
        );
    }
}
