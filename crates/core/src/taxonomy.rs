//! Table I of the paper: classification of quantization approaches under the
//! unified two-level scaling framework.
//!
//! Each row records who manages each scaling level (software or hardware),
//! how the scale factors are encoded, and the block granularities. This is
//! the data behind the `table1_taxonomy` regeneration binary and a useful
//! programmatic map of the design space.

use std::fmt;

/// Who sets a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleManagement {
    /// Software heuristics (framework-managed, coarse granularity).
    Software,
    /// Hardware-managed (set automatically inside the datapath).
    Hardware,
    /// This level is not used by the scheme.
    Unused,
}

impl fmt::Display for ScaleManagement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ScaleManagement::Software => "SW",
            ScaleManagement::Hardware => "HW",
            ScaleManagement::Unused => "-",
        })
    }
}

/// Encoding of a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleEncoding {
    /// Full-precision FP32 multiplier.
    Fp32,
    /// Power of two (`2^z`, stored as an exponent).
    PowerOfTwo,
    /// Unsigned integer multiplier.
    Integer,
    /// This level is not used by the scheme.
    Unused,
}

impl fmt::Display for ScaleEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ScaleEncoding::Fp32 => "FP32",
            ScaleEncoding::PowerOfTwo => "2^z",
            ScaleEncoding::Integer => "INT",
            ScaleEncoding::Unused => "-",
        })
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct TaxonomyRow {
    /// Scheme name as the paper writes it.
    pub scheme: &'static str,
    /// Management of the first-level scale `s`.
    pub scale: ScaleManagement,
    /// Management of the second-level sub-scale `ss`.
    pub sub_scale: ScaleManagement,
    /// Encoding of `s`.
    pub s_type: ScaleEncoding,
    /// Encoding of `ssᵢ`.
    pub ss_type: ScaleEncoding,
    /// Approximate first-level granularity (elements sharing `s`).
    pub k1: usize,
    /// Approximate second-level granularity (elements sharing `ssᵢ`),
    /// `0` when unused.
    pub k2: usize,
}

/// Returns Table I: the classification of INT, MSFP/BFP, FP8, VSQ, and MX
/// under the two-level scaling framework.
///
/// # Examples
///
/// ```
/// # use mx_core::taxonomy::table_i;
/// let rows = table_i();
/// assert_eq!(rows.len(), 5);
/// assert_eq!(rows.iter().filter(|r| r.scheme == "MX").count(), 1);
/// ```
pub fn table_i() -> Vec<TaxonomyRow> {
    vec![
        TaxonomyRow {
            scheme: "INT",
            scale: ScaleManagement::Software,
            sub_scale: ScaleManagement::Unused,
            s_type: ScaleEncoding::Fp32,
            ss_type: ScaleEncoding::Unused,
            k1: 1_000,
            k2: 0,
        },
        TaxonomyRow {
            scheme: "MSFP/BFP",
            scale: ScaleManagement::Hardware,
            sub_scale: ScaleManagement::Unused,
            s_type: ScaleEncoding::PowerOfTwo,
            ss_type: ScaleEncoding::Unused,
            k1: 10,
            k2: 0,
        },
        TaxonomyRow {
            scheme: "FP8",
            scale: ScaleManagement::Software,
            sub_scale: ScaleManagement::Hardware,
            s_type: ScaleEncoding::Fp32,
            ss_type: ScaleEncoding::PowerOfTwo,
            k1: 10_000,
            k2: 1,
        },
        TaxonomyRow {
            scheme: "VSQ",
            scale: ScaleManagement::Software,
            sub_scale: ScaleManagement::Hardware,
            s_type: ScaleEncoding::Fp32,
            ss_type: ScaleEncoding::Integer,
            k1: 1_000,
            k2: 10,
        },
        TaxonomyRow {
            scheme: "MX",
            scale: ScaleManagement::Hardware,
            sub_scale: ScaleManagement::Hardware,
            s_type: ScaleEncoding::PowerOfTwo,
            ss_type: ScaleEncoding::PowerOfTwo,
            k1: 10,
            k2: 1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mx_is_the_only_all_hardware_two_level_scheme() {
        let rows = table_i();
        let all_hw: Vec<_> = rows
            .iter()
            .filter(|r| {
                r.scale == ScaleManagement::Hardware && r.sub_scale == ScaleManagement::Hardware
            })
            .collect();
        assert_eq!(all_hw.len(), 1);
        assert_eq!(all_hw[0].scheme, "MX");
    }

    #[test]
    fn single_level_schemes_have_no_sub_scale() {
        for r in table_i() {
            if r.sub_scale == ScaleManagement::Unused {
                assert_eq!(r.ss_type, ScaleEncoding::Unused, "{}", r.scheme);
                assert_eq!(r.k2, 0, "{}", r.scheme);
            }
        }
    }

    #[test]
    fn display_codes() {
        assert_eq!(ScaleManagement::Software.to_string(), "SW");
        assert_eq!(ScaleEncoding::PowerOfTwo.to_string(), "2^z");
    }
}
