//! Central registry of `MX_*` environment knobs.
//!
//! Every runtime-tunable environment variable the workspace honors is
//! declared in [`KNOBS`] and read through [`raw`] — the one sanctioned
//! `std::env::var` call site (the workspace `clippy.toml` bans raw reads
//! everywhere else via `disallowed-methods`, and `mx-audit` cross-checks
//! this table against the README's knob table and against every `"MX_*"`
//! string literal in the sources). Adding a knob is therefore a three-line
//! change — the [`KNOBS`] row, the README table row, and the call site —
//! and forgetting any one of them is a CI failure, not a doc drift.
//!
//! The only knob *not* read through [`raw`] is `MX_BENCH_MEASURE_MS`,
//! consumed by the vendored criterion harness (which cannot depend on
//! `mx-core`); it still must be declared here so the audit's README
//! cross-check covers it.

/// Every `MX_*` environment knob the workspace honors, as
/// `(name, one-line effect)`. `mx-audit` lexically parses this table as
/// the knob registry; the README's "Environment knobs" table must list
/// exactly these names.
pub const KNOBS: &[(&str, &str)] = &[
    (
        "MX_KERNEL_BACKEND",
        "force the quantized-GEMM kernel backend: auto | scalar | sse2 | avx2 | avx512 (can only narrow the ISA, never fake one)",
    ),
    (
        "MX_KERNEL_DEFER",
        "0 / off / false disables deferred scale-out (bit-identical either way; isolates the deferral speedup)",
    ),
    (
        "MX_KERNEL_VNNI",
        "0 / off / false selects the vpmaddwd+vpaddd fallback inside the AVX-512 kernel (bit-identical either way; isolates the VNNI speedup)",
    ),
    (
        "MX_BENCH_THREADS",
        "worker-thread budget for the parallel bench cases (0 = all cores)",
    ),
    (
        "MX_FULL",
        "1 = publication-scale sample sizes in the paper-table binaries",
    ),
    (
        "MX_BENCH_MEASURE_MS",
        "per-benchmark wall-clock budget (ms) for the vendored criterion harness",
    ),
    (
        "MX_SERVE_SHARDS",
        "default registry shard count for the serve_loadgen simulator (each shard owns a queue, dispatcher, and worker pool)",
    ),
    (
        "MX_PLAN",
        "0 / off / false disables compiled execution plans in mx-serve (bit-identical either way; isolates the plan-cache speedup)",
    ),
];

/// Reads a declared knob from the environment, `None` when unset or not
/// valid unicode.
///
/// # Panics
///
/// Debug builds panic when `name` is not declared in [`KNOBS`] — an
/// undeclared knob is a registry bug, and `mx-audit` would flag the string
/// literal at the call site anyway.
///
/// # Examples
///
/// ```
/// // Unset (or set) — either way the read goes through the registry.
/// let _ = mx_core::knobs::raw("MX_KERNEL_BACKEND");
/// ```
pub fn raw(name: &str) -> Option<String> {
    debug_assert!(
        KNOBS.iter().any(|&(n, _)| n == name),
        "undeclared env knob {name:?}: add it to mx_core::knobs::KNOBS"
    );
    #[allow(clippy::disallowed_methods)] // the one sanctioned raw env read
    std::env::var(name).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_well_formed() {
        assert!(!KNOBS.is_empty());
        for (i, &(name, summary)) in KNOBS.iter().enumerate() {
            assert!(name.starts_with("MX_"), "{name} must be MX_-prefixed");
            assert!(
                name[3..]
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c == '_'),
                "{name} must be SCREAMING_SNAKE_CASE"
            );
            assert!(!summary.is_empty(), "{name} needs a summary");
            assert!(
                KNOBS[..i].iter().all(|&(n, _)| n != name),
                "{name} declared twice"
            );
        }
    }

    #[test]
    fn raw_reads_declared_knobs() {
        // Whatever the environment, a declared name must not panic and an
        // unset knob reads as None.
        let _ = raw("MX_FULL");
    }
}
