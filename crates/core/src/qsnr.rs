//! Quantization signal-to-noise ratio (QSNR) — the paper's statistical
//! fidelity metric (Eq. 3) and the Monte-Carlo harness behind Fig. 7.
//!
//! `QSNR = −10·log10( E[‖Q(X) − X‖²] / E[‖X‖²] )` in decibels; higher is
//! better. The paper validates QSNR as a strong predictor of end-to-end
//! model loss in the narrow bit-width regime, which is what licenses the
//! design-space sweep to use it in place of full training runs.

use crate::util::{noise_power, power};
use crate::VectorQuantizer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Samples a standard normal variate via the Box-Muller transform (kept
/// in-crate so the numerics stack has no distribution dependencies).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

/// Data distributions used to stress quantizers.
///
/// The paper's headline sweep uses [`Distribution::NormalVariableVariance`]:
/// `X ~ N(0, σ²)` with `σ = |N(0, 1)|` redrawn per vector, covering the
/// spread of variances seen across weights, activations, gradients, and
/// errors in a training cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// `X ~ N(0, σ²)` with `σ = |N(0,1)|` drawn independently per vector.
    NormalVariableVariance,
    /// Fixed-variance Gaussian.
    Normal {
        /// Standard deviation.
        sigma: f32,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// Log-normal magnitudes with random signs (heavy right tail, models
    /// outlier-prone activations).
    LogNormalSigned {
        /// Shape parameter of the underlying normal.
        sigma: f32,
    },
    /// Laplace (double-exponential), a common fit for weight distributions.
    Laplace {
        /// Scale parameter `b`.
        scale: f32,
    },
}

impl Distribution {
    /// Samples one vector of `len` values.
    pub fn sample_vector<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> Vec<f32> {
        match *self {
            Distribution::NormalVariableVariance => {
                let sigma = standard_normal(rng).abs().max(1e-6);
                (0..len).map(|_| sigma * standard_normal(rng)).collect()
            }
            Distribution::Normal { sigma } => {
                (0..len).map(|_| sigma * standard_normal(rng)).collect()
            }
            Distribution::Uniform { lo, hi } => (0..len).map(|_| rng.gen_range(lo..hi)).collect(),
            Distribution::LogNormalSigned { sigma } => (0..len)
                .map(|_| {
                    let mag = (sigma * standard_normal(rng)).exp();
                    if rng.gen::<bool>() {
                        mag
                    } else {
                        -mag
                    }
                })
                .collect(),
            Distribution::Laplace { scale } => (0..len)
                .map(|_| {
                    let u: f32 = rng.gen_range(-0.5f32..0.5);
                    let u = if u == 0.0 { 1e-9 } else { u };
                    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
                })
                .collect(),
        }
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distribution::NormalVariableVariance => f.write_str("N(0,|N(0,1)|^2)"),
            Distribution::Normal { sigma } => write!(f, "N(0,{sigma}^2)"),
            Distribution::Uniform { lo, hi } => write!(f, "U[{lo},{hi})"),
            Distribution::LogNormalSigned { sigma } => write!(f, "±LogNormal(0,{sigma})"),
            Distribution::Laplace { scale } => write!(f, "Laplace({scale})"),
        }
    }
}

/// Monte-Carlo configuration for [`measure_qsnr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QsnrConfig {
    /// Number of independent vectors.
    pub vectors: usize,
    /// Length of each vector.
    pub vector_len: usize,
    /// RNG seed (experiments are deterministic given the seed).
    pub seed: u64,
}

impl Default for QsnrConfig {
    /// A fast default suitable for tests; the Fig. 7 harness raises
    /// `vectors` to the paper's 10K.
    fn default() -> Self {
        QsnrConfig {
            vectors: 256,
            vector_len: 1024,
            seed: 0x5eed,
        }
    }
}

/// Computes the QSNR of a single quantized/original pair, in dB.
///
/// Returns `f64::INFINITY` for a lossless pair and `f64::NAN` when the
/// signal has no power (all-zero input).
///
/// # Examples
///
/// ```
/// # use mx_core::qsnr::qsnr_db;
/// assert!(qsnr_db(&[1.0, -1.0], &[1.0, -1.0]).is_infinite());
/// let q = qsnr_db(&[1.0, 1.0], &[1.1, 0.9]);
/// assert!((q - 20.0).abs() < 1e-4); // noise power ~0.02 vs signal 2.0
/// ```
pub fn qsnr_db(original: &[f32], quantized: &[f32]) -> f64 {
    let signal = power(original);
    if signal == 0.0 {
        return f64::NAN;
    }
    let noise = noise_power(original, quantized);
    if noise == 0.0 {
        return f64::INFINITY;
    }
    -10.0 * (noise / signal).log10()
}

/// Measures the expected QSNR of `quantizer` over `cfg.vectors` independent
/// vectors from `dist`, as the ratio of expected noise power to expected
/// signal power (matching Eq. 3's `E[·]/E[·]` form).
///
/// Vectors are fed sequentially so that delayed-scaling quantizers build up
/// realistic history; the quantizer is reset first.
pub fn measure_qsnr(
    quantizer: &mut dyn VectorQuantizer,
    dist: Distribution,
    cfg: QsnrConfig,
) -> f64 {
    quantizer.reset();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut signal = 0.0f64;
    let mut noise = 0.0f64;
    for _ in 0..cfg.vectors {
        let x = dist.sample_vector(&mut rng, cfg.vector_len);
        let q = quantizer.quantize_dequantize(&x);
        signal += power(&x);
        noise += noise_power(&x, &q);
    }
    if signal == 0.0 {
        return f64::NAN;
    }
    if noise == 0.0 {
        return f64::INFINITY;
    }
    -10.0 * (noise / signal).log10()
}

/// Per-vector QSNR samples (for variance/robustness analysis rather than the
/// pooled estimate of [`measure_qsnr`]).
pub fn qsnr_samples(
    quantizer: &mut dyn VectorQuantizer,
    dist: Distribution,
    cfg: QsnrConfig,
) -> Vec<f64> {
    quantizer.reset();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.vectors)
        .map(|_| {
            let x = dist.sample_vector(&mut rng, cfg.vector_len);
            let q = quantizer.quantize_dequantize(&x);
            qsnr_db(&x, &q)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdr::{BdrFormat, BdrQuantizer};
    use crate::int_quant::IntQuantizer;
    use crate::scaling::ScaleStrategy;

    #[test]
    fn qsnr_db_basics() {
        assert!(qsnr_db(&[0.0, 0.0], &[0.0, 0.0]).is_nan());
        assert!(qsnr_db(&[1.0], &[1.0]).is_infinite());
        // 10% relative noise on every element -> 20 dB (up to f32 rounding
        // of the inputs themselves).
        let q = qsnr_db(&[2.0, -2.0], &[2.2, -1.8]);
        assert!((q - 20.0).abs() < 1e-4);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = QsnrConfig {
            vectors: 16,
            vector_len: 256,
            seed: 42,
        };
        let mut q1 = BdrQuantizer::new(BdrFormat::MX6);
        let mut q2 = BdrQuantizer::new(BdrFormat::MX6);
        let a = measure_qsnr(&mut q1, Distribution::NormalVariableVariance, cfg);
        let b = measure_qsnr(&mut q2, Distribution::NormalVariableVariance, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn mx9_beats_mx6_beats_mx4() {
        let cfg = QsnrConfig {
            vectors: 64,
            vector_len: 512,
            seed: 7,
        };
        let d = Distribution::NormalVariableVariance;
        let q9 = measure_qsnr(&mut BdrQuantizer::new(BdrFormat::MX9), d, cfg);
        let q6 = measure_qsnr(&mut BdrQuantizer::new(BdrFormat::MX6), d, cfg);
        let q4 = measure_qsnr(&mut BdrQuantizer::new(BdrFormat::MX4), d, cfg);
        assert!(q9 > q6 + 10.0, "MX9 {q9} vs MX6 {q6}");
        assert!(q6 > q4 + 5.0, "MX6 {q6} vs MX4 {q4}");
    }

    #[test]
    fn mantissa_bit_adds_about_6db() {
        // Doubling mantissa resolution adds ~6.02 dB (Theorem 1's slope).
        let cfg = QsnrConfig {
            vectors: 64,
            vector_len: 512,
            seed: 9,
        };
        let d = Distribution::Normal { sigma: 1.0 };
        let m5 = BdrFormat::new(5, 8, 1, 16, 2).unwrap();
        let m6 = BdrFormat::new(6, 8, 1, 16, 2).unwrap();
        let q5 = measure_qsnr(&mut BdrQuantizer::new(m5), d, cfg);
        let q6 = measure_qsnr(&mut BdrQuantizer::new(m6), d, cfg);
        assert!((q6 - q5 - 6.02).abs() < 1.5, "slope {}", q6 - q5);
    }

    #[test]
    fn samples_have_expected_count_and_spread() {
        let cfg = QsnrConfig {
            vectors: 32,
            vector_len: 128,
            seed: 3,
        };
        let mut q = IntQuantizer::new(8, 128, ScaleStrategy::Amax);
        let samples = qsnr_samples(&mut q, Distribution::NormalVariableVariance, cfg);
        assert_eq!(samples.len(), 32);
        assert!(samples.iter().all(|s| s.is_finite() && *s > 10.0));
    }

    #[test]
    fn distributions_sample_reasonable_values() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [
            Distribution::NormalVariableVariance,
            Distribution::Normal { sigma: 2.0 },
            Distribution::Uniform { lo: -1.0, hi: 1.0 },
            Distribution::LogNormalSigned { sigma: 1.0 },
            Distribution::Laplace { scale: 1.0 },
        ] {
            let v = d.sample_vector(&mut rng, 1000);
            assert_eq!(v.len(), 1000);
            assert!(
                v.iter().all(|x| x.is_finite()),
                "{d} produced non-finite values"
            );
            // Each has both signs except pathological draws.
            assert!(
                v.iter().any(|x| *x > 0.0) && v.iter().any(|x| *x < 0.0),
                "{d}"
            );
        }
    }

    #[test]
    fn laplace_heavy_tail_hurts_block_formats_less_with_microexponents() {
        // Sanity: MX6 should still beat MSFP12-ish BFP at equal mantissa
        // under a heavy-tailed distribution.
        let cfg = QsnrConfig {
            vectors: 64,
            vector_len: 512,
            seed: 11,
        };
        let d = Distribution::Laplace { scale: 1.0 };
        let bfp = BdrFormat::new(4, 8, 0, 16, 16).unwrap();
        let qmx = measure_qsnr(&mut BdrQuantizer::new(BdrFormat::MX6), d, cfg);
        let qbfp = measure_qsnr(&mut BdrQuantizer::new(bfp), d, cfg);
        assert!(qmx > qbfp, "MX6 {qmx} vs BFP {qbfp}");
    }
}
