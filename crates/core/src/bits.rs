//! Minimal MSB-first bit stream reader/writer used by the packed MX encoder
//! and the memory-footprint analysis.

/// Append-only bit writer (MSB-first within each byte).
///
/// # Examples
///
/// ```
/// # use mx_core::bits::{BitReader, BitWriter};
/// let mut w = BitWriter::new();
/// w.write(0b101, 3);
/// w.write(0b01, 2);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read(3), Some(0b101));
/// assert_eq!(r.read(2), Some(0b01));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the final partial byte (0 = byte-aligned).
    partial: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits set above `width`.
    pub fn write(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} exceeds u64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            let bit = ((value >> i) & 1) as u8;
            if self.partial == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= bit << (7 - self.partial);
            self.partial = (self.partial + 1) % 8;
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.partial == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.partial as usize
        }
    }

    /// Finishes the stream, returning the underlying bytes (final byte
    /// zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Sequential bit reader over a byte slice (MSB-first).
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits, returning `None` if the stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read(&mut self, width: u32) -> Option<u64> {
        assert!(width <= 64, "width {width} exceeds u64");
        if self.pos + width as usize > self.bytes.len() * 8 {
            return None;
        }
        let mut out = 0u64;
        for _ in 0..width {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | bit as u64;
            self.pos += 1;
        }
        Some(out)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let fields: Vec<(u64, u32)> = vec![
            (0, 1),
            (1, 1),
            (0b1010, 4),
            (0xff, 8),
            (0x1234, 16),
            (7, 3),
            (0, 5),
        ];
        let mut w = BitWriter::new();
        for (v, width) in &fields {
            w.write(*v, *width);
        }
        let total: usize = fields.iter().map(|(_, w)| *w as usize).sum();
        assert_eq!(w.bit_len(), total);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (v, width) in &fields {
            assert_eq!(r.read(*width), Some(*v));
        }
    }

    #[test]
    fn reader_stops_at_end() {
        let mut w = BitWriter::new();
        w.write(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(8), Some(0b1100_0000)); // padded byte readable
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn zero_width_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write(0, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        let mut w = BitWriter::new();
        w.write(8, 3);
    }

    #[test]
    fn sixty_four_bit_values() {
        let mut w = BitWriter::new();
        w.write(u64::MAX, 64);
        w.write(0, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(64), Some(u64::MAX));
        assert_eq!(r.read(64), Some(0));
    }
}
