//! Parameterized scalar floating-point formats (FP8, FP6, FP4, BF16, FP16).
//!
//! Scalar floats are the "per-element sub-scale" end of the BDR design space
//! (Table I of the paper: FP8 is a two-level scheme with `k2 = 1`, the
//! private exponent acting as a power-of-two sub-scale). This module
//! implements bit-exact casting from `f32` into any `ExMy` layout with
//! round-to-nearest-even, gradual underflow (subnormals), and saturating
//! overflow, matching the behaviour of the paper's emulation library.

use crate::error::FormatError;
use crate::util::{exponent_of, pow2, round_half_even};
use std::fmt;

/// How a format spends its top exponent codes on non-finite values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Specials {
    /// No codes reserved: all encodings are finite (OCP-style FP6/FP4).
    None,
    /// IEEE-style: the all-ones exponent is reserved for infinity and NaN
    /// (E5M2, FP16, BF16).
    InfNan,
    /// Only the single all-ones exponent + all-ones mantissa code is NaN,
    /// with no infinity (E4M3 per the FP8 paper).
    NanOnly,
}

/// A scalar floating-point format: sign bit, `exp_bits` exponent bits with
/// the given `bias`, and `man_bits` explicit mantissa bits.
///
/// The struct is plain data; use [`ScalarFormat::new`] for validated custom
/// layouts or the provided constants ([`ScalarFormat::E4M3`] etc.).
///
/// # Examples
///
/// ```
/// # use mx_core::scalar::ScalarFormat;
/// let f = ScalarFormat::E4M3;
/// assert_eq!(f.max_finite(), 448.0);
/// assert_eq!(f.cast(1.06), 1.0);  // nearest representable value (ulp = 1/8)
/// assert_eq!(f.cast(1e6), 448.0); // saturating overflow
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScalarFormat {
    exp_bits: u32,
    man_bits: u32,
    bias: i32,
    specials: Specials,
    name: Option<&'static str>,
}

impl ScalarFormat {
    /// FP8 E4M3 per the FP8-for-deep-learning proposal: bias 7, NaN-only
    /// specials, max finite 448.
    pub const E4M3: Self = Self::preset(4, 3, 7, Specials::NanOnly, "FP8-E4M3");
    /// FP8 E5M2: IEEE-like with inf/NaN, bias 15, max finite 57344.
    pub const E5M2: Self = Self::preset(5, 2, 15, Specials::InfNan, "FP8-E5M2");
    /// FP8 E3M4 (explored in Fig. 7): bias 3, all codes finite.
    pub const E3M4: Self = Self::preset(3, 4, 3, Specials::None, "FP8-E3M4");
    /// FP6 E3M2: bias 3, all codes finite.
    pub const FP6_E3M2: Self = Self::preset(3, 2, 3, Specials::None, "FP6-E3M2");
    /// FP6 E2M3: bias 1, all codes finite.
    pub const FP6_E2M3: Self = Self::preset(2, 3, 1, Specials::None, "FP6-E2M3");
    /// FP4 E2M1: bias 1, all codes finite.
    pub const FP4_E2M1: Self = Self::preset(2, 1, 1, Specials::None, "FP4-E2M1");
    /// FP4 E1M2: bias 0, all codes finite.
    pub const FP4_E1M2: Self = Self::preset(1, 2, 0, Specials::None, "FP4-E1M2");
    /// FP4 E3M0: exponent-only format, bias 3, all codes finite.
    pub const FP4_E3M0: Self = Self::preset(3, 0, 3, Specials::None, "FP4-E3M0");
    /// BFloat16: 8 exponent bits, 7 mantissa bits, IEEE specials.
    pub const BF16: Self = Self::preset(8, 7, 127, Specials::InfNan, "BF16");
    /// IEEE half precision: 5 exponent bits, 10 mantissa bits.
    pub const FP16: Self = Self::preset(5, 10, 15, Specials::InfNan, "FP16");

    const fn preset(
        exp_bits: u32,
        man_bits: u32,
        bias: i32,
        specials: Specials,
        name: &'static str,
    ) -> Self {
        ScalarFormat {
            exp_bits,
            man_bits,
            bias,
            specials,
            name: Some(name),
        }
    }

    /// Creates a custom format with the IEEE-conventional bias
    /// `2^(exp_bits-1) - 1` and no reserved special codes.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidScalarLayout`] when `exp_bits` is zero or
    /// greater than 8, or `man_bits` exceeds 23 (an `f32` mantissa cannot
    /// carry more).
    ///
    /// # Examples
    ///
    /// ```
    /// # use mx_core::scalar::ScalarFormat;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let e2m5 = ScalarFormat::new(2, 5)?;
    /// assert_eq!(e2m5.to_string(), "E2M5");
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(exp_bits: u32, man_bits: u32) -> Result<Self, FormatError> {
        if exp_bits == 0 || exp_bits > 8 || man_bits > 23 {
            return Err(FormatError::InvalidScalarLayout { exp_bits, man_bits });
        }
        let bias = (1i32 << (exp_bits - 1)) - 1;
        Ok(ScalarFormat {
            exp_bits,
            man_bits,
            bias,
            specials: Specials::None,
            name: None,
        })
    }

    /// Exponent field width in bits.
    pub fn exp_bits(&self) -> u32 {
        self.exp_bits
    }

    /// Explicit mantissa field width in bits (excluding the implicit leading
    /// one of normal values).
    pub fn man_bits(&self) -> u32 {
        self.man_bits
    }

    /// Exponent bias.
    pub fn bias(&self) -> i32 {
        self.bias
    }

    /// Special-value policy for the top exponent codes.
    pub fn specials(&self) -> Specials {
        self.specials
    }

    /// Total storage bits per element: sign + exponent + mantissa.
    pub fn total_bits(&self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// Smallest exponent of a normal value, `1 - bias`.
    pub fn min_normal_exp(&self) -> i32 {
        1 - self.bias
    }

    /// Largest exponent usable by finite values.
    pub fn max_exp(&self) -> i32 {
        let top = (1i32 << self.exp_bits) - 1;
        match self.specials {
            Specials::InfNan => top - 1 - self.bias,
            Specials::None | Specials::NanOnly => top - self.bias,
        }
    }

    /// Largest finite representable magnitude.
    pub fn max_finite(&self) -> f32 {
        let max_mantissa = match self.specials {
            // All-ones mantissa at the top exponent is the NaN code, so the
            // largest finite value uses the next mantissa down.
            Specials::NanOnly => {
                if self.man_bits == 0 {
                    // Degenerate: the whole top code would be NaN; treat as no
                    // specials (not used by any preset).
                    1.0
                } else {
                    2.0 - pow2(1 - self.man_bits as i32)
                }
            }
            Specials::None | Specials::InfNan => 2.0 - pow2(-(self.man_bits as i32)),
        };
        (max_mantissa * pow2(self.max_exp())) as f32
    }

    /// Smallest positive normal magnitude, `2^(1 - bias)`.
    pub fn min_normal(&self) -> f32 {
        pow2(self.min_normal_exp()) as f32
    }

    /// Smallest positive subnormal magnitude, `2^(1 - bias - man_bits)`.
    ///
    /// Equals [`Self::min_normal`] for formats with `man_bits == 0`.
    pub fn min_subnormal(&self) -> f32 {
        pow2(self.min_normal_exp() - self.man_bits as i32) as f32
    }

    /// Casts `x` to the nearest representable value of this format using
    /// round-to-nearest-even, with gradual underflow and saturating overflow.
    ///
    /// NaN inputs propagate; infinities saturate to [`Self::max_finite`]
    /// (the convention used when these formats quantize tensors during
    /// training, where generating new infinities is undesirable).
    ///
    /// # Examples
    ///
    /// ```
    /// # use mx_core::scalar::ScalarFormat;
    /// let f = ScalarFormat::E5M2;
    /// assert_eq!(f.cast(3.3), 3.5);
    /// assert_eq!(f.cast(-3.3), -3.5);
    /// assert_eq!(f.cast(0.0), 0.0);
    /// ```
    pub fn cast(&self, x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        if x == 0.0 {
            return x;
        }
        let sign = if x.is_sign_negative() {
            -1.0f64
        } else {
            1.0f64
        };
        if x.is_infinite() {
            return (sign * self.max_finite() as f64) as f32;
        }
        let a = x.abs() as f64;
        let e = exponent_of(x);
        let e_eff = e.max(self.min_normal_exp());
        // One unit in the last place at this exponent.
        let ulp = pow2(e_eff - self.man_bits as i32);
        let q = round_half_even(a / ulp) * ulp;
        let max = self.max_finite() as f64;
        let q = if q > max { max } else { q };
        (sign * q) as f32
    }

    /// Casts every element of `xs`, returning a new vector.
    pub fn cast_slice(&self, xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| self.cast(x)).collect()
    }

    /// Number of distinct finite values this format can represent (counting
    /// signed zero once).
    pub fn finite_value_count(&self) -> u32 {
        let total = 1u32 << (self.exp_bits + self.man_bits + 1);
        let reserved = match self.specials {
            Specials::None => 0,
            Specials::NanOnly => 2,
            Specials::InfNan => 2 << self.man_bits,
        };
        total - reserved - 1 // merge +0 and -0
    }
}

impl fmt::Display for ScalarFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name {
            Some(n) => f.write_str(n),
            None => write!(f, "E{}M{}", self.exp_bits, self.man_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4m3_boundaries() {
        let f = ScalarFormat::E4M3;
        assert_eq!(f.max_finite(), 448.0);
        assert_eq!(f.min_normal(), 2.0f32.powi(-6));
        assert_eq!(f.min_subnormal(), 2.0f32.powi(-9));
        assert_eq!(f.total_bits(), 8);
    }

    #[test]
    fn e5m2_boundaries() {
        let f = ScalarFormat::E5M2;
        assert_eq!(f.max_finite(), 57344.0);
        assert_eq!(f.min_normal(), 2.0f32.powi(-14));
        assert_eq!(f.min_subnormal(), 2.0f32.powi(-16));
    }

    #[test]
    fn fp4_e2m1_full_value_set() {
        // E2M1 (bias 1) should represent exactly 0, 0.5, 1, 1.5, 2, 3, 4, 6.
        let f = ScalarFormat::FP4_E2M1;
        assert_eq!(f.max_finite(), 6.0);
        let expect = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0];
        for v in expect {
            assert_eq!(f.cast(v), v, "value {v} should be exact");
            assert_eq!(f.cast(-v), -v);
        }
        // Midpoints round to even mantissa.
        assert_eq!(f.cast(2.5), 2.0); // tie between 2 and 3 -> even mantissa (2)
        assert_eq!(f.cast(5.0), 4.0); // tie between 4 and 6 -> 4 has even mantissa
        assert_eq!(f.cast(7.0), 6.0); // saturate
    }

    #[test]
    fn e3m0_exponent_only() {
        let f = ScalarFormat::FP4_E3M0;
        // Values are +-2^e for e in -2..=4, plus 0.
        assert_eq!(f.max_finite(), 16.0);
        assert_eq!(f.cast(1.0), 1.0);
        assert_eq!(f.cast(5.0), 4.0);
        assert_eq!(f.cast(6.1), 8.0);
        assert_eq!(f.cast(100.0), 16.0);
        assert_eq!(f.min_normal(), 0.25);
    }

    #[test]
    fn bf16_matches_truncation_grid() {
        let f = ScalarFormat::BF16;
        // BF16 values are f32 values with 16 low bits cleared; RNE cast must
        // land on that grid.
        for &x in &[1.0f32, 3.25, -2.8125, 1e-20, 6.55e4, 123456.0] {
            let y = f.cast(x);
            let bits = y.to_bits();
            assert_eq!(bits & 0xffff, 0, "BF16 cast of {x} left low bits set: {y}");
            // And be within one bf16 ulp.
            let ulp = 2.0f32.powi(exponent_of(x) - 7);
            assert!((y - x).abs() <= ulp * 0.5 + f32::EPSILON, "x={x} y={y}");
        }
    }

    #[test]
    fn fp16_round_trip_of_exact_values() {
        let f = ScalarFormat::FP16;
        for &x in &[1.0f32, 0.5, 1024.0, 0.000061035156, 65504.0] {
            assert_eq!(f.cast(x), x);
        }
        assert_eq!(f.cast(1e9), 65504.0);
    }

    #[test]
    fn subnormal_handling() {
        let f = ScalarFormat::E4M3;
        // min subnormal is 2^-9; half of it rounds to zero (ties-to-even).
        assert_eq!(f.cast(2.0f32.powi(-10)), 0.0);
        // 0.75 * 2^-9 rounds to 2^-9.
        assert_eq!(f.cast(0.75 * 2.0f32.powi(-9)), 2.0f32.powi(-9));
        // 1.5 * 2^-9 is a tie between 2^-9 and 2^-8: 2^-8 has even code.
        assert_eq!(f.cast(1.5 * 2.0f32.powi(-9)), 2.0f32.powi(-8));
    }

    #[test]
    fn cast_is_idempotent() {
        let formats = [
            ScalarFormat::E4M3,
            ScalarFormat::E5M2,
            ScalarFormat::E3M4,
            ScalarFormat::FP6_E3M2,
            ScalarFormat::FP6_E2M3,
            ScalarFormat::FP4_E2M1,
            ScalarFormat::FP4_E1M2,
            ScalarFormat::FP4_E3M0,
        ];
        for f in formats {
            let mut x = -1000.0f32;
            while x < 1000.0 {
                let y = f.cast(x);
                assert_eq!(f.cast(y), y, "{f} not idempotent at {x}");
                x += 13.7;
            }
        }
    }

    #[test]
    fn nan_and_inf_handling() {
        let f = ScalarFormat::E5M2;
        assert!(f.cast(f32::NAN).is_nan());
        assert_eq!(f.cast(f32::INFINITY), f.max_finite());
        assert_eq!(f.cast(f32::NEG_INFINITY), -f.max_finite());
    }

    #[test]
    fn negative_zero_preserved() {
        let f = ScalarFormat::E4M3;
        let y = f.cast(-0.0);
        assert_eq!(y, 0.0);
        assert!(y.is_sign_negative());
    }

    #[test]
    fn finite_value_counts() {
        assert_eq!(ScalarFormat::FP4_E2M1.finite_value_count(), 15);
        // E4M3: 256 codes - 2 NaN - 1 merged zero = 253.
        assert_eq!(ScalarFormat::E4M3.finite_value_count(), 253);
        // E5M2: 256 - 2*4 (inf/nan exponent) - 1 = 247.
        assert_eq!(ScalarFormat::E5M2.finite_value_count(), 247);
    }

    #[test]
    fn new_validates_layout() {
        assert!(ScalarFormat::new(0, 3).is_err());
        assert!(ScalarFormat::new(9, 3).is_err());
        assert!(ScalarFormat::new(4, 24).is_err());
        assert!(ScalarFormat::new(4, 3).is_ok());
    }

    #[test]
    fn display_names() {
        assert_eq!(ScalarFormat::E4M3.to_string(), "FP8-E4M3");
        assert_eq!(ScalarFormat::new(2, 5).unwrap().to_string(), "E2M5");
    }

    #[test]
    fn cast_monotone_nondecreasing() {
        let f = ScalarFormat::FP6_E2M3;
        let mut prev = f.cast(-100.0);
        let mut x = -100.0f32;
        while x < 100.0 {
            let y = f.cast(x);
            assert!(y >= prev, "cast not monotone at {x}: {y} < {prev}");
            prev = y;
            x += 0.37;
        }
    }
}
