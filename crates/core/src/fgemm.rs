//! Cache-blocked FP32 GEMM — the unquantized counterpart of
//! [`crate::gemm`], sharing its row dispatch and worker-grain policy.
//!
//! The seed's `Tensor::matmul` was a naive triple loop: for every output
//! row it streamed the whole of B, the accumulators lived in memory, and
//! the inner axpy was the only source of instruction-level parallelism.
//! This kernel keeps the *exact* accumulation semantics of that loop — per
//! output element the products `a[i,p]·b[p,j]` are rounded to `f32` one at
//! a time and added in ascending `p` order, and zero `a` elements are
//! skipped only when B is entirely finite (the IEEE `0×∞ → NaN` guard) —
//! while reorganizing the work for the cache and the vector units:
//!
//! - the reduction dimension is processed in [`KC`]-row panels of B, so a
//!   `KC × n` slab is touched repeatedly while it is hot;
//! - [`MR`] rows of A are register-tiled per pass: the accumulators stay
//!   in vector registers across the whole K panel and each loaded B
//!   vector is reused `MR` times, instead of one load-add-store round
//!   trip per element;
//! - the column loop runs 16 lanes at a time under AVX2 (8 under the SSE2
//!   x86-64 baseline, plain autovectorizable loops elsewhere), using
//!   separate multiply and add instructions — **never FMA**, which would
//!   skip the per-product rounding and break bit-identity with the scalar
//!   loop;
//! - the zero-skip policy is resolved once per tile (scan the tile's A
//!   panel for zeros; only if one exists, resolve the memoized "is B all
//!   finite" scan) and the kernels are monomorphized over it, so the hot
//!   loops carry no calls and at most one predictable compare.
//!
//! Because only the iteration *shape* changes and not the order of rounded
//! operations per output element, [`matmul`] is bit-identical to the seed
//! triple loop for every input, NaN/∞ cases included — asserted against a
//! reference copy of that loop in the test suite. Row spans are whole rows,
//! so the multi-threaded result is bit-identical to serial as well.

use crate::gemm::{dispatch_rows, gemm_workers};
use std::sync::OnceLock;

/// Reduction-dimension panel: a `KC × n` slab of B (256 KiB of `f32` at
/// `n = 512`) stays cache-resident while [`MR`] rows accumulate over it.
const KC: usize = 128;

/// Rows of A accumulated per register tile: each B vector loaded from the
/// panel is reused this many times from registers.
const MR: usize = 4;

/// Matrix product `A[m,k] × B[k,n]` in plain `f32`, blocked and vectorized,
/// dispatched over `threads` row-span workers (`0` = all cores; spans are
/// whole rows, so the result is bit-identical regardless of thread count).
///
/// Accumulation semantics are exactly the seed triple loop's: per output
/// element, products round to `f32` individually and accumulate in
/// ascending `p` order; zero `a` elements are skipped only when every
/// element of `b` is finite, so `0 × ∞` and `0 × NaN` still propagate NaN.
/// The finiteness scan of B is memoized and deferred until a tile actually
/// contains a zero, so zero-free inputs never pay for it.
///
/// # Panics
///
/// Panics if `a.len() != m·k` or `b.len() != k·n`.
///
/// # Examples
///
/// ```
/// use mx_core::fgemm::matmul;
///
/// let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2×3
/// let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3×2
/// assert_eq!(matmul(&a, &b, 2, 3, 2, 1), vec![58.0, 64.0, 139.0, 154.0]);
/// ```
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, threads: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A is not {m}x{k}");
    assert_eq!(b.len(), k * n, "B is not {k}x{n}");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    // Shared across row-span workers: whichever tile first contains a zero
    // computes the scan, everyone else reuses the answer.
    let rhs_finite_memo: OnceLock<bool> = OnceLock::new();
    let rhs_finite = &|| *rhs_finite_memo.get_or_init(|| b.iter().all(|v| v.is_finite()));
    #[cfg(target_arch = "x86_64")]
    let use_avx2 = std::arch::is_x86_feature_detected!("avx2");
    let workers = gemm_workers(m, n, k, threads);
    dispatch_rows(m, n, workers, &mut out, |r0, rows, part| {
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for i0 in (0..rows).step_by(MR) {
                let mr = MR.min(rows - i0);
                let abase = (r0 + i0) * k;
                let tile = &mut part[i0 * n..][..mr * n];
                // Resolve the zero-skip policy for this tile up front so
                // the kernels stay call-free: skipping only happens when a
                // zero exists in the tile's A panel AND B is all finite
                // (the memoized scan runs at most once per matmul). With
                // `skip == false` the kernels do the adds unconditionally —
                // either there is no zero to skip, or B is non-finite and
                // the seed loop would include the products too.
                // (f32 PartialEq: `contains(&0.0)` also matches -0.0,
                // exactly like the seed's `v == 0.0` test.)
                let has_zero = (0..mr).any(|r| a[abase + r * k + pc..][..kc].contains(&0.0));
                let skip = has_zero && rhs_finite();
                #[cfg(target_arch = "x86_64")]
                {
                    // SAFETY: slice bounds were just established (`tile` is
                    // `mr × n`, A rows `abase .. abase + mr·k` exist, B rows
                    // `pc .. pc + kc` exist), and the AVX2 variant only runs
                    // after `is_x86_feature_detected!` confirmed support.
                    unsafe {
                        match (use_avx2, mr, skip) {
                            (true, 4, true) => {
                                tile_avx2::<4, true>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (true, 4, false) => {
                                tile_avx2::<4, false>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (true, 3, true) => {
                                tile_avx2::<3, true>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (true, 3, false) => {
                                tile_avx2::<3, false>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (true, 2, true) => {
                                tile_avx2::<2, true>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (true, 2, false) => {
                                tile_avx2::<2, false>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (true, _, true) => {
                                tile_avx2::<1, true>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (true, _, false) => {
                                tile_avx2::<1, false>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (false, 4, true) => {
                                tile_sse2::<4, true>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (false, 4, false) => {
                                tile_sse2::<4, false>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (false, 3, true) => {
                                tile_sse2::<3, true>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (false, 3, false) => {
                                tile_sse2::<3, false>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (false, 2, true) => {
                                tile_sse2::<2, true>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (false, 2, false) => {
                                tile_sse2::<2, false>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (false, _, true) => {
                                tile_sse2::<1, true>(a, b, abase, k, n, pc, kc, tile)
                            }
                            (false, _, false) => {
                                tile_sse2::<1, false>(a, b, abase, k, n, pc, kc, tile)
                            }
                        }
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                tile_portable(a, b, abase, mr, k, n, pc, kc, tile, skip);
            }
        }
    });
    out
}

/// The seed's `Tensor::matmul` triple loop, kept verbatim as the canonical
/// bit-identity oracle for [`matmul`]: per output element, one `f32`
/// product and one `f32` add per `p` in ascending order, skipping zero `a`
/// elements only when the memoized scan finds `b` entirely finite. The
/// consistency suites and the `matmul_512` bench baseline all reference
/// this single copy — it is **not** a fast path.
pub fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    let mut rhs_finite: Option<bool> = None;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 && *rhs_finite.get_or_insert_with(|| b.iter().all(|v| v.is_finite())) {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Scalar K-panel accumulation for the columns `jt..n` of one register tile
/// — the ragged tail the vector kernels hand off to. Same per-element
/// order and skip rule as the vector body.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // a GEMM tile is dims + panel + operands
fn tail_cols<const R: usize, const SKIP: bool>(
    a: &[f32],
    b: &[f32],
    abase: usize,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jt: usize,
    out: &mut [f32],
) {
    for j in jt..n {
        for r in 0..R {
            let mut acc = out[r * n + j];
            for p in pc..pc + kc {
                let av = a[abase + r * k + p];
                if SKIP && av == 0.0 {
                    continue;
                }
                acc += av * b[p * n + j];
            }
            out[r * n + j] = acc;
        }
    }
}

/// AVX2 register tile: `R` rows × 16 columns per step (two 8-lane
/// accumulators per row, held in registers across the whole K panel), with
/// an 8-lane step and a scalar loop mopping up the column tail.
///
/// # Safety
///
/// Requires AVX2; `out` must be `R × n`, A must hold rows
/// `abase .. abase + R·k`, and B rows `pc .. pc + kc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // a GEMM tile is dims + panel + operands
unsafe fn tile_avx2<const R: usize, const SKIP: bool>(
    a: &[f32],
    b: &[f32],
    abase: usize,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert!(out.len() == R * n);
    debug_assert!(R >= 1 && abase + (R - 1) * k + pc + kc <= a.len());
    let mut j = 0;
    // Main step: 16 columns, 2·R accumulator registers.
    while j + 16 <= n {
        // SAFETY: `j + 16 ≤ n` keeps every 8-lane load/store at
        // `r·n + j (+8)` inside `out` (`R × n`) and every B load at
        // `p·n + j (+8)` inside rows `pc .. pc + kc` of B (`k × n`);
        // `a.get_unchecked(abase + r·k + p)` is in bounds because A holds
        // rows `abase .. abase + R·k` (debug-asserted above).
        unsafe {
            let mut acc0 = [_mm256_setzero_ps(); R];
            let mut acc1 = [_mm256_setzero_ps(); R];
            for r in 0..R {
                acc0[r] = _mm256_loadu_ps(out.as_ptr().add(r * n + j));
                acc1[r] = _mm256_loadu_ps(out.as_ptr().add(r * n + j + 8));
            }
            for p in pc..pc + kc {
                let vb0 = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                let vb1 = _mm256_loadu_ps(b.as_ptr().add(p * n + j + 8));
                for r in 0..R {
                    let av = *a.get_unchecked(abase + r * k + p);
                    if SKIP && av == 0.0 {
                        continue;
                    }
                    // Separate mul + add: each product rounds to f32
                    // before the accumulate, exactly like the scalar
                    // `acc += a * b`.
                    let va = _mm256_set1_ps(av);
                    acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(va, vb0));
                    acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(va, vb1));
                }
            }
            for r in 0..R {
                _mm256_storeu_ps(out.as_mut_ptr().add(r * n + j), acc0[r]);
                _mm256_storeu_ps(out.as_mut_ptr().add(r * n + j + 8), acc1[r]);
            }
        }
        j += 16;
    }
    // Single-vector step for an 8..16-column remainder.
    while j + 8 <= n {
        // SAFETY: `j + 8 ≤ n` bounds the single 8-lane column group the
        // same way as the 16-column step above.
        unsafe {
            let mut acc = [_mm256_setzero_ps(); R];
            for (r, slot) in acc.iter_mut().enumerate() {
                *slot = _mm256_loadu_ps(out.as_ptr().add(r * n + j));
            }
            for p in pc..pc + kc {
                let vb = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                for (r, slot) in acc.iter_mut().enumerate() {
                    let av = *a.get_unchecked(abase + r * k + p);
                    if SKIP && av == 0.0 {
                        continue;
                    }
                    *slot = _mm256_add_ps(*slot, _mm256_mul_ps(_mm256_set1_ps(av), vb));
                }
            }
            for (r, slot) in acc.iter().enumerate() {
                _mm256_storeu_ps(out.as_mut_ptr().add(r * n + j), *slot);
            }
        }
        j += 8;
    }
    tail_cols::<R, SKIP>(a, b, abase, k, n, pc, kc, j, out);
}

/// SSE2 register tile (`R` rows × 8 columns per step, 4-lane remainder) —
/// the x86-64 baseline, used when AVX2 is not available.
///
/// # Safety
///
/// `out` must be `R × n`, A must hold rows `abase .. abase + R·k`, and B
/// rows `pc .. pc + kc`. (SSE2 itself is part of the x86-64 baseline ABI.)
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)] // a GEMM tile is dims + panel + operands
unsafe fn tile_sse2<const R: usize, const SKIP: bool>(
    a: &[f32],
    b: &[f32],
    abase: usize,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let mut j = 0;
    while j + 8 <= n {
        // SAFETY: `j + 8 ≤ n` keeps every 4-lane load/store at
        // `r·n + j (+4)` inside `out` (`R × n`) and every B load at
        // `p·n + j (+4)` inside rows `pc .. pc + kc` of B (`k × n`);
        // `a.get_unchecked(abase + r·k + p)` is in bounds because A holds
        // rows `abase .. abase + R·k`. SSE2 is x86-64 baseline, so the
        // intrinsics themselves are always available.
        unsafe {
            let mut acc0 = [_mm_setzero_ps(); R];
            let mut acc1 = [_mm_setzero_ps(); R];
            for r in 0..R {
                acc0[r] = _mm_loadu_ps(out.as_ptr().add(r * n + j));
                acc1[r] = _mm_loadu_ps(out.as_ptr().add(r * n + j + 4));
            }
            for p in pc..pc + kc {
                let vb0 = _mm_loadu_ps(b.as_ptr().add(p * n + j));
                let vb1 = _mm_loadu_ps(b.as_ptr().add(p * n + j + 4));
                for r in 0..R {
                    let av = *a.get_unchecked(abase + r * k + p);
                    if SKIP && av == 0.0 {
                        continue;
                    }
                    let va = _mm_set1_ps(av);
                    acc0[r] = _mm_add_ps(acc0[r], _mm_mul_ps(va, vb0));
                    acc1[r] = _mm_add_ps(acc1[r], _mm_mul_ps(va, vb1));
                }
            }
            for r in 0..R {
                _mm_storeu_ps(out.as_mut_ptr().add(r * n + j), acc0[r]);
                _mm_storeu_ps(out.as_mut_ptr().add(r * n + j + 4), acc1[r]);
            }
        }
        j += 8;
    }
    while j + 4 <= n {
        // SAFETY: `j + 4 ≤ n` bounds the single 4-lane column group the
        // same way as the 8-column step above.
        unsafe {
            let mut acc = [_mm_setzero_ps(); R];
            for (r, slot) in acc.iter_mut().enumerate() {
                *slot = _mm_loadu_ps(out.as_ptr().add(r * n + j));
            }
            for p in pc..pc + kc {
                let vb = _mm_loadu_ps(b.as_ptr().add(p * n + j));
                for (r, slot) in acc.iter_mut().enumerate() {
                    let av = *a.get_unchecked(abase + r * k + p);
                    if SKIP && av == 0.0 {
                        continue;
                    }
                    *slot = _mm_add_ps(*slot, _mm_mul_ps(_mm_set1_ps(av), vb));
                }
            }
            for (r, slot) in acc.iter().enumerate() {
                _mm_storeu_ps(out.as_mut_ptr().add(r * n + j), *slot);
            }
        }
        j += 4;
    }
    tail_cols::<R, SKIP>(a, b, abase, k, n, pc, kc, j, out);
}

/// Portable register tile for non-x86 targets: unrolled over `mr` rows with
/// an autovectorizable axpy inner loop, same order and skip rule.
#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)] // a GEMM tile is dims + panel + operands
fn tile_portable(
    a: &[f32],
    b: &[f32],
    abase: usize,
    mr: usize,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    out: &mut [f32],
    skip: bool,
) {
    for p in pc..pc + kc {
        let brow = &b[p * n..][..n];
        for r in 0..mr {
            let av = a[abase + r * k + p];
            if skip && av == 0.0 {
                continue;
            }
            let orow = &mut out[r * n..][..n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical oracle, under its historical test name.
    use naive_matmul as seed_matmul;

    fn ramp(len: usize, salt: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let v =
                    ((i.wrapping_mul(131).wrapping_add(salt * 17) % 257) as f32 - 128.0) * 0.031;
                // Sprinkle exact zeros so the skip path is exercised.
                if i % 11 == salt % 11 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], label: &str) {
        assert_eq!(got.len(), want.len(), "{label}");
        for (i, (x, y)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{label}: bit mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn bit_identical_to_seed_loop_across_shapes() {
        // Tails on every axis: MR row tails, vector-width column tails, and
        // K panels at, below, and beyond the KC boundary.
        for (m, k, n) in [
            (1, 1, 1),
            (1, 3, 5),
            (2, 7, 1),
            (3, 16, 9),
            (4, 128, 8),
            (5, 129, 17),
            (9, 260, 33),
            (4, 31, 4),
            (7, 257, 3),
        ] {
            let a = ramp(m * k, 1 + m);
            let b = ramp(k * n, 2 + n);
            let got = matmul(&a, &b, m, k, n, 1);
            let want = seed_matmul(&a, &b, m, k, n);
            assert_bits_eq(&got, &want, &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn negative_zero_interactions_match_seed() {
        // -0.0 in both operands: the skip rule and sign-of-zero arithmetic
        // must match the seed exactly (skipping a +0.0 product is visible
        // when the accumulator holds -0.0).
        let a = vec![-0.0, 0.0, -1.0, 0.0, -0.0, 2.0, -0.0, -0.0];
        let b = vec![-3.0, -0.0, 0.0, 5.0, -0.0, -0.0, 1.0, -7.0];
        for (m, k, n) in [(2, 4, 2), (4, 2, 4), (1, 8, 1)] {
            let got = matmul(&a, &b, m, k, n, 1);
            let want = seed_matmul(&a, &b, m, k, n);
            assert_bits_eq(&got, &want, &format!("-0.0 {m}x{k}x{n}"));
        }
    }

    #[test]
    fn zero_times_non_finite_propagates_nan() {
        // 0·∞ and 0·NaN must reach the output, exactly as in the seed.
        let a = vec![0.0, 1.0];
        let b = vec![f32::INFINITY, 2.0];
        assert!(matmul(&a, &b, 1, 2, 1, 1)[0].is_nan(), "0 x inf");
        let bn = vec![f32::NAN, 2.0];
        assert!(matmul(&a, &bn, 1, 2, 1, 1)[0].is_nan(), "0 x NaN");
        // Finite rhs takes the skip path and stays exact.
        let bf = vec![3.0, 2.0];
        assert_eq!(matmul(&a, &bf, 1, 2, 1, 1), vec![2.0]);
        // Wide-enough shapes push the non-finite case through the vector
        // kernels too.
        let (m, k, n) = (5, 9, 19);
        let mut bw = ramp(k * n, 3);
        bw[k * n / 2] = f32::NEG_INFINITY;
        let aw = ramp(m * k, 4);
        let got = matmul(&aw, &bw, m, k, n, 1);
        let want = seed_matmul(&aw, &bw, m, k, n);
        for (x, y) in got.iter().zip(want.iter()) {
            assert!(
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let (m, k, n) = (64, 96, 48);
        let a = ramp(m * k, 5);
        let b = ramp(k * n, 6);
        let serial = matmul(&a, &b, m, k, n, 1);
        for threads in [2usize, 3, 7, 0] {
            let par = matmul(&a, &b, m, k, n, threads);
            assert_bits_eq(&par, &serial, &format!("threads={threads}"));
        }
    }

    #[test]
    fn empty_dims() {
        assert_eq!(matmul(&[], &[], 0, 4, 0, 1), Vec::<f32>::new());
        assert_eq!(matmul(&[], &[], 2, 0, 3, 1), vec![0.0; 6]);
        assert_eq!(matmul(&[1.0; 4], &[], 1, 4, 0, 1), Vec::<f32>::new());
    }

    #[test]
    #[should_panic(expected = "A is not")]
    fn dimension_mismatch_panics() {
        let _ = matmul(&[1.0; 5], &[1.0; 6], 2, 3, 2, 1);
    }
}
