//! Packed MX tensors: the storage form of shared-microexponent formats.
//!
//! [`crate::bdr::BdrFormat`] computes *values*; this module commits them to
//! an actual bit stream laid out the way Fig. 4 of the paper draws it —
//! per block: one `d1`-bit shared exponent, `k1/k2` microexponents of `d2`
//! bits, then `k1` elements of (sign, `m`-bit magnitude). The packed form
//! backs the memory-footprint analysis and proves the format is truly
//! self-contained (no hidden FP32 side-channel).

use crate::bdr::BdrFormat;
use crate::engine::QuantEngine;

/// Re-export of the Table II formats for discoverability next to the packed
/// encoder.
pub use crate::bdr::BdrFormat as MxFormat;

/// A tensor encoded in a BDR/MX bit stream.
///
/// # Examples
///
/// ```
/// # use mx_core::mx::MxTensor;
/// # use mx_core::bdr::BdrFormat;
/// let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
/// let packed = MxTensor::encode(BdrFormat::MX6, &x);
/// let restored = packed.decode();
/// // Decoding is exactly the quantize-dequantize grid of the format.
/// assert_eq!(restored, BdrFormat::MX6.quantize_dequantize(&x));
/// // MX6 spends 6 bits/element: 32 elements -> 192 bits -> 24 bytes.
/// assert_eq!(packed.as_bytes().len(), 24);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MxTensor {
    format: BdrFormat,
    len: usize,
    bytes: Vec<u8>,
}

impl MxTensor {
    /// Quantizes `values` into a packed bit stream (serial engine; see
    /// [`MxTensor::encode_with`] for the multi-core path).
    pub fn encode(format: BdrFormat, values: &[f32]) -> Self {
        Self::encode_with(&QuantEngine::new(format), values)
    }

    /// Quantizes `values` into a packed bit stream with a caller-configured
    /// [`QuantEngine`] (e.g. [`QuantEngine::auto`] to encode large tensors
    /// across all cores; the stream is bit-identical either way).
    pub fn encode_with(engine: &QuantEngine, values: &[f32]) -> Self {
        MxTensor {
            format: engine.format(),
            len: values.len(),
            bytes: engine.encode(values),
        }
    }

    /// Decodes the packed stream back to `f32` values.
    pub fn decode(&self) -> Vec<f32> {
        QuantEngine::new(self.format).decode(&self.bytes, self.len)
    }

    /// The format this tensor is packed in.
    pub fn format(&self) -> BdrFormat {
        self.format
    }

    /// Number of encoded elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw packed bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Measured storage bits per element (including the final byte's
    /// padding-free bit count for whole blocks).
    pub fn measured_bits_per_element(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let mut bits = 0usize;
        let mut remaining = self.len;
        while remaining > 0 {
            let block_len = remaining.min(self.format.k1());
            bits += self.format.block_bits(block_len);
            remaining -= block_len;
        }
        bits as f64 / self.len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32) - n as f32 / 2.0) * 0.37)
            .collect()
    }

    #[test]
    fn decode_matches_quantize_dequantize_all_formats() {
        for fmt in [
            BdrFormat::MX4,
            BdrFormat::MX6,
            BdrFormat::MX9,
            BdrFormat::MSFP12,
            BdrFormat::MSFP16,
        ] {
            let x = ramp(64);
            let t = MxTensor::encode(fmt, &x);
            assert_eq!(t.decode(), fmt.quantize_dequantize(&x), "format {fmt}");
        }
    }

    #[test]
    fn packed_size_matches_bit_budget() {
        let x = ramp(256);
        let t = MxTensor::encode(BdrFormat::MX9, &x);
        // 256 elements * 9 bits = 2304 bits = 288 bytes.
        assert_eq!(t.as_bytes().len(), 288);
        assert_eq!(t.measured_bits_per_element(), 9.0);
        let t = MxTensor::encode(BdrFormat::MX4, &x);
        assert_eq!(t.as_bytes().len(), 128);
    }

    #[test]
    fn partial_blocks_round_trip() {
        let fmt = BdrFormat::MX6;
        for n in [1usize, 5, 15, 17, 31, 33] {
            let x = ramp(n);
            let t = MxTensor::encode(fmt, &x);
            assert_eq!(t.len(), n);
            assert_eq!(t.decode(), fmt.quantize_dequantize(&x), "n = {n}");
        }
    }

    #[test]
    fn zero_and_negative_zero_blocks() {
        let fmt = BdrFormat::MX4;
        let x = vec![0.0f32, -0.0, 0.0, 0.0];
        let t = MxTensor::encode(fmt, &x);
        assert_eq!(t.decode(), vec![0.0; 4]);
    }

    #[test]
    fn empty_tensor() {
        let t = MxTensor::encode(BdrFormat::MX9, &[]);
        assert!(t.is_empty());
        assert_eq!(t.decode(), Vec::<f32>::new());
        assert_eq!(t.measured_bits_per_element(), 0.0);
    }

    #[test]
    fn extreme_magnitudes_round_trip() {
        let fmt = BdrFormat::MX9;
        let x = vec![1e30f32, -1e-30, 1.0, -1.0, 1e20, 1e-20, 0.0, 2.5];
        let t = MxTensor::encode(fmt, &x);
        assert_eq!(t.decode(), fmt.quantize_dequantize(&x));
    }

    #[test]
    fn signs_survive_packing() {
        let fmt = BdrFormat::MX6;
        let x = vec![-1.0f32, 1.0, -0.5, 0.5, -0.25, 0.25, -2.0, 2.0];
        let decoded = MxTensor::encode(fmt, &x).decode();
        for (a, b) in x.iter().zip(decoded.iter()) {
            assert_eq!(a.signum(), b.signum(), "{a} vs {b}");
        }
    }
}
