//! Packed MX tensors: the storage form of shared-microexponent formats.
//!
//! [`crate::bdr::BdrFormat`] computes *values*; this module commits them to
//! an actual bit stream laid out the way Fig. 4 of the paper draws it —
//! per block: one `d1`-bit shared exponent, `k1/k2` microexponents of `d2`
//! bits, then `k1` elements of (sign, `m`-bit magnitude). The packed form
//! backs the memory-footprint analysis and proves the format is truly
//! self-contained (no hidden FP32 side-channel).

use crate::bdr::BdrFormat;
use crate::bits::{BitReader, BitWriter};
use crate::util::{pow2, round_half_even};

/// Re-export of the Table II formats for discoverability next to the packed
/// encoder.
pub use crate::bdr::BdrFormat as MxFormat;

/// A tensor encoded in a BDR/MX bit stream.
///
/// # Examples
///
/// ```
/// # use mx_core::mx::MxTensor;
/// # use mx_core::bdr::BdrFormat;
/// let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
/// let packed = MxTensor::encode(BdrFormat::MX6, &x);
/// let restored = packed.decode();
/// // Decoding is exactly the quantize-dequantize grid of the format.
/// assert_eq!(restored, BdrFormat::MX6.quantize_dequantize(&x));
/// // MX6 spends 6 bits/element: 32 elements -> 192 bits -> 24 bytes.
/// assert_eq!(packed.as_bytes().len(), 24);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MxTensor {
    format: BdrFormat,
    len: usize,
    bytes: Vec<u8>,
}

impl MxTensor {
    /// Quantizes `values` into a packed bit stream.
    pub fn encode(format: BdrFormat, values: &[f32]) -> Self {
        let mut w = BitWriter::new();
        let exp_bias = (1i64 << (format.d1() - 1)) - 1;
        let max_code = (1u64 << format.m()) - 1;
        for block in values.chunks(format.k1()) {
            match format.plan_block(block) {
                None => {
                    // All-zero block: exponent code 0, shifts 0, elements 0.
                    w.write(0, format.d1());
                    for _ in block.chunks(format.k2()) {
                        w.write(0, format.d2());
                    }
                    for _ in block {
                        w.write(0, 1 + format.m());
                    }
                }
                Some(plan) => {
                    w.write((plan.shared_exp as i64 + exp_bias) as u64, format.d1());
                    for &shift in &plan.shifts {
                        w.write(shift as u64, format.d2());
                    }
                    for (i, sub) in block.chunks(format.k2()).enumerate() {
                        let eff_exp = plan.shared_exp - plan.shifts[i] as i32;
                        let ulp = pow2(eff_exp - (format.m() as i32 - 1));
                        for &x in sub {
                            let sign = u64::from(x.is_sign_negative());
                            let code = if x == 0.0 {
                                0
                            } else {
                                let c = round_half_even(x.abs() as f64 / ulp) as u64;
                                c.min(max_code)
                            };
                            w.write(sign, 1);
                            w.write(code, format.m());
                        }
                    }
                }
            }
        }
        MxTensor { format, len: values.len(), bytes: w.into_bytes() }
    }

    /// Decodes the packed stream back to `f32` values.
    pub fn decode(&self) -> Vec<f32> {
        let mut r = BitReader::new(&self.bytes);
        let exp_bias = (1i64 << (self.format.d1() - 1)) - 1;
        let mut out = Vec::with_capacity(self.len);
        let mut remaining = self.len;
        while remaining > 0 {
            let block_len = remaining.min(self.format.k1());
            let exp_code = r.read(self.format.d1()).expect("truncated stream") as i64;
            let shared_exp = (exp_code - exp_bias) as i32;
            let sub_blocks = block_len.div_ceil(self.format.k2());
            let shifts: Vec<u32> = (0..sub_blocks)
                .map(|_| r.read(self.format.d2()).expect("truncated stream") as u32)
                .collect();
            for i in 0..block_len {
                let sub = i / self.format.k2();
                let eff_exp = shared_exp - shifts[sub] as i32;
                let ulp = pow2(eff_exp - (self.format.m() as i32 - 1));
                let sign = r.read(1).expect("truncated stream");
                let code = r.read(self.format.m()).expect("truncated stream");
                let mag = (code as f64 * ulp) as f32;
                out.push(if sign == 1 { -mag } else { mag });
            }
            remaining -= block_len;
        }
        out
    }

    /// The format this tensor is packed in.
    pub fn format(&self) -> BdrFormat {
        self.format
    }

    /// Number of encoded elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw packed bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Measured storage bits per element (including the final byte's
    /// padding-free bit count for whole blocks).
    pub fn measured_bits_per_element(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let mut bits = 0usize;
        let mut remaining = self.len;
        while remaining > 0 {
            let block_len = remaining.min(self.format.k1());
            let sub_blocks = block_len.div_ceil(self.format.k2());
            bits += self.format.d1() as usize
                + sub_blocks * self.format.d2() as usize
                + block_len * (1 + self.format.m() as usize);
            remaining -= block_len;
        }
        bits as f64 / self.len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) - n as f32 / 2.0) * 0.37).collect()
    }

    #[test]
    fn decode_matches_quantize_dequantize_all_formats() {
        for fmt in [BdrFormat::MX4, BdrFormat::MX6, BdrFormat::MX9, BdrFormat::MSFP12, BdrFormat::MSFP16]
        {
            let x = ramp(64);
            let t = MxTensor::encode(fmt, &x);
            assert_eq!(t.decode(), fmt.quantize_dequantize(&x), "format {fmt}");
        }
    }

    #[test]
    fn packed_size_matches_bit_budget() {
        let x = ramp(256);
        let t = MxTensor::encode(BdrFormat::MX9, &x);
        // 256 elements * 9 bits = 2304 bits = 288 bytes.
        assert_eq!(t.as_bytes().len(), 288);
        assert_eq!(t.measured_bits_per_element(), 9.0);
        let t = MxTensor::encode(BdrFormat::MX4, &x);
        assert_eq!(t.as_bytes().len(), 128);
    }

    #[test]
    fn partial_blocks_round_trip() {
        let fmt = BdrFormat::MX6;
        for n in [1usize, 5, 15, 17, 31, 33] {
            let x = ramp(n);
            let t = MxTensor::encode(fmt, &x);
            assert_eq!(t.len(), n);
            assert_eq!(t.decode(), fmt.quantize_dequantize(&x), "n = {n}");
        }
    }

    #[test]
    fn zero_and_negative_zero_blocks() {
        let fmt = BdrFormat::MX4;
        let x = vec![0.0f32, -0.0, 0.0, 0.0];
        let t = MxTensor::encode(fmt, &x);
        assert_eq!(t.decode(), vec![0.0; 4]);
    }

    #[test]
    fn empty_tensor() {
        let t = MxTensor::encode(BdrFormat::MX9, &[]);
        assert!(t.is_empty());
        assert_eq!(t.decode(), Vec::<f32>::new());
        assert_eq!(t.measured_bits_per_element(), 0.0);
    }

    #[test]
    fn extreme_magnitudes_round_trip() {
        let fmt = BdrFormat::MX9;
        let x = vec![1e30f32, -1e-30, 1.0, -1.0, 1e20, 1e-20, 0.0, 2.5];
        let t = MxTensor::encode(fmt, &x);
        assert_eq!(t.decode(), fmt.quantize_dequantize(&x));
    }

    #[test]
    fn signs_survive_packing() {
        let fmt = BdrFormat::MX6;
        let x = vec![-1.0f32, 1.0, -0.5, 0.5, -0.25, 0.25, -2.0, 2.0];
        let decoded = MxTensor::encode(fmt, &x).decode();
        for (a, b) in x.iter().zip(decoded.iter()) {
            assert_eq!(a.signum(), b.signum(), "{a} vs {b}");
        }
    }
}
