//! The AVX2 backend: runtime-dispatched kernels for the `i16` code path
//! with the preset block size `k1 = 16`, consuming a **panel-major** B
//! plane: columns grouped into [`PANEL_N`]-wide panels, `[block][lane][k1]`
//! inside each panel, so one panel's entire reduction (`blocks · 8 · k1`
//! codes ≈ 8 KB at the serving shapes) is one contiguous, L1-resident
//! streak and one `vpmaddwd` covers a whole block.
//!
//! The kernel walks each panel [`TILE_ROWS`] rows at a time — the panel's
//! B codes are streamed into L1 once per tile and stay resident across all
//! its rows, so B traffic beyond L1 is one pass over the plane per
//! `TILE_ROWS` output rows. Per (row, panel) one of two column paths runs:
//!
//! - **Deferred scale-out** ([`panel8_deferred`]) — when the
//!   [`DeferCtx`] exactness conditions hold for the row and all 8 columns:
//!   8 register-blocked `i32` accumulators take one `vpmaddwd` + `vpaddd`
//!   per block across **all** K blocks, then a single transpose/reduce and
//!   a single vectorized scale-out finish the 8 outputs. The `hadd` trees
//!   and the per-block-pair scale-out run once per K *reduction* instead
//!   of once per K *block*, and the static headroom bound guarantees the
//!   `i32` lanes cannot overflow.
//! - **Per-block scale-out** ([`panel8_per_block`]) — the exact fallback
//!   for everything else: per block, 8 `vpmaddwd`s, one `hadd`
//!   transpose/reduce, and a 4-lane-wide scale-out accumulated into `f32`
//!   accumulators that stay **in registers** for the whole K loop — the
//!   same rounding chain as the portable kernel, without its per-block
//!   output round trips through memory.
//!
//! Ragged column tails (`n mod 8`, stored as one narrower final panel)
//! take a per-element helper ([`col_one`]). All paths keep the per-output
//! accumulation order and rounding points of the portable kernel, so the
//! backend is bit-identical to [`super::scalar`] — and to
//! `super::reference_gemm` — everywhere.

use super::pack::{PlaneView, MIXED_EXP};
use super::{DeferCtx, PANEL_N};
use crate::util::pow2;
use std::arch::x86_64::*;

/// The preset first-level block size these kernels are specialized for.
pub(super) const K1: usize = 16;

/// Row-tile height: every B panel load is reused for this many output
/// rows, so the whole B plane is re-streamed from L2/L3 only once per
/// `TILE_ROWS` rows. 16 keeps the per-panel working set — the tile's A
/// codes (16 KB at `K = 512`) plus the 8 KB panel — inside L1; taller
/// tiles would halve B re-streams but evict the panel between rows, which
/// measures slower at the serving shapes.
const TILE_ROWS: usize = 16;

/// The AVX2 span kernel ([`super::backend::SpanKernel`] shape).
#[allow(clippy::too_many_arguments)] // the SpanKernel signature: dims + operands + dispatch context
pub(super) fn gemm_span(
    ap: PlaneView<'_, i16>,
    r0: usize,
    rows: usize,
    bp: PlaneView<'_, i16>,
    n: usize,
    c: i32,
    ctx: DeferCtx,
    out: &mut [f32],
) {
    debug_assert!(ap.k1 == K1 && bp.k1 == K1);
    // SAFETY: a panel-major B plane is only built when the backend layer
    // verified AVX2 support at pack time.
    unsafe { gemm_span_avx2(ap, r0, rows, bp, n, c, ctx, out) }
}

/// # Safety
///
/// Requires AVX2 (verified at pack time before a panel-major plane exists).
/// `ap`/`bp` must be consistent planes (`k1 = 16`, codes/exponents sized to
/// `blocks`), `r0 + rows` within the A plane, `n` within the B plane, and
/// `out` at least `rows × n`.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // the SpanKernel signature: dims + operands + dispatch context
unsafe fn gemm_span_avx2(
    ap: PlaneView<'_, i16>,
    r0: usize,
    rows: usize,
    bp: PlaneView<'_, i16>,
    n: usize,
    c: i32,
    ctx: DeferCtx,
    out: &mut [f32],
) {
    let blocks = ap.blocks;
    let n8 = n - n % PANEL_N;
    let mut i0 = 0;
    while i0 < rows {
        let tm = TILE_ROWS.min(rows - i0);
        let mut j = 0;
        while j < n8 {
            // Block-slot base of this panel: the panel's codes start at
            // `pbase·k1` and its per-block exponents at `pbase`, both
            // contiguous for the whole reduction.
            let pbase = j * blocks;
            let panel_defers = |au: i32| {
                au != MIXED_EXP
                    && bp.uexp[j..][..PANEL_N]
                        .iter()
                        .all(|&u| u != MIXED_EXP && (ctx.e_lo..=ctx.e_hi).contains(&(au + u)))
            };
            let mut t = 0;
            while t < tm {
                let row = r0 + i0 + t;
                let au = ap.uexp[row];
                let acodes = &ap.codes[row * blocks * K1..][..blocks * K1];
                let defer = ctx.enabled && panel_defers(au);
                // Pair two deferring rows so each B load feeds both rows'
                // accumulators — the highest-throughput shape.
                if defer && t + 1 < tm {
                    let au1 = ap.uexp[row + 1];
                    if panel_defers(au1) {
                        let acodes1 = &ap.codes[(row + 1) * blocks * K1..][..blocks * K1];
                        let (out0, out1) = out[(i0 + t) * n..][..2 * n].split_at_mut(n);
                        // SAFETY: AVX2 is enabled on this fn; both code
                        // slices are exactly `blocks·K1` lanes, both out
                        // rows are `n` wide, and `j + PANEL_N ≤ n8 ≤ n`
                        // bounds the panel's columns and exponents.
                        unsafe {
                            panel8x2_deferred(acodes, acodes1, au, au1, bp, pbase, j, c, out0, out1)
                        };
                        t += 2;
                        continue;
                    }
                }
                let out_row = &mut out[(i0 + t) * n..][..n];
                if defer {
                    // SAFETY: AVX2 is enabled on this fn; `acodes` is
                    // `blocks·K1` lanes, `out_row` is `n` wide, and
                    // `j + PANEL_N ≤ n8 ≤ n` bounds the panel.
                    unsafe { panel8_deferred(acodes, au, bp, pbase, j, c, out_row) };
                } else {
                    // SAFETY: same bounds as the deferred call; `row` is a
                    // valid A-plane row, so its per-block exponents exist.
                    unsafe { panel8_per_block(acodes, ap, row, bp, pbase, j, c, out_row) };
                }
                t += 1;
            }
            j += PANEL_N;
        }
        if n8 < n {
            // The ragged final panel is `n − n8` columns wide; its codes
            // and exponents are still panel-local contiguous.
            let pbase = n8 * blocks;
            let width = n - n8;
            for t in 0..tm {
                let row = r0 + i0 + t;
                let au = ap.uexp[row];
                let acodes = &ap.codes[row * blocks * K1..][..blocks * K1];
                let out_row = &mut out[(i0 + t) * n..][..n];
                for (lane, slot) in out_row[n8..].iter_mut().enumerate() {
                    // SAFETY: AVX2 is enabled on this fn; `lane < width`
                    // (the iterator covers the `n − n8` tail columns), so
                    // every ragged-panel block slot `pbase + kb·width +
                    // lane` is in bounds of the B plane.
                    unsafe {
                        col_one(
                            acodes,
                            ap,
                            row,
                            au,
                            bp,
                            pbase,
                            width,
                            lane,
                            n8 + lane,
                            c,
                            ctx,
                            slot,
                        )
                    };
                }
            }
        }
        i0 += tm;
    }
}

/// Deferred scale-out for a **pair of rows** against one 8-column panel,
/// both already proven exact: the panel is walked as two 4-column halves,
/// each half accumulating `2 rows × 4 columns` in eight `i32` registers so
/// every B block load feeds two `vpmaddwd`s (6 loads per 8 MACs instead of
/// the single-row path's 9). Same dots, same single scale-out per element,
/// same headroom bound — pairing changes only which registers hold which
/// partial, never a rounding point.
///
/// # Safety
///
/// Requires AVX2. `acodes0`/`acodes1` must each hold `bp.blocks · K1`
/// codes, `out0`/`out1` must each be at least `j + PANEL_N` wide, and the
/// panel at `pbase` (columns `j .. j + PANEL_N`) must exist in `bp`.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // two rows' operands + panel addressing
unsafe fn panel8x2_deferred(
    acodes0: &[i16],
    acodes1: &[i16],
    au0: i32,
    au1: i32,
    bp: PlaneView<'_, i16>,
    pbase: usize,
    j: usize,
    c: i32,
    out0: &mut [f32],
    out1: &mut [f32],
) {
    let blocks = bp.blocks;
    let panel = &bp.codes[pbase * K1..][..blocks * PANEL_N * K1];
    for half in 0..2 {
        let off = half * 4;
        // SAFETY: `off + 4 ≤ PANEL_N`, so the 4-lane exponent load at
        // `uexp[j + off..]` and the 4-lane stores at `out·[j + off..]` are
        // in bounds by this fn's preconditions; `half4x2` and `scale4`
        // inherit AVX2 and receive exactly the slices they require.
        unsafe {
            let (d0, d1) = half4x2(acodes0, acodes1, panel, off, blocks);
            let eb = _mm_loadu_si128(bp.uexp[j + off..].as_ptr() as *const __m128i);
            let e0 = _mm_add_epi32(_mm_set1_epi32(au0 + c), eb);
            let e1 = _mm_add_epi32(_mm_set1_epi32(au1 + c), eb);
            _mm_storeu_ps(out0[j + off..].as_mut_ptr(), scale4(d0, e0));
            _mm_storeu_ps(out1[j + off..].as_mut_ptr(), scale4(d1, e1));
        }
    }
}

/// The 2-row × 4-column accumulation core: integer dots of two A rows
/// against panel columns `off .. off + 4` over the whole reduction,
/// returned as two 4-lane dot vectors (row 0, row 1).
///
/// # Safety
///
/// Requires AVX2. `acodes0`/`acodes1` must each hold `blocks · K1` codes,
/// `panel` must hold `blocks · PANEL_N · K1` codes, and `off + 4 ≤
/// PANEL_N`.
#[target_feature(enable = "avx2")]
unsafe fn half4x2(
    acodes0: &[i16],
    acodes1: &[i16],
    panel: &[i16],
    off: usize,
    blocks: usize,
) -> (__m128i, __m128i) {
    let mut a00 = _mm256_setzero_si256();
    let mut a01 = _mm256_setzero_si256();
    let mut a02 = _mm256_setzero_si256();
    let mut a03 = _mm256_setzero_si256();
    let mut a10 = _mm256_setzero_si256();
    let mut a11 = _mm256_setzero_si256();
    let mut a12 = _mm256_setzero_si256();
    let mut a13 = _mm256_setzero_si256();
    for kb in 0..blocks {
        // SAFETY: each 16-lane load reads `K1 = 16` i16s — the A loads at
        // `kb·K1` (both slices hold `blocks·K1` codes) and the four B
        // column loads at `(kb·PANEL_N + off + 0..4)·K1` (in bounds since
        // `off + 4 ≤ PANEL_N` and `panel` holds `blocks·PANEL_N·K1`).
        unsafe {
            let va0 = _mm256_loadu_si256(acodes0[kb * K1..].as_ptr() as *const __m256i);
            let va1 = _mm256_loadu_si256(acodes1[kb * K1..].as_ptr() as *const __m256i);
            let bptr = panel[(kb * PANEL_N + off) * K1..].as_ptr() as *const __m256i;
            let b0 = _mm256_loadu_si256(bptr);
            let b1 = _mm256_loadu_si256(bptr.add(1));
            let b2 = _mm256_loadu_si256(bptr.add(2));
            let b3 = _mm256_loadu_si256(bptr.add(3));
            a00 = _mm256_add_epi32(a00, _mm256_madd_epi16(va0, b0));
            a01 = _mm256_add_epi32(a01, _mm256_madd_epi16(va0, b1));
            a02 = _mm256_add_epi32(a02, _mm256_madd_epi16(va0, b2));
            a03 = _mm256_add_epi32(a03, _mm256_madd_epi16(va0, b3));
            a10 = _mm256_add_epi32(a10, _mm256_madd_epi16(va1, b0));
            a11 = _mm256_add_epi32(a11, _mm256_madd_epi16(va1, b1));
            a12 = _mm256_add_epi32(a12, _mm256_madd_epi16(va1, b2));
            a13 = _mm256_add_epi32(a13, _mm256_madd_epi16(va1, b3));
        }
    }
    let q0 = _mm256_hadd_epi32(_mm256_hadd_epi32(a00, a01), _mm256_hadd_epi32(a02, a03));
    let d0 = _mm_add_epi32(_mm256_castsi256_si128(q0), _mm256_extracti128_si256(q0, 1));
    let q1 = _mm256_hadd_epi32(_mm256_hadd_epi32(a10, a11), _mm256_hadd_epi32(a12, a13));
    let d1 = _mm_add_epi32(_mm256_castsi256_si128(q1), _mm256_extracti128_si256(q1, 1));
    (d0, d1)
}

/// Deferred scale-out for one (row, 8-column panel) whose exactness is
/// already established: vertical accumulation — one `vpmaddwd` + `vpaddd`
/// per block per column, lanes reduced once at the end. The static
/// headroom bound (`blocks · Dmax ≤ 2²⁴`) caps every `i32` lane partial at
/// 2²¹, so no overflow.
///
/// # Safety
///
/// Requires AVX2. `acodes` must hold `bp.blocks · K1` codes, `out_row`
/// must be at least `j + PANEL_N` wide, and the panel at `pbase` (columns
/// `j .. j + PANEL_N`) must exist in `bp`.
#[target_feature(enable = "avx2")]
unsafe fn panel8_deferred(
    acodes: &[i16],
    au: i32,
    bp: PlaneView<'_, i16>,
    pbase: usize,
    j: usize,
    c: i32,
    out_row: &mut [f32],
) {
    let blocks = bp.blocks;
    let panel = &bp.codes[pbase * K1..][..blocks * PANEL_N * K1];
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let mut acc2 = _mm256_setzero_si256();
    let mut acc3 = _mm256_setzero_si256();
    let mut acc4 = _mm256_setzero_si256();
    let mut acc5 = _mm256_setzero_si256();
    let mut acc6 = _mm256_setzero_si256();
    let mut acc7 = _mm256_setzero_si256();
    for kb in 0..blocks {
        // SAFETY: each 16-lane load reads `K1 = 16` i16s — the A load at
        // `kb·K1` (`acodes` holds `blocks·K1`) and the 8 panel-column
        // loads at `(kb·PANEL_N + 0..8)·K1` (`panel` holds
        // `blocks·PANEL_N·K1`).
        unsafe {
            let va = _mm256_loadu_si256(acodes[kb * K1..].as_ptr() as *const __m256i);
            let bptr = panel[kb * PANEL_N * K1..].as_ptr() as *const __m256i;
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, _mm256_loadu_si256(bptr)));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(1))));
            acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(2))));
            acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(3))));
            acc4 = _mm256_add_epi32(acc4, _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(4))));
            acc5 = _mm256_add_epi32(acc5, _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(5))));
            acc6 = _mm256_add_epi32(acc6, _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(6))));
            acc7 = _mm256_add_epi32(acc7, _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(7))));
        }
    }
    // One transpose/reduce per 8-column group: two hadd rounds + a
    // cross-lane add give [d0..d3], [d4..d7] — exact integer dots,
    // order-insensitive.
    let q0 = _mm256_hadd_epi32(_mm256_hadd_epi32(acc0, acc1), _mm256_hadd_epi32(acc2, acc3));
    let d03 = _mm_add_epi32(_mm256_castsi256_si128(q0), _mm256_extracti128_si256(q0, 1));
    let q1 = _mm256_hadd_epi32(_mm256_hadd_epi32(acc4, acc5), _mm256_hadd_epi32(acc6, acc7));
    let d47 = _mm_add_epi32(_mm256_castsi256_si128(q1), _mm256_extracti128_si256(q1, 1));
    // SAFETY: `j + PANEL_N` bounds both 4-lane exponent loads (`uexp` has
    // one entry per column) and both 4-lane stores into `out_row`, per
    // this fn's preconditions; `scale4` inherits AVX2.
    unsafe {
        let e03 = _mm_add_epi32(
            _mm_set1_epi32(au + c),
            _mm_loadu_si128(bp.uexp[j..].as_ptr() as *const __m128i),
        );
        let e47 = _mm_add_epi32(
            _mm_set1_epi32(au + c),
            _mm_loadu_si128(bp.uexp[j + 4..].as_ptr() as *const __m128i),
        );
        _mm_storeu_ps(out_row[j..].as_mut_ptr(), scale4(d03, e03));
        _mm_storeu_ps(out_row[j + 4..].as_mut_ptr(), scale4(d47, e47));
    }
}

/// Per-block scale-out for one (row, 8-column panel): per block, 8
/// `vpmaddwd`s, one `hadd` transpose/reduce, and the 4-lane-wide scale-out
/// accumulated into two `f32` register accumulators — the portable
/// kernel's rounding chain (one `f32` rounding per block pair, `f32`
/// accumulation in K-block order), with the output round trips through
/// memory hoisted out of the K loop.
///
/// # Safety
///
/// Requires AVX2. `acodes` must hold `ap.blocks · K1` codes, `row` must be
/// a valid row of `ap` (its per-block exponents exist), `out_row` must be
/// at least `j + PANEL_N` wide, and the panel at `pbase` (columns `j .. j
/// + PANEL_N`) must exist in `bp`.
#[allow(clippy::too_many_arguments)] // one row's operands + panel addressing
#[target_feature(enable = "avx2")]
unsafe fn panel8_per_block(
    acodes: &[i16],
    ap: PlaneView<'_, i16>,
    row: usize,
    bp: PlaneView<'_, i16>,
    pbase: usize,
    j: usize,
    c: i32,
    out_row: &mut [f32],
) {
    let blocks = ap.blocks;
    let aexps = &ap.exps[row * blocks..][..blocks];
    let panel = &bp.codes[pbase * K1..][..blocks * PANEL_N * K1];
    let pexps = &bp.exps[pbase..][..blocks * PANEL_N];
    let mut f03 = _mm_setzero_ps();
    let mut f47 = _mm_setzero_ps();
    for kb in 0..blocks {
        // SAFETY: the A load at `kb·K1` and the 8 panel-column loads at
        // `(kb·PANEL_N + 0..8)·K1` read 16 i16s each, in bounds of slices
        // sized `blocks·K1` / `blocks·PANEL_N·K1`; the two 4-lane
        // exponent loads read `pexps[kb·PANEL_N .. kb·PANEL_N + 8]`
        // (`pexps` holds `blocks·PANEL_N`); `scale4` inherits AVX2.
        unsafe {
            let va = _mm256_loadu_si256(acodes[kb * K1..].as_ptr() as *const __m256i);
            let bptr = panel[kb * PANEL_N * K1..].as_ptr() as *const __m256i;
            let m0 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr));
            let m1 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(1)));
            let m2 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(2)));
            let m3 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(3)));
            let m4 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(4)));
            let m5 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(5)));
            let m6 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(6)));
            let m7 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(7)));
            let q0 = _mm256_hadd_epi32(_mm256_hadd_epi32(m0, m1), _mm256_hadd_epi32(m2, m3));
            let d03 = _mm_add_epi32(_mm256_castsi256_si128(q0), _mm256_extracti128_si256(q0, 1));
            let q1 = _mm256_hadd_epi32(_mm256_hadd_epi32(m4, m5), _mm256_hadd_epi32(m6, m7));
            let d47 = _mm_add_epi32(_mm256_castsi256_si128(q1), _mm256_extracti128_si256(q1, 1));
            // Scale-out: 2^(E_a + E_b + c) per lane (panel-major exponents
            // are contiguous per block), times the exact dot, rounded to
            // f32 once per block pair.
            let vea_c = _mm_set1_epi32(aexps[kb] + c);
            let e03 = _mm_add_epi32(
                vea_c,
                _mm_loadu_si128(pexps[kb * PANEL_N..].as_ptr() as *const __m128i),
            );
            let e47 = _mm_add_epi32(
                vea_c,
                _mm_loadu_si128(pexps[kb * PANEL_N + 4..].as_ptr() as *const __m128i),
            );
            f03 = _mm_add_ps(f03, scale4(d03, e03));
            f47 = _mm_add_ps(f47, scale4(d47, e47));
        }
    }
    // SAFETY: `j + PANEL_N` bounds both 4-lane stores into `out_row`.
    unsafe {
        _mm_storeu_ps(out_row[j..].as_mut_ptr(), f03);
        _mm_storeu_ps(out_row[j + 4..].as_mut_ptr(), f47);
    }
}

/// `dots[i] · 2^(es[i])` rounded to `f32` once, 4 lanes wide: the power of
/// two is built as an `f64` bit pattern (`(e + 1023) << 52` — exact; both
/// users keep `e` in normal-`f64` range, the deferred path by the grid
/// window and the per-block path by the format ulp floors), the product is
/// an exact `f64`, and `vcvtpd2ps` performs the one rounding.
///
/// # Safety
///
/// Requires AVX2 (register-only: no memory access, no other precondition).
#[target_feature(enable = "avx2")]
unsafe fn scale4(dots: __m128i, es: __m128i) -> __m128 {
    let bits = _mm256_slli_epi64(
        _mm256_add_epi64(_mm256_cvtepi32_epi64(es), _mm256_set1_epi64x(1023)),
        52,
    );
    _mm256_cvtpd_ps(_mm256_mul_pd(
        _mm256_cvtepi32_pd(dots),
        _mm256_castsi256_pd(bits),
    ))
}

/// One i16 block dot with a whole-block `vpmaddwd` (no SSE2-width split,
/// so the tail path needs no second kernel module).
///
/// # Safety
///
/// Requires AVX2; `a` and `b` must each hold at least `K1 = 16` codes.
#[target_feature(enable = "avx2")]
unsafe fn dot16(a: &[i16], b: &[i16]) -> i32 {
    // SAFETY: both 16-lane loads read exactly `K1 = 16` i16s, in bounds by
    // this fn's precondition.
    let m = unsafe {
        _mm256_madd_epi16(
            _mm256_loadu_si256(a.as_ptr() as *const __m256i),
            _mm256_loadu_si256(b.as_ptr() as *const __m256i),
        )
    };
    let s = _mm_add_epi32(_mm256_castsi256_si128(m), _mm256_extracti128_si256(m, 1));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_01_10_11));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
    _mm_cvtsi128_si32(s)
}

/// One output element against the ragged final panel (`width` columns,
/// block-slot base `pbase`, panel lane `lane`, output column `j`):
/// deferred when its column qualifies, the per-block scale-out chain
/// otherwise.
///
/// # Safety
///
/// Requires AVX2. `acodes` must hold `ap.blocks · K1` codes, `lane <
/// width`, `j` must be a valid B-plane column, and the ragged panel's
/// block slots `pbase + kb·width + lane` must exist in `bp`.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // one output element's full addressing context
unsafe fn col_one(
    acodes: &[i16],
    ap: PlaneView<'_, i16>,
    row: usize,
    au: i32,
    bp: PlaneView<'_, i16>,
    pbase: usize,
    width: usize,
    lane: usize,
    j: usize,
    c: i32,
    ctx: DeferCtx,
    out: &mut f32,
) {
    let blocks = ap.blocks;
    let bu = bp.uexp[j];
    let slot = |kb: usize| pbase + kb * width + lane;
    if ctx.enabled
        && au != MIXED_EXP
        && bu != MIXED_EXP
        && (ctx.e_lo..=ctx.e_hi).contains(&(au + bu))
    {
        let mut total = 0i64;
        for kb in 0..blocks {
            // SAFETY: both operand slices are exactly `K1` codes (the
            // block slot is in bounds by this fn's preconditions) and
            // `dot16` inherits AVX2.
            let d = unsafe { dot16(&acodes[kb * K1..][..K1], &bp.codes[slot(kb) * K1..][..K1]) };
            total += d as i64;
        }
        *out = (total as f64 * pow2(au + bu + c)) as f32;
    } else {
        let aexps = &ap.exps[row * blocks..][..blocks];
        let mut acc = 0.0f32;
        for kb in 0..blocks {
            // SAFETY: same `K1`-sized slices and AVX2 inheritance as the
            // deferred arm above.
            let d = unsafe { dot16(&acodes[kb * K1..][..K1], &bp.codes[slot(kb) * K1..][..K1]) };
            if d != 0 {
                acc += (d as f64 * pow2(aexps[kb] + bp.exps[slot(kb)] + c)) as f32;
            }
        }
        *out = acc;
    }
}
