//! Operand lowering: code planes, the prepack entry points, and the
//! reusable pack scratch.
//!
//! Packing is the only stage of the integer GEMM that reads `f32` data.
//! Every pack in this module lowers blocks through the engine's
//! single-pass strided entry (`engine::lower_block_strided_into` — one
//! branch-light integer scan for the plan, a hoisted reciprocal multiply
//! and branch-free round-to-even per element), the same substitutions the
//! fused path quantizes activation strips with, so prepacked planes and
//! fused strips are bit-identical by construction.
//!
//! While lowering, the packer also records the per-vector **exponent
//! uniformity** metadata ([`PlaneView::uexp`]) the deferred-scale-out
//! decision consumes: for each packed vector, the one shared exponent all
//! its nonzero blocks agree on, or [`MIXED_EXP`] when they differ (all-zero
//! vectors report 0 — their dots vanish, so any grid is correct).

use super::{c_half, pair_class, panel_layout, Code, PairClass, Side, PANEL_N_512};
use crate::bdr::BdrFormat;
use crate::engine;

/// Sentinel for "this vector's nonzero blocks do not share one exponent":
/// deferral is off for every output element the vector touches.
pub(super) const MIXED_EXP: i32 = i32::MIN;

/// One GEMM operand lowered to shift-aligned integer codes: `vectors`
/// reduction-dimension vectors (A rows or B columns), each split into
/// `blocks` `k1`-blocks, zero-padded so every block is exactly `k1` codes.
#[derive(Clone)]
pub(super) struct CodePlane<C> {
    /// Signed, shift-aligned codes `± code · 2^(β − τ)`, laid out
    /// `[vector][block][k1]` — contiguous along the reduction dimension —
    /// or panel-major for the AVX2/AVX-512 panel kernels (see
    /// [`PackedOperand::pack_cols`] and [`panel_slot`]).
    pub(super) codes: Vec<C>,
    /// Shared exponent per `[vector][block]` slot (0 for all-zero blocks,
    /// whose codes are all zero anyway).
    pub(super) exps: Vec<i32>,
    /// Per-vector uniform shared exponent, or [`MIXED_EXP`] — the
    /// deferred-scale-out metadata.
    pub(super) uexp: Vec<i32>,
    pub(super) blocks: usize,
    pub(super) k1: usize,
}

impl<C> CodePlane<C> {
    pub(super) fn view(&self) -> PlaneView<'_, C> {
        PlaneView {
            codes: &self.codes,
            exps: &self.exps,
            uexp: &self.uexp,
            blocks: self.blocks,
            k1: self.k1,
        }
    }
}

/// Borrowed view of a code plane — what the execute kernels actually
/// consume. Owned [`CodePlane`]s (inside a [`PackedOperand`]) and
/// [`PackScratch`]-backed ad-hoc planes both lower to this, so the kernels
/// are oblivious to who owns the buffers.
#[derive(Clone, Copy)]
pub(super) struct PlaneView<'a, C> {
    pub(super) codes: &'a [C],
    pub(super) exps: &'a [i32],
    /// Per-vector uniform exponent or [`MIXED_EXP`].
    pub(super) uexp: &'a [i32],
    pub(super) blocks: usize,
    pub(super) k1: usize,
}

/// Lowers `vectors` strided vectors of `len` elements to aligned codes,
/// writing into caller-provided buffers (cleared and resized; capacity is
/// reused across calls — the point of [`PackScratch`]). Vector `v` reads
/// `data[base_of(v) + i·stride]` — rows use `(|i| i·len, 1)`, columns of a
/// `[len, vectors]` matrix use `(|j| j, vectors)`. `slot_of(v, kb)` picks
/// the storage layout: the generic kernels use vector-major
/// `v·blocks + kb`, the panel kernels consume B packed panel-major (see
/// [`PackedOperand::pack_cols`]). `uexp` receives one entry per vector
/// (see [`MIXED_EXP`]). Returns the block count per vector.
#[allow(clippy::too_many_arguments)] // operand geometry + layout + four buffers
pub(super) fn pack_into<C: Code>(
    data: &[f32],
    vectors: usize,
    len: usize,
    base_of: impl Fn(usize) -> usize,
    stride: usize,
    slot_of: impl Fn(usize, usize) -> usize,
    fmt: &BdrFormat,
    codes: &mut Vec<C>,
    exps: &mut Vec<i32>,
    uexp: &mut Vec<i32>,
    shifts: &mut Vec<u32>,
) -> usize {
    let k1 = fmt.k1();
    let blocks = len.div_ceil(k1);
    codes.clear();
    codes.resize(vectors * blocks * k1, C::ZERO);
    exps.clear();
    exps.resize(vectors * blocks, 0);
    uexp.clear();
    uexp.resize(vectors, 0);
    for (v, u) in uexp.iter_mut().enumerate() {
        let base = base_of(v);
        let mut seen: Option<i32> = None;
        let mut mixed = false;
        for kb in 0..blocks {
            let start = kb * k1;
            let blen = k1.min(len - start);
            let slot = slot_of(v, kb);
            // The single-pass lowering writes all k1 slots (zeroing the
            // ragged tail, and the whole block when it is all-zero).
            if let Some(e) = engine::lower_block_strided_into(
                fmt,
                data,
                base + start * stride,
                stride,
                blen,
                shifts,
                &mut codes[slot * k1..][..k1],
            ) {
                exps[slot] = e;
                match seen {
                    None => seen = Some(e),
                    Some(prev) if prev != e => mixed = true,
                    _ => {}
                }
            }
        }
        *u = if mixed { MIXED_EXP } else { seen.unwrap_or(0) };
    }
    blocks
}

/// Block-slot index of `(column v, block kb)` in a panel-major plane of
/// `vectors` columns × `blocks` blocks with panels `panel_n` columns wide
/// (the last one `vectors mod panel_n` wide). Both the codes (scaled by
/// `k1`) and the per-block exponents use this slot order.
///
/// The AVX2 layout (`panel_n == `[`super::PANEL_N`]) is `[block][lane]`
/// inside each panel, so a panel's exponents for one block are `panel_n`
/// contiguous entries.
///
/// The AVX-512 layout (`panel_n == `[`PANEL_N_512`]) is additionally
/// **chunk-paired**: blocks `2t` and `2t+1` of one lane occupy adjacent
/// slots (`[chunk row t][lane][block parity]`), so with `k1 = 16` one
/// column's two consecutive blocks are 32 contiguous `i16` codes — exactly
/// one 512-bit load in the kernel's K loop. When `blocks` is odd the lone
/// final block falls back to `[block][lane]` order (a compact half-chunk
/// row the kernel reads with a 16-lane masked load); slot count stays
/// exactly `blocks · width` either way.
pub(super) fn panel_slot(
    v: usize,
    kb: usize,
    vectors: usize,
    blocks: usize,
    panel_n: usize,
) -> usize {
    let p = v / panel_n;
    let width = panel_n.min(vectors - p * panel_n);
    let lane = v - p * panel_n;
    let base = p * panel_n * blocks;
    if panel_n == PANEL_N_512 && !(kb == blocks - 1 && blocks % 2 == 1) {
        base + (kb / 2) * (width * 2) + lane * 2 + (kb & 1)
    } else {
        base + kb * width + lane
    }
}

/// [`pack_into`] into freshly allocated buffers, returning an owned plane.
fn pack<C: Code>(
    data: &[f32],
    vectors: usize,
    len: usize,
    base_of: impl Fn(usize) -> usize,
    stride: usize,
    slot_of: impl Fn(usize, usize) -> usize,
    fmt: &BdrFormat,
) -> CodePlane<C> {
    let mut codes = Vec::new();
    let mut exps = Vec::new();
    let mut uexp = Vec::new();
    let mut shifts = Vec::new();
    let blocks = pack_into(
        data,
        vectors,
        len,
        base_of,
        stride,
        slot_of,
        fmt,
        &mut codes,
        &mut exps,
        &mut uexp,
        &mut shifts,
    );
    CodePlane {
        codes,
        exps,
        uexp,
        blocks,
        k1: fmt.k1(),
    }
}

/// The concrete code storage behind a [`PackedOperand`].
#[derive(Clone)]
pub(super) enum Plane {
    /// `i16` codes (narrow pairs — every MX/MSFP preset).
    Narrow(CodePlane<i16>),
    /// `i32` codes (wide custom formats).
    Wide(CodePlane<i32>),
}

/// A GEMM operand lowered **once** to shift-aligned sign/magnitude codes
/// plus per-block shared exponents — the reusable "prepack" half of the
/// prepack/execute split.
///
/// Built by [`PackedOperand::pack_rows`] (A side) or
/// [`PackedOperand::pack_cols`] (B side) against a *partner* format. The
/// codes themselves depend only on the operand's own format; the partner
/// decides the code width (`i16` vs `i32`) and, for the B side, the
/// storage layout (panel-major when the AVX2 kernels will consume it). A
/// plane is therefore executable against any partner format that lands in
/// the same kernel class as the one it was packed for — e.g. a plane
/// packed for an MX6 partner also serves MX9 activations, since every
/// preset pair is narrow — and
/// [`super::quantized_gemm_packed`] returns `None` (rather than silently
/// re-lowering) when the executed pair needs a different code width than
/// the plane holds.
///
/// Packing is the only stage that reads `f32` data; executing a GEMM over
/// two packed operands is pure integer work plus the scale-outs. Weights
/// are static across inference steps, so `mx-nn` caches the weight-side
/// plane and amortizes this cost to zero.
#[derive(Clone)]
pub struct PackedOperand {
    pub(super) side: Side,
    pub(super) fmt: BdrFormat,
    /// Reduction-dimension length `K`.
    pub(super) len: usize,
    /// Number of packed vectors: `M` for a [`Side::Rows`] plane, `N` for a
    /// [`Side::Cols`] plane.
    pub(super) vectors: usize,
    /// Panel width of the codes' layout: 0 for vector-major, else the
    /// columns-per-panel the plane was packed with ([`super::PANEL_N`] for
    /// the AVX2 kernels, [`PANEL_N_512`] chunk-paired for AVX-512 — see
    /// [`panel_slot`]). Execution always follows this recorded width, not
    /// the currently selected backend.
    pub(super) panel_n: usize,
    /// This operand's half of the scale-out constant: `−(m − 1) − β`.
    pub(super) c_half: i32,
    pub(super) plane: Plane,
}

impl std::fmt::Debug for PackedOperand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PackedOperand({:?}, {} x{} vectors, k={}, {}{})",
            self.side,
            self.fmt,
            self.vectors,
            self.len,
            match self.plane {
                Plane::Narrow(_) => "i16",
                Plane::Wide(_) => "i32",
            },
            match self.panel_n {
                0 => String::new(),
                w => format!(", panel-major x{w}"),
            },
        )
    }
}

impl PackedOperand {
    /// Lowers `A[m,k]`'s rows to aligned integer codes for multiplication
    /// against a `fb`-format B operand. Returns `None` when the `(fa, fb)`
    /// pair is unsupported (see [`super::code_domain_supported`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m·k`.
    pub fn pack_rows(a: &[f32], m: usize, k: usize, fa: BdrFormat, fb: BdrFormat) -> Option<Self> {
        let class = pair_class(&fa, &fb)?;
        assert_eq!(a.len(), m * k, "A is not {m}x{k}");
        let blocks = k.div_ceil(fa.k1());
        let plane = match class {
            PairClass::Narrow => Plane::Narrow(pack::<i16>(
                a,
                m,
                k,
                |i| i * k,
                1,
                |v, kb| v * blocks + kb,
                &fa,
            )),
            PairClass::Wide => Plane::Wide(pack::<i32>(
                a,
                m,
                k,
                |i| i * k,
                1,
                |v, kb| v * blocks + kb,
                &fa,
            )),
        };
        Some(PackedOperand {
            side: Side::Rows,
            fmt: fa,
            len: k,
            vectors: m,
            panel_n: 0,
            c_half: c_half(&fa),
            plane,
        })
    }

    /// Lowers `B[k,n]`'s columns to aligned integer codes for multiplication
    /// against `fa`-format activations. Returns `None` when the `(fa, fb)`
    /// pair is unsupported (see [`super::code_domain_supported`]).
    ///
    /// When a narrow panel kernel will consume the plane (the selected
    /// backend — see [`super::kernel_backend_name`] — is a panel backend
    /// and the block size matches), columns are laid out **panel-major**:
    /// columns are grouped into panels of the backend's width
    /// ([`super::PANEL_N`] for AVX2, [`PANEL_N_512`] for AVX-512), and
    /// within a panel the codes are ordered `[block][lane][k1]` (AVX2) or
    /// chunk-paired `[chunk row][lane][block parity][k1]` (AVX-512 — see
    /// [`panel_slot`]) — so one panel's entire reduction
    /// (`blocks · panel_n · k1` codes, ≈ 4–8 KB at the serving shapes) is
    /// a single contiguous, L1-resident streak. The last panel is simply
    /// narrower when `n mod panel_n ≠ 0`. (A plain `[block][column][k1]`
    /// block-major order would put consecutive blocks of one panel `n·k1`
    /// codes apart — a large power-of-two stride at typical layer widths
    /// that aliases the same L1 sets and thrashes the cache.)
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k·n`.
    pub fn pack_cols(b: &[f32], k: usize, n: usize, fa: BdrFormat, fb: BdrFormat) -> Option<Self> {
        let class = pair_class(&fa, &fb)?;
        assert_eq!(b.len(), k * n, "B is not {k}x{n}");
        let blocks = k.div_ceil(fb.k1());
        let panel_n = if class == PairClass::Narrow {
            panel_layout(fb.k1())
        } else {
            0
        };
        let plane = match class {
            PairClass::Narrow => Plane::Narrow(pack::<i16>(
                b,
                n,
                k,
                |j| j,
                n,
                |v, kb| {
                    if panel_n != 0 {
                        panel_slot(v, kb, n, blocks, panel_n)
                    } else {
                        v * blocks + kb
                    }
                },
                &fb,
            )),
            PairClass::Wide => {
                Plane::Wide(pack::<i32>(b, n, k, |j| j, n, |v, kb| v * blocks + kb, &fb))
            }
        };
        Some(PackedOperand {
            side: Side::Cols,
            fmt: fb,
            len: k,
            vectors: n,
            panel_n,
            c_half: c_half(&fb),
            plane,
        })
    }

    /// The operand side this plane packs ([`Side::Rows`] for A,
    /// [`Side::Cols`] for B).
    pub fn side(&self) -> Side {
        self.side
    }

    /// The BDR format the codes were quantized in.
    pub fn format(&self) -> BdrFormat {
        self.fmt
    }

    /// Reduction-dimension length `K`.
    pub fn k(&self) -> usize {
        self.len
    }

    /// Number of packed vectors (`M` rows or `N` columns).
    pub fn vectors(&self) -> usize {
        self.vectors
    }

    /// Bytes of code and exponent storage the plane holds — the memory the
    /// weight cache retains to skip per-call packing.
    pub fn packed_bytes(&self) -> usize {
        match &self.plane {
            Plane::Narrow(p) => {
                std::mem::size_of_val(&p.codes[..]) + std::mem::size_of_val(&p.exps[..])
            }
            Plane::Wide(p) => {
                std::mem::size_of_val(&p.codes[..]) + std::mem::size_of_val(&p.exps[..])
            }
        }
    }
}

/// Reusable buffers for ad-hoc A-side lowering, shared by both activation
/// strategies: the **two-pass** path
/// ([`super::quantized_gemm_twopass_scratch`]) lowers the whole activation
/// plane into the code and exponent vectors, while the **fused** path
/// ([`super::quantized_gemm_fused`]) reuses the same vectors as its
/// tile ring, so a steady-state forward pass allocates nothing for the
/// activation side whichever way the dispatch goes. Narrow and wide widths
/// keep separate buffers, so one scratch serves interleaved format classes
/// without reallocation churn.
///
/// A scratch is plain storage — it carries no format or shape state, so one
/// instance can serve any sequence of GEMMs (`mx-nn` keeps one per thread).
#[derive(Default)]
pub struct PackScratch {
    pub(super) narrow_codes: Vec<i16>,
    pub(super) narrow_exps: Vec<i32>,
    pub(super) wide_codes: Vec<i32>,
    pub(super) wide_exps: Vec<i32>,
    /// Per-vector uniform-exponent metadata (either width's plane).
    pub(super) uexp: Vec<i32>,
    /// Per-block microexponent shift workspace for the engine's planner.
    pub(super) shifts: Vec<u32>,
}

impl PackScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}
