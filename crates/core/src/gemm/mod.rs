//! Integer-domain quantized GEMM fused with the quantization engine, split
//! into a **prepack / execute** architecture with a multi-backend kernel
//! dispatch layer.
//!
//! The point of the paper's Fig. 8 compute flow is that a BDR datapath never
//! multiplies wide floats: each operand element is a narrow sign/magnitude
//! *code*, each `k2`-sub-block carries a microexponent shift, and each
//! `k1`-block carries one shared exponent. A dot product over a block pair
//! is then
//!
//! 1. **shift alignment** — every code is left-shifted by `β − τ` (its
//!    sub-block's headroom under the maximum microexponent shift `β`),
//!    putting all magnitudes of the block on one fixed-point grid;
//! 2. **integer MACs** — the aligned codes multiply and accumulate in plain
//!    integer arithmetic (`i64` here, `i32` when the format pair is narrow
//!    enough to never overflow);
//! 3. **shared exponent add + scale-out** — the block-pair total `T` is
//!    an exact integer in units of `2^(E_a + E_b + c)`, where `E_a`/`E_b`
//!    are the two shared exponents and
//!    `c = −(m_a − 1) − β_a − (m_b − 1) − β_b` accounts for the mantissa
//!    binary points and the alignment shifts; an `f32` scale-out converts
//!    integer totals back to floats — once per block pair in the baseline
//!    kernels, and once per whole K reduction where **deferred scale-out**
//!    proves that exact (see below).
//!
//! # Prepack / execute
//!
//! Lowering an operand to shift-aligned codes (the *pack*) is the only part
//! of the pipeline that touches `f32` data — it runs the engine's block plan
//! and rounding rule per element. For inference the weight operand is
//! static, so that cost is pure waste when paid per call. The module
//! therefore separates the two stages:
//!
//! - [`PackedOperand::pack_rows`] / [`PackedOperand::pack_cols`] lower an
//!   operand **once** to a reusable code plane (through the engine's
//!   single-pass block lowering — the same plan and rounding rule as
//!   [`crate::engine::QuantEngine::quantize_block_codes`]);
//! - [`quantized_gemm_prepacked`] multiplies fresh activations against a
//!   prepacked weight plane, packing only the A side;
//! - [`quantized_gemm_packed`] executes over two prepacked planes — the
//!   pure integer GEMM with zero packing cost;
//! - [`quantized_gemm`] is a thin wrapper that packs both sides ad hoc
//!   (the PR 2 behavior, bit-identical then and now).
//!
//! `mx-nn` caches the weight-side [`PackedOperand`] on the tensor itself
//! (keyed by format pair and invalidated through a generation counter on
//! the tensor's data), so repeated forward passes skip B-side lowering
//! entirely — see `mx_nn::qflow` for the invalidation contract. The
//! `inference_steady_state` bench group measures the amortization.
//!
//! # Kernel backends
//!
//! The execute stage runs on one of four interchangeable **backends** —
//! portable scalar, SSE2, AVX2, and AVX-512, each its own submodule behind
//! the span-kernel function-pointer seam in [`backend`] (where the full
//! dispatch contract is documented). Selection is automatic (best the CPU
//! supports), overridable with the `MX_KERNEL_BACKEND` env knob or
//! [`force_kernel_backend`], and reported by [`kernel_backend_name`].
//! Backends differ only in traversal and ISA — every one is bit-identical
//! to the others and to [`reference_gemm`], so the choice is a pure
//! performance knob.
//!
//! The panel backends (generation-2 AVX2, generation-3 AVX-512)
//! additionally apply **deferred scale-out**: where the block-plan
//! exponent metadata proves the per-block `f32` accumulation chain exact
//! (see [`backend::defer_ctx`] for the headroom invariant), the integer
//! dots of all K blocks accumulate in registers and the scale-out runs
//! once per output element instead of once per block pair. The invariant
//! is lane-width independent — the `blocks · Dmax ≤ 2²⁴` bound protects
//! the `f32` mantissa, not any SIMD register — so widening from AVX2's
//! 8-lane to AVX-512's 16-lane `i32` accumulation (and to VNNI's fused
//! multiply-add) only *loosens* each lane's integer headroom
//! (`defer_ctx` documents the per-backend derivation). Elements that
//! cannot be proven exact fall back to the per-block chain — deferral
//! never changes results, and `MX_KERNEL_DEFER=0` (or
//! [`force_deferred_scale_out`]) switches it off wholesale for A/B
//! measurement.
//!
//! # Fused activation lowering (pack-on-the-fly) and the dispatch contract
//!
//! With B amortized, the remaining per-call quantization cost is the A
//! (activation) side. Two ways to pay it:
//!
//! - **two-pass** ([`quantized_gemm_twopass_scratch`]) — lower all of A to
//!   a code plane first, then execute over the two planes. One sweep of
//!   `f32` work, one sweep of integer work; the A plane is materialized in
//!   full between them.
//! - **fused** ([`quantized_gemm_fused`]) — quantize A one
//!   [`FUSED_MAX_M`]-row strip at a time *inside* the execute loop, through the engine's
//!   tile-granular block-lowering entry, into a small scratch tile ring
//!   that is consumed immediately by the same kernels. The strip's codes
//!   never leave L1, the full A plane is never materialized, and the
//!   per-sub-block ulp reciprocal is hoisted out of the element loop —
//!   this is the paper's Fig. 8 compute flow, where quantization is a
//!   pipeline stage of the consuming dot-product datapath rather than a
//!   separate kernel.
//!
//! [`quantized_gemm_prepacked_scratch`] (and therefore
//! [`quantized_gemm_prepacked`], `mx-nn`'s `quantized_matmul_ab`, and the
//! whole `mx-serve` batch path) is the **single shape-aware dispatch
//! point**: serving-shaped calls (`m ≤` [`FUSED_MAX_M`] rows) take the
//! fused path, larger (training-shaped) calls keep the two-pass prepack,
//! whose single long `f32` sweep streams A once instead of interleaving
//! float and integer phases per tile. Both paths run the identical block
//! plan, rounding rule, kernels, and accumulation order, so the choice is
//! **bit-invisible**: fused == two-pass == [`reference_gemm`] bit for bit
//! for every supported format pair (`tests/gemm_fused.rs` proves it across
//! presets, ragged K, degenerate shapes, and thread counts). The format
//! gate itself stays [`pair_class`]-driven exactly as before; the shape
//! gate only picks *how* A is lowered, never *whether* the code domain
//! applies.
//!
//! # Exactness
//!
//! For every supported format pair (see [`code_domain_supported`]) the
//! integer path is **bit-identical** to the quantize → dequantize → `f32`
//! matmul reference ([`reference_gemm`]): dequantized values are exact
//! integer multiples of their block's ulp, block-pair products and sums fit
//! in the 52-bit exact-integer range of `f64`, and both paths round once
//! per block pair before accumulating in `f32` in the same K-block order —
//! with deferred scale-out applied only where that chain provably never
//! rounds at all. This is an equality, not a tolerance — the consistency
//! and `gemm_backends` suites assert it bit for bit, prepacked or not, on
//! every backend.
//!
//! # Examples
//!
//! ```
//! use mx_core::bdr::BdrFormat;
//! use mx_core::gemm::{quantized_gemm, quantized_gemm_prepacked, PackedOperand};
//!
//! let fmt = BdrFormat::MX6;
//! let b: Vec<f32> = (0..32 * 3).map(|i| (i as f32 * 0.13).cos()).collect();
//! // Pack the static operand once ...
//! let pb = PackedOperand::pack_cols(&b, 32, 3, fmt, fmt).unwrap();
//! // ... and reuse it across calls with fresh activations.
//! for step in 0..3 {
//!     let a: Vec<f32> = (0..2 * 32).map(|i| ((i + step) as f32 * 0.17).sin()).collect();
//!     let y = quantized_gemm_prepacked(&a, 2, fmt, &pb, 1).unwrap();
//!     assert_eq!(y, quantized_gemm(&a, &b, 2, 32, 3, fmt, fmt, 1).unwrap());
//! }
//! ```

use crate::bdr::BdrFormat;
use crate::engine::{self, QuantEngine, PARALLEL_GRAIN};
use crate::parallel;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
pub mod backend;
mod pack;
mod scalar;
#[cfg(target_arch = "x86_64")]
mod sse2;

pub use backend::{
    deferred_scale_out_enabled, force_deferred_scale_out, force_kernel_backend, force_vnni,
    kernel_backend_name, selected_backend, BackendUnavailable, KernelBackend,
};
pub use pack::{PackScratch, PackedOperand};

use backend::SpanKernel;
use pack::{pack_into, Plane, PlaneView, MIXED_EXP};

/// Rows of A processed per tile: each loaded B column-block is reused for
/// this many output rows, cutting B-code traffic by the tile height.
const TILE_M: usize = 8;

/// Columns per register-blocked panel in the panel-major B layout the AVX2
/// kernels consume (see [`PackedOperand::pack_cols`]): one panel's codes
/// for the whole reduction are contiguous, and 8 columns is what fits in
/// `i32` accumulator registers with room for the operands.
const PANEL_N: usize = 8;

/// Columns per panel in the chunk-paired panel-major B layout the AVX-512
/// kernel consumes. Four columns — half the AVX2 width — because the
/// kernel's depth doubled instead: each column's step is a 32-code chunk
/// (two `k1`-blocks in one 512-bit load), and a 4-column panel is
/// exactly what a 4-row group's 16 `zmm` accumulators cover while the
/// panel's codes stream strictly sequentially (a wider panel would be
/// walked in strided column-group passes, which measurably starves the
/// prefetcher). Doubles as the layout tag in `PackedOperand::panel_n`
/// (see [`pack::panel_slot`] for the slot order).
const PANEL_N_512: usize = 4;

/// How a supported format pair runs on the integer path: `Narrow` pairs use
/// `i16` codes with an `i32` block accumulator (the packed 16-bit MAC
/// datapath), `Wide` pairs fall back to `i32` codes with an `i64`
/// accumulator. This classification — together with the `None` rejection in
/// [`pair_class`] — is the **single** gate deciding between the code-domain
/// kernels and the dequantize fallback; every dispatch and packing decision
/// derives from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairClass {
    Narrow,
    Wide,
}

/// The one place exotic-format fallback is decided. Returns the kernel
/// class for a supported `(fa, fb)` pair, or `None` when the pair must take
/// the dequantize path. Requirements for support:
///
/// - matching first-level block size (`k1`), so A-row and B-column blocks
///   tile the reduction dimension identically;
/// - per operand, `m + β ≤ 30`: shift-aligned codes fit an `i32`;
/// - `(m_a + β_a) + (m_b + β_b) + ⌈log2 k1⌉ ≤ 52`: block-pair dot products
///   accumulate without `i64` overflow *and* convert to `f64` exactly;
/// - per operand, the smallest representable ulp stays at or above `2^-149`,
///   so dequantized values are exact `f32`s and the dequantize reference
///   sees the same numbers the codes encode.
fn pair_class(fa: &BdrFormat, fb: &BdrFormat) -> Option<PairClass> {
    if fa.k1() != fb.k1() {
        return None;
    }
    let wa = fa.m() + fa.max_shift();
    let wb = fb.m() + fb.max_shift();
    if wa > 30 || wb > 30 {
        return None;
    }
    if wa + wb + ceil_log2(fa.k1()) > 52 {
        return None;
    }
    if !exact_dequantize(fa) || !exact_dequantize(fb) {
        return None;
    }
    if wa <= 15 && wb <= 15 && wa + wb + ceil_log2(fa.k1()) <= 31 {
        Some(PairClass::Narrow)
    } else {
        Some(PairClass::Wide)
    }
}

/// Whether the `(fa, fb)` operand pair can run on the integer code-domain
/// path with an exactness guarantee (see [`pair_class`]'s requirement list;
/// this is its boolean view).
///
/// Every preset in the repository (MX4/MX6/MX9, MSFP12/MSFP16) qualifies;
/// exotic custom formats fall back to the dequantize path.
///
/// # Examples
///
/// ```
/// use mx_core::bdr::BdrFormat;
/// use mx_core::gemm::code_domain_supported;
///
/// // All MX/MSFP presets qualify, in any combination.
/// assert!(code_domain_supported(&BdrFormat::MX6, &BdrFormat::MX9));
/// assert!(code_domain_supported(&BdrFormat::MSFP12, &BdrFormat::MX4));
/// // Mismatched block sizes cannot tile K identically: rejected.
/// let k32 = BdrFormat::new(4, 8, 1, 32, 2).unwrap();
/// assert!(!code_domain_supported(&BdrFormat::MX6, &k32));
/// ```
pub fn code_domain_supported(fa: &BdrFormat, fb: &BdrFormat) -> bool {
    pair_class(fa, fb).is_some()
}

/// The format's smallest ulp (`2^(E_min − β − (m − 1))`) is representable in
/// `f32` subnormal space, so every code dequantizes to an exact `f32`.
fn exact_dequantize(fmt: &BdrFormat) -> bool {
    fmt.min_shared_exp() - fmt.max_shift() as i32 - (fmt.m() as i32 - 1) >= -149
}

fn ceil_log2(n: usize) -> u32 {
    debug_assert!(n > 0);
    usize::BITS - (n - 1).leading_zeros()
}

/// This operand's half of the scale-out constant `c`: `−(m − 1) − β`.
fn c_half(fmt: &BdrFormat) -> i32 {
    -((fmt.m() as i32 - 1) + fmt.max_shift() as i32)
}

/// Storage type for shift-aligned signed codes. Narrow format pairs (every
/// MX/MSFP preset) use `i16`, whose widening multiply-accumulate maps onto
/// the CPU's packed 16-bit MAC instructions; wide pairs fall back to `i32`
/// codes with an `i64` accumulator. The storage width itself (and the
/// lossless narrowing from aligned `i32` codes, guaranteed to fit by the
/// [`pair_class`] width gates) lives in [`engine::AlignedCode`], which the
/// engine's tile-granular lowering writes directly.
trait Code: engine::AlignedCode {
    /// Exact integer dot product of two equal-length blocks, using the
    /// best baseline-ISA instruction available.
    fn dot(a: &[Self], b: &[Self]) -> i64;

    /// Exact integer dot product in pure portable Rust — what the forced
    /// `scalar` backend runs.
    fn dot_scalar(a: &[Self], b: &[Self]) -> i64;
}

impl Code for i16 {
    #[inline(always)]
    fn dot(a: &[Self], b: &[Self]) -> i64 {
        // `pmaddwd` (SSE2, part of the x86-64 baseline ABI) is the exact
        // hardware form of this datapath: packed 16-bit multiplies with
        // pairwise 32-bit accumulation — one instruction per 8 codes.
        #[cfg(target_arch = "x86_64")]
        {
            sse2::dot(a, b) as i64
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self::dot_scalar(a, b)
        }
    }

    #[inline(always)]
    fn dot_scalar(a: &[Self], b: &[Self]) -> i64 {
        // The i32 accumulator cannot overflow: pairwise i16 products are
        // below 2^31 because `w_a + w_b ≤ 30`, and the block total is
        // bounded by the `w_a + w_b + ⌈log2 k1⌉ ≤ 31` dispatch gate.
        let mut acc = 0i32;
        for (&x, &y) in a.iter().zip(b.iter()) {
            acc += i32::from(x) * i32::from(y);
        }
        acc as i64
    }
}

impl Code for i32 {
    #[inline(always)]
    fn dot(a: &[Self], b: &[Self]) -> i64 {
        let mut acc = 0i64;
        for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
            let mut lane = 0i64;
            for e in 0..8 {
                lane += i64::from(ca[e]) * i64::from(cb[e]);
            }
            acc += lane;
        }
        let (ra, rb) = (a.chunks_exact(8).remainder(), b.chunks_exact(8).remainder());
        for (&x, &y) in ra.iter().zip(rb.iter()) {
            acc += i64::from(x) * i64::from(y);
        }
        acc
    }

    #[inline(always)]
    fn dot_scalar(a: &[Self], b: &[Self]) -> i64 {
        Self::dot(a, b)
    }
}

/// Which GEMM operand a [`PackedOperand`] holds: A packs its **rows** along
/// the reduction dimension, B packs its **columns**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left operand `A[M,K]`, one code vector per row.
    Rows,
    /// The right operand `B[K,N]`, one code vector per column.
    Cols,
}

/// Per-GEMM deferred-scale-out context, built by [`backend::defer_ctx`]
/// (which documents the exactness invariant): whether the static headroom
/// bound holds for this format pair and block count, and the exponent grid
/// window an output element's `E_a + E_b` must land in to defer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeferCtx {
    pub(crate) enabled: bool,
    pub(crate) e_lo: i32,
    pub(crate) e_hi: i32,
}

/// Panel width a B-side pack of this block size should use under the
/// currently selected backend: [`PANEL_N_512`] for the AVX-512 kernel,
/// [`PANEL_N`] for AVX2, `0` (vector-major) otherwise — each panel layout
/// exists only for the backend whose kernels consume it.
#[cfg(target_arch = "x86_64")]
fn panel_layout(k1: usize) -> usize {
    match selected_backend() {
        KernelBackend::Avx512 if k1 == avx512::K1 => PANEL_N_512,
        KernelBackend::Avx2 if k1 == avx2::K1 => PANEL_N,
        _ => 0,
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn panel_layout(_k1: usize) -> usize {
    0
}

/// Runs `kernel(start_row, rows, out_span)` over row spans, serially or on
/// `workers` threads; spans are whole rows, so the output is bit-identical
/// either way. Shared with the blocked FP32 kernel in [`crate::fgemm`].
pub(crate) fn dispatch_rows(
    m: usize,
    n: usize,
    workers: usize,
    out: &mut Vec<f32>,
    kernel: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    if workers <= 1 {
        kernel(0, m, out);
    } else {
        let rows_per = m.div_ceil(workers);
        let spans: Vec<(usize, usize)> = (0..m.div_ceil(rows_per))
            .map(|w| (w * rows_per, rows_per.min(m - w * rows_per)))
            .collect();
        let parts = parallel::map(&spans, workers, |&(start, rows)| {
            let mut part = vec![0.0f32; rows * n];
            kernel(start, rows, &mut part);
            part
        });
        out.clear();
        for part in parts {
            out.extend_from_slice(&part);
        }
    }
}

/// Worker count for an `m × n × k` GEMM under a `threads` budget (`0` = all
/// cores): the same grain policy as the engine's kernels — every worker
/// must receive at least [`PARALLEL_GRAIN`] multiply-accumulates, so a
/// small layer never pays scoped-thread spawn cost for microseconds of
/// work. Shared with [`crate::fgemm`].
pub(crate) fn gemm_workers(m: usize, n: usize, k: usize, threads: usize) -> usize {
    let threads = if threads == 0 {
        parallel::default_threads()
    } else {
        threads
    };
    let macs = m.saturating_mul(n).saturating_mul(k);
    if threads <= 1 || macs < 2 * PARALLEL_GRAIN {
        1
    } else {
        threads.min(m).min(macs / PARALLEL_GRAIN).max(1)
    }
}

/// Executes the integer GEMM over two prepacked operands — the pure
/// "execute" half of the split, with zero packing cost.
///
/// Returns `None` (rather than silently repacking) when the operands are
/// not executable together: `pa` must be a [`Side::Rows`] plane and `pb` a
/// [`Side::Cols`] plane over the same reduction length, their format pair
/// must pass [`code_domain_supported`], and both planes must hold the code
/// width that pair requires (which they do whenever each was packed for a
/// partner in the same kernel class — see [`PackedOperand`]).
///
/// `threads` follows [`quantized_gemm`]'s convention (`0` = all cores; the
/// row split is block-aligned, so the result is bit-identical regardless of
/// thread count).
pub fn quantized_gemm_packed(
    pa: &PackedOperand,
    pb: &PackedOperand,
    threads: usize,
) -> Option<Vec<f32>> {
    if pa.side != Side::Rows || pb.side != Side::Cols || pa.len != pb.len {
        return None;
    }
    let class = pair_class(&pa.fmt, &pb.fmt)?;
    let views = match (&pa.plane, &pb.plane) {
        (Plane::Narrow(ap), Plane::Narrow(bp)) => PairViews::Narrow(ap.view(), bp.view()),
        (Plane::Wide(ap), Plane::Wide(bp)) => PairViews::Wide(ap.view(), bp.view()),
        // The executed pair holds mismatched code widths (each side packed
        // for a partner in a different kernel class); callers fall back
        // rather than silently re-lowering.
        _ => return None,
    };
    let c = pa.c_half + pb.c_half;
    let ctx = backend::defer_ctx(&pa.fmt, &pb.fmt, blocks_of(pa.len, &pa.fmt), c);
    execute(
        views, pb.panel_n, class, pa.vectors, pb.vectors, pa.len, c, ctx, threads,
    )
}

/// A matched pair of A/B plane views sharing one code width.
enum PairViews<'a> {
    Narrow(PlaneView<'a, i16>, PlaneView<'a, i16>),
    Wide(PlaneView<'a, i32>, PlaneView<'a, i32>),
}

/// The shared execute stage: runs the integer GEMM over two already-lowered
/// planes on the backend the dispatch layer selects. Returns `None` when
/// the planes' code width disagrees with what `class` requires (packed for
/// a partner in the other kernel class).
#[allow(clippy::too_many_arguments)] // a GEMM is dims + operands + dispatch knobs
fn execute(
    views: PairViews<'_>,
    b_panel_n: usize,
    class: PairClass,
    m: usize,
    n: usize,
    k: usize,
    c: i32,
    ctx: DeferCtx,
    threads: usize,
) -> Option<Vec<f32>> {
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 || k == 0 {
        return Some(out);
    }
    let workers = gemm_workers(m, n, k, threads);
    match views {
        PairViews::Narrow(ap, bp) if class == PairClass::Narrow => {
            let kernel = backend::narrow_span_kernel(b_panel_n);
            dispatch_rows(m, n, workers, &mut out, |start, rows, part| {
                kernel(ap, start, rows, bp, n, c, ctx, part);
            });
        }
        PairViews::Wide(ap, bp) if class == PairClass::Wide => {
            let kernel = backend::wide_span_kernel();
            dispatch_rows(m, n, workers, &mut out, |start, rows, part| {
                kernel(ap, start, rows, bp, n, c, ctx, part);
            });
        }
        _ => return None,
    }
    Some(out)
}

/// Largest `M` (activation rows) the automatic dispatch in
/// [`quantized_gemm_prepacked_scratch`] routes to the fused
/// pack-on-the-fly path. Serving shapes — autoregressive decode (`m = 1`)
/// up to coalesced micro-batches (`m = 32`) — quantize their activation
/// strips inside the execute loop; larger training-shaped GEMMs keep the
/// two-pass prepack, whose single long `f32` sweep streams A once instead
/// of interleaving float and integer phases per tile.
pub const FUSED_MAX_M: usize = 32;

/// The fused inner loop over one span of output rows `r0 .. r0 + rows`:
/// for each strip of up to [`FUSED_MAX_M`] rows, lower the strip's A rows
/// block by block through [`engine::lower_block_into`] into the scratch
/// tile ring (`codes` / `exps` / `uexp`, reused across strips), then
/// execute `kernel` over the freshly quantized strip against the cached B
/// plane. The strip's codes are consumed while still cache-hot and the
/// full A plane is never materialized. Strips are as tall as the fused
/// dispatch cap so the kernel sees the widest row span it can block over —
/// the kernel's own row tiling (not the strip height) decides how often
/// the B plane is re-streamed, which is what bounds B traffic at serving
/// shapes. The per-row uniform-exponent metadata the deferral decision
/// needs is collected during lowering, so the fused path sees the same
/// [`DeferCtx`] coverage as the prepacked paths.
///
/// Per output element the K-block loop order, rounding points, and
/// accumulation are identical to the two-pass path, so the result is
/// bit-identical to it (and to [`reference_gemm`]).
#[allow(clippy::too_many_arguments)] // a GEMM span is dims + operands + buffers
fn fused_span<C: Code>(
    a: &[f32],
    k: usize,
    fa: &BdrFormat,
    bp: PlaneView<'_, C>,
    n: usize,
    c: i32,
    ctx: DeferCtx,
    r0: usize,
    rows: usize,
    codes: &mut Vec<C>,
    exps: &mut Vec<i32>,
    uexp: &mut Vec<i32>,
    shifts: &mut Vec<u32>,
    out: &mut [f32],
    kernel: SpanKernel<C>,
) {
    let k1 = fa.k1();
    let blocks = blocks_of(k, fa);
    let kcodes = blocks * k1;
    let ring_rows = FUSED_MAX_M.min(rows);
    codes.clear();
    codes.resize(ring_rows * kcodes, C::ZERO);
    exps.clear();
    exps.resize(ring_rows * blocks, 0);
    uexp.clear();
    uexp.resize(ring_rows, 0);
    let mut i0 = 0;
    while i0 < rows {
        let tm = ring_rows.min(rows - i0);
        for t in 0..tm {
            let row = &a[(r0 + i0 + t) * k..][..k];
            let slot0 = t * blocks;
            let mut seen: Option<i32> = None;
            let mut mixed = false;
            for kb in 0..blocks {
                let start = kb * k1;
                let blen = k1.min(k - start);
                // `lower_block_into` writes every slot of its block
                // (zeroing the ragged tail and all-zero blocks), so the
                // ring needs no per-tile clear.
                let e = engine::lower_block_into(
                    fa,
                    &row[start..start + blen],
                    shifts,
                    &mut codes[(slot0 + kb) * k1..][..k1],
                );
                exps[slot0 + kb] = e.unwrap_or(0);
                if let Some(e) = e {
                    match seen {
                        None => seen = Some(e),
                        Some(u) if u != e => mixed = true,
                        _ => {}
                    }
                }
            }
            uexp[t] = if mixed { MIXED_EXP } else { seen.unwrap_or(0) };
        }
        let ap = PlaneView {
            codes,
            exps,
            uexp,
            blocks,
            k1,
        };
        kernel(ap, 0, tm, bp, n, c, ctx, &mut out[i0 * n..][..tm * n]);
        i0 += tm;
    }
}

/// Runs [`fused_span`] serially through the caller's scratch buffers, or
/// row-parallel with small per-worker tile rings (each span's tile ring is
/// at most [`FUSED_MAX_M`] rows — cheap next to the per-span output buffer
/// the parallel dispatch already allocates). Spans are whole rows, so the output is
/// bit-identical either way.
#[allow(clippy::too_many_arguments)] // a GEMM is dims + operands + dispatch knobs
fn fused_dispatch<C: Code>(
    a: &[f32],
    k: usize,
    fa: &BdrFormat,
    bp: PlaneView<'_, C>,
    m: usize,
    n: usize,
    c: i32,
    ctx: DeferCtx,
    workers: usize,
    codes: &mut Vec<C>,
    exps: &mut Vec<i32>,
    uexp: &mut Vec<i32>,
    shifts: &mut Vec<u32>,
    out: &mut Vec<f32>,
    kernel: SpanKernel<C>,
) {
    if workers <= 1 {
        fused_span(
            a, k, fa, bp, n, c, ctx, 0, m, codes, exps, uexp, shifts, out, kernel,
        );
    } else {
        dispatch_rows(m, n, workers, out, |r0, rows, part| {
            fused_span(
                a,
                k,
                fa,
                bp,
                n,
                c,
                ctx,
                r0,
                rows,
                &mut Vec::new(),
                &mut Vec::new(),
                &mut Vec::new(),
                &mut Vec::new(),
                part,
                kernel,
            );
        });
    }
}

/// [`quantized_gemm_prepacked`] with the activation operand quantized
/// **inside the execute loop** (pack-on-the-fly): each strip of up to
/// [`FUSED_MAX_M`] rows of A is lowered into a scratch tile ring and consumed
/// immediately by the integer kernels, so the A code plane is never
/// materialized and the strip stays cache-hot between its `f32` and
/// integer phases. This is the serving hot path for small `m` — the
/// automatic dispatch in [`quantized_gemm_prepacked_scratch`] routes
/// `m ≤` [`FUSED_MAX_M`] here.
///
/// Bit-identical to [`quantized_gemm_twopass_scratch`] (and therefore to
/// [`quantized_gemm`] and [`reference_gemm`]) for every supported pairing,
/// at every thread count: both paths run the same block plan, rounding
/// rule, kernels, and accumulation order.
///
/// Returns `None` under exactly the same conditions as
/// [`quantized_gemm_prepacked`].
///
/// # Panics
///
/// Panics if `a.len() != m · packed_b.k()`.
///
/// # Examples
///
/// ```
/// use mx_core::bdr::BdrFormat;
/// use mx_core::gemm::{
///     quantized_gemm_fused, quantized_gemm_twopass_scratch, PackScratch, PackedOperand,
/// };
///
/// let fmt = BdrFormat::MX6;
/// let b: Vec<f32> = (0..48 * 5).map(|i| (i as f32 * 0.11).cos()).collect();
/// let pb = PackedOperand::pack_cols(&b, 48, 5, fmt, fmt).unwrap();
/// let a: Vec<f32> = (0..2 * 48).map(|i| (i as f32 * 0.23).sin()).collect();
/// let mut scratch = PackScratch::new();
/// let fused = quantized_gemm_fused(&a, 2, fmt, &pb, 1, &mut scratch).unwrap();
/// let two_pass = quantized_gemm_twopass_scratch(&a, 2, fmt, &pb, 1, &mut scratch).unwrap();
/// // The strategies are bit-invisible: same plan, same rounding, same order.
/// assert!(fused.iter().zip(&two_pass).all(|(x, y)| x.to_bits() == y.to_bits()));
/// ```
pub fn quantized_gemm_fused(
    a: &[f32],
    m: usize,
    fa: BdrFormat,
    packed_b: &PackedOperand,
    threads: usize,
    scratch: &mut PackScratch,
) -> Option<Vec<f32>> {
    let (class, k, n, c) = a_side_gate(a, m, &fa, packed_b)?;
    // Reject a plane holding the other kernel class's code width *before*
    // the degenerate-dims early return, so the rejection conditions stay
    // exactly those of the two-pass entry at every shape.
    match (class, &packed_b.plane) {
        (PairClass::Narrow, Plane::Narrow(_)) | (PairClass::Wide, Plane::Wide(_)) => {}
        _ => return None,
    }
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 || k == 0 {
        return Some(out);
    }
    let workers = gemm_workers(m, n, k, threads);
    let ctx = backend::defer_ctx(&fa, &packed_b.fmt, blocks_of(k, &fa), c);
    match (class, &packed_b.plane) {
        (PairClass::Narrow, Plane::Narrow(bpl)) => fused_dispatch(
            a,
            k,
            &fa,
            bpl.view(),
            m,
            n,
            c,
            ctx,
            workers,
            &mut scratch.narrow_codes,
            &mut scratch.narrow_exps,
            &mut scratch.uexp,
            &mut scratch.shifts,
            &mut out,
            backend::narrow_span_kernel(packed_b.panel_n),
        ),
        (PairClass::Wide, Plane::Wide(bpl)) => fused_dispatch(
            a,
            k,
            &fa,
            bpl.view(),
            m,
            n,
            c,
            ctx,
            workers,
            &mut scratch.wide_codes,
            &mut scratch.wide_exps,
            &mut scratch.uexp,
            &mut scratch.shifts,
            &mut out,
            backend::wide_span_kernel(),
        ),
        // `packed_b` was packed for a partner in the other kernel class;
        // callers fall back rather than silently re-lowering B.
        _ => return None,
    }
    Some(out)
}

/// [`quantized_gemm_prepacked`] with a caller-provided [`PackScratch`] —
/// the **shape-aware dispatch point** between the two activation-lowering
/// strategies (see the module docs): calls with `m ≤` [`FUSED_MAX_M`]
/// activation rows take the fused pack-on-the-fly path
/// ([`quantized_gemm_fused`]); larger calls take the two-pass prepack
/// ([`quantized_gemm_twopass_scratch`]). The choice is bit-invisible —
/// both strategies run the identical block plan, rounding rule, kernels,
/// and accumulation order — so callers (`mx-nn`'s `quantized_matmul_ab`,
/// and through it every layer and the `mx-serve` batch path) pick up the
/// fused serving hot path with no call-site changes.
///
/// Returns `None` under exactly the same conditions as
/// [`quantized_gemm_prepacked`].
///
/// # Panics
///
/// Panics if `a.len() != m · packed_b.k()`.
pub fn quantized_gemm_prepacked_scratch(
    a: &[f32],
    m: usize,
    fa: BdrFormat,
    packed_b: &PackedOperand,
    threads: usize,
    scratch: &mut PackScratch,
) -> Option<Vec<f32>> {
    if m <= FUSED_MAX_M {
        quantized_gemm_fused(a, m, fa, packed_b, threads, scratch)
    } else {
        quantized_gemm_twopass_scratch(a, m, fa, packed_b, threads, scratch)
    }
}

/// The two-pass activation strategy: lowers **all** of A to a code plane in
/// `scratch`'s buffers (no fresh allocations on the steady-state path),
/// then executes the pure integer GEMM over the two planes. This was the
/// only strategy before the fused path existed; it remains the dispatch
/// choice for training-shaped calls (`m >` [`FUSED_MAX_M`]), where one
/// long `f32` sweep over A streams better than per-tile phase
/// interleaving. Bit-identical to [`quantized_gemm_fused`].
///
/// Returns `None` under exactly the same conditions as
/// [`quantized_gemm_prepacked`].
///
/// # Panics
///
/// Panics if `a.len() != m · packed_b.k()`.
pub fn quantized_gemm_twopass_scratch(
    a: &[f32],
    m: usize,
    fa: BdrFormat,
    packed_b: &PackedOperand,
    threads: usize,
    scratch: &mut PackScratch,
) -> Option<Vec<f32>> {
    let (class, k, _n, c) = a_side_gate(a, m, &fa, packed_b)?;
    let views = match (class, &packed_b.plane) {
        (PairClass::Narrow, Plane::Narrow(bp)) => {
            let blocks = pack_into::<i16>(
                a,
                m,
                k,
                |i| i * k,
                1,
                |v, kb| v * blocks_of(k, &fa) + kb,
                &fa,
                &mut scratch.narrow_codes,
                &mut scratch.narrow_exps,
                &mut scratch.uexp,
                &mut scratch.shifts,
            );
            PairViews::Narrow(
                PlaneView {
                    codes: &scratch.narrow_codes,
                    exps: &scratch.narrow_exps,
                    uexp: &scratch.uexp,
                    blocks,
                    k1: fa.k1(),
                },
                bp.view(),
            )
        }
        (PairClass::Wide, Plane::Wide(bp)) => {
            let blocks = pack_into::<i32>(
                a,
                m,
                k,
                |i| i * k,
                1,
                |v, kb| v * blocks_of(k, &fa) + kb,
                &fa,
                &mut scratch.wide_codes,
                &mut scratch.wide_exps,
                &mut scratch.uexp,
                &mut scratch.shifts,
            );
            PairViews::Wide(
                PlaneView {
                    codes: &scratch.wide_codes,
                    exps: &scratch.wide_exps,
                    uexp: &scratch.uexp,
                    blocks,
                    k1: fa.k1(),
                },
                bp.view(),
            )
        }
        // `packed_b` was packed for a partner in the other kernel class;
        // callers fall back rather than silently re-lowering B.
        _ => return None,
    };
    let ctx = backend::defer_ctx(&fa, &packed_b.fmt, blocks_of(k, &fa), c);
    execute(
        views,
        packed_b.panel_n,
        class,
        m,
        packed_b.vectors,
        k,
        c,
        ctx,
        threads,
    )
}

/// The admission gate both activation strategies share — the plane-side
/// check, the [`pair_class`] format gate, the operand-shape assertion, and
/// the execute geometry `(class, k, n, c)`. Keeping it in one place is
/// what makes "fused and two-pass return `None` under exactly the same
/// conditions" a structural fact rather than a convention (the remaining
/// per-strategy rejection — a B plane holding the other kernel class's
/// code width — lives in each entry's plane match).
///
/// # Panics
///
/// Panics if `a.len() != m · packed_b.k()`.
fn a_side_gate(
    a: &[f32],
    m: usize,
    fa: &BdrFormat,
    packed_b: &PackedOperand,
) -> Option<(PairClass, usize, usize, i32)> {
    if packed_b.side != Side::Cols {
        return None;
    }
    let class = pair_class(fa, &packed_b.fmt)?;
    let k = packed_b.len;
    assert_eq!(a.len(), m * k, "A is not {m}x{k}");
    Some((class, k, packed_b.vectors, c_half(fa) + packed_b.c_half))
}

/// Block count per vector of a `len`-long reduction in `fmt`.
fn blocks_of(len: usize, fmt: &BdrFormat) -> usize {
    len.div_ceil(fmt.k1())
}

/// Quantized matrix product `A[m,k] × B[k,n]` against a **prepacked** B
/// operand: only A's rows are lowered to codes, B-side packing is skipped
/// entirely. This is the inference steady-state entry point — weights are
/// static, so their [`PackedOperand`] is built once and reused across
/// forward passes. Routes through the shape-aware dispatch of
/// [`quantized_gemm_prepacked_scratch`] (fused pack-on-the-fly at serving
/// shapes, two-pass prepack otherwise; callers on a hot loop should use
/// the scratch variant directly to also reuse the activation buffers).
///
/// Bit-identical to [`quantized_gemm`] (and therefore to
/// [`reference_gemm`]) for every supported pairing.
///
/// Returns `None` when `packed_b` is not a [`Side::Cols`] plane, or the
/// `(fa, packed_b.format())` pair is unsupported, or that pair needs a
/// different code width than `packed_b` holds (it was packed for a partner
/// in the other kernel class) — callers fall back to the dequantize path.
///
/// # Panics
///
/// Panics if `a.len() != m · packed_b.k()`.
pub fn quantized_gemm_prepacked(
    a: &[f32],
    m: usize,
    fa: BdrFormat,
    packed_b: &PackedOperand,
    threads: usize,
) -> Option<Vec<f32>> {
    quantized_gemm_prepacked_scratch(a, m, fa, packed_b, threads, &mut PackScratch::new())
}

/// Quantized matrix product `A[m,k] × B[k,n]` computed entirely in the
/// integer code domain (see the module docs for the datapath mapping).
///
/// A thin wrapper over the prepack/execute split that packs **both** sides
/// ad hoc: A's rows and B's columns are quantized to aligned integer codes
/// once per call, then the GEMM runs over codes, row-tiled per backend
/// and dispatched row-parallel across `threads` workers
/// (`0` = all cores; the split is block-aligned, so the result is
/// bit-identical regardless of thread count). Callers with a static B
/// should pack it once with [`PackedOperand::pack_cols`] and call
/// [`quantized_gemm_prepacked`] instead.
///
/// Returns `None` when [`code_domain_supported`] rejects the format pair —
/// callers fall back to the dequantize path.
///
/// # Panics
///
/// Panics if `a.len() != m·k` or `b.len() != k·n`.
#[allow(clippy::too_many_arguments)] // a GEMM is dims + operands + formats
pub fn quantized_gemm(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    fa: BdrFormat,
    fb: BdrFormat,
    threads: usize,
) -> Option<Vec<f32>> {
    if !code_domain_supported(&fa, &fb) {
        return None;
    }
    assert_eq!(a.len(), m * k, "A is not {m}x{k}");
    assert_eq!(b.len(), k * n, "B is not {k}x{n}");
    let pb = PackedOperand::pack_cols(b, k, n, fa, fb).expect("pair gated above");
    quantized_gemm_prepacked(a, m, fa, &pb, threads)
}

/// The quantize → dequantize → `f32` matmul reference the code-domain path
/// is proven against: A's rows and B's columns are fake-quantized through
/// the engine's strided kernels, then multiplied block by block — each
/// `k1`-block pair's products summed exactly in `f64`, rounded to `f32`
/// once, and accumulated across K blocks in `f32`, the same order and
/// rounding points as [`quantized_gemm`].
///
/// # Panics
///
/// Panics if the operand lengths disagree with `m·k` / `k·n`, or if the two
/// formats have different `k1` (the block tilings would not line up).
///
/// # Examples
///
/// ```
/// use mx_core::bdr::BdrFormat;
/// use mx_core::gemm::{quantized_gemm, reference_gemm};
///
/// let fmt = BdrFormat::MX9;
/// let a: Vec<f32> = (0..3 * 40).map(|i| (i as f32 * 0.19).sin()).collect();
/// let b: Vec<f32> = (0..40 * 2).map(|i| (i as f32 * 0.23).cos()).collect();
/// let want = reference_gemm(&a, &b, 3, 40, 2, fmt, fmt);
/// // The integer code-domain path reproduces the reference bit for bit.
/// assert_eq!(quantized_gemm(&a, &b, 3, 40, 2, fmt, fmt, 1).unwrap(), want);
/// ```
pub fn reference_gemm(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    fa: BdrFormat,
    fb: BdrFormat,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A is not {m}x{k}");
    assert_eq!(b.len(), k * n, "B is not {k}x{n}");
    assert_eq!(fa.k1(), fb.k1(), "mismatched block sizes");
    let mut aq = a.to_vec();
    let mut bq = b.to_vec();
    if !aq.is_empty() {
        QuantEngine::new(fa).quantize_dequantize_rows(&mut aq, k);
    }
    if !bq.is_empty() {
        QuantEngine::new(fb).quantize_dequantize_cols(&mut bq, n);
    }
    let k1 = fa.k1();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k0 in (0..k).step_by(k1) {
                let blen = k1.min(k - k0);
                let mut s = 0.0f64;
                for p in k0..k0 + blen {
                    s += aq[i * k + p] as f64 * bq[p * n + j] as f64;
                }
                acc += s as f32;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, salt: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i.wrapping_mul(37).wrapping_add(salt * 13) % 101) as f32 - 50.0) * 0.037)
            .collect()
    }

    /// A wide-but-supported custom format: `m + β = 16 > 15` forces the
    /// `i32` code plane while every support requirement still holds.
    fn wide_fmt() -> BdrFormat {
        let fmt = BdrFormat::new(16, 8, 0, 16, 16).unwrap();
        assert_eq!(pair_class(&fmt, &fmt), Some(PairClass::Wide));
        fmt
    }

    #[test]
    fn presets_are_supported() {
        for fa in [
            BdrFormat::MX4,
            BdrFormat::MX6,
            BdrFormat::MX9,
            BdrFormat::MSFP12,
            BdrFormat::MSFP16,
        ] {
            for fb in [BdrFormat::MX4, BdrFormat::MX9, BdrFormat::MSFP16] {
                assert_eq!(pair_class(&fa, &fb), Some(PairClass::Narrow), "{fa} x {fb}");
            }
        }
    }

    #[test]
    fn unsupported_pairs_are_rejected() {
        // Mismatched k1.
        let k32 = BdrFormat::new(4, 8, 1, 32, 2).unwrap();
        assert!(!code_domain_supported(&BdrFormat::MX6, &k32));
        assert!(quantized_gemm(&[0.0; 16], &[0.0; 16], 1, 16, 1, BdrFormat::MX6, k32, 1).is_none());
        assert!(PackedOperand::pack_cols(&[0.0; 16], 16, 1, BdrFormat::MX6, k32).is_none());
        // m + β too wide for an i32 aligned code.
        let wide = BdrFormat::new(23, 8, 4, 16, 2).unwrap();
        assert!(!code_domain_supported(&wide, &wide));
        // Ulp below f32's subnormal floor: dequantize would round.
        let deep = BdrFormat::new(20, 8, 4, 16, 2).unwrap();
        assert!(!exact_dequantize(&deep));
    }

    #[test]
    fn matches_reference_exactly() {
        for fmt in [BdrFormat::MX4, BdrFormat::MX6, BdrFormat::MX9] {
            let (m, k, n) = (5, 48, 7);
            let a = ramp(m * k, 1);
            let b = ramp(k * n, 2);
            let got = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
            let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
            assert!(
                got.iter()
                    .zip(want.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{fmt}"
            );
        }
    }

    #[test]
    fn mixed_format_operands() {
        let (m, k, n) = (3, 40, 4);
        let a = ramp(m * k, 3);
        let b = ramp(k * n, 4);
        let got = quantized_gemm(&a, &b, m, k, n, BdrFormat::MX9, BdrFormat::MX4, 1).unwrap();
        let want = reference_gemm(&a, &b, m, k, n, BdrFormat::MX9, BdrFormat::MX4);
        assert_eq!(got, want);
    }

    #[test]
    fn prepacked_matches_ad_hoc_packing() {
        for (fa, fb) in [
            (BdrFormat::MX6, BdrFormat::MX6),
            (BdrFormat::MX9, BdrFormat::MX4),
            (BdrFormat::MSFP12, BdrFormat::MX6),
        ] {
            let (m, k, n) = (5, 40, 7); // ragged K tail
            let a = ramp(m * k, 21);
            let b = ramp(k * n, 22);
            let pb = PackedOperand::pack_cols(&b, k, n, fa, fb).unwrap();
            let via_prepack = quantized_gemm_prepacked(&a, m, fa, &pb, 1).unwrap();
            let ad_hoc = quantized_gemm(&a, &b, m, k, n, fa, fb, 1).unwrap();
            assert!(
                via_prepack
                    .iter()
                    .zip(ad_hoc.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{fa}/{fb}"
            );
            // A prepacked B is reusable: a second call sees identical bits.
            let again = quantized_gemm_prepacked(&a, m, fa, &pb, 1).unwrap();
            assert_eq!(via_prepack, again);
        }
    }

    #[test]
    fn packed_pair_execute_matches_reference() {
        let fmt = BdrFormat::MX6;
        let (m, k, n) = (4, 48, 6);
        let a = ramp(m * k, 31);
        let b = ramp(k * n, 32);
        let pa = PackedOperand::pack_rows(&a, m, k, fmt, fmt).unwrap();
        let pb = PackedOperand::pack_cols(&b, k, n, fmt, fmt).unwrap();
        let got = quantized_gemm_packed(&pa, &pb, 1).unwrap();
        let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
        assert!(got
            .iter()
            .zip(want.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(pa.side(), Side::Rows);
        assert_eq!(pb.side(), Side::Cols);
        assert_eq!((pb.k(), pb.vectors()), (k, n));
        assert_eq!(pb.format(), fmt);
        assert!(pb.packed_bytes() > 0);
    }

    #[test]
    fn wide_format_pair_takes_i32_plane_and_matches_reference() {
        let fmt = wide_fmt();
        let (m, k, n) = (3, 40, 5);
        let a = ramp(m * k, 41);
        let b = ramp(k * n, 42);
        let pb = PackedOperand::pack_cols(&b, k, n, fmt, fmt).unwrap();
        assert!(matches!(pb.plane, Plane::Wide(_)));
        assert_eq!(pb.panel_n, 0);
        let got = quantized_gemm_prepacked(&a, m, fmt, &pb, 1).unwrap();
        let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
        assert!(got
            .iter()
            .zip(want.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn same_class_partner_swap_is_allowed_and_exact() {
        // Codes depend only on the operand's own format: a B plane packed
        // for an MX6 partner serves MX9 activations too (both pairs are
        // narrow), bit-identical to packing for MX9 directly.
        let (m, k, n) = (3, 40, 4);
        let a = ramp(m * k, 61);
        let b = ramp(k * n, 62);
        let pb_for_mx6 =
            PackedOperand::pack_cols(&b, k, n, BdrFormat::MX6, BdrFormat::MX4).unwrap();
        let got = quantized_gemm_prepacked(&a, m, BdrFormat::MX9, &pb_for_mx6, 1).unwrap();
        let want = reference_gemm(&a, &b, m, k, n, BdrFormat::MX9, BdrFormat::MX4);
        assert!(got
            .iter()
            .zip(want.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn mismatched_packing_is_rejected_not_repacked() {
        let narrow = BdrFormat::MX6;
        let wide = wide_fmt();
        let (m, k, n) = (2, 16, 3);
        let a = ramp(m * k, 51);
        let b = ramp(k * n, 52);
        // B packed for a narrow partner cannot execute against a wide A.
        let pb = PackedOperand::pack_cols(&b, k, n, narrow, narrow).unwrap();
        assert!(quantized_gemm_prepacked(&a, m, wide, &pb, 1).is_none());
        // Two Rows planes (or swapped sides) are not a valid pairing.
        let pa = PackedOperand::pack_rows(&a, m, k, narrow, narrow).unwrap();
        assert!(quantized_gemm_packed(&pa, &pa, 1).is_none());
        assert!(quantized_gemm_packed(&pb, &pa, 1).is_none());
        // Mismatched reduction lengths are rejected.
        let b2 = ramp(32 * n, 53);
        let pb2 = PackedOperand::pack_cols(&b2, 32, n, narrow, narrow).unwrap();
        assert!(quantized_gemm_packed(&pa, &pb2, 1).is_none());
    }

    #[test]
    fn scratch_packing_is_bit_identical_and_reusable() {
        // One scratch serves alternating shapes, formats, and kernel
        // classes; every call is bit-identical to the allocating path.
        let mut scratch = PackScratch::new();
        let wide = wide_fmt();
        for (round, (fa, fb, m, k, n)) in [
            (BdrFormat::MX6, BdrFormat::MX6, 5, 40, 7),
            (BdrFormat::MX9, BdrFormat::MX4, 3, 48, 4),
            (wide, wide, 2, 40, 3),
            (BdrFormat::MX6, BdrFormat::MX6, 9, 16, 2),
        ]
        .into_iter()
        .enumerate()
        {
            let a = ramp(m * k, 70 + round);
            let b = ramp(k * n, 80 + round);
            let pb = PackedOperand::pack_cols(&b, k, n, fa, fb).unwrap();
            let with_scratch =
                quantized_gemm_prepacked_scratch(&a, m, fa, &pb, 1, &mut scratch).unwrap();
            let fresh = quantized_gemm_prepacked(&a, m, fa, &pb, 1).unwrap();
            assert!(
                with_scratch
                    .iter()
                    .zip(fresh.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{fa}/{fb} round {round}"
            );
        }
        // Class mismatch is still rejected, not silently repacked.
        let b = ramp(16 * 3, 90);
        let pb = PackedOperand::pack_cols(&b, 16, 3, BdrFormat::MX6, BdrFormat::MX6).unwrap();
        let a = ramp(2 * 16, 91);
        assert!(quantized_gemm_prepacked_scratch(&a, 2, wide, &pb, 1, &mut scratch).is_none());
    }

    #[test]
    fn single_block_matches_naive_f32_matmul() {
        // With K ≤ k1 every f32 partial sum is exact, so the code path, the
        // blocked reference, and a plain f32 triple loop all agree exactly.
        let fmt = BdrFormat::MX6;
        let (m, k, n) = (4, 16, 4);
        let a = ramp(m * k, 5);
        let b = ramp(k * n, 6);
        let got = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
        let e = QuantEngine::new(fmt);
        let mut aq = a.clone();
        e.quantize_dequantize_rows(&mut aq, k);
        let mut bq = b.clone();
        e.quantize_dequantize_cols(&mut bq, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += aq[i * k + p] * bq[p * n + j];
                }
                assert_eq!(got[i * n + j], acc, "({i},{j})");
            }
        }
    }

    #[test]
    fn empty_and_degenerate_dims() {
        let fmt = BdrFormat::MX6;
        assert_eq!(
            quantized_gemm(&[], &[], 0, 16, 0, fmt, fmt, 1).unwrap(),
            vec![]
        );
        let a = ramp(16, 7);
        assert_eq!(
            quantized_gemm(&a, &[], 1, 16, 0, fmt, fmt, 1).unwrap(),
            vec![]
        );
        // k = 0: all-zero output.
        assert_eq!(
            quantized_gemm(&[], &[], 2, 0, 3, fmt, fmt, 1).unwrap(),
            vec![0.0; 6]
        );
        // Degenerate dims through the prepacked entry points too.
        let pb = PackedOperand::pack_cols(&[], 0, 3, fmt, fmt).unwrap();
        assert_eq!(
            quantized_gemm_prepacked(&[], 2, fmt, &pb, 1).unwrap(),
            vec![0.0; 6]
        );
        let pb = PackedOperand::pack_cols(&[], 16, 0, fmt, fmt).unwrap();
        assert_eq!(
            quantized_gemm_prepacked(&a, 1, fmt, &pb, 1).unwrap(),
            vec![]
        );
    }

    #[test]
    fn zero_operand_gives_zero_output() {
        let fmt = BdrFormat::MX9;
        let a = vec![0.0f32; 3 * 33];
        let b = ramp(33 * 5, 9);
        let got = quantized_gemm(&a, &b, 3, 33, 5, fmt, fmt, 1).unwrap();
        assert!(got.iter().all(|v| v.to_bits() == 0));
    }

    #[test]
    fn parallel_dispatch_is_bit_identical() {
        let fmt = BdrFormat::MX6;
        // Large enough to cross the parallel work threshold.
        let (m, k, n) = (64, 96, 48);
        let a = ramp(m * k, 11);
        let b = ramp(k * n, 12);
        let serial = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
        let pb = PackedOperand::pack_cols(&b, k, n, fmt, fmt).unwrap();
        for threads in [2usize, 3, 7, 0] {
            let par = quantized_gemm(&a, &b, m, k, n, fmt, fmt, threads).unwrap();
            assert!(
                serial
                    .iter()
                    .zip(par.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads}"
            );
            let pre = quantized_gemm_prepacked(&a, m, fmt, &pb, threads).unwrap();
            assert!(
                serial
                    .iter()
                    .zip(pre.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "prepacked threads={threads}"
            );
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(17), 5);
    }

    #[test]
    fn uniform_exponent_metadata_is_recorded() {
        // One column per uexp case: uniform nonzero, mixed, all-zero.
        let fmt = BdrFormat::MX6;
        let k = 32; // two blocks
        let mut b = vec![0.0f32; k * 3];
        for i in 0..k {
            b[i * 3] = 1.5; // both blocks share exponent 0
            b[i * 3 + 1] = if i < 16 { 1.5 } else { 100.0 }; // differing exponents
                                                             // column 2 stays all-zero
        }
        let pb = PackedOperand::pack_cols(&b, k, 3, fmt, fmt).unwrap();
        let Plane::Narrow(ref plane) = pb.plane else {
            panic!("preset pair must pack narrow");
        };
        assert_eq!(plane.uexp.len(), 3);
        assert_ne!(plane.uexp[0], MIXED_EXP);
        assert_eq!(plane.uexp[1], MIXED_EXP);
        assert_eq!(plane.uexp[2], 0);
    }

    #[test]
    fn forced_backends_and_deferral_match_reference() {
        // The in-module smoke version of the `gemm_backends` suite: every
        // backend × deferral on/off reproduces the reference bit for bit.
        // (Serialized against other tests by the env override being
        // process-wide: this is the only in-module test that touches it.)
        let fmt = BdrFormat::MX6;
        let (m, k, n) = (9, 80, 11);
        let a = ramp(m * k, 101);
        let b = ramp(k * n, 102);
        let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::Sse2,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
        ] {
            for defer in [true, false] {
                if force_kernel_backend(Some(backend)).is_err() {
                    // This CPU lacks the ISA; the integration suite skips
                    // it the same way.
                    continue;
                }
                force_deferred_scale_out(Some(defer));
                let got = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
                force_kernel_backend(None).unwrap();
                force_deferred_scale_out(None);
                assert!(
                    got.iter()
                        .zip(want.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "backend={} defer={defer}",
                    backend.name()
                );
            }
        }
    }
}
