//! The kernel-backend dispatch layer: which ISA-specific tile kernel
//! executes the narrow (`i16`) code-domain path, and whether the
//! deferred-scale-out optimization is armed.
//!
//! # The backend contract
//!
//! A backend is a [`SpanKernel`] — a plain function pointer computing one
//! span of output rows from two already-lowered [`PlaneView`]s. Every
//! backend must be **bit-identical** to every other (and to
//! [`super::reference_gemm`]): same per-block integer dots, same one-`f32`
//! rounding per scale-out, same K-block accumulation order. Backends are
//! therefore free to differ in *how* they traverse the planes (tile
//! shapes, SIMD width, deferral) but never in what they round. The
//! `gemm_backends` integration suite enforces this by forcing every
//! backend over the full preset matrix.
//!
//! Four backends exist today, each in its own sibling module:
//!
//! - [`super::scalar`] — portable Rust, no intrinsics; the reference
//!   implementation and the only backend off x86-64;
//! - [`super::sse2`] — `pmaddwd` block dots (baseline x86-64 ABI),
//!   vector-major B;
//! - [`super::avx2`] — panel-major B, register-blocked 8-column panels
//!   (two rows at a time where deferral holds) with deferred scale-out
//!   (generation 2), and an in-register per-block scale-out panel as the
//!   exact fallback;
//! - [`super::avx512`] — generation 3: 4-column panels whose B codes are
//!   packed two `k1`-blocks per 512-bit lane group (narrower panels, but
//!   each column's K step is twice as deep and every panel streams
//!   strictly sequentially), four rows paired per
//!   pass where deferral holds, `vpdpwssd` (AVX-512-VNNI, detected
//!   separately) fusing the `vpmaddwd`+`vpaddd` chain, and mask-register
//!   loads covering the odd-block K tail with no scalar remainder loop.
//!
//! Adding an ISA (NEON next) is: write the module, give it a
//! [`KernelBackend`] variant, extend [`narrow_span_kernel`] — no changes
//! to packing, dispatch entries, or callers.
//!
//! # Backend author checklist
//!
//! The invariants below are not conventions — `mx-audit` (run in CI and
//! by the `clean_repo` suite) fails the build when a new kernel module
//! violates them:
//!
//! 1. **Every `unsafe` block carries an adjacent `// SAFETY:` comment**
//!    justifying the specific bounds/ISA precondition it relies on, and
//!    every `unsafe fn` documents its contract in a `# Safety` doc
//!    section (rule `unsafe-safety`). The kernel crates compile under
//!    `#![deny(unsafe_op_in_unsafe_fn)]`, so each unsafe operation sits
//!    in its own scoped block — justify the block, not the function.
//! 2. **`#[target_feature(enable = "X")]` fns are `unsafe`, are not
//!    `pub`, and `X` is gated by `is_x86_feature_detected!("X")`**
//!    somewhere in the crate (rule `target-feature`). The dispatch layer
//!    here is that gate: a new ISA variant must only be selectable after
//!    detection says so, exactly like [`KernelBackend::Avx2`]. (`sse2`
//!    is exempt — it is part of the x86-64 baseline ABI.)
//! 3. **Wire the backend into CI** (rule `ci-wiring`): extend the
//!    `gemm_backends` suite to force the new variant over the preset
//!    matrix, and if you add a new test file or bench harness, name it
//!    in `.github/workflows/ci.yml`.
//! 4. **New tuning knobs go through `mx_core::knobs`** (rule
//!    `env-knobs`): declare the `MX_*` variable in
//!    [`crate::knobs::KNOBS`], read it with [`crate::knobs::raw`], and
//!    document it in the README's knob table — the auditor
//!    cross-checks all three.
//! 5. **Bit-identity is the contract**: deferral or layout tricks may
//!    change traversal, never rounding. Assert the new backend against
//!    [`super::reference_gemm`] in `gemm_backends` before enabling it
//!    in [`selected_backend`].
//!
//! Lessons the AVX-512 generation added to the list:
//!
//! 6. **Panel width is a per-backend property of the packed plane**, not a
//!    global constant: [`super::pack::panel_slot`] takes the width as a
//!    parameter and the plane records which width it was packed with
//!    (`PackedOperand::panel_n`), so [`narrow_span_kernel`] dispatches on
//!    the *plane's* layout, never on the current knob — a plane packed 8
//!    wide keeps running the AVX2 kernels after the knob moves. A wider
//!    kernel therefore starts at the packer: define the layout, teach
//!    `panel_slot` the formula, and only then write the loads.
//! 7. **Prefer mask registers to remainder loops.** The AVX-512 kernel has
//!    no scalar ragged-K tail: an odd block count becomes one
//!    `_mm512_maskz_loadu_epi16` with the low-half mask (masked-out lanes
//!    are architecturally not accessed, so the load is also the bounds
//!    guard), and ragged N reuses the same per-column path as
//!    mixed-exponent panels instead of a second code shape. Fewer paths,
//!    fewer bit-identity proofs.
//! 8. **Detect optional sub-features separately and fall back in-module.**
//!    VNNI is not implied by AVX-512F/BW: [`avx512_vnni_available`] gates
//!    `vpdpwssd` on its own `is_x86_feature_detected!` probe, and the
//!    kernel keeps a same-speed-class `vpmaddwd`+`vpaddd` variant behind
//!    the same call signature so the backend (and its bit-identity) never
//!    depends on the optional instruction. `MX_KERNEL_VNNI=0` (or
//!    [`force_vnni`]) selects the fallback for A/B measurement.
//!
//! # Selection
//!
//! [`selected_backend`] resolves, in priority order: the process-wide
//! programmatic override ([`force_kernel_backend`], used by tests and the
//! `kernel_sweep` bench), the `MX_KERNEL_BACKEND` environment variable
//! (`auto` / `scalar` / `sse2` / `avx2` / `avx512`, read once), then the
//! best backend the CPU supports. An environment request the CPU cannot
//! honor degrades to the best available (forcing `avx512` on a non-AVX-512
//! machine runs AVX2) with a one-line stderr warning naming what actually
//! runs — the knob can only *narrow* the ISA, never fake one — while the
//! programmatic [`force_kernel_backend`] refuses outright with
//! [`BackendUnavailable`]. [`kernel_backend_name`] reports the effective
//! choice so benches and `serve_loadgen` can record which backend
//! actually ran.
//!
//! The choice is honored at **pack time**: each panel backend consumes a
//! panel-major B plane of its own width (8 columns for AVX2, 16 for
//! AVX-512), the others vector-major, so
//! [`super::PackedOperand::pack_cols`] lays the plane out for the backend
//! selected when it runs, and execution always follows the plane's
//! recorded layout (a panel plane runs its backend's kernels even if the
//! knob has since changed — each layout exists only on machines that
//! support its backend).

use super::pack::PlaneView;
use super::DeferCtx;
use crate::bdr::BdrFormat;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The ISA tier executing the narrow (`i16`-code) integer GEMM path. The
/// wide (`i32`-code) path for exotic custom formats always runs the
/// portable scalar kernel — it is not serving-critical and keeps the
/// backend matrix small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable Rust, no intrinsics.
    Scalar,
    /// `pmaddwd` block dots (part of the x86-64 baseline ABI).
    Sse2,
    /// Wide-tile deferred-scale-out kernel over 8-column panel-major B.
    Avx2,
    /// 512-bit kernel over 4-column chunk-paired panels, with masked
    /// tails and optional VNNI (`vpdpwssd`) block dots.
    Avx512,
}

impl KernelBackend {
    /// The knob spelling of this backend
    /// (`scalar` / `sse2` / `avx2` / `avx512`).
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Avx512 => "avx512",
        }
    }
}

/// Parses a knob spelling back to a backend; `None` for `auto`/unknown.
fn parse_backend_name(name: &str) -> Option<KernelBackend> {
    match name {
        "scalar" => Some(KernelBackend::Scalar),
        "sse2" => Some(KernelBackend::Sse2),
        "avx2" => Some(KernelBackend::Avx2),
        "avx512" => Some(KernelBackend::Avx512),
        _ => None,
    }
}

/// Whether the running CPU supports the AVX2 kernels.
#[cfg(target_arch = "x86_64")]
pub(super) fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[cfg(not(target_arch = "x86_64"))]
pub(super) fn avx2_available() -> bool {
    false
}

/// Whether the running CPU supports the AVX-512 kernel (the baseline it
/// needs is F for the 512-bit registers/masks plus BW for the 32-lane
/// `i16` loads and `vpmaddwd`).
#[cfg(target_arch = "x86_64")]
pub(super) fn avx512_available() -> bool {
    static AVX512: OnceLock<bool> = OnceLock::new();
    *AVX512.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
    })
}

#[cfg(not(target_arch = "x86_64"))]
pub(super) fn avx512_available() -> bool {
    false
}

/// Whether the running CPU additionally supports AVX-512-VNNI
/// (`vpdpwssd`). Detected separately from [`avx512_available`] — VNNI is
/// not implied by F/BW, and the kernel carries a `vpmaddwd`+`vpaddd`
/// fallback so the backend itself never depends on it.
#[cfg(target_arch = "x86_64")]
pub(super) fn avx512_vnni_available() -> bool {
    static VNNI: OnceLock<bool> = OnceLock::new();
    *VNNI.get_or_init(|| avx512_available() && std::arch::is_x86_feature_detected!("avx512vnni"))
}

#[cfg(not(target_arch = "x86_64"))]
pub(super) fn avx512_vnni_available() -> bool {
    false
}

/// The best backend the running CPU supports.
fn best_available() -> KernelBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            KernelBackend::Avx512
        } else if avx2_available() {
            KernelBackend::Avx2
        } else {
            KernelBackend::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    KernelBackend::Scalar
}

/// Caps a requested backend at what the CPU can actually run.
fn clamp_available(req: KernelBackend) -> KernelBackend {
    match req {
        KernelBackend::Avx512 if !avx512_available() => clamp_available(KernelBackend::Avx2),
        KernelBackend::Avx2 if !avx2_available() => clamp_available(KernelBackend::Sse2),
        #[cfg(not(target_arch = "x86_64"))]
        KernelBackend::Sse2 => KernelBackend::Scalar,
        other => other,
    }
}

/// Programmatic override slot: 0 = none, else `KernelBackend as u8 + 1`.
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The one-line warning [`env_backend`] emits when `MX_KERNEL_BACKEND`
/// cannot be honored as written, naming the backend that will actually
/// run. `None` when the value is fine (recognized and available). Pure —
/// the CPU-dependent inputs (`parsed`, `resolved`) are arguments so unit
/// tests cover both failure shapes on any machine.
fn env_backend_warning(
    value: &str,
    parsed: Option<KernelBackend>,
    resolved: KernelBackend,
) -> Option<String> {
    match parsed {
        None => Some(format!(
            "mx-core: MX_KERNEL_BACKEND={value:?} is not a recognized backend \
             (expected auto | scalar | sse2 | avx2 | avx512); using {}",
            resolved.name()
        )),
        Some(req) if req != resolved => Some(format!(
            "mx-core: MX_KERNEL_BACKEND={} is not available on this CPU; using {}",
            req.name(),
            resolved.name()
        )),
        Some(_) => None,
    }
}

/// `MX_KERNEL_BACKEND` parsed once; `None` for unset/`auto`/unrecognized.
/// A value that cannot be honored (unknown name, or an ISA this CPU
/// lacks) warns once on stderr naming the backend that runs instead.
fn env_backend() -> Option<KernelBackend> {
    static ENV: OnceLock<Option<KernelBackend>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let value = crate::knobs::raw("MX_KERNEL_BACKEND")?;
        if value == "auto" {
            return None;
        }
        let parsed = parse_backend_name(&value);
        let resolved = parsed.map_or_else(best_available, clamp_available);
        if let Some(warning) = env_backend_warning(&value, parsed, resolved) {
            eprintln!("{warning}");
        }
        parsed
    })
}

/// The backend the dispatch layer is currently selecting: the
/// [`force_kernel_backend`] override, else `MX_KERNEL_BACKEND`, else the
/// best the CPU supports — always capped at what can actually run.
pub fn selected_backend() -> KernelBackend {
    let req = match BACKEND_OVERRIDE.load(Ordering::Relaxed) {
        1 => KernelBackend::Scalar,
        2 => KernelBackend::Sse2,
        3 => KernelBackend::Avx2,
        4 => KernelBackend::Avx512,
        _ => env_backend().unwrap_or_else(best_available),
    };
    clamp_available(req)
}

/// Name of the effective backend (`"scalar"` / `"sse2"` / `"avx2"` /
/// `"avx512"`) — what benches and `serve_loadgen` report alongside their
/// numbers.
///
/// # Examples
///
/// ```
/// // Whatever the machine, the name is one of the four tiers.
/// assert!(
///     ["scalar", "sse2", "avx2", "avx512"].contains(&mx_core::gemm::kernel_backend_name())
/// );
/// ```
pub fn kernel_backend_name() -> &'static str {
    selected_backend().name()
}

/// Error from [`force_kernel_backend`]: the requested backend cannot run
/// on this CPU. The override is left unchanged — the caller decides
/// whether to degrade (to [`BackendUnavailable::available`]) or skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendUnavailable {
    /// The backend that was requested.
    pub requested: KernelBackend,
    /// The best backend this CPU can run in its place.
    pub available: KernelBackend,
}

impl std::fmt::Display for BackendUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel backend {} is unavailable on this CPU (best available: {})",
            self.requested.name(),
            self.available.name()
        )
    }
}

impl std::error::Error for BackendUnavailable {}

/// Forces the dispatch layer onto one backend (process-wide), or back to
/// automatic selection with `None`. Intended for tests and benches that
/// sweep backends; affects the layout of subsequently packed B planes as
/// well as kernel choice (pack after forcing — see the module docs).
///
/// # Errors
///
/// [`BackendUnavailable`] when the CPU cannot run the requested backend;
/// the previous selection stays in force (a forced backend is exact by
/// construction — silently degrading would let a sweep mislabel its
/// rows). `None` always succeeds.
pub fn force_kernel_backend(backend: Option<KernelBackend>) -> Result<(), BackendUnavailable> {
    if let Some(req) = backend {
        let available = clamp_available(req);
        if available != req {
            return Err(BackendUnavailable {
                requested: req,
                available,
            });
        }
    }
    let v = match backend {
        None => 0,
        Some(KernelBackend::Scalar) => 1,
        Some(KernelBackend::Sse2) => 2,
        Some(KernelBackend::Avx2) => 3,
        Some(KernelBackend::Avx512) => 4,
    };
    BACKEND_OVERRIDE.store(v, Ordering::Relaxed);
    Ok(())
}

/// Deferral override slot: 0 = unset, 1 = force on, 2 = force off.
static DEFER_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether deferred scale-out is armed: the [`force_deferred_scale_out`]
/// override, else `MX_KERNEL_DEFER` (`0` / `off` disables), else on.
/// Disabling it never changes results — deferral is applied only where it
/// is provably exact — it only forces the per-block scale-out everywhere,
/// which is what the `kernel_sweep` bench and the equivalence tests use to
/// isolate the deferral win.
pub fn deferred_scale_out_enabled() -> bool {
    match DEFER_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| {
                !matches!(
                    crate::knobs::raw("MX_KERNEL_DEFER").as_deref(),
                    Some("0") | Some("off") | Some("false")
                )
            })
        }
    }
}

/// Forces deferred scale-out on/off (process-wide), or back to the
/// environment default with `None`. Results are bit-identical either way.
pub fn force_deferred_scale_out(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    DEFER_OVERRIDE.store(v, Ordering::Relaxed);
}

/// VNNI override slot: 0 = unset, 1 = force on, 2 = force off.
static VNNI_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether the AVX-512 kernel uses `vpdpwssd` for its block dots: the
/// [`force_vnni`] override, else `MX_KERNEL_VNNI` (`0` / `off` / `false`
/// selects the `vpmaddwd`+`vpaddd` fallback), else on — always clamped to
/// what [`avx512_vnni_available`] detected. Both paths are bit-identical
/// (`vpdpwssd` computes exactly the fused chain per lane); the knob only
/// isolates the instruction-count win for the `kernel_sweep` bench.
pub(super) fn vnni_enabled() -> bool {
    avx512_vnni_available()
        && match VNNI_OVERRIDE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                static ENV: OnceLock<bool> = OnceLock::new();
                *ENV.get_or_init(|| {
                    !matches!(
                        crate::knobs::raw("MX_KERNEL_VNNI").as_deref(),
                        Some("0") | Some("off") | Some("false")
                    )
                })
            }
        }
}

/// Forces the AVX-512 kernel's VNNI block dots on/off (process-wide), or
/// back to the environment default with `None`. "On" still requires the
/// CPU to have AVX-512-VNNI — like `MX_KERNEL_BACKEND`, the knob can only
/// narrow the ISA, never fake one. Results are bit-identical either way.
pub fn force_vnni(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    VNNI_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Builds the per-GEMM deferral context for an `(fa, fb)` pair whose
/// reduction spans `blocks` `k1`-blocks, with scale-out constant `c`.
///
/// # The deferred scale-out headroom invariant
///
/// The per-block path computes `acc ← f32(acc + f32(dotⱼ · 2^(eⱼ+c)))`
/// block by block. Deferral instead sums the integer dots of **all** K
/// blocks of one output element and applies a single scale — exact (bit
/// for bit equal to the per-block chain) precisely when every `f32`
/// addition in that chain was itself exact, which this context guarantees
/// structurally before any kernel looks at data:
///
/// - **Static headroom** (`enabled`): `blocks · Dmax ≤ 2²⁴`, where
///   `Dmax = k1 · (max_code_a ≪ β_a) · (max_code_b ≪ β_b)` bounds any
///   single block dot. Then every partial sum of dots is an integer of
///   magnitude ≤ 2²⁴ — exactly representable in `f32`'s 24-bit mantissa.
/// - **Uniform exponents** (checked per output element by the kernels):
///   all nonzero blocks of the A row share one shared exponent `e_a`, and
///   likewise `e_b` for the B column — so every nonzero contribution sits
///   on the single fixed-point grid `2^(e_a+e_b+c)` (all-zero blocks
///   contribute exactly `+0.0` on both paths and are exempt).
/// - **Grid window** (`e_lo ..= e_hi`): `e_a + e_b + c ∈ [−149, 103]`, so
///   the grid unit is at or above `f32`'s subnormal floor and
///   `2²⁴ · 2^(e+c)` stays below `f32::MAX` — integer multiples of the
///   unit up to 2²⁴ are all exact `f32`s.
///
/// Under all three, the per-block chain never rounds, its result is the
/// exact sum, and the deferred single scale-out reproduces it bit for bit.
/// Any element (or format pair, or block count) failing a condition takes
/// the per-block scale-out instead — deferral is an optimization, never a
/// semantics change.
///
/// ## The same bound under 32-lane (AVX-512) accumulation and VNNI
///
/// The `2²⁴` bound above is about the *`f32` mantissa*, not about any
/// SIMD register, so widening the accumulator vector does not move it —
/// but each backend must also show its `i32` lanes cannot wrap before the
/// reduce. The AVX-512 kernel splits the deferred total across 16 `i32`
/// lanes (32 `i16` products feed 16 lanes per `vpdpwssd` / `vpmaddwd`
/// step), so any single lane's partial is at most
/// `blocks · Dmax / 16 ≤ 2²⁰` under the same static gate — four doubling
/// steps below the AVX2 kernel's per-lane bound of `blocks · Dmax / 8`,
/// and far inside `i32`. VNNI adds nothing to prove: `vpdpwssd` is
/// lane-for-lane `vpmaddwd` (two `i16 × i16` products summed in `i32` —
/// exact, since the narrow-pair class guarantees `w_a + w_b ≤ 30`)
/// followed by `vpaddd` into the same accumulator, so the fused and
/// fallback paths produce identical lanes, and both reduce to the same
/// integer total the scalar chain would have produced.
pub(super) fn defer_ctx(fa: &BdrFormat, fb: &BdrFormat, blocks: usize, c: i32) -> DeferCtx {
    let dmax =
        fa.k1() as u64 * (fa.max_code() << fa.max_shift()) * (fb.max_code() << fb.max_shift());
    let enabled =
        deferred_scale_out_enabled() && dmax > 0 && (blocks as u64).saturating_mul(dmax) <= 1 << 24;
    DeferCtx {
        enabled,
        e_lo: -149 - c,
        e_hi: 103 - c,
    }
}

/// A span kernel: computes output rows `r0 .. r0 + rows` (written at
/// offset 0 of `out`, a `rows × n` slice) from an A plane and a B plane —
/// the unit of work the row-parallel dispatch and the fused per-tile path
/// both schedule. See the module docs for the bit-identity contract.
pub(super) type SpanKernel<C> =
    fn(PlaneView<'_, C>, usize, usize, PlaneView<'_, C>, usize, i32, DeferCtx, &mut [f32]);

/// The narrow-pair span kernel for a B plane packed with the given panel
/// width: a 4-wide plane always runs the AVX-512 kernel and an 8-wide
/// plane the AVX2 kernels (each layout is only ever built when the CPU
/// supports its backend); a vector-major plane (`b_panel_n == 0`) runs
/// the selected backend, with the panel backends degrading to SSE2
/// (their kernels require their own layout).
pub(super) fn narrow_span_kernel(b_panel_n: usize) -> SpanKernel<i16> {
    #[cfg(target_arch = "x86_64")]
    {
        match b_panel_n {
            super::PANEL_N_512 => return super::avx512::gemm_span,
            super::PANEL_N => return super::avx2::gemm_span,
            _ => {}
        }
        match selected_backend() {
            KernelBackend::Scalar => super::scalar::gemm_span::<i16, false>,
            _ => super::sse2::gemm_span,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = b_panel_n;
        super::scalar::gemm_span::<i16, false>
    }
}

/// The wide-pair span kernel (exotic custom formats): always the portable
/// generic kernel with the chunked `i64`-accumulator dot.
pub(super) fn wide_span_kernel() -> SpanKernel<i32> {
    super::scalar::gemm_span::<i32, true>
}

// These tests deliberately avoid mutating the process-wide override slots
// (`BACKEND_OVERRIDE` etc.) — the in-module test in `super::tests` and the
// `gemm_backends` integration suite own those, serialized behind their own
// lock. Everything here is pure or read-only.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip_through_the_parser() {
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::Sse2,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
        ] {
            assert_eq!(parse_backend_name(backend.name()), Some(backend));
        }
        for bogus in ["auto", "", "AVX512", "avx-512", "neon", "avx9000"] {
            assert_eq!(parse_backend_name(bogus), None, "{bogus:?}");
        }
    }

    #[test]
    fn unrecognized_env_value_warns_naming_the_resolved_backend() {
        let warning = env_backend_warning("avx9000", None, KernelBackend::Avx512)
            .expect("an unknown name must warn");
        assert!(warning.contains("avx9000"), "{warning}");
        assert!(warning.contains("using avx512"), "{warning}");
        assert!(
            warning.contains("avx2 | avx512"),
            "lists the choices: {warning}"
        );
    }

    #[test]
    fn unavailable_env_value_warns_naming_the_resolved_backend() {
        let warning =
            env_backend_warning("avx512", Some(KernelBackend::Avx512), KernelBackend::Avx2)
                .expect("an unavailable backend must warn");
        assert!(warning.contains("avx512 is not available"), "{warning}");
        assert!(warning.contains("using avx2"), "{warning}");
    }

    #[test]
    fn honorable_env_value_stays_silent() {
        assert_eq!(
            env_backend_warning("sse2", Some(KernelBackend::Sse2), KernelBackend::Sse2),
            None
        );
    }

    #[test]
    fn backend_unavailable_error_names_both_ends() {
        let err = BackendUnavailable {
            requested: KernelBackend::Avx512,
            available: KernelBackend::Avx2,
        };
        let msg = err.to_string();
        assert!(msg.contains("avx512"), "{msg}");
        assert!(msg.contains("best available: avx2"), "{msg}");
    }

    #[test]
    fn forcing_the_detected_best_backend_is_always_honored() {
        // `clamp_available(best_available())` is the identity, so the
        // error path can never fire for the CPU's own best tier. Checking
        // via the pure clamp keeps this test override-free.
        let best = best_available();
        assert_eq!(clamp_available(best), best);
    }

    #[test]
    fn vnni_detection_implies_the_avx512_baseline() {
        // The VNNI probe is only consulted behind the F/BW gate.
        if avx512_vnni_available() {
            assert!(avx512_available());
        }
    }
}
