//! The kernel-backend dispatch layer: which ISA-specific tile kernel
//! executes the narrow (`i16`) code-domain path, and whether the
//! deferred-scale-out optimization is armed.
//!
//! # The backend contract
//!
//! A backend is a [`SpanKernel`] — a plain function pointer computing one
//! span of output rows from two already-lowered [`PlaneView`]s. Every
//! backend must be **bit-identical** to every other (and to
//! [`super::reference_gemm`]): same per-block integer dots, same one-`f32`
//! rounding per scale-out, same K-block accumulation order. Backends are
//! therefore free to differ in *how* they traverse the planes (tile
//! shapes, SIMD width, deferral) but never in what they round. The
//! `gemm_backends` integration suite enforces this by forcing every
//! backend over the full preset matrix.
//!
//! Three backends exist today, each in its own sibling module:
//!
//! - [`super::scalar`] — portable Rust, no intrinsics; the reference
//!   implementation and the only backend off x86-64;
//! - [`super::sse2`] — `pmaddwd` block dots (baseline x86-64 ABI),
//!   vector-major B;
//! - [`super::avx2`] — panel-major B, register-blocked 8-column panels
//!   (two rows at a time where deferral holds) with deferred scale-out
//!   (generation 2), and an in-register per-block scale-out panel as the
//!   exact fallback.
//!
//! Adding an ISA (AVX-512, NEON) is: write the module, give it a
//! [`KernelBackend`] variant, extend [`narrow_span_kernel`] — no changes
//! to packing, dispatch entries, or callers.
//!
//! # Backend author checklist
//!
//! The invariants below are not conventions — `mx-audit` (run in CI and
//! by the `clean_repo` suite) fails the build when a new kernel module
//! violates them:
//!
//! 1. **Every `unsafe` block carries an adjacent `// SAFETY:` comment**
//!    justifying the specific bounds/ISA precondition it relies on, and
//!    every `unsafe fn` documents its contract in a `# Safety` doc
//!    section (rule `unsafe-safety`). The kernel crates compile under
//!    `#![deny(unsafe_op_in_unsafe_fn)]`, so each unsafe operation sits
//!    in its own scoped block — justify the block, not the function.
//! 2. **`#[target_feature(enable = "X")]` fns are `unsafe`, are not
//!    `pub`, and `X` is gated by `is_x86_feature_detected!("X")`**
//!    somewhere in the crate (rule `target-feature`). The dispatch layer
//!    here is that gate: a new ISA variant must only be selectable after
//!    detection says so, exactly like [`KernelBackend::Avx2`]. (`sse2`
//!    is exempt — it is part of the x86-64 baseline ABI.)
//! 3. **Wire the backend into CI** (rule `ci-wiring`): extend the
//!    `gemm_backends` suite to force the new variant over the preset
//!    matrix, and if you add a new test file or bench harness, name it
//!    in `.github/workflows/ci.yml`.
//! 4. **New tuning knobs go through `mx_core::knobs`** (rule
//!    `env-knobs`): declare the `MX_*` variable in
//!    [`crate::knobs::KNOBS`], read it with [`crate::knobs::raw`], and
//!    document it in the README's knob table — the auditor
//!    cross-checks all three.
//! 5. **Bit-identity is the contract**: deferral or layout tricks may
//!    change traversal, never rounding. Assert the new backend against
//!    [`super::reference_gemm`] in `gemm_backends` before enabling it
//!    in [`selected_backend`].
//!
//! # Selection
//!
//! [`selected_backend`] resolves, in priority order: the process-wide
//! programmatic override ([`force_kernel_backend`], used by tests and the
//! `kernel_sweep` bench), the `MX_KERNEL_BACKEND` environment variable
//! (`auto` / `scalar` / `sse2` / `avx2`, read once), then the best backend
//! the CPU supports. A request the CPU cannot honor degrades to the best
//! available (forcing `avx2` on a non-AVX2 machine runs SSE2) — the knob
//! can only *narrow* the ISA, never fake one. [`kernel_backend_name`]
//! reports the effective choice so benches and `serve_loadgen` can record
//! which backend actually ran.
//!
//! The choice is honored at **pack time**: the AVX2 kernels consume a
//! panel-major B plane, the others vector-major, so
//! [`super::PackedOperand::pack_cols`] lays the plane out for the backend
//! selected when it runs, and execution always follows the plane's layout
//! (a panel-major plane runs the AVX2 kernels even if the knob has since
//! changed — the layout exists only on machines that support them).

use super::pack::PlaneView;
use super::DeferCtx;
use crate::bdr::BdrFormat;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The ISA tier executing the narrow (`i16`-code) integer GEMM path. The
/// wide (`i32`-code) path for exotic custom formats always runs the
/// portable scalar kernel — it is not serving-critical and keeps the
/// backend matrix small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable Rust, no intrinsics.
    Scalar,
    /// `pmaddwd` block dots (part of the x86-64 baseline ABI).
    Sse2,
    /// Wide-tile deferred-scale-out kernel over panel-major B.
    Avx2,
}

impl KernelBackend {
    /// The knob spelling of this backend (`scalar` / `sse2` / `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
        }
    }
}

/// Whether the running CPU supports the AVX2 kernels.
#[cfg(target_arch = "x86_64")]
pub(super) fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[cfg(not(target_arch = "x86_64"))]
pub(super) fn avx2_available() -> bool {
    false
}

/// The best backend the running CPU supports.
fn best_available() -> KernelBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            KernelBackend::Avx2
        } else {
            KernelBackend::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    KernelBackend::Scalar
}

/// Caps a requested backend at what the CPU can actually run.
fn clamp_available(req: KernelBackend) -> KernelBackend {
    match req {
        KernelBackend::Avx2 if !avx2_available() => clamp_available(KernelBackend::Sse2),
        #[cfg(not(target_arch = "x86_64"))]
        KernelBackend::Sse2 => KernelBackend::Scalar,
        other => other,
    }
}

/// Programmatic override slot: 0 = none, else `KernelBackend as u8 + 1`.
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// `MX_KERNEL_BACKEND` parsed once; `None` for unset/`auto`/unrecognized.
fn env_backend() -> Option<KernelBackend> {
    static ENV: OnceLock<Option<KernelBackend>> = OnceLock::new();
    *ENV.get_or_init(|| match crate::knobs::raw("MX_KERNEL_BACKEND")?.as_str() {
        "scalar" => Some(KernelBackend::Scalar),
        "sse2" => Some(KernelBackend::Sse2),
        "avx2" => Some(KernelBackend::Avx2),
        // `auto` and anything unrecognized fall through to detection.
        _ => None,
    })
}

/// The backend the dispatch layer is currently selecting: the
/// [`force_kernel_backend`] override, else `MX_KERNEL_BACKEND`, else the
/// best the CPU supports — always capped at what can actually run.
pub fn selected_backend() -> KernelBackend {
    let req = match BACKEND_OVERRIDE.load(Ordering::Relaxed) {
        1 => KernelBackend::Scalar,
        2 => KernelBackend::Sse2,
        3 => KernelBackend::Avx2,
        _ => env_backend().unwrap_or_else(best_available),
    };
    clamp_available(req)
}

/// Name of the effective backend (`"scalar"` / `"sse2"` / `"avx2"`) —
/// what benches and `serve_loadgen` report alongside their numbers.
///
/// # Examples
///
/// ```
/// // Whatever the machine, the name is one of the three tiers.
/// assert!(["scalar", "sse2", "avx2"].contains(&mx_core::gemm::kernel_backend_name()));
/// ```
pub fn kernel_backend_name() -> &'static str {
    selected_backend().name()
}

/// Forces the dispatch layer onto one backend (process-wide), or back to
/// automatic selection with `None`. Intended for tests and benches that
/// sweep backends; affects the layout of subsequently packed B planes as
/// well as kernel choice (pack after forcing — see the module docs).
pub fn force_kernel_backend(backend: Option<KernelBackend>) {
    let v = match backend {
        None => 0,
        Some(KernelBackend::Scalar) => 1,
        Some(KernelBackend::Sse2) => 2,
        Some(KernelBackend::Avx2) => 3,
    };
    BACKEND_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Deferral override slot: 0 = unset, 1 = force on, 2 = force off.
static DEFER_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether deferred scale-out is armed: the [`force_deferred_scale_out`]
/// override, else `MX_KERNEL_DEFER` (`0` / `off` disables), else on.
/// Disabling it never changes results — deferral is applied only where it
/// is provably exact — it only forces the per-block scale-out everywhere,
/// which is what the `kernel_sweep` bench and the equivalence tests use to
/// isolate the deferral win.
pub fn deferred_scale_out_enabled() -> bool {
    match DEFER_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| {
                !matches!(
                    crate::knobs::raw("MX_KERNEL_DEFER").as_deref(),
                    Some("0") | Some("off") | Some("false")
                )
            })
        }
    }
}

/// Forces deferred scale-out on/off (process-wide), or back to the
/// environment default with `None`. Results are bit-identical either way.
pub fn force_deferred_scale_out(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    DEFER_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Builds the per-GEMM deferral context for an `(fa, fb)` pair whose
/// reduction spans `blocks` `k1`-blocks, with scale-out constant `c`.
///
/// # The deferred scale-out headroom invariant
///
/// The per-block path computes `acc ← f32(acc + f32(dotⱼ · 2^(eⱼ+c)))`
/// block by block. Deferral instead sums the integer dots of **all** K
/// blocks of one output element and applies a single scale — exact (bit
/// for bit equal to the per-block chain) precisely when every `f32`
/// addition in that chain was itself exact, which this context guarantees
/// structurally before any kernel looks at data:
///
/// - **Static headroom** (`enabled`): `blocks · Dmax ≤ 2²⁴`, where
///   `Dmax = k1 · (max_code_a ≪ β_a) · (max_code_b ≪ β_b)` bounds any
///   single block dot. Then every partial sum of dots is an integer of
///   magnitude ≤ 2²⁴ — exactly representable in `f32`'s 24-bit mantissa.
/// - **Uniform exponents** (checked per output element by the kernels):
///   all nonzero blocks of the A row share one shared exponent `e_a`, and
///   likewise `e_b` for the B column — so every nonzero contribution sits
///   on the single fixed-point grid `2^(e_a+e_b+c)` (all-zero blocks
///   contribute exactly `+0.0` on both paths and are exempt).
/// - **Grid window** (`e_lo ..= e_hi`): `e_a + e_b + c ∈ [−149, 103]`, so
///   the grid unit is at or above `f32`'s subnormal floor and
///   `2²⁴ · 2^(e+c)` stays below `f32::MAX` — integer multiples of the
///   unit up to 2²⁴ are all exact `f32`s.
///
/// Under all three, the per-block chain never rounds, its result is the
/// exact sum, and the deferred single scale-out reproduces it bit for bit.
/// Any element (or format pair, or block count) failing a condition takes
/// the per-block scale-out instead — deferral is an optimization, never a
/// semantics change.
pub(super) fn defer_ctx(fa: &BdrFormat, fb: &BdrFormat, blocks: usize, c: i32) -> DeferCtx {
    let dmax =
        fa.k1() as u64 * (fa.max_code() << fa.max_shift()) * (fb.max_code() << fb.max_shift());
    let enabled =
        deferred_scale_out_enabled() && dmax > 0 && (blocks as u64).saturating_mul(dmax) <= 1 << 24;
    DeferCtx {
        enabled,
        e_lo: -149 - c,
        e_hi: 103 - c,
    }
}

/// A span kernel: computes output rows `r0 .. r0 + rows` (written at
/// offset 0 of `out`, a `rows × n` slice) from an A plane and a B plane —
/// the unit of work the row-parallel dispatch and the fused per-tile path
/// both schedule. See the module docs for the bit-identity contract.
pub(super) type SpanKernel<C> =
    fn(PlaneView<'_, C>, usize, usize, PlaneView<'_, C>, usize, i32, DeferCtx, &mut [f32]);

/// The narrow-pair span kernel for a B plane in the given layout: a
/// panel-major plane always runs the AVX2 kernels (the layout is only ever
/// built when the CPU supports them); a vector-major plane runs the
/// selected backend, with AVX2 degrading to SSE2 (its kernels require the
/// panel-major layout).
pub(super) fn narrow_span_kernel(b_panel_major: bool) -> SpanKernel<i16> {
    #[cfg(target_arch = "x86_64")]
    {
        if b_panel_major {
            return super::avx2::gemm_span;
        }
        match selected_backend() {
            KernelBackend::Scalar => super::scalar::gemm_span::<i16, false>,
            _ => super::sse2::gemm_span,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = b_panel_major;
        super::scalar::gemm_span::<i16, false>
    }
}

/// The wide-pair span kernel (exotic custom formats): always the portable
/// generic kernel with the chunked `i64`-accumulator dot.
pub(super) fn wide_span_kernel() -> SpanKernel<i32> {
    super::scalar::gemm_span::<i32, true>
}
