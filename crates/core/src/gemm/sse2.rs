//! The SSE2 backend: the portable traversal of [`super::scalar`] with the
//! block dot lowered to `pmaddwd` — packed 16-bit multiplies with pairwise
//! 32-bit accumulation, the exact hardware form of the paper's narrow BDR
//! MAC datapath, one instruction per 8 codes. SSE2 is part of the x86-64
//! baseline ABI, so this backend needs no runtime feature detection.

use super::pack::PlaneView;
use super::DeferCtx;

/// The narrow span kernel with the `pmaddwd` block dot (consumes a
/// vector-major B plane).
#[allow(clippy::too_many_arguments)] // the SpanKernel signature: dims + operands + dispatch context
pub(super) fn gemm_span(
    ap: PlaneView<'_, i16>,
    r0: usize,
    rows: usize,
    bp: PlaneView<'_, i16>,
    n: usize,
    c: i32,
    ctx: DeferCtx,
    out: &mut [f32],
) {
    super::scalar::gemm_span::<i16, true>(ap, r0, rows, bp, n, c, ctx, out)
}

/// Exact `i16` block dot via `pmaddwd`. The i32 accumulator cannot
/// overflow: pairwise i16 products are below 2^31 because `w_a + w_b ≤ 30`,
/// and the block total is bounded by the `w_a + w_b + ⌈log2 k1⌉ ≤ 31`
/// dispatch gate.
pub(super) fn dot(a: &[i16], b: &[i16]) -> i32 {
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_cvtsi128_si32, _mm_loadu_si128, _mm_madd_epi16,
        _mm_setzero_si128, _mm_shuffle_epi32,
    };
    let mut acc = 0i32;
    let mut done = 0;
    let vecs = a.len() / 8;
    if vecs > 0 {
        // SAFETY: SSE2 is unconditionally available on x86_64, and each
        // unaligned 16-byte load reads lanes `8·i .. 8·i + 8`, in bounds
        // for both slices by the `vecs` bound.
        unsafe {
            let mut vacc = _mm_setzero_si128();
            for i in 0..vecs {
                let va = _mm_loadu_si128(a.as_ptr().add(8 * i) as *const __m128i);
                let vb = _mm_loadu_si128(b.as_ptr().add(8 * i) as *const __m128i);
                vacc = _mm_add_epi32(vacc, _mm_madd_epi16(va, vb));
            }
            let high = _mm_add_epi32(vacc, _mm_shuffle_epi32(vacc, 0b01_00_11_10));
            let total = _mm_add_epi32(high, _mm_shuffle_epi32(high, 0b10_11_00_01));
            acc = _mm_cvtsi128_si32(total);
        }
        done = 8 * vecs;
    }
    for (&x, &y) in a[done..].iter().zip(b[done..].iter()) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}
