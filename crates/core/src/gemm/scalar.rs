//! The portable span kernel — the reference backend every other backend is
//! bit-identical to, and the only one off x86-64.
//!
//! One generic implementation serves both code widths and both dot flavors:
//! the `SIMD` const parameter picks between [`super::Code::dot`] (which may
//! use baseline-ISA intrinsics — the SSE2 backend is exactly this kernel
//! with the `pmaddwd` dot) and [`super::Code::dot_scalar`] (pure Rust), so
//! the scalar and SSE2 tiers share one traversal and differ only in the
//! block-dot instruction. Deferred scale-out (see
//! [`super::backend::defer_ctx`]) is applied per output element whenever
//! the element's exponent metadata qualifies, with the per-block scale-out
//! chain as the exact fallback.

use super::pack::{PlaneView, MIXED_EXP};
use super::{Code, DeferCtx, TILE_M};
use crate::util::pow2;

#[inline(always)]
fn dot<C: Code, const SIMD: bool>(a: &[C], b: &[C]) -> i64 {
    if SIMD {
        C::dot(a, b)
    } else {
        C::dot_scalar(a, b)
    }
}

/// Computes output rows `r0 .. r0 + rows` into `out` (a `rows × n` slice,
/// written from offset 0): per output element, either one deferred
/// integer accumulation with a single scale-out (when the element's
/// row/column exponent metadata passes the [`DeferCtx`] checks) or the
/// per-block `f32` scale-out chain. Rows are processed [`TILE_M`] at a
/// time so each loaded B column (and its exponents) is reused for the
/// whole tile; per output element the K loop walks two contiguous code
/// arrays.
#[allow(clippy::too_many_arguments)] // the SpanKernel signature: dims + operands + dispatch context
pub(super) fn gemm_span<C: Code, const SIMD: bool>(
    ap: PlaneView<'_, C>,
    r0: usize,
    rows: usize,
    bp: PlaneView<'_, C>,
    n: usize,
    c: i32,
    ctx: DeferCtx,
    out: &mut [f32],
) {
    let k1 = ap.k1;
    let blocks = ap.blocks;
    let kcodes = blocks * k1;
    let mut i0 = 0;
    while i0 < rows {
        let tm = TILE_M.min(rows - i0);
        for j in 0..n {
            let bcol = &bp.codes[j * kcodes..][..kcodes];
            let bexps = &bp.exps[j * blocks..][..blocks];
            let bu = bp.uexp[j];
            for t in 0..tm {
                let row = r0 + i0 + t;
                let arow = &ap.codes[row * kcodes..][..kcodes];
                let aexps = &ap.exps[row * blocks..][..blocks];
                let au = ap.uexp[row];
                let slot = &mut out[(i0 + t) * n + j];
                if ctx.enabled && au != MIXED_EXP && bu != MIXED_EXP {
                    let e = au + bu;
                    if (ctx.e_lo..=ctx.e_hi).contains(&e) {
                        // Deferred scale-out: one exact integer total for
                        // the whole K reduction, one f32 rounding.
                        let mut total = 0i64;
                        for (ab, bb) in arow.chunks_exact(k1).zip(bcol.chunks_exact(k1)) {
                            total += dot::<C, SIMD>(ab, bb);
                        }
                        *slot = (total as f64 * pow2(e + c)) as f32;
                        continue;
                    }
                }
                let mut acc = 0.0f32;
                for ((ab, bb), (&ea, &eb)) in arow
                    .chunks_exact(k1)
                    .zip(bcol.chunks_exact(k1))
                    .zip(aexps.iter().zip(bexps.iter()))
                {
                    let d = dot::<C, SIMD>(ab, bb);
                    if d != 0 {
                        acc += (d as f64 * pow2(ea + eb + c)) as f32;
                    }
                }
                *slot = acc;
            }
        }
        i0 += tm;
    }
}
