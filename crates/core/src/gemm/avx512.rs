//! The AVX-512 backend (kernel generation 3): 512-bit kernels for the
//! `i16` code path with the preset block size `k1 = 16`, consuming a
//! **chunk-paired panel-major** B plane: columns grouped into 4-wide
//! panels ([`super::PANEL_N_512`]), and inside a panel two consecutive
//! `k1`-blocks of one column sit in adjacent slots (see
//! [`super::pack::panel_slot`]) — so one column's 32-code *chunk* is
//! exactly one `zmm` load and one `vpmaddwd`/`vpdpwssd` covers two blocks.
//!
//! Relative to the generation-2 AVX2 kernel, the panels are *narrower*
//! (4 columns vs 8) because each column's K step is *deeper* (32 codes vs
//! 16), and the remainder loops disappear:
//!
//! - **4-column panels, 32-lane math, strictly sequential streaming** —
//!   each 512-bit accumulator holds 16 `i32` lanes fed by 32 `i16`
//!   products per step. A panel's codes are read beginning-to-end in
//!   K order: one chunk row is four consecutive `zmm` loads, and
//!   consecutive chunk rows are adjacent in memory. (An earlier 16-wide
//!   panel walked in 4-column passes measured ~1.8× slower across the
//!   sweep — each pass touched 256 of every 1024 bytes and starved the
//!   prefetcher; panel width is a locality knob, not a lane-count one.)
//! - **Four-row pairing** ([`panel4_deferred`]) — where the [`DeferCtx`]
//!   exactness conditions hold for a run of rows, up to four rows'
//!   accumulators share every B chunk load (AVX2 pairs two). A 4-row
//!   group's working set is 21 `zmm` registers (16 accumulators + 4 B
//!   chunks + 1 A chunk).
//! - **`vpdpwssd` (AVX-512-VNNI)** — fuses the `vpmaddwd` + `vpaddd`
//!   chain into one instruction per chunk. VNNI is detected separately
//!   from the F/BW baseline ([`super::backend::avx512_vnni_available`]);
//!   the [`panel_dots_bw`] twin keeps the two-instruction form for
//!   CPUs without it, bit-identical by construction (`vpdpwssd` is
//!   lane-for-lane `vpmaddwd` + `vpaddd`, and the narrow-pair gate
//!   `w_a + w_b ≤ 30` keeps each fused pair-sum exact in `i32`).
//! - **Masked tails instead of remainder loops** — an odd block count
//!   leaves one lone 16-code block per column (stored compactly by the
//!   packer); it is read with `_mm512_maskz_loadu_epi16(0xFFFF, ..)`,
//!   whose masked-out lanes are architecturally not accessed, so the same
//!   chunk loop body covers ragged K with no scalar tail. Ragged N (at
//!   most 3 columns) takes the per-column [`col_one`] path, which reuses
//!   the identical masked loads; rows whose exponent metadata
//!   disqualifies whole-panel deferral stay vectorized at full panel
//!   width in [`panel4_per_block`] — one such row falling to the scalar
//!   chain would cost more than the rest of its tile combined.
//! - **Shared transpose/reduce and 4-lane scale-out** — integer dots
//!   leave the accumulators through one `vpaddd` half-fold and the gen-2
//!   two-round `vphaddd` tree ([`reduce4`]), four columns at a time, and
//!   scale-out is the gen-2 [`scale4`] (exact `f64` power-of-two build,
//!   one `vcvtpd2ps` rounding) — horizontal work is amortized across
//!   columns instead of paid per output element.
//!
//! All paths keep the per-output accumulation order and rounding points
//! of the portable kernel, so the backend is bit-identical to
//! [`super::scalar`] — and to `super::reference_gemm` — everywhere. The
//! deferred paths lean on the widened headroom derivation documented at
//! [`super::backend::defer_ctx`]: under the static `blocks · Dmax ≤ 2²⁴`
//! gate each 32-lane accumulator's `i32` lane partial stays ≤ 2²⁰.

use super::pack::{PlaneView, MIXED_EXP};
use super::DeferCtx;
use crate::util::pow2;
use std::arch::x86_64::*;

/// The preset first-level block size these kernels are specialized for.
pub(super) const K1: usize = 16;

/// Panel width (columns) of the chunk-paired B layout.
const PANEL: usize = super::PANEL_N_512;

/// Row-tile height: every B panel load is reused for this many output
/// rows. 16 matches the gen-2 tile: the tile's A codes (16 KB at
/// `K = 512`) plus a 4 KB panel fit L1d with room to spare, and a
/// shorter tile would re-stream the whole B plane from L2 proportionally
/// more often at the serving batch sizes (`M ∈ 8..32`) where the plane
/// no longer fits alongside the output.
const TILE_ROWS: usize = 16;

/// Codes per chunk: two `k1`-blocks of one column, one `zmm` load.
const CHUNK: usize = 2 * K1;

/// The AVX-512 span kernel ([`super::backend::SpanKernel`] shape). Picks
/// the VNNI or BW block-dot twin once per span — the two are
/// bit-identical, so the choice (like the backend itself) is a pure
/// performance knob.
#[allow(clippy::too_many_arguments)] // the SpanKernel signature: dims + operands + dispatch context
pub(super) fn gemm_span(
    ap: PlaneView<'_, i16>,
    r0: usize,
    rows: usize,
    bp: PlaneView<'_, i16>,
    n: usize,
    c: i32,
    ctx: DeferCtx,
    out: &mut [f32],
) {
    debug_assert!(ap.k1 == K1 && bp.k1 == K1);
    if super::backend::vnni_enabled() {
        // SAFETY: a chunk-paired plane is only built when the backend
        // layer verified AVX-512 F/BW support at pack time, and
        // `vnni_enabled` additionally verified AVX-512-VNNI.
        unsafe { gemm_span_avx512::<true>(ap, r0, rows, bp, n, c, ctx, out) }
    } else {
        // SAFETY: F/BW support was verified at pack time (the plane's
        // layout exists only then); the `false` instantiation uses no
        // VNNI instruction.
        unsafe { gemm_span_avx512::<false>(ap, r0, rows, bp, n, c, ctx, out) }
    }
}

/// Borrows `R` consecutive rows' code slices out of the A plane.
fn acodes_of<const R: usize>(ap: PlaneView<'_, i16>, row: usize) -> [&[i16]; R] {
    std::array::from_fn(|r| &ap.codes[(row + r) * ap.blocks * K1..][..ap.blocks * K1])
}

/// `R` consecutive rows' uniform exponents.
fn aus_of<const R: usize>(ap: PlaneView<'_, i16>, row: usize) -> [i32; R] {
    std::array::from_fn(|r| ap.uexp[row + r])
}

/// # Safety
///
/// Requires AVX-512 F and BW (verified at pack time before a
/// chunk-paired plane exists); `VNNI = true` additionally requires
/// AVX-512-VNNI (verified by `vnni_enabled`). `ap`/`bp` must be
/// consistent planes (`k1 = 16`, codes/exponents sized to `blocks`),
/// `r0 + rows` within the A plane, `n` within the B plane, and `out` at
/// least `rows × n`.
#[target_feature(enable = "avx512f,avx512bw")]
#[allow(clippy::too_many_arguments)] // the SpanKernel signature: dims + operands + dispatch context
unsafe fn gemm_span_avx512<const VNNI: bool>(
    ap: PlaneView<'_, i16>,
    r0: usize,
    rows: usize,
    bp: PlaneView<'_, i16>,
    n: usize,
    c: i32,
    ctx: DeferCtx,
    out: &mut [f32],
) {
    let blocks = ap.blocks;
    let np = n - n % PANEL;
    let mut i0 = 0;
    while i0 < rows {
        let tm = TILE_ROWS.min(rows - i0);
        let mut j = 0;
        while j < np {
            // Block-slot base of this panel: the panel's codes start at
            // `pbase·k1` and its slots span `blocks·PANEL`, contiguous
            // for the whole reduction.
            let pbase = j * blocks;
            let panel_defers = |au: i32| {
                au != MIXED_EXP
                    && bp.uexp[j..][..PANEL]
                        .iter()
                        .all(|&u| u != MIXED_EXP && (ctx.e_lo..=ctx.e_hi).contains(&(au + u)))
            };
            let mut t = 0;
            while t < tm {
                let row = r0 + i0 + t;
                if ctx.enabled && panel_defers(ap.uexp[row]) {
                    // Group up to four consecutive deferring rows so each
                    // B chunk load feeds the whole group's accumulators.
                    let mut run = 1;
                    while run < 4 && t + run < tm && panel_defers(ap.uexp[row + run]) {
                        run += 1;
                    }
                    let take = match run {
                        4 => 4,
                        2 | 3 => 2,
                        _ => 1,
                    };
                    let outs = &mut out[(i0 + t) * n..][..take * n];
                    match take {
                        // SAFETY: AVX-512 F/BW are enabled on this fn
                        // (and VNNI was verified when `VNNI = true`); the
                        // 4 row slices each hold `blocks·K1` codes,
                        // `outs` is 4 whole `n`-wide rows, and
                        // `j + PANEL ≤ np ≤ n` bounds the panel's columns
                        // and exponents.
                        4 => unsafe {
                            panel4_deferred::<4, VNNI>(
                                &acodes_of::<4>(ap, row),
                                &aus_of::<4>(ap, row),
                                bp,
                                pbase,
                                j,
                                c,
                                n,
                                outs,
                            )
                        },
                        // SAFETY: as the 4-row arm, with 2 rows.
                        2 => unsafe {
                            panel4_deferred::<2, VNNI>(
                                &acodes_of::<2>(ap, row),
                                &aus_of::<2>(ap, row),
                                bp,
                                pbase,
                                j,
                                c,
                                n,
                                outs,
                            )
                        },
                        // SAFETY: as the 4-row arm, with 1 row.
                        _ => unsafe {
                            panel4_deferred::<1, VNNI>(
                                &acodes_of::<1>(ap, row),
                                &aus_of::<1>(ap, row),
                                bp,
                                pbase,
                                j,
                                c,
                                n,
                                outs,
                            )
                        },
                    }
                    t += take;
                } else {
                    // Exponent metadata disqualifies whole-panel deferral
                    // for this row: vectorized per-block fallback — the
                    // reference rounding chain at full panel width
                    // (columns that could defer individually round to the
                    // same bits either way; see `panel4_per_block`).
                    let acodes = &ap.codes[row * blocks * K1..][..blocks * K1];
                    let out_row = &mut out[(i0 + t) * n..][..n];
                    // SAFETY: AVX-512 F/BW are enabled on this fn; the
                    // row slice holds `blocks·K1` codes, `out_row` is one
                    // whole `n`-wide row, and `j + PANEL ≤ np ≤ n` bounds
                    // the panel's columns and exponents.
                    unsafe { panel4_per_block(acodes, ap, row, bp, pbase, j, c, out_row) };
                    t += 1;
                }
            }
            j += PANEL;
        }
        if np < n {
            // The ragged final panel is `n − np ≤ 3` columns wide; it is
            // chunk-paired at its own width, which `col_one`'s slot
            // arithmetic mirrors.
            let pbase = np * blocks;
            let width = n - np;
            for t in 0..tm {
                let row = r0 + i0 + t;
                let au = ap.uexp[row];
                let acodes = &ap.codes[row * blocks * K1..][..blocks * K1];
                let out_row = &mut out[(i0 + t) * n..][..n];
                for (lane, slot) in out_row[np..].iter_mut().enumerate() {
                    // SAFETY: AVX-512 F/BW are enabled on this fn;
                    // `lane < width` (the iterator covers the `n − np`
                    // tail columns), so every ragged-panel block slot is
                    // in bounds of the B plane.
                    unsafe {
                        col_one(
                            acodes,
                            ap,
                            row,
                            au,
                            bp,
                            pbase,
                            width,
                            lane,
                            np + lane,
                            c,
                            ctx,
                            slot,
                        )
                    };
                }
            }
        }
        i0 += tm;
    }
}

/// Deferred scale-out for a group of `R ∈ {1, 2, 4}` rows against one
/// 4-column panel, all already proven exact: the panel streams once,
/// sequentially, accumulating `R rows × 4 columns` of integer dots over
/// the whole reduction ([`panel_dots_vnni`] / [`panel_dots_bw`]), then
/// one 4-lane [`scale4`] per row — horizontal work amortized across
/// columns, never per element. Grouping changes only which registers
/// hold which partial, never a rounding point; the scale-out chain
/// (`dot as f64 · 2^e`, rounded to `f32` once) is exactly the per-column
/// deferred chain.
///
/// # Safety
///
/// Requires AVX-512 F/BW; `VNNI = true` additionally requires
/// AVX-512-VNNI. Each `acodes[r]` must hold `bp.blocks · K1` codes,
/// `outs` must be `R` whole `n`-wide rows, and the panel at `pbase`
/// (columns `j .. j + PANEL`) must exist in `bp` (codes, exponents, and
/// `uexp`).
#[target_feature(enable = "avx512f,avx512bw")]
#[allow(clippy::too_many_arguments)] // a row group's operands + panel addressing
unsafe fn panel4_deferred<const R: usize, const VNNI: bool>(
    acodes: &[&[i16]; R],
    aus: &[i32; R],
    bp: PlaneView<'_, i16>,
    pbase: usize,
    j: usize,
    c: i32,
    n: usize,
    outs: &mut [f32],
) {
    let blocks = bp.blocks;
    let panel = &bp.codes[pbase * K1..][..blocks * PANEL * K1];
    let dots = if VNNI {
        // SAFETY: the panel-dot twins inherit this fn's preconditions
        // (F/BW enabled here, VNNI verified for this instantiation);
        // `panel` spans the whole panel.
        unsafe { panel_dots_vnni::<R>(acodes, panel, blocks) }
    } else {
        // SAFETY: as above, without the VNNI requirement.
        unsafe { panel_dots_bw::<R>(acodes, panel, blocks) }
    };
    // SAFETY: `j + PANEL ≤ n` bounds the 4-lane exponent load (`uexp`
    // has one entry per column) and each row's 4-lane store into its
    // `n`-wide output row; `scale4` inherits F/BW.
    unsafe {
        let eb = _mm_loadu_si128(bp.uexp[j..].as_ptr() as *const __m128i);
        for (r, &d) in dots.iter().enumerate() {
            let es = _mm_add_epi32(_mm_set1_epi32(aus[r] + c), eb);
            _mm_storeu_ps(outs[r * n + j..].as_mut_ptr(), scale4(d, es));
        }
    }
}

/// The VNNI panel core: integer dots of `R` A rows against a panel's 4
/// columns over the whole reduction, one `vpdpwssd` per (row, column,
/// chunk) and a masked half-chunk step for the lone block of an odd
/// reduction, returned as one `[d0 .. d3]` vector per row ([`reduce4`]).
/// Lane partials stay ≤ 2²⁰ under the deferral gate (see
/// [`super::backend::defer_ctx`]), so the `i32` reduce is exact.
///
/// # Safety
///
/// Requires AVX-512 F, BW, and VNNI. Each `acodes[r]` must hold
/// `blocks · K1` codes and `panel` must hold `blocks · PANEL · K1` codes
/// laid out chunk-paired at width [`PANEL`].
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
unsafe fn panel_dots_vnni<const R: usize>(
    acodes: &[&[i16]; R],
    panel: &[i16],
    blocks: usize,
) -> [__m128i; R] {
    let mut acc = [[_mm512_setzero_si512(); PANEL]; R];
    for t in 0..blocks / 2 {
        // SAFETY: chunk row `t` is the four consecutive 32-lane B loads
        // at `t·2·PANEL·K1` (`panel` holds `blocks·PANEL·K1`), and each
        // 32-lane A load reads chunk `t` of a slice holding `blocks·K1`
        // codes.
        unsafe {
            let bptr = panel.as_ptr().add(t * 2 * PANEL * K1);
            let b0 = _mm512_loadu_epi16(bptr);
            let b1 = _mm512_loadu_epi16(bptr.add(CHUNK));
            let b2 = _mm512_loadu_epi16(bptr.add(2 * CHUNK));
            let b3 = _mm512_loadu_epi16(bptr.add(3 * CHUNK));
            for (r, a) in acodes.iter().enumerate() {
                let va = _mm512_loadu_epi16(a.as_ptr().add(t * CHUNK));
                acc[r][0] = _mm512_dpwssd_epi32(acc[r][0], va, b0);
                acc[r][1] = _mm512_dpwssd_epi32(acc[r][1], va, b1);
                acc[r][2] = _mm512_dpwssd_epi32(acc[r][2], va, b2);
                acc[r][3] = _mm512_dpwssd_epi32(acc[r][3], va, b3);
            }
        }
    }
    if blocks % 2 == 1 {
        let kb = blocks - 1;
        // SAFETY: the low-half masked loads access only their 16 masked-in
        // lanes — one lone `K1`-code block each, in bounds at A's block
        // `kb` and the panel's compact lone-block slots
        // `(blocks−1)·PANEL + 0..4` (see `pack::panel_slot`).
        unsafe {
            let bptr = panel.as_ptr().add(kb * PANEL * K1);
            let b0 = _mm512_maskz_loadu_epi16(0xFFFF, bptr);
            let b1 = _mm512_maskz_loadu_epi16(0xFFFF, bptr.add(K1));
            let b2 = _mm512_maskz_loadu_epi16(0xFFFF, bptr.add(2 * K1));
            let b3 = _mm512_maskz_loadu_epi16(0xFFFF, bptr.add(3 * K1));
            for (r, a) in acodes.iter().enumerate() {
                let va = _mm512_maskz_loadu_epi16(0xFFFF, a.as_ptr().add(kb * K1));
                acc[r][0] = _mm512_dpwssd_epi32(acc[r][0], va, b0);
                acc[r][1] = _mm512_dpwssd_epi32(acc[r][1], va, b1);
                acc[r][2] = _mm512_dpwssd_epi32(acc[r][2], va, b2);
                acc[r][3] = _mm512_dpwssd_epi32(acc[r][3], va, b3);
            }
        }
    }
    let mut dots = [_mm_setzero_si128(); R];
    for (dot, row_acc) in dots.iter_mut().zip(acc.iter()) {
        // SAFETY: `reduce4` is register-only and inherits F/BW, enabled
        // on this fn.
        *dot = unsafe { reduce4(row_acc) };
    }
    dots
}

/// The AVX-512BW panel core: identical traversal and values as
/// [`panel_dots_vnni`], with each `vpdpwssd` spelled as its exact
/// two-instruction equivalent `vpmaddwd` + `vpaddd` — the fallback for
/// CPUs (or forced runs) without AVX-512-VNNI. Kept as a separate
/// `#[target_feature]` twin rather than a branch so neither instantiation
/// ever carries the other's ISA requirement.
///
/// # Safety
///
/// Requires AVX-512 F and BW. Same operand preconditions as
/// [`panel_dots_vnni`].
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn panel_dots_bw<const R: usize>(
    acodes: &[&[i16]; R],
    panel: &[i16],
    blocks: usize,
) -> [__m128i; R] {
    let mut acc = [[_mm512_setzero_si512(); PANEL]; R];
    for t in 0..blocks / 2 {
        // SAFETY: identical bounds to the VNNI twin — chunk row `t` at
        // `t·2·PANEL·K1`, A chunk `t` within `blocks·K1` codes.
        unsafe {
            let bptr = panel.as_ptr().add(t * 2 * PANEL * K1);
            let b0 = _mm512_loadu_epi16(bptr);
            let b1 = _mm512_loadu_epi16(bptr.add(CHUNK));
            let b2 = _mm512_loadu_epi16(bptr.add(2 * CHUNK));
            let b3 = _mm512_loadu_epi16(bptr.add(3 * CHUNK));
            for (r, a) in acodes.iter().enumerate() {
                let va = _mm512_loadu_epi16(a.as_ptr().add(t * CHUNK));
                acc[r][0] = _mm512_add_epi32(acc[r][0], _mm512_madd_epi16(va, b0));
                acc[r][1] = _mm512_add_epi32(acc[r][1], _mm512_madd_epi16(va, b1));
                acc[r][2] = _mm512_add_epi32(acc[r][2], _mm512_madd_epi16(va, b2));
                acc[r][3] = _mm512_add_epi32(acc[r][3], _mm512_madd_epi16(va, b3));
            }
        }
    }
    if blocks % 2 == 1 {
        let kb = blocks - 1;
        // SAFETY: identical bounds to the VNNI twin's masked tail — the
        // low-half masked loads access only one lone block each.
        unsafe {
            let bptr = panel.as_ptr().add(kb * PANEL * K1);
            let b0 = _mm512_maskz_loadu_epi16(0xFFFF, bptr);
            let b1 = _mm512_maskz_loadu_epi16(0xFFFF, bptr.add(K1));
            let b2 = _mm512_maskz_loadu_epi16(0xFFFF, bptr.add(2 * K1));
            let b3 = _mm512_maskz_loadu_epi16(0xFFFF, bptr.add(3 * K1));
            for (r, a) in acodes.iter().enumerate() {
                let va = _mm512_maskz_loadu_epi16(0xFFFF, a.as_ptr().add(kb * K1));
                acc[r][0] = _mm512_add_epi32(acc[r][0], _mm512_madd_epi16(va, b0));
                acc[r][1] = _mm512_add_epi32(acc[r][1], _mm512_madd_epi16(va, b1));
                acc[r][2] = _mm512_add_epi32(acc[r][2], _mm512_madd_epi16(va, b2));
                acc[r][3] = _mm512_add_epi32(acc[r][3], _mm512_madd_epi16(va, b3));
            }
        }
    }
    let mut dots = [_mm_setzero_si128(); R];
    for (dot, row_acc) in dots.iter_mut().zip(acc.iter()) {
        // SAFETY: `reduce4` is register-only and inherits F/BW, enabled
        // on this fn.
        *dot = unsafe { reduce4(row_acc) };
    }
    dots
}

/// Transpose/reduce four 16-lane accumulators into one `[d0, d1, d2, d3]`
/// vector: each `zmm`'s halves fold with one `vpaddd`, then [`hadd4`]
/// finishes all four columns at once — exact integer sums,
/// order-insensitive.
///
/// # Safety
///
/// Requires AVX-512 F and BW (register-only: no memory access).
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn reduce4(acc: &[__m512i; 4]) -> __m128i {
    let s0 = _mm256_add_epi32(
        _mm512_castsi512_si256(acc[0]),
        _mm512_extracti64x4_epi64::<1>(acc[0]),
    );
    let s1 = _mm256_add_epi32(
        _mm512_castsi512_si256(acc[1]),
        _mm512_extracti64x4_epi64::<1>(acc[1]),
    );
    let s2 = _mm256_add_epi32(
        _mm512_castsi512_si256(acc[2]),
        _mm512_extracti64x4_epi64::<1>(acc[2]),
    );
    let s3 = _mm256_add_epi32(
        _mm512_castsi512_si256(acc[3]),
        _mm512_extracti64x4_epi64::<1>(acc[3]),
    );
    // SAFETY: `hadd4` is register-only and inherits F/BW, enabled here.
    unsafe { hadd4(s0, s1, s2, s3) }
}

/// The gen-2 transpose/reduce for four 8-lane partials: two `vphaddd`
/// rounds and a cross-lane add give `[Σm0, Σm1, Σm2, Σm3]` — exact
/// integer sums, order-insensitive. (The 256-bit intrinsics are legal
/// here: AVX-512 F implies AVX2.)
///
/// # Safety
///
/// Requires AVX-512 F and BW (register-only: no memory access).
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn hadd4(m0: __m256i, m1: __m256i, m2: __m256i, m3: __m256i) -> __m128i {
    let q = _mm256_hadd_epi32(_mm256_hadd_epi32(m0, m1), _mm256_hadd_epi32(m2, m3));
    _mm_add_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256(q, 1))
}

/// `dots[i] · 2^(es[i])` rounded to `f32` once, 4 lanes wide — the gen-2
/// scale-out verbatim: the power of two is built as an `f64` bit pattern
/// (`(e + 1023) << 52` — exact; both users keep `e` in normal-`f64`
/// range, the deferred path by the grid window and the per-block path by
/// the format ulp floors), the product is an exact `f64`, and
/// `vcvtpd2ps` performs the one rounding.
///
/// # Safety
///
/// Requires AVX-512 F and BW (register-only: no memory access).
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn scale4(dots: __m128i, es: __m128i) -> __m128 {
    let bits = _mm256_slli_epi64(
        _mm256_add_epi64(_mm256_cvtepi32_epi64(es), _mm256_set1_epi64x(1023)),
        52,
    );
    _mm256_cvtpd_ps(_mm256_mul_pd(
        _mm256_cvtepi32_pd(dots),
        _mm256_castsi256_pd(bits),
    ))
}

/// Per-block scale-out for one (row, 4-column panel): the portable
/// kernel's rounding chain — one `f32` rounding per block per column,
/// `f32` accumulation in K-block order — kept, with each chunk's
/// `vpmaddwd` halves split per block (low `i32` lanes are block `2t`'s
/// pair-sums, high lanes block `2t + 1`'s), transposed/reduced four
/// columns at a time, and scaled out 4 lanes wide into an `f32` register
/// accumulator — the gen-2 `panel8_per_block` idiom at double depth.
/// Serves rows whose exponent metadata disqualifies whole-panel
/// deferral; columns that would defer individually produce the same bits
/// on this chain (under the deferral conditions every per-block partial
/// and running sum is an integer multiple of `2^E` below `2²⁴`, exactly
/// representable in `f32`, so the chain never rounds).
///
/// # Safety
///
/// Requires AVX-512 F and BW. `acodes` must hold `ap.blocks · K1` codes,
/// `row` must be a valid row of `ap` (its per-block exponents exist),
/// `out_row` must be at least `j + PANEL` wide, and the panel at `pbase`
/// (columns `j .. j + PANEL`) must exist in `bp` (codes and exponents).
#[target_feature(enable = "avx512f,avx512bw")]
#[allow(clippy::too_many_arguments)] // one row's operands + panel addressing
unsafe fn panel4_per_block(
    acodes: &[i16],
    ap: PlaneView<'_, i16>,
    row: usize,
    bp: PlaneView<'_, i16>,
    pbase: usize,
    j: usize,
    c: i32,
    out_row: &mut [f32],
) {
    let blocks = ap.blocks;
    let aexps = &ap.exps[row * blocks..][..blocks];
    let panel = &bp.codes[pbase * K1..][..blocks * PANEL * K1];
    let pexps = &bp.exps[pbase..][..blocks * PANEL];
    // Paired slots interleave the two blocks' exponents per column; these
    // pick the even (block `2t`) and odd (block `2t + 1`) entries out of
    // one 8-exponent load.
    let even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    let odd = _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);
    let mut f = _mm_setzero_ps();
    for t in 0..blocks / 2 {
        // SAFETY: chunk row `t` is the four consecutive 32-lane B loads
        // at `t·2·PANEL·K1` (`panel` holds `blocks·PANEL·K1`); the A
        // load reads chunk `t` of a slice holding `blocks·K1` codes; the
        // 8-lane exponent load reads `pexps[t·2·PANEL ..][..8]`, within
        // `blocks·PANEL`; `hadd4`/`scale4` are register-only and inherit
        // F/BW.
        unsafe {
            let bptr = panel.as_ptr().add(t * 2 * PANEL * K1);
            let va = _mm512_loadu_epi16(acodes.as_ptr().add(t * CHUNK));
            let m0 = _mm512_madd_epi16(va, _mm512_loadu_epi16(bptr));
            let m1 = _mm512_madd_epi16(va, _mm512_loadu_epi16(bptr.add(CHUNK)));
            let m2 = _mm512_madd_epi16(va, _mm512_loadu_epi16(bptr.add(2 * CHUNK)));
            let m3 = _mm512_madd_epi16(va, _mm512_loadu_epi16(bptr.add(3 * CHUNK)));
            let dlo = hadd4(
                _mm512_castsi512_si256(m0),
                _mm512_castsi512_si256(m1),
                _mm512_castsi512_si256(m2),
                _mm512_castsi512_si256(m3),
            );
            let dhi = hadd4(
                _mm512_extracti64x4_epi64::<1>(m0),
                _mm512_extracti64x4_epi64::<1>(m1),
                _mm512_extracti64x4_epi64::<1>(m2),
                _mm512_extracti64x4_epi64::<1>(m3),
            );
            let ev = _mm256_loadu_si256(pexps[t * 2 * PANEL..].as_ptr() as *const __m256i);
            let elo = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(ev, even));
            let ehi = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(ev, odd));
            let flo = scale4(dlo, _mm_add_epi32(_mm_set1_epi32(aexps[2 * t] + c), elo));
            let fhi = scale4(
                dhi,
                _mm_add_epi32(_mm_set1_epi32(aexps[2 * t + 1] + c), ehi),
            );
            f = _mm_add_ps(_mm_add_ps(f, flo), fhi);
        }
    }
    if blocks % 2 == 1 {
        let kb = blocks - 1;
        // SAFETY: the low-half masked loads access only their 16
        // masked-in lanes — the compact lone-block slots
        // `(blocks−1)·PANEL + 0..4` and A's block `kb`; the 4-lane
        // exponent load reads the same contiguous lone slots
        // (`kb·PANEL + 4 ≤ blocks·PANEL`); `hadd4`/`scale4` are
        // register-only and inherit F/BW.
        unsafe {
            let bptr = panel.as_ptr().add(kb * PANEL * K1);
            let va = _mm512_maskz_loadu_epi16(0xFFFF, acodes.as_ptr().add(kb * K1));
            let m0 = _mm512_madd_epi16(va, _mm512_maskz_loadu_epi16(0xFFFF, bptr));
            let m1 = _mm512_madd_epi16(va, _mm512_maskz_loadu_epi16(0xFFFF, bptr.add(K1)));
            let m2 = _mm512_madd_epi16(va, _mm512_maskz_loadu_epi16(0xFFFF, bptr.add(2 * K1)));
            let m3 = _mm512_madd_epi16(va, _mm512_maskz_loadu_epi16(0xFFFF, bptr.add(3 * K1)));
            // The masked-out high lanes are zero, so the low halves
            // alone carry the lone block's pair-sums.
            let d = hadd4(
                _mm512_castsi512_si256(m0),
                _mm512_castsi512_si256(m1),
                _mm512_castsi512_si256(m2),
                _mm512_castsi512_si256(m3),
            );
            let es = _mm_add_epi32(
                _mm_set1_epi32(aexps[kb] + c),
                _mm_loadu_si128(pexps[kb * PANEL..].as_ptr() as *const __m128i),
            );
            f = _mm_add_ps(f, scale4(d, es));
        }
    }
    // SAFETY: `j + PANEL ≤ n` bounds the 4-lane store, and `out_row` is
    // at least `j + PANEL` wide.
    unsafe { _mm_storeu_ps(out_row[j..].as_mut_ptr(), f) };
}

/// One `i16` block dot via a low-half masked load pair — 16 codes in the
/// masked-in lanes, `vpmaddwd`, horizontal reduce. The per-block
/// workhorse of [`col_one`]'s fallback arm (and the shape both panel
/// cores use for the lone-block tail).
///
/// # Safety
///
/// Requires AVX-512 F and BW; `a` and `b` must each hold at least
/// `K1 = 16` codes.
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn dot16(a: &[i16], b: &[i16]) -> i32 {
    // SAFETY: both low-half masked loads access only their 16 masked-in
    // lanes — exactly the `K1` codes each slice is required to hold.
    let m = unsafe {
        _mm512_madd_epi16(
            _mm512_maskz_loadu_epi16(0xFFFF, a.as_ptr()),
            _mm512_maskz_loadu_epi16(0xFFFF, b.as_ptr()),
        )
    };
    _mm512_reduce_add_epi32(m)
}

/// One output element of a chunk-paired panel (`width` columns, block-slot
/// base `pbase`, panel lane `lane`, output column `j`): deferred when its
/// column qualifies — a chunked 512-bit dot with one masked half-chunk
/// tail and a single scale-out — or the per-block scale-out chain
/// otherwise. Serves the ragged final panel (at most `PANEL − 1`
/// columns).
///
/// # Safety
///
/// Requires AVX-512 F and BW. `acodes` must hold `ap.blocks · K1` codes,
/// `row` must be a valid row of `ap` (its per-block exponents exist),
/// `lane < width`, `j` must be a valid B-plane column, and the panel's
/// block slots at `pbase` (chunk-paired at `width` — see
/// `pack::panel_slot`) must exist in `bp`.
#[target_feature(enable = "avx512f,avx512bw")]
#[allow(clippy::too_many_arguments)] // one output element's full addressing context
unsafe fn col_one(
    acodes: &[i16],
    ap: PlaneView<'_, i16>,
    row: usize,
    au: i32,
    bp: PlaneView<'_, i16>,
    pbase: usize,
    width: usize,
    lane: usize,
    j: usize,
    c: i32,
    ctx: DeferCtx,
    out: &mut f32,
) {
    let blocks = ap.blocks;
    let bu = bp.uexp[j];
    // Chunk-paired slot of block `kb` for this lane (mirrors
    // `pack::panel_slot` at this panel's width).
    let slot = |kb: usize| {
        pbase
            + if kb == blocks - 1 && blocks % 2 == 1 {
                (blocks - 1) * width + lane
            } else {
                (kb / 2) * (width * 2) + lane * 2 + (kb & 1)
            }
    };
    if ctx.enabled
        && au != MIXED_EXP
        && bu != MIXED_EXP
        && (ctx.e_lo..=ctx.e_hi).contains(&(au + bu))
    {
        let mut acc = _mm512_setzero_si512();
        for t in 0..blocks / 2 {
            // SAFETY: each 32-lane load reads one chunk — A's chunk `t`
            // (within `blocks·K1` codes) and this lane's paired slots
            // `slot(2t)`/`slot(2t)+1` (contiguous by the pairing, in
            // bounds by this fn's preconditions).
            unsafe {
                let va = _mm512_loadu_epi16(acodes.as_ptr().add(t * CHUNK));
                let vb = _mm512_loadu_epi16(bp.codes.as_ptr().add(slot(2 * t) * K1));
                acc = _mm512_add_epi32(acc, _mm512_madd_epi16(va, vb));
            }
        }
        let mut total = i64::from(_mm512_reduce_add_epi32(acc));
        if blocks % 2 == 1 {
            let kb = blocks - 1;
            // SAFETY: both operand slices are exactly `K1` codes (the
            // lone-block slot is in bounds by this fn's preconditions)
            // and `dot16` inherits F/BW.
            let d = unsafe { dot16(&acodes[kb * K1..][..K1], &bp.codes[slot(kb) * K1..][..K1]) };
            total += i64::from(d);
        }
        *out = (total as f64 * pow2(au + bu + c)) as f32;
    } else {
        let aexps = &ap.exps[row * blocks..][..blocks];
        let mut acc = 0.0f32;
        for kb in 0..blocks {
            // SAFETY: both operand slices are exactly `K1` codes (every
            // block slot is in bounds by this fn's preconditions) and
            // `dot16` inherits F/BW.
            let d = unsafe { dot16(&acodes[kb * K1..][..K1], &bp.codes[slot(kb) * K1..][..K1]) };
            if d != 0 {
                acc += (d as f64 * pow2(aexps[kb] + bp.exps[slot(kb)] + c)) as f32;
            }
        }
        *out = acc;
    }
}
