//! # mx-core — Block Data Representations and shared microexponents
//!
//! A from-scratch reproduction of the numerics in *"With Shared
//! Microexponents, A Little Shifting Goes a Long Way"* (ISCA 2023): the
//! **BDR** framework for two-level block quantization and the **MX4 / MX6 /
//! MX9** shared-microexponent formats, together with every format family the
//! paper compares against — scalar FP8/FP6/FP4, software-scaled INT, block
//! floating point (MSFP), and VSQ — plus the QSNR statistical methodology
//! (Eq. 3) and the Theorem 1 fidelity lower bound.
//!
//! ## Quick tour
//!
//! Quantize a vector with MX9 and measure its fidelity:
//!
//! ```
//! use mx_core::bdr::{BdrFormat, BdrQuantizer};
//! use mx_core::qsnr::{measure_qsnr, Distribution, QsnrConfig};
//!
//! let mut q = BdrQuantizer::new(BdrFormat::MX9);
//! let qsnr = measure_qsnr(
//!     &mut q,
//!     Distribution::NormalVariableVariance,
//!     QsnrConfig { vectors: 64, vector_len: 512, seed: 1 },
//! );
//! assert!(qsnr > 30.0, "MX9 is a high-fidelity format: {qsnr} dB");
//! ```
//!
//! Pack values into a real MX bit stream:
//!
//! ```
//! use mx_core::{bdr::BdrFormat, mx::MxTensor};
//!
//! let activations: Vec<f32> = (0..128).map(|i| (i as f32 * 0.1).cos()).collect();
//! let packed = MxTensor::encode(BdrFormat::MX6, &activations);
//! assert_eq!(packed.as_bytes().len(), 128 * 6 / 8);
//! ```
//!
//! ## Module map
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`bdr`] | Fig. 5 — the BDR two-level scaling framework; MX/MSFP presets |
//! | [`engine`] | The unified block-quantization engine: one block plan, value / packed / strided kernels |
//! | [`gemm`] | Fig. 8 — integer-domain quantized GEMM over block codes, prepack/execute split |
//! | [`fgemm`] | Blocked, vectorized FP32 GEMM (the unquantized baseline path) |
//! | [`parallel`] | Chunked data-parallel utilities behind every multi-core path |
//! | [`mx`] | Fig. 4 — packed bit-stream encoding of MX tensors |
//! | [`scalar`] | FP8/FP6/FP4/BF16/FP16 scalar formats |
//! | [`fp_scaled`] | Table I row "FP8" — scalar floats under SW delayed scaling |
//! | [`int_quant`] | Table I row "INT" — software-scaled integers |
//! | [`vsq`] | Table I row "VSQ" — per-vector scaled quantization |
//! | [`scaling`] | First-level scale strategies (amax / delayed) |
//! | [`qsnr`] | Eq. 3 — quantization signal-to-noise methodology |
//! | [`theory`] | Theorem 1 — QSNR lower bound |
//! | [`taxonomy`] | Table I as data |
//! | [`knobs`] | Registry of `MX_*` environment knobs |
//! | [`bits`], [`util`] | Bit-exact plumbing |

#![warn(missing_docs)]
// Every unsafe operation inside an `unsafe fn` must sit in its own scoped
// `unsafe {}` block with a `// SAFETY:` justification — the contract
// `mx-audit` enforces on the kernel modules.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bdr;
pub mod bits;
pub mod engine;
pub mod error;
pub mod fgemm;
pub mod fp_scaled;
pub mod gemm;
pub mod int_quant;
pub mod knobs;
pub mod mx;
pub mod parallel;
pub mod qsnr;
pub mod scalar;
pub mod scaling;
pub mod taxonomy;
pub mod theory;
pub mod util;
pub mod vsq;

pub use bdr::{BdrFormat, BdrQuantizer};
pub use engine::QuantEngine;
pub use error::FormatError;
pub use scalar::ScalarFormat;

/// A quantizer that maps `f32` vectors onto a format's representable grid.
///
/// `quantize_dequantize` returns the *recovered* values (`s·ss·Xq` in the
/// paper's notation): this "fake quantization" view is what both the QSNR
/// methodology and quantization-aware training consume. Implementations may
/// be stateful (delayed scaling tracks history), hence `&mut self`;
/// [`VectorQuantizer::reset`] clears any such state.
///
/// # Examples
///
/// ```
/// use mx_core::{BdrFormat, BdrQuantizer, VectorQuantizer};
///
/// let mut q = BdrQuantizer::new(BdrFormat::MX4);
/// assert_eq!(q.bits_per_element(), 4.0);
/// let y = q.quantize_dequantize(&[0.1, 0.2, 0.3]);
/// assert_eq!(y.len(), 3);
/// ```
pub trait VectorQuantizer {
    /// Human-readable configuration label (e.g. `"MX9"`,
    /// `"INT8(k1=1024,delayed(16))"`).
    fn label(&self) -> String;

    /// Average storage bits per element, including amortized scale factors.
    fn bits_per_element(&self) -> f64;

    /// Quantizes `xs` to the format's grid and returns the dequantized
    /// values.
    fn quantize_dequantize(&mut self, xs: &[f32]) -> Vec<f32>;

    /// Clears any accumulated scaling state (no-op for stateless formats).
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp_scaled::FpScaledQuantizer;
    use crate::int_quant::IntQuantizer;
    use crate::scaling::ScaleStrategy;
    use crate::vsq::VsqQuantizer;

    /// All quantizer families are usable through the trait object interface.
    #[test]
    fn trait_objects_cover_every_family() {
        let mut quantizers: Vec<Box<dyn VectorQuantizer>> = vec![
            Box::new(BdrQuantizer::new(BdrFormat::MX9)),
            Box::new(BdrQuantizer::new(BdrFormat::MSFP12)),
            Box::new(IntQuantizer::new(8, 1024, ScaleStrategy::Amax)),
            Box::new(FpScaledQuantizer::new(
                ScalarFormat::E4M3,
                ScaleStrategy::Amax,
            )),
            Box::new(VsqQuantizer::new(4, 4, 1024, ScaleStrategy::Amax)),
        ];
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.21).sin()).collect();
        for q in quantizers.iter_mut() {
            let y = q.quantize_dequantize(&x);
            assert_eq!(y.len(), x.len(), "{}", q.label());
            assert!(q.bits_per_element() > 0.0);
            q.reset();
        }
    }

    /// The paper's headline fidelity ordering on the Fig. 7 distribution:
    /// MX9 > FP8(E4M3) quantization fidelity, and MX6 sits between the two
    /// FP8 variants.
    #[test]
    fn headline_qsnr_ordering() {
        use crate::qsnr::{measure_qsnr, Distribution, QsnrConfig};
        let cfg = QsnrConfig {
            vectors: 128,
            vector_len: 1024,
            seed: 123,
        };
        let d = Distribution::NormalVariableVariance;
        let mx9 = measure_qsnr(&mut BdrQuantizer::new(BdrFormat::MX9), d, cfg);
        let mx6 = measure_qsnr(&mut BdrQuantizer::new(BdrFormat::MX6), d, cfg);
        let e4m3 = measure_qsnr(
            &mut FpScaledQuantizer::new(ScalarFormat::E4M3, ScaleStrategy::default()),
            d,
            cfg,
        );
        let e5m2 = measure_qsnr(
            &mut FpScaledQuantizer::new(ScalarFormat::E5M2, ScaleStrategy::default()),
            d,
            cfg,
        );
        assert!(
            mx9 > e4m3 + 10.0,
            "MX9 ({mx9:.1} dB) well above FP8-E4M3 ({e4m3:.1} dB)"
        );
        assert!(
            mx6 > e5m2,
            "MX6 ({mx6:.1} dB) above FP8-E5M2 ({e5m2:.1} dB)"
        );
        assert!(
            mx6 < e4m3 + 3.0,
            "MX6 ({mx6:.1} dB) in the FP8 neighbourhood ({e4m3:.1} dB)"
        );
    }
}
