//! Theorem 1 of the paper: a closed-form lower bound on the QSNR of BDR
//! formats, valid for vectors drawn from *arbitrary* distributions.
//!
//! For an `N`-dimensional vector quantized with mantissa width `m`, block
//! granularities `k1`/`k2`, and a `d2`-bit microexponent (with `d1 = 8` so
//! the shared exponent never clamps on `f32` inputs):
//!
//! ```text
//! QSNR ≥ 6.02·m + 10·log10( 2^(2β) / (min(N, k1) + (2^(2β) − 1)·k2) )
//! ```
//!
//! where `β = 2^d2 − 1` is the maximum sub-block shift. The bound is linear
//! in `m` (each mantissa bit is worth `20·log10(2) ≈ 6.02` dB) and
//! logarithmic in the block granularities, matching the empirical trends in
//! Fig. 7. A property-based test in this module checks the bound against
//! the implementation on adversarially shaped inputs.

use crate::bdr::BdrFormat;

/// Exact dB value of one mantissa bit, `20·log10(2)` (the paper rounds this
/// to 6.02).
pub const DB_PER_MANTISSA_BIT: f64 = 6.020599913279624;

/// Evaluates the Theorem 1 lower bound (in dB) for a given format and vector
/// length `n`.
///
/// # Examples
///
/// ```
/// # use mx_core::bdr::BdrFormat;
/// # use mx_core::theory::qsnr_lower_bound_db;
/// let b = qsnr_lower_bound_db(BdrFormat::MX9, 1024);
/// assert!(b > 34.0 && b < 36.0);
/// ```
pub fn qsnr_lower_bound_db(format: BdrFormat, n: usize) -> f64 {
    qsnr_lower_bound_db_raw(format.m(), format.d2(), format.k1(), format.k2(), n)
}

/// Raw-parameter form of [`qsnr_lower_bound_db`] (useful in sweeps that have
/// not materialized a validated [`BdrFormat`]).
pub fn qsnr_lower_bound_db_raw(m: u32, d2: u32, k1: usize, k2: usize, n: usize) -> f64 {
    let beta = (1u32 << d2) - 1;
    let four_beta = 2f64.powi(2 * beta as i32);
    let denom = n.min(k1) as f64 + (four_beta - 1.0) * k2 as f64;
    DB_PER_MANTISSA_BIT * m as f64 + 10.0 * (four_beta / denom).log10()
}

/// The worst-case noise-to-signal *ratio* implied by the bound (linear,
/// not dB) — convenient for direct comparison with measured ratios.
pub fn worst_case_noise_to_signal(format: BdrFormat, n: usize) -> f64 {
    10f64.powf(-qsnr_lower_bound_db(format, n) / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdr::BdrQuantizer;
    use crate::qsnr::qsnr_db;
    use crate::VectorQuantizer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bound_values_for_table_ii_formats() {
        // beta = 1 for all MX formats: bound = 6.02m + 10 log10(4 / (16 + 3*2)).
        let geom = 10.0 * (4.0f64 / 22.0).log10();
        for (fmt, m) in [
            (BdrFormat::MX9, 7.0),
            (BdrFormat::MX6, 4.0),
            (BdrFormat::MX4, 2.0),
        ] {
            let b = qsnr_lower_bound_db(fmt, 10_000);
            assert!((b - (DB_PER_MANTISSA_BIT * m + geom)).abs() < 1e-9);
        }
    }

    #[test]
    fn bound_improves_for_short_vectors() {
        // N < k1 effectively shrinks the block.
        let long = qsnr_lower_bound_db(BdrFormat::MX6, 1024);
        let short = qsnr_lower_bound_db(BdrFormat::MX6, 4);
        assert!(short > long);
    }

    #[test]
    fn bfp_bound_recovers_classic_form() {
        // d2 = 0 -> beta = 0 -> bound = 6.02m - 10 log10(k1).
        let fmt = BdrFormat::new(4, 8, 0, 16, 16).unwrap();
        let b = qsnr_lower_bound_db(fmt, 1000);
        let expect = DB_PER_MANTISSA_BIT * 4.0 - 10.0 * 16f64.log10();
        assert!((b - expect).abs() < 1e-9);
    }

    #[test]
    fn microexponents_improve_the_bound() {
        let bfp = BdrFormat::new(4, 8, 0, 16, 16).unwrap();
        let mx = BdrFormat::new(4, 8, 1, 16, 2).unwrap();
        assert!(qsnr_lower_bound_db(mx, 1024) > qsnr_lower_bound_db(bfp, 1024));
    }

    #[test]
    fn bound_holds_on_adversarial_two_scale_vector() {
        // One huge element pins the shared exponent; the rest sit 2^5 below,
        // the worst case for block formats.
        let fmt = BdrFormat::MX6;
        let mut x = vec![0.03125f32; 16];
        x[0] = 1.0;
        let q = fmt.quantize_dequantize(&x);
        let measured = qsnr_db(&x, &q);
        let bound = qsnr_lower_bound_db(fmt, x.len());
        assert!(
            measured >= bound - 1e-9,
            "measured {measured} < bound {bound}"
        );
    }

    /// Theorem 1: the per-vector QSNR of any BDR quantization is at least
    /// the closed-form bound, for arbitrary finite inputs. Property-style
    /// test over 512 randomly drawn (format, vector) cases.
    #[test]
    fn bound_holds_for_arbitrary_vectors() {
        let mut rng = StdRng::seed_from_u64(0x7e01);
        for case in 0..512 {
            let m = rng.gen_range(1u32..=8);
            let d2 = rng.gen_range(0u32..=3);
            let k2 = 1usize << rng.gen_range(0u32..=3);
            let k1 = 16usize.max(k2);
            let fmt = BdrFormat::new(m, 8, d2, k1, k2).unwrap();
            let len = rng.gen_range(1usize..80);
            // Arbitrary finite magnitudes across 60 decades, with explicit
            // zeros mixed in (they exercise the all-zero sub-block
            // shift = beta path) and values below the d1-representable
            // exponent range flushed to zero (DESIGN.md documents the
            // flush-to-zero divergence from FP32 subnormal semantics,
            // which Theorem 1 excludes).
            let values: Vec<f32> = (0..len)
                .map(|_| {
                    if rng.gen_bool(0.15) {
                        return 0.0;
                    }
                    let mag = 10f32.powf(rng.gen_range(-40.0f32..20.0));
                    let v = if rng.gen::<bool>() { mag } else { -mag };
                    if v.abs() < 1e-30 {
                        0.0
                    } else {
                        v
                    }
                })
                .collect();
            let mut q = BdrQuantizer::new(fmt);
            let out = q.quantize_dequantize(&values);
            let measured = qsnr_db(&values, &out);
            if measured.is_nan() {
                // All-zero input: bound vacuous.
                continue;
            }
            let bound = qsnr_lower_bound_db(fmt, values.len());
            assert!(
                measured >= bound - 1e-6,
                "case {case}: measured {measured} dB below bound {bound} dB for {fmt:?}"
            );
        }
    }

    /// The bound is monotone in m: more mantissa bits never lower it.
    #[test]
    fn bound_monotone_in_mantissa() {
        for m in 1u32..=22 {
            for d2 in 0u32..=4 {
                let a = qsnr_lower_bound_db_raw(m, d2, 16, 2, 1024);
                let b = qsnr_lower_bound_db_raw(m + 1, d2, 16, 2, 1024);
                assert!(b > a, "m={m} d2={d2}");
            }
        }
    }
}
