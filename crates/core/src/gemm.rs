//! Integer-domain quantized GEMM fused with the quantization engine.
//!
//! The point of the paper's Fig. 8 compute flow is that a BDR datapath never
//! multiplies wide floats: each operand element is a narrow sign/magnitude
//! *code*, each `k2`-sub-block carries a microexponent shift, and each
//! `k1`-block carries one shared exponent. A dot product over a block pair
//! is then
//!
//! 1. **shift alignment** — every code is left-shifted by `β − τ` (its
//!    sub-block's headroom under the maximum microexponent shift `β`),
//!    putting all magnitudes of the block on one fixed-point grid;
//! 2. **integer MACs** — the aligned codes multiply and accumulate in plain
//!    integer arithmetic (`i64` here, `i32` when the format pair is narrow
//!    enough to never overflow);
//! 3. **shared exponent add + one scale-out** — the block-pair total `T` is
//!    an exact integer in units of `2^(E_a + E_b + c)`, where `E_a`/`E_b`
//!    are the two shared exponents and
//!    `c = −(m_a − 1) − β_a − (m_b − 1) − β_b` accounts for the mantissa
//!    binary points and the alignment shifts; a single `f32` scale-out per
//!    block pair converts `T` back to a float, which is accumulated across
//!    the K blocks.
//!
//! [`quantized_gemm`] implements exactly that: it lowers A's rows and B's
//! columns to aligned integer codes **once** (through the same
//! [`crate::engine`] block plan and rounding rule as
//! [`crate::engine::QuantEngine::quantize_block_codes`]), then runs a
//! cache-tiled, row-parallel integer GEMM over the codes.
//!
//! # Exactness
//!
//! For every supported format pair (see [`code_domain_supported`]) the
//! integer path is **bit-identical** to the quantize → dequantize → `f32`
//! matmul reference ([`reference_gemm`]): dequantized values are exact
//! integer multiples of their block's ulp, block-pair products and sums fit
//! in the 52-bit exact-integer range of `f64`, and both paths round once
//! per block pair before accumulating in `f32` in the same K-block order.
//! This is an equality, not a tolerance — the consistency suite asserts it
//! bit for bit.
//!
//! # Examples
//!
//! ```
//! use mx_core::bdr::BdrFormat;
//! use mx_core::gemm::{code_domain_supported, quantized_gemm, reference_gemm};
//!
//! let fmt = BdrFormat::MX6;
//! assert!(code_domain_supported(&fmt, &fmt));
//! let a: Vec<f32> = (0..2 * 32).map(|i| (i as f32 * 0.17).sin()).collect();
//! let b: Vec<f32> = (0..32 * 3).map(|i| (i as f32 * 0.13).cos()).collect();
//! let y = quantized_gemm(&a, &b, 2, 32, 3, fmt, fmt, 1).unwrap();
//! assert_eq!(y, reference_gemm(&a, &b, 2, 32, 3, fmt, fmt));
//! ```

use crate::bdr::BdrFormat;
use crate::engine::{self, QuantEngine, PARALLEL_GRAIN};
use crate::parallel;
use crate::util::pow2;

/// Rows of A processed per tile: each loaded B column-block is reused for
/// this many output rows, cutting B-code traffic by the tile height.
const TILE_M: usize = 8;

/// Whether the `(fa, fb)` operand pair can run on the integer code-domain
/// path with an exactness guarantee. Requires:
///
/// - matching first-level block size (`k1`), so A-row and B-column blocks
///   tile the reduction dimension identically;
/// - per operand, `m + β ≤ 30`: shift-aligned codes fit an `i32`;
/// - `(m_a + β_a) + (m_b + β_b) + ⌈log2 k1⌉ ≤ 52`: block-pair dot products
///   accumulate without `i64` overflow *and* convert to `f64` exactly;
/// - per operand, the smallest representable ulp stays at or above `2^-149`,
///   so dequantized values are exact `f32`s and the dequantize reference
///   sees the same numbers the codes encode.
///
/// Every preset in the repository (MX4/MX6/MX9, MSFP12/MSFP16) qualifies;
/// exotic custom formats fall back to the dequantize path.
pub fn code_domain_supported(fa: &BdrFormat, fb: &BdrFormat) -> bool {
    if fa.k1() != fb.k1() {
        return false;
    }
    let wa = fa.m() + fa.max_shift();
    let wb = fb.m() + fb.max_shift();
    if wa > 30 || wb > 30 {
        return false;
    }
    if wa + wb + ceil_log2(fa.k1()) > 52 {
        return false;
    }
    exact_dequantize(fa) && exact_dequantize(fb)
}

/// The format's smallest ulp (`2^(E_min − β − (m − 1))`) is representable in
/// `f32` subnormal space, so every code dequantizes to an exact `f32`.
fn exact_dequantize(fmt: &BdrFormat) -> bool {
    fmt.min_shared_exp() - fmt.max_shift() as i32 - (fmt.m() as i32 - 1) >= -149
}

fn ceil_log2(n: usize) -> u32 {
    debug_assert!(n > 0);
    usize::BITS - (n - 1).leading_zeros()
}

/// Storage type for shift-aligned signed codes. Narrow format pairs (every
/// MX/MSFP preset) use `i16`, whose widening multiply-accumulate maps onto
/// the CPU's packed 16-bit MAC instructions; wide pairs fall back to `i32`
/// codes with an `i64` accumulator.
trait Code: Copy + Send + Sync {
    /// Lossless narrowing from the aligned `i32` code (guaranteed to fit by
    /// the [`code_domain_supported`] width gates).
    fn encode(aligned: i32) -> Self;
    /// Exact integer dot product of two equal-length blocks.
    fn dot(a: &[Self], b: &[Self]) -> i64;
    /// All-zero code (block padding).
    const ZERO: Self;
}

impl Code for i16 {
    const ZERO: Self = 0;

    #[inline(always)]
    fn encode(aligned: i32) -> Self {
        debug_assert!(i32::from(aligned as i16) == aligned);
        aligned as i16
    }

    #[inline(always)]
    fn dot(a: &[Self], b: &[Self]) -> i64 {
        // The i32 accumulator cannot overflow: pairwise i16 products are
        // below 2^31 because `w_a + w_b ≤ 30`, and the block total is
        // bounded by the `w_a + w_b + ⌈log2 k1⌉ ≤ 31` dispatch gate.
        let mut acc = 0i32;
        let mut done = 0;
        // `pmaddwd` (SSE2, part of the x86-64 baseline ABI) is the exact
        // hardware form of this datapath: packed 16-bit multiplies with
        // pairwise 32-bit accumulation — one instruction per 8 codes.
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{
                __m128i, _mm_add_epi32, _mm_cvtsi128_si32, _mm_loadu_si128, _mm_madd_epi16,
                _mm_setzero_si128, _mm_shuffle_epi32,
            };
            let vecs = a.len() / 8;
            if vecs > 0 {
                // SAFETY: SSE2 is unconditionally available on x86_64, and
                // each unaligned 16-byte load reads lanes `8·i .. 8·i + 8`,
                // in bounds for both slices by the `vecs` bound.
                unsafe {
                    let mut vacc = _mm_setzero_si128();
                    for i in 0..vecs {
                        let va = _mm_loadu_si128(a.as_ptr().add(8 * i) as *const __m128i);
                        let vb = _mm_loadu_si128(b.as_ptr().add(8 * i) as *const __m128i);
                        vacc = _mm_add_epi32(vacc, _mm_madd_epi16(va, vb));
                    }
                    let high = _mm_add_epi32(vacc, _mm_shuffle_epi32(vacc, 0b01_00_11_10));
                    let total = _mm_add_epi32(high, _mm_shuffle_epi32(high, 0b10_11_00_01));
                    acc = _mm_cvtsi128_si32(total);
                }
                done = 8 * vecs;
            }
        }
        for (&x, &y) in a[done..].iter().zip(b[done..].iter()) {
            acc += i32::from(x) * i32::from(y);
        }
        acc as i64
    }
}

impl Code for i32 {
    const ZERO: Self = 0;

    #[inline(always)]
    fn encode(aligned: i32) -> Self {
        aligned
    }

    #[inline(always)]
    fn dot(a: &[Self], b: &[Self]) -> i64 {
        let mut acc = 0i64;
        for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
            let mut lane = 0i64;
            for e in 0..8 {
                lane += i64::from(ca[e]) * i64::from(cb[e]);
            }
            acc += lane;
        }
        let (ra, rb) = (a.chunks_exact(8).remainder(), b.chunks_exact(8).remainder());
        for (&x, &y) in ra.iter().zip(rb.iter()) {
            acc += i64::from(x) * i64::from(y);
        }
        acc
    }
}

/// One GEMM operand lowered to shift-aligned integer codes: `vectors`
/// reduction-dimension vectors (A rows or B columns), each split into
/// `blocks` `k1`-blocks, zero-padded so every block is exactly `k1` codes.
struct CodePlane<C> {
    /// Signed, shift-aligned codes `± code · 2^(β − τ)`, laid out
    /// `[vector][block][k1]` — contiguous along the reduction dimension.
    codes: Vec<C>,
    /// Shared exponent per `[vector][block]` (0 for all-zero blocks, whose
    /// codes are all zero anyway).
    exps: Vec<i32>,
    blocks: usize,
    k1: usize,
}

/// Lowers `vectors` strided vectors of `len` elements to aligned codes.
/// Vector `v` reads `data[base_of(v) + i·stride]` — rows use
/// `(|i| i·len, 1)`, columns of a `[len, vectors]` matrix use
/// `(|j| j, vectors)`. `slot_of(v, kb)` picks the storage layout: the
/// generic kernels use vector-major `v·blocks + kb`, the column-vectorized
/// kernel packs B block-major `kb·vectors + v` so the blocks of adjacent
/// columns sit next to each other.
fn pack<C: Code>(
    data: &[f32],
    vectors: usize,
    len: usize,
    base_of: impl Fn(usize) -> usize,
    stride: usize,
    slot_of: impl Fn(usize, usize) -> usize,
    fmt: &BdrFormat,
) -> CodePlane<C> {
    let k1 = fmt.k1();
    let k2 = fmt.k2();
    let beta = fmt.max_shift();
    let max_code = fmt.max_code();
    let blocks = len.div_ceil(k1);
    let mut codes = vec![C::ZERO; vectors * blocks * k1];
    let mut exps = vec![0i32; vectors * blocks];
    let mut shifts = Vec::new();
    for v in 0..vectors {
        for kb in 0..blocks {
            let start = kb * k1;
            let blen = k1.min(len - start);
            let base = base_of(v) + start * stride;
            let Some(e) = engine::plan_into(fmt, data, base, stride, blen, &mut shifts) else {
                continue;
            };
            let slot = slot_of(v, kb);
            exps[slot] = e;
            let out = &mut codes[slot * k1..][..blen];
            for (i, slot) in out.iter_mut().enumerate() {
                let x = data[base + i * stride];
                let tau = shifts[i / k2];
                let ulp = engine::ulp_of(fmt, e, tau);
                let aligned = (engine::quantize_code(x, ulp, max_code) as i32) << (beta - tau);
                // Zeros (incl. -0.0) carry sign 0, matching the engine's
                // value and packed paths.
                *slot = C::encode(if x != 0.0 && x.is_sign_negative() {
                    -aligned
                } else {
                    aligned
                });
            }
        }
    }
    CodePlane {
        codes,
        exps,
        blocks,
        k1,
    }
}

/// Computes output rows `r0 .. r0 + rows` into `out` (a `rows × n` slice):
/// for each block pair, one integer dot product and one `f32` scale-out
/// `T · 2^(E_a + E_b + c)`, accumulated across K blocks in `f32`.
///
/// Rows are processed [`TILE_M`] at a time so each loaded B column (and its
/// exponents) is reused for the whole tile; per output element the K loop
/// walks two contiguous code arrays.
fn gemm_rows<C: Code>(
    ap: &CodePlane<C>,
    r0: usize,
    rows: usize,
    bp: &CodePlane<C>,
    n: usize,
    c: i32,
    out: &mut [f32],
) {
    let k1 = ap.k1;
    let blocks = ap.blocks;
    let kcodes = blocks * k1;
    let mut i0 = 0;
    while i0 < rows {
        let tm = TILE_M.min(rows - i0);
        for j in 0..n {
            let bcol = &bp.codes[j * kcodes..][..kcodes];
            let bexps = &bp.exps[j * blocks..][..blocks];
            for t in 0..tm {
                let row = r0 + i0 + t;
                let arow = &ap.codes[row * kcodes..][..kcodes];
                let aexps = &ap.exps[row * blocks..][..blocks];
                let mut acc = 0.0f32;
                for ((ab, bb), (&ea, &eb)) in arow
                    .chunks_exact(k1)
                    .zip(bcol.chunks_exact(k1))
                    .zip(aexps.iter().zip(bexps.iter()))
                {
                    let dot = C::dot(ab, bb);
                    if dot != 0 {
                        acc += (dot as f64 * pow2(ea + eb + c)) as f32;
                    }
                }
                out[(i0 + t) * n + j] = acc;
            }
        }
        i0 += tm;
    }
}

/// Runs `kernel(start_row, rows, out_span)` over row spans, serially or on
/// `workers` threads; spans are whole rows, so the output is bit-identical
/// either way.
fn dispatch_rows(
    m: usize,
    n: usize,
    workers: usize,
    out: &mut Vec<f32>,
    kernel: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    if workers <= 1 {
        kernel(0, m, out);
    } else {
        let rows_per = m.div_ceil(workers);
        let spans: Vec<(usize, usize)> = (0..m.div_ceil(rows_per))
            .map(|w| (w * rows_per, rows_per.min(m - w * rows_per)))
            .collect();
        let parts = parallel::map(&spans, workers, |&(start, rows)| {
            let mut part = vec![0.0f32; rows * n];
            kernel(start, rows, &mut part);
            part
        });
        out.clear();
        for part in parts {
            out.extend_from_slice(&part);
        }
    }
}

/// Packs both operands as `C` codes and runs the tiled, row-parallel GEMM.
#[allow(clippy::too_many_arguments)] // a GEMM is dims + operands + formats
fn run<C: Code>(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    fa: &BdrFormat,
    fb: &BdrFormat,
    c: i32,
    workers: usize,
    out: &mut Vec<f32>,
) {
    let blocks = k.div_ceil(fa.k1());
    let ap = pack::<C>(a, m, k, |i| i * k, 1, |v, kb| v * blocks + kb, fa);
    let bp = pack::<C>(b, n, k, |j| j, n, |v, kb| v * blocks + kb, fb);
    dispatch_rows(m, n, workers, out, |start, rows, part| {
        gemm_rows(&ap, start, rows, &bp, n, c, part);
    });
}

/// Runtime-dispatched AVX2 kernel for the `i16` code path with the preset
/// block size `k1 = 16`: one `vpmaddwd` covers a whole block, four output
/// columns are produced per step (B is packed block-major so their code
/// blocks are contiguous), and the per-block-pair scale-out — exponent add,
/// `2^e` bit construction, `f64` multiply, one `f32` rounding — runs four
/// lanes wide. The per-output accumulation order and rounding points are
/// identical to [`gemm_rows`], so the result is bit-identical to the
/// generic path (and to [`reference_gemm`]).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{dispatch_rows, pack, Code, CodePlane, TILE_M};
    use crate::bdr::BdrFormat;
    use crate::util::pow2;

    /// The preset first-level block size this kernel is specialized for.
    pub(super) const K1: usize = 16;

    /// Whether the running CPU supports the kernel.
    pub(super) fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// Packs A row-major / B block-major and runs the kernel row-parallel.
    #[allow(clippy::too_many_arguments)] // a GEMM is dims + operands + formats
    pub(super) fn run(
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        fa: &BdrFormat,
        fb: &BdrFormat,
        c: i32,
        workers: usize,
        out: &mut Vec<f32>,
    ) {
        debug_assert!(fa.k1() == K1 && fb.k1() == K1);
        let blocks = k.div_ceil(K1);
        let ap = pack::<i16>(a, m, k, |i| i * k, 1, |v, kb| v * blocks + kb, fa);
        let bp = pack::<i16>(b, n, k, |j| j, n, |v, kb| kb * n + v, fb);
        dispatch_rows(m, n, workers, out, |start, rows, part| {
            // SAFETY: `available()` verified AVX2 support at dispatch.
            unsafe { gemm_rows_avx2(&ap, start, rows, &bp, n, c, part) }
        });
    }

    /// # Safety
    ///
    /// Requires AVX2 (checked by [`available`] before dispatch).
    #[target_feature(enable = "avx2")]
    unsafe fn gemm_rows_avx2(
        ap: &CodePlane<i16>,
        r0: usize,
        rows: usize,
        bp: &CodePlane<i16>,
        n: usize,
        c: i32,
        out: &mut [f32],
    ) {
        use std::arch::x86_64::*;
        let blocks = ap.blocks;
        let n4 = n & !3;
        let mut i0 = 0;
        while i0 < rows {
            let tm = TILE_M.min(rows - i0);
            for kb in 0..blocks {
                let brow_codes = &bp.codes[kb * n * K1..][..n * K1];
                let brow_exps = &bp.exps[kb * n..][..n];
                for t in 0..tm {
                    let row = r0 + i0 + t;
                    let slot = row * blocks + kb;
                    let va = _mm256_loadu_si256(ap.codes[slot * K1..].as_ptr() as *const __m256i);
                    let ea_c = ap.exps[slot] + c;
                    let vea_c = _mm_set1_epi32(ea_c);
                    let out_row = &mut out[(i0 + t) * n..][..n];
                    let mut j = 0;
                    while j < n4 {
                        // Four block dots: vpmaddwd gives pairwise i32
                        // sums; two hadd rounds + a cross-lane add reduce
                        // them to [s0, s1, s2, s3].
                        let bptr = brow_codes[j * K1..].as_ptr() as *const __m256i;
                        let m0 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr));
                        let m1 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(1)));
                        let m2 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(2)));
                        let m3 = _mm256_madd_epi16(va, _mm256_loadu_si256(bptr.add(3)));
                        let q =
                            _mm256_hadd_epi32(_mm256_hadd_epi32(m0, m1), _mm256_hadd_epi32(m2, m3));
                        let dots = _mm_add_epi32(
                            _mm256_castsi256_si128(q),
                            _mm256_extracti128_si256(q, 1),
                        );
                        // Scale-out: 2^(E_a + E_b + c) per lane, built as
                        // f64 bit patterns ((e + 1023) << 52), times the
                        // exact dot, rounded to f32 once.
                        let e4 = _mm_add_epi32(
                            vea_c,
                            _mm_loadu_si128(brow_exps[j..].as_ptr() as *const __m128i),
                        );
                        let bits = _mm256_slli_epi64(
                            _mm256_add_epi64(_mm256_cvtepi32_epi64(e4), _mm256_set1_epi64x(1023)),
                            52,
                        );
                        let contrib = _mm256_cvtpd_ps(_mm256_mul_pd(
                            _mm256_cvtepi32_pd(dots),
                            _mm256_castsi256_pd(bits),
                        ));
                        let acc = _mm_add_ps(_mm_loadu_ps(out_row[j..].as_ptr()), contrib);
                        _mm_storeu_ps(out_row[j..].as_mut_ptr(), acc);
                        j += 4;
                    }
                    // Ragged column tail: same dot, same scale-out.
                    for j in n4..n {
                        let dot = <i16 as Code>::dot(
                            &ap.codes[slot * K1..][..K1],
                            &brow_codes[j * K1..][..K1],
                        );
                        if dot != 0 {
                            out_row[j] += (dot as f64 * pow2(ea_c + brow_exps[j])) as f32;
                        }
                    }
                }
            }
            i0 += tm;
        }
    }
}

/// Quantized matrix product `A[m,k] × B[k,n]` computed entirely in the
/// integer code domain (see the module docs for the datapath mapping).
///
/// A's rows and B's columns are quantized to aligned integer codes once;
/// the GEMM then runs over codes, tiled [`TILE_M`] output rows at a time
/// and dispatched row-parallel across `threads` workers (`0` = all cores;
/// the split is block-aligned, so the result is bit-identical regardless
/// of thread count).
///
/// Returns `None` when [`code_domain_supported`] rejects the format pair —
/// callers fall back to the dequantize path.
///
/// # Panics
///
/// Panics if `a.len() != m·k` or `b.len() != k·n`.
#[allow(clippy::too_many_arguments)] // a GEMM is dims + operands + formats
pub fn quantized_gemm(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    fa: BdrFormat,
    fb: BdrFormat,
    threads: usize,
) -> Option<Vec<f32>> {
    if !code_domain_supported(&fa, &fb) {
        return None;
    }
    assert_eq!(a.len(), m * k, "A is not {m}x{k}");
    assert_eq!(b.len(), k * n, "B is not {k}x{n}");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 || k == 0 {
        return Some(out);
    }
    let wa = fa.m() + fa.max_shift();
    let wb = fb.m() + fb.max_shift();
    let c = -((fa.m() as i32 - 1)
        + fa.max_shift() as i32
        + (fb.m() as i32 - 1)
        + (fb.max_shift() as i32));

    let threads = if threads == 0 {
        parallel::default_threads()
    } else {
        threads
    };
    // Same grain policy as the engine's kernels: every worker must receive
    // at least PARALLEL_GRAIN multiply-accumulates, so a small layer never
    // pays scoped-thread spawn cost for microseconds of work.
    let macs = m.saturating_mul(n).saturating_mul(k);
    let workers = if threads <= 1 || macs < 2 * PARALLEL_GRAIN {
        1
    } else {
        threads.min(m).min(macs / PARALLEL_GRAIN).max(1)
    };
    // Narrow pairs (all MX/MSFP presets): i16 codes, i32 block accumulator.
    if wa <= 15 && wb <= 15 && wa + wb + ceil_log2(fa.k1()) <= 31 {
        #[cfg(target_arch = "x86_64")]
        if fa.k1() == avx2::K1 && avx2::available() {
            avx2::run(a, b, m, k, n, &fa, &fb, c, workers, &mut out);
            return Some(out);
        }
        run::<i16>(a, b, m, k, n, &fa, &fb, c, workers, &mut out);
    } else {
        run::<i32>(a, b, m, k, n, &fa, &fb, c, workers, &mut out);
    }
    Some(out)
}

/// The quantize → dequantize → `f32` matmul reference the code-domain path
/// is proven against: A's rows and B's columns are fake-quantized through
/// the engine's strided kernels, then multiplied block by block — each
/// `k1`-block pair's products summed exactly in `f64`, rounded to `f32`
/// once, and accumulated across K blocks in `f32`, the same order and
/// rounding points as [`quantized_gemm`].
///
/// # Panics
///
/// Panics if the operand lengths disagree with `m·k` / `k·n`, or if the two
/// formats have different `k1` (the block tilings would not line up).
pub fn reference_gemm(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    fa: BdrFormat,
    fb: BdrFormat,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A is not {m}x{k}");
    assert_eq!(b.len(), k * n, "B is not {k}x{n}");
    assert_eq!(fa.k1(), fb.k1(), "mismatched block sizes");
    let mut aq = a.to_vec();
    let mut bq = b.to_vec();
    if !aq.is_empty() {
        QuantEngine::new(fa).quantize_dequantize_rows(&mut aq, k);
    }
    if !bq.is_empty() {
        QuantEngine::new(fb).quantize_dequantize_cols(&mut bq, n);
    }
    let k1 = fa.k1();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k0 in (0..k).step_by(k1) {
                let blen = k1.min(k - k0);
                let mut s = 0.0f64;
                for p in k0..k0 + blen {
                    s += aq[i * k + p] as f64 * bq[p * n + j] as f64;
                }
                acc += s as f32;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, salt: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i.wrapping_mul(37).wrapping_add(salt * 13) % 101) as f32 - 50.0) * 0.037)
            .collect()
    }

    #[test]
    fn presets_are_supported() {
        for fa in [
            BdrFormat::MX4,
            BdrFormat::MX6,
            BdrFormat::MX9,
            BdrFormat::MSFP12,
            BdrFormat::MSFP16,
        ] {
            for fb in [BdrFormat::MX4, BdrFormat::MX9, BdrFormat::MSFP16] {
                assert!(code_domain_supported(&fa, &fb), "{fa} x {fb}");
            }
        }
    }

    #[test]
    fn unsupported_pairs_are_rejected() {
        // Mismatched k1.
        let k32 = BdrFormat::new(4, 8, 1, 32, 2).unwrap();
        assert!(!code_domain_supported(&BdrFormat::MX6, &k32));
        assert!(quantized_gemm(&[0.0; 16], &[0.0; 16], 1, 16, 1, BdrFormat::MX6, k32, 1).is_none());
        // m + β too wide for an i32 aligned code.
        let wide = BdrFormat::new(23, 8, 4, 16, 2).unwrap();
        assert!(!code_domain_supported(&wide, &wide));
        // Ulp below f32's subnormal floor: dequantize would round.
        let deep = BdrFormat::new(20, 8, 4, 16, 2).unwrap();
        assert!(!exact_dequantize(&deep));
    }

    #[test]
    fn matches_reference_exactly() {
        for fmt in [BdrFormat::MX4, BdrFormat::MX6, BdrFormat::MX9] {
            let (m, k, n) = (5, 48, 7);
            let a = ramp(m * k, 1);
            let b = ramp(k * n, 2);
            let got = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
            let want = reference_gemm(&a, &b, m, k, n, fmt, fmt);
            assert!(
                got.iter()
                    .zip(want.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{fmt}"
            );
        }
    }

    #[test]
    fn mixed_format_operands() {
        let (m, k, n) = (3, 40, 4);
        let a = ramp(m * k, 3);
        let b = ramp(k * n, 4);
        let got = quantized_gemm(&a, &b, m, k, n, BdrFormat::MX9, BdrFormat::MX4, 1).unwrap();
        let want = reference_gemm(&a, &b, m, k, n, BdrFormat::MX9, BdrFormat::MX4);
        assert_eq!(got, want);
    }

    #[test]
    fn single_block_matches_naive_f32_matmul() {
        // With K ≤ k1 every f32 partial sum is exact, so the code path, the
        // blocked reference, and a plain f32 triple loop all agree exactly.
        let fmt = BdrFormat::MX6;
        let (m, k, n) = (4, 16, 4);
        let a = ramp(m * k, 5);
        let b = ramp(k * n, 6);
        let got = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
        let e = QuantEngine::new(fmt);
        let mut aq = a.clone();
        e.quantize_dequantize_rows(&mut aq, k);
        let mut bq = b.clone();
        e.quantize_dequantize_cols(&mut bq, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += aq[i * k + p] * bq[p * n + j];
                }
                assert_eq!(got[i * n + j], acc, "({i},{j})");
            }
        }
    }

    #[test]
    fn empty_and_degenerate_dims() {
        let fmt = BdrFormat::MX6;
        assert_eq!(
            quantized_gemm(&[], &[], 0, 16, 0, fmt, fmt, 1).unwrap(),
            vec![]
        );
        let a = ramp(16, 7);
        assert_eq!(
            quantized_gemm(&a, &[], 1, 16, 0, fmt, fmt, 1).unwrap(),
            vec![]
        );
        // k = 0: all-zero output.
        assert_eq!(
            quantized_gemm(&[], &[], 2, 0, 3, fmt, fmt, 1).unwrap(),
            vec![0.0; 6]
        );
    }

    #[test]
    fn zero_operand_gives_zero_output() {
        let fmt = BdrFormat::MX9;
        let a = vec![0.0f32; 3 * 33];
        let b = ramp(33 * 5, 9);
        let got = quantized_gemm(&a, &b, 3, 33, 5, fmt, fmt, 1).unwrap();
        assert!(got.iter().all(|v| v.to_bits() == 0));
    }

    #[test]
    fn parallel_dispatch_is_bit_identical() {
        let fmt = BdrFormat::MX6;
        // Large enough to cross the parallel work threshold.
        let (m, k, n) = (64, 96, 48);
        let a = ramp(m * k, 11);
        let b = ramp(k * n, 12);
        let serial = quantized_gemm(&a, &b, m, k, n, fmt, fmt, 1).unwrap();
        for threads in [2usize, 3, 7, 0] {
            let par = quantized_gemm(&a, &b, m, k, n, fmt, fmt, threads).unwrap();
            assert!(
                serial
                    .iter()
                    .zip(par.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(17), 5);
    }
}
