//! Shared chunked data-parallel utilities (crossbeam scoped threads).
//!
//! Every multi-core code path in the workspace routes through these two
//! primitives — the quantization engine's value kernels
//! ([`crate::engine::QuantEngine`]) and the design-space sweep's
//! Monte-Carlo evaluation — so the partitioning policy (contiguous spans,
//! order-preserving, no work stealing) lives in exactly one place.
//!
//! Both primitives are *deterministic*: work is split into contiguous,
//! caller-aligned spans and every output lands in its input's slot, so the
//! result is bit-identical to a serial run regardless of thread count or
//! scheduling.

/// Number of worker threads to use when the caller asks for "all of them":
/// the machine's available parallelism, or 4 if that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Splits `data` into at most `threads` contiguous spans whose lengths are
/// multiples of `align` (except the last, which takes the remainder) and
/// runs `f` on each span, in parallel.
///
/// With `threads <= 1`, or when the data is too small to split, `f` runs
/// once on the whole slice on the calling thread — no threads are spawned.
/// Alignment is what makes parallel quantization bit-identical to serial:
/// spans never split a quantization block.
///
/// # Panics
///
/// Panics if `align` is zero or if a worker panics.
///
/// # Examples
///
/// ```
/// # use mx_core::parallel::for_each_span_mut;
/// let mut xs: Vec<u32> = (0..100).collect();
/// for_each_span_mut(&mut xs, 8, 4, |span| {
///     for x in span.iter_mut() {
///         *x *= 2;
///     }
/// });
/// assert!(xs.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
/// ```
pub fn for_each_span_mut<T, F>(data: &mut [T], align: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut [T]) + Sync,
{
    assert!(align > 0, "span alignment must be nonzero");
    let units = data.len().div_ceil(align);
    let workers = threads.min(units).max(1);
    if workers <= 1 {
        if !data.is_empty() {
            f(data);
        }
        return;
    }
    let span = units.div_ceil(workers) * align;
    crossbeam::thread::scope(|s| {
        for chunk in data.chunks_mut(span) {
            let f = &f;
            s.spawn(move |_| f(chunk));
        }
    })
    .expect("parallel span worker panicked");
}

/// Order-preserving parallel map: returns `f(item)` for every item of
/// `items`, computed on up to `threads` worker threads.
///
/// With `threads <= 1` (or a single item) the map runs on the calling
/// thread. Items are split into contiguous chunks, one per worker, so
/// results are deterministic and land in input order.
///
/// # Panics
///
/// Panics if a worker panics.
///
/// # Examples
///
/// ```
/// # use mx_core::parallel::map;
/// let squares = map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Option<O>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    crossbeam::thread::scope(|s| {
        for (slots, chunk_items) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            s.spawn(move |_| {
                for (slot, item) in slots.iter_mut().zip(chunk_items.iter()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("parallel map worker panicked");
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_all_elements_once() {
        for threads in [1, 2, 3, 8, 64] {
            for len in [0usize, 1, 7, 16, 17, 100] {
                let mut xs = vec![0u32; len];
                for_each_span_mut(&mut xs, 4, threads, |span| {
                    for x in span.iter_mut() {
                        *x += 1;
                    }
                });
                assert!(xs.iter().all(|&x| x == 1), "threads={threads} len={len}");
            }
        }
    }

    #[test]
    fn spans_are_aligned() {
        // With align 8 over 20 elements and 2 workers, the split must fall
        // on a multiple of 8 (16), never mid-unit.
        let mut xs = vec![0usize; 20];
        for_each_span_mut(&mut xs, 8, 2, |span| {
            let len = span.len();
            for x in span.iter_mut() {
                *x = len;
            }
        });
        assert_eq!(xs[0], 16);
        assert_eq!(xs[19], 4);
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 5, 16] {
            let out = map(&items, threads, |&x| x * 3);
            assert!(
                out.iter().enumerate().all(|(i, &v)| v == i * 3),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_on_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(map(&empty, 8, |&x| x).is_empty());
        assert_eq!(map(&[5], 8, |&x| x + 1), vec![6]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
