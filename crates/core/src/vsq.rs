//! Per-Vector Scaled Quantization (VSQ) — the hierarchical INT scheme of
//! Dai et al. (MLSys 2021), Table I row "VSQ".
//!
//! VSQ composes a coarse software FP32 scale (per `k1 ≈ 1K` elements) with a
//! fine *integer* sub-scale per `k2 = 16` element vector, stored in `d2`
//! bits. Unlike MX's power-of-two microexponents, the integer sub-scale
//! requires an integer rescaling multiplier in the dot-product datapath.

use crate::int_quant::FP32_SCALE_BITS;
use crate::scaling::{ScaleStrategy, ScaleTracker};
use crate::util::round_half_even;
use crate::VectorQuantizer;

/// Vector size over which the integer sub-scale is shared (the VSQ paper and
/// Fig. 4 use 16).
pub const VSQ_VECTOR: usize = 16;

/// VSQ quantizer: INT`bits` data, `d2`-bit unsigned integer sub-scale per
/// 16-element vector, FP32 scale per `k1` elements.
///
/// # Examples
///
/// ```
/// # use mx_core::vsq::VsqQuantizer;
/// # use mx_core::scaling::ScaleStrategy;
/// # use mx_core::VectorQuantizer;
/// let mut q = VsqQuantizer::new(4, 4, 1024, ScaleStrategy::Amax);
/// let y = q.quantize_dequantize(&[0.8, -0.4, 0.1, 0.0]);
/// assert_eq!(y.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct VsqQuantizer {
    bits: u32,
    d2: u32,
    k1: usize,
    tracker: ScaleTracker,
}

impl VsqQuantizer {
    /// Creates a VSQ quantizer.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=16`, `d2` not in `1..=10`, or `k1` is
    /// not a positive multiple of [`VSQ_VECTOR`].
    pub fn new(bits: u32, d2: u32, k1: usize, strategy: ScaleStrategy) -> Self {
        assert!(
            (2..=16).contains(&bits),
            "INT bit-width {bits} outside 2..=16"
        );
        assert!(
            (1..=10).contains(&d2),
            "sub-scale width {d2} outside 1..=10"
        );
        assert!(
            k1 > 0 && k1.is_multiple_of(VSQ_VECTOR),
            "k1 must be a positive multiple of 16"
        );
        VsqQuantizer {
            bits,
            d2,
            k1,
            tracker: ScaleTracker::new(strategy),
        }
    }

    /// Integer data bit-width (including sign).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Sub-scale bit-width.
    pub fn d2(&self) -> u32 {
        self.d2
    }

    /// Largest representable positive data code.
    pub fn max_code(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Largest sub-scale multiplier, `2^d2 − 1`.
    pub fn max_subscale(&self) -> u32 {
        (1u32 << self.d2) - 1
    }

    fn quantize_block(&mut self, block: &[f32], out: &mut [f32]) {
        let amax = self.tracker.observe(block);
        if amax == 0.0 {
            out.fill(0.0);
            return;
        }
        let max_code = self.max_code() as f64;
        let max_ss = self.max_subscale() as f64;
        // The tensor scale is set so that amax maps to (max sub-scale) *
        // (max code): the finest granularity that still covers the range.
        let s_t = amax as f64 / (max_ss * max_code);
        for (vec_in, vec_out) in block.chunks(VSQ_VECTOR).zip(out.chunks_mut(VSQ_VECTOR)) {
            let vmax = vec_in.iter().fold(0.0f32, |acc, x| acc.max(x.abs())) as f64;
            if vmax == 0.0 {
                vec_out.fill(0.0);
                continue;
            }
            // Smallest integer sub-scale that avoids clipping this vector
            // (ceil), clamped to the representable range.
            let ss = (vmax / (s_t * max_code)).ceil().clamp(1.0, max_ss);
            let s = s_t * ss;
            for (x, y) in vec_in.iter().zip(vec_out.iter_mut()) {
                let q = round_half_even(*x as f64 / s).clamp(-max_code, max_code);
                *y = (q * s) as f32;
            }
        }
    }
}

impl VectorQuantizer for VsqQuantizer {
    fn label(&self) -> String {
        format!(
            "VSQ{}(d2={},k1={},{})",
            self.bits,
            self.d2,
            self.k1,
            self.tracker.strategy()
        )
    }

    fn bits_per_element(&self) -> f64 {
        self.bits as f64 + self.d2 as f64 / VSQ_VECTOR as f64 + FP32_SCALE_BITS / self.k1 as f64
    }

    fn quantize_dequantize(&mut self, xs: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; xs.len()];
        for (block, block_out) in xs.chunks(self.k1).zip(out.chunks_mut(self.k1)) {
            self.quantize_block(block, block_out);
        }
        out
    }

    fn reset(&mut self) {
        self.tracker.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vsq(bits: u32, d2: u32) -> VsqQuantizer {
        VsqQuantizer::new(bits, d2, 1024, ScaleStrategy::Amax)
    }

    #[test]
    fn per_vector_scaling_beats_flat_int_on_mixed_magnitudes() {
        use crate::int_quant::IntQuantizer;
        // One vector of large values followed by one of small values: the
        // per-vector sub-scale preserves the small vector's resolution.
        let mut x = Vec::new();
        for i in 0..16 {
            x.push(1.0 + 0.01 * i as f32);
        }
        for i in 0..16 {
            x.push(0.01 + 0.0001 * i as f32);
        }
        let mut v = vsq(4, 8);
        let mut flat = IntQuantizer::new(4, 1024, ScaleStrategy::Amax);
        let yv = v.quantize_dequantize(&x);
        let yf = flat.quantize_dequantize(&x);
        // The small-magnitude vector is where per-vector scaling pays off:
        // flat INT4 flushes it entirely (scale set by the large vector),
        // while VSQ preserves it with its own sub-scale.
        let nv = crate::util::noise_power(&yv[16..], &x[16..]);
        let nf = crate::util::noise_power(&yf[16..], &x[16..]);
        assert!(
            nv < nf * 0.1,
            "VSQ small-vector noise {nv} should be well below flat INT {nf}"
        );
    }

    #[test]
    fn max_element_nearly_exact() {
        let mut q = vsq(8, 4);
        let x: Vec<f32> = (0..32).map(|i| if i == 7 { 5.0 } else { 0.3 }).collect();
        let y = q.quantize_dequantize(&x);
        assert!((y[7] - 5.0).abs() / 5.0 < 0.01);
    }

    #[test]
    fn zero_vectors_within_block() {
        let mut q = vsq(4, 4);
        let mut x = vec![0.0f32; 32];
        x[0] = 1.0;
        let y = q.quantize_dequantize(&x);
        assert_eq!(&y[16..], &[0.0; 16]);
        assert!((y[0] - 1.0).abs() < 0.1);
    }

    #[test]
    fn bits_per_element_accounting() {
        let q = vsq(4, 4);
        let expect = 4.0 + 4.0 / 16.0 + 32.0 / 1024.0;
        assert!((q.bits_per_element() - expect).abs() < 1e-12);
    }

    #[test]
    fn wider_subscale_reduces_noise() {
        // With more sub-scale bits the per-vector scale matches vmax better.
        let x: Vec<f32> = (0..256)
            .map(|i| {
                let group = i / 16;
                let base = 2.0f32.powi(-(group % 6));
                base * (1.0 + 0.05 * (i % 16) as f32)
            })
            .collect();
        let n4 = crate::util::noise_power(&vsq(4, 4).quantize_dequantize(&x), &x);
        let n8 = crate::util::noise_power(&vsq(4, 8).quantize_dequantize(&x), &x);
        assert!(
            n8 <= n4,
            "d2=8 noise {n8} should not exceed d2=4 noise {n4}"
        );
    }

    #[test]
    fn delayed_scaling_is_supported() {
        let mut q = VsqQuantizer::new(8, 4, 16, ScaleStrategy::Delayed { window: 2 });
        let _ = q.quantize_dequantize(&[1.0; 16]);
        let y = q.quantize_dequantize(&[10.0; 16]);
        // Stale scale (1.0) clips the new values near 1.0.
        assert!(y[0] < 1.1);
        q.reset();
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_unaligned_k1() {
        let _ = VsqQuantizer::new(4, 4, 100, ScaleStrategy::Amax);
    }

    #[test]
    fn label() {
        assert_eq!(vsq(6, 4).label(), "VSQ6(d2=4,k1=1024,amax)");
    }
}
