//! Error types for format construction and encoding.

use std::error::Error;
use std::fmt;

/// Error returned when a quantization format is parameterized inconsistently.
///
/// # Examples
///
/// ```
/// # use mx_core::bdr::BdrFormat;
/// // Sub-blocks must tile the block evenly: k2 = 3 does not divide k1 = 16.
/// assert!(BdrFormat::new(4, 8, 1, 16, 3).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The sub-block granularity `k2` does not evenly divide the block
    /// granularity `k1`, or one of them is zero.
    InvalidBlockStructure {
        /// First-level block granularity.
        k1: usize,
        /// Second-level sub-block granularity.
        k2: usize,
    },
    /// The mantissa bit-width is outside the supported range.
    InvalidMantissa {
        /// Requested explicit mantissa bits.
        m: u32,
        /// Inclusive upper limit supported by the implementation.
        max: u32,
    },
    /// A scale bit-width is outside the supported range.
    InvalidScaleWidth {
        /// Which scale level (1 = shared exponent, 2 = microexponent).
        level: u8,
        /// Requested bits.
        bits: u32,
        /// Inclusive upper limit supported by the implementation.
        max: u32,
    },
    /// A scalar float format was requested with an unsupported field layout.
    InvalidScalarLayout {
        /// Requested exponent bits.
        exp_bits: u32,
        /// Requested mantissa bits.
        man_bits: u32,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::InvalidBlockStructure { k1, k2 } => {
                write!(f, "sub-block granularity k2={k2} must be nonzero and divide block granularity k1={k1}")
            }
            FormatError::InvalidMantissa { m, max } => {
                write!(
                    f,
                    "mantissa bit-width m={m} outside supported range 1..={max}"
                )
            }
            FormatError::InvalidScaleWidth { level, bits, max } => {
                write!(
                    f,
                    "level-{level} scale bit-width {bits} outside supported range 0..={max}"
                )
            }
            FormatError::InvalidScalarLayout { exp_bits, man_bits } => {
                write!(f, "scalar format E{exp_bits}M{man_bits} is not representable by this implementation")
            }
        }
    }
}

impl Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = FormatError::InvalidBlockStructure { k1: 16, k2: 3 };
        let msg = e.to_string();
        assert!(msg.contains("k2=3"));
        assert!(msg.contains("k1=16"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FormatError>();
    }

    #[test]
    fn all_variants_display() {
        let variants = [
            FormatError::InvalidBlockStructure { k1: 0, k2: 0 },
            FormatError::InvalidMantissa { m: 99, max: 23 },
            FormatError::InvalidScaleWidth {
                level: 2,
                bits: 9,
                max: 4,
            },
            FormatError::InvalidScalarLayout {
                exp_bits: 9,
                man_bits: 30,
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
