//! First-level (software) scale-factor strategies shared by the INT, scalar
//! floating-point, and VSQ quantizers.
//!
//! Static weights can be scaled offline from their exact maximum, but dynamic
//! activations and gradients need either conservative static scales or
//! history-based estimates. The paper's Fig. 7 evaluates the SW-scaled
//! formats with the "delayed scaling" approach of NVIDIA's Transformer
//! Engine: the scale of the current tensor is derived from the maximum
//! absolute value over a window of previously observed tensors.

use std::collections::VecDeque;
use std::fmt;

/// Strategy for choosing the software-managed first-level scale factor.
#[derive(Debug, Clone, PartialEq)]
pub enum ScaleStrategy {
    /// Scale each block from its own observed maximum (offline / inference
    /// style; requires a pass over the data before quantizing it).
    Amax,
    /// Delayed scaling: use the maximum over the previous `window` observed
    /// blocks; the current block's maximum only affects *future* scales.
    /// Values above the stale scale saturate, mimicking dynamic-outlier
    /// clipping in training.
    Delayed {
        /// Number of past blocks whose maxima are tracked.
        window: usize,
    },
}

impl Default for ScaleStrategy {
    /// The paper's Fig. 7 setting: delayed scaling with a window of recent
    /// history (here 16 blocks).
    fn default() -> Self {
        ScaleStrategy::Delayed { window: 16 }
    }
}

impl fmt::Display for ScaleStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleStrategy::Amax => f.write_str("amax"),
            ScaleStrategy::Delayed { window } => write!(f, "delayed({window})"),
        }
    }
}

/// Stateful tracker that turns a [`ScaleStrategy`] into per-block maxima.
#[derive(Debug, Clone)]
pub struct ScaleTracker {
    strategy: ScaleStrategy,
    history: VecDeque<f32>,
}

impl ScaleTracker {
    /// Creates a tracker with the given strategy.
    pub fn new(strategy: ScaleStrategy) -> Self {
        ScaleTracker {
            strategy,
            history: VecDeque::new(),
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> &ScaleStrategy {
        &self.strategy
    }

    /// Returns the amax estimate to use for `block`, then records the block's
    /// own amax into the history.
    ///
    /// Under [`ScaleStrategy::Amax`] this is simply the block's maximum; under
    /// delayed scaling it is the window maximum (falling back to the current
    /// block when no history exists yet, as frameworks do on the first step).
    pub fn observe(&mut self, block: &[f32]) -> f32 {
        let amax = block.iter().fold(0.0f32, |acc, x| acc.max(x.abs()));
        match self.strategy {
            ScaleStrategy::Amax => amax,
            ScaleStrategy::Delayed { window } => {
                let est = if self.history.is_empty() {
                    amax
                } else {
                    self.history.iter().fold(0.0f32, |acc, &x| acc.max(x))
                };
                self.history.push_back(amax);
                while self.history.len() > window {
                    self.history.pop_front();
                }
                est
            }
        }
    }

    /// Clears accumulated history (e.g. between independent experiments).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amax_ignores_history() {
        let mut t = ScaleTracker::new(ScaleStrategy::Amax);
        assert_eq!(t.observe(&[1.0, -3.0]), 3.0);
        assert_eq!(t.observe(&[0.5]), 0.5);
    }

    #[test]
    fn delayed_uses_previous_blocks() {
        let mut t = ScaleTracker::new(ScaleStrategy::Delayed { window: 2 });
        // First block: no history, falls back to own amax.
        assert_eq!(t.observe(&[2.0]), 2.0);
        // Second block: history = [2.0].
        assert_eq!(t.observe(&[8.0]), 2.0);
        // Third block: history = [2.0, 8.0].
        assert_eq!(t.observe(&[1.0]), 8.0);
        // Fourth block: history = [8.0, 1.0] (window evicted 2.0).
        assert_eq!(t.observe(&[0.1]), 8.0);
        // Fifth: history = [1.0, 0.1].
        assert_eq!(t.observe(&[0.1]), 1.0);
    }

    #[test]
    fn reset_clears_history() {
        let mut t = ScaleTracker::new(ScaleStrategy::default());
        t.observe(&[100.0]);
        t.reset();
        assert_eq!(t.observe(&[1.0]), 1.0);
    }

    #[test]
    fn zero_blocks_give_zero_amax() {
        let mut t = ScaleTracker::new(ScaleStrategy::Amax);
        assert_eq!(t.observe(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(ScaleStrategy::Amax.to_string(), "amax");
        assert_eq!(ScaleStrategy::default().to_string(), "delayed(16)");
    }
}
