//! Block Data Representations (BDR): the paper's unified two-level scaling
//! framework (Fig. 5) with hardware power-of-two scale factors.
//!
//! A BDR format partitions a tensor into blocks of `k1` elements sharing a
//! `d1`-bit first-level scale (a power-of-two exponent set to the exponent of
//! the block's largest magnitude) and sub-blocks of `k2` elements sharing a
//! `d2`-bit *microexponent*: a small right-shift `τᵢ = min(E − Eᵢ, 2^d2 − 1)`
//! that recovers precision for sub-blocks whose local maximum is smaller than
//! the block maximum. Each element stores a sign and an `m`-bit magnitude
//! with the binary point after the leading bit.
//!
//! Setting `d2 = 0` degenerates to classic block floating point (MSFP);
//! `k1 = k2 = 1` with a private per-element exponent is scalar floating
//! point. The MX formats of the paper are `k1 = 16, k2 = 2, d1 = 8, d2 = 1`
//! with `m ∈ {2, 4, 7}` (see [`BdrFormat::MX4`], [`BdrFormat::MX6`],
//! [`BdrFormat::MX9`]).

use crate::engine::QuantEngine;
use crate::error::FormatError;
use crate::VectorQuantizer;
use std::fmt;

/// Maximum supported explicit mantissa bits (an `f32` mantissa cannot carry
/// more information).
pub const MAX_MANTISSA_BITS: u32 = 23;
/// Maximum supported first-level scale width (an 8-bit exponent already
/// covers the full `f32` range).
pub const MAX_D1: u32 = 8;
/// Maximum supported microexponent width.
pub const MAX_D2: u32 = 4;

/// A validated BDR format: `(m, d1, d2, k1, k2)` per Fig. 5 of the paper.
///
/// # Examples
///
/// ```
/// # use mx_core::bdr::BdrFormat;
/// let mx9 = BdrFormat::MX9;
/// assert_eq!(mx9.bits_per_element(), 9.0);
/// let q = mx9.quantize_dequantize(&[1.0, 0.5, -0.25, 0.0]);
/// assert_eq!(q, vec![1.0, 0.5, -0.25, 0.0]); // exactly representable
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BdrFormat {
    m: u32,
    d1: u32,
    d2: u32,
    k1: usize,
    k2: usize,
    name: Option<&'static str>,
}

// Equality is structural over the numeric parameters; the display name is
// presentation only (so `BdrFormat::MX4 == BdrFormat::new(2, 8, 1, 16, 2)?`).
impl PartialEq for BdrFormat {
    fn eq(&self, other: &Self) -> bool {
        (self.m, self.d1, self.d2, self.k1, self.k2)
            == (other.m, other.d1, other.d2, other.k1, other.k2)
    }
}

impl Eq for BdrFormat {}

impl std::hash::Hash for BdrFormat {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.m, self.d1, self.d2, self.k1, self.k2).hash(state);
    }
}

impl BdrFormat {
    /// MX9 (Table II): 7 mantissa bits, 9 bits/element average. Drop-in
    /// replacement for FP32/BF16 in training per the paper.
    pub const MX9: Self = Self::preset(7, 8, 1, 16, 2, "MX9");
    /// MX6 (Table II): 4 mantissa bits, 6 bits/element average.
    pub const MX6: Self = Self::preset(4, 8, 1, 16, 2, "MX6");
    /// MX4 (Table II): 2 mantissa bits, 4 bits/element average.
    pub const MX4: Self = Self::preset(2, 8, 1, 16, 2, "MX4");
    /// MSFP16-style block floating point: 7 mantissa bits, block 16, no
    /// microexponents (`d2 = 0`).
    pub const MSFP16: Self = Self::preset(7, 8, 0, 16, 16, "MSFP16");
    /// MSFP12-style block floating point: 3 mantissa bits, block 16, no
    /// microexponents.
    pub const MSFP12: Self = Self::preset(3, 8, 0, 16, 16, "MSFP12");

    const fn preset(m: u32, d1: u32, d2: u32, k1: usize, k2: usize, name: &'static str) -> Self {
        BdrFormat {
            m,
            d1,
            d2,
            k1,
            k2,
            name: Some(name),
        }
    }

    /// Creates a validated BDR format.
    ///
    /// # Errors
    ///
    /// - [`FormatError::InvalidMantissa`] if `m` is zero or above
    ///   [`MAX_MANTISSA_BITS`].
    /// - [`FormatError::InvalidScaleWidth`] if `d1` is zero or above
    ///   [`MAX_D1`], or `d2` above [`MAX_D2`].
    /// - [`FormatError::InvalidBlockStructure`] if `k2` is zero or does not
    ///   divide `k1`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mx_core::bdr::BdrFormat;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let fmt = BdrFormat::new(4, 8, 2, 32, 4)?;
    /// assert_eq!(fmt.max_shift(), 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(m: u32, d1: u32, d2: u32, k1: usize, k2: usize) -> Result<Self, FormatError> {
        if m == 0 || m > MAX_MANTISSA_BITS {
            return Err(FormatError::InvalidMantissa {
                m,
                max: MAX_MANTISSA_BITS,
            });
        }
        if d1 == 0 || d1 > MAX_D1 {
            return Err(FormatError::InvalidScaleWidth {
                level: 1,
                bits: d1,
                max: MAX_D1,
            });
        }
        if d2 > MAX_D2 {
            return Err(FormatError::InvalidScaleWidth {
                level: 2,
                bits: d2,
                max: MAX_D2,
            });
        }
        if k1 == 0 || k2 == 0 || !k1.is_multiple_of(k2) {
            return Err(FormatError::InvalidBlockStructure { k1, k2 });
        }
        Ok(BdrFormat {
            m,
            d1,
            d2,
            k1,
            k2,
            name: None,
        })
    }

    /// Explicit mantissa bits per element (excluding the sign bit).
    pub fn m(&self) -> u32 {
        self.m
    }

    /// First-level (shared exponent) scale width in bits.
    pub fn d1(&self) -> u32 {
        self.d1
    }

    /// Second-level (microexponent) scale width in bits; `0` means classic
    /// block floating point.
    pub fn d2(&self) -> u32 {
        self.d2
    }

    /// First-level block granularity.
    pub fn k1(&self) -> usize {
        self.k1
    }

    /// Second-level sub-block granularity.
    pub fn k2(&self) -> usize {
        self.k2
    }

    /// Maximum sub-block shift `β = 2^d2 − 1`.
    pub fn max_shift(&self) -> u32 {
        (1u32 << self.d2) - 1
    }

    /// Bias added to the shared exponent when packing it into `d1` bits
    /// (`2^(d1−1) − 1`, the IEEE-style offset).
    pub fn exp_bias(&self) -> i64 {
        (1i64 << (self.d1 - 1)) - 1
    }

    /// Largest `m`-bit magnitude code (`2^m − 1`); larger values saturate.
    pub fn max_code(&self) -> u64 {
        (1u64 << self.m) - 1
    }

    /// Packed storage footprint in bits of one block of `len` elements:
    /// the shared exponent, one microexponent per sub-block, and a
    /// sign + `m`-bit magnitude per element.
    pub fn block_bits(&self, len: usize) -> usize {
        self.d1 as usize + len.div_ceil(self.k2) * self.d2 as usize + len * (1 + self.m as usize)
    }

    /// Average storage bits per element:
    /// `(m + 1) + d1/k1 + d2/k2` (Fig. 5).
    ///
    /// # Examples
    ///
    /// ```
    /// # use mx_core::bdr::BdrFormat;
    /// assert_eq!(BdrFormat::MX6.bits_per_element(), 6.0);
    /// assert_eq!(BdrFormat::MSFP12.bits_per_element(), 4.5);
    /// ```
    pub fn bits_per_element(&self) -> f64 {
        (self.m + 1) as f64 + self.d1 as f64 / self.k1 as f64 + self.d2 as f64 / self.k2 as f64
    }

    /// Largest first-level exponent representable in `d1` bits
    /// (bias `2^(d1-1) − 1`).
    pub fn max_shared_exp(&self) -> i32 {
        1 << (self.d1 - 1)
    }

    /// Smallest first-level exponent representable in `d1` bits.
    pub fn min_shared_exp(&self) -> i32 {
        -((1 << (self.d1 - 1)) - 1)
    }

    /// Computes the shared exponent and per-sub-block shifts for one block of
    /// at most [`Self::k1`] values, or `None` for an all-zero block.
    ///
    /// The shared exponent is the exponent of the largest magnitude, clamped
    /// to the `d1`-bit range; shift `τᵢ = min(E − Eᵢ, β)` where `Eᵢ` is the
    /// local maximum exponent of sub-block `i` (all-zero sub-blocks get `β`).
    ///
    /// Delegates to the unified [`crate::engine::QuantEngine`] — the single
    /// implementation of the plan in the workspace.
    pub fn plan_block(&self, block: &[f32]) -> Option<BlockPlan> {
        debug_assert!(block.len() <= self.k1);
        QuantEngine::new(*self).plan_block(block)
    }

    /// Quantizes one block (length at most [`Self::k1`]) to the format's grid
    /// and returns the dequantized values.
    pub fn quantize_dequantize_block(&self, block: &[f32]) -> Vec<f32> {
        debug_assert!(block.len() <= self.k1);
        QuantEngine::new(*self).quantize_dequantize(block)
    }

    /// Quantizes `xs` (any length; the tail may form a partial block) and
    /// returns the dequantized values.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mx_core::bdr::BdrFormat;
    /// let x: Vec<f32> = (0..40).map(|i| i as f32 * 0.1).collect();
    /// let q = BdrFormat::MX9.quantize_dequantize(&x);
    /// assert_eq!(q.len(), 40);
    /// ```
    pub fn quantize_dequantize(&self, xs: &[f32]) -> Vec<f32> {
        QuantEngine::new(*self).quantize_dequantize(xs)
    }

    /// Quantizes `xs` in place (same semantics as
    /// [`Self::quantize_dequantize`] but reusing the buffer).
    pub fn quantize_dequantize_in_place(&self, xs: &mut [f32]) {
        QuantEngine::new(*self).quantize_dequantize_in_place(xs)
    }

    /// Quantizes one block (length at most [`Self::k1`]) down to raw integer
    /// codes — the form a hardware datapath consumes (see `mx-hw`).
    ///
    /// All-zero blocks return a plan with shared exponent 0 and zero codes.
    /// Dequantizing the result (see [`QuantizedBlock::dequantize`]) agrees
    /// exactly with [`Self::quantize_dequantize_block`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use mx_core::bdr::BdrFormat;
    /// let q = BdrFormat::MX6.quantize_block_codes(&[1.0, -0.5]);
    /// assert_eq!(q.shared_exp, 0);
    /// assert_eq!(q.signs, vec![false, true]);
    /// assert_eq!(q.codes, vec![8, 4]); // 1.0 = 8 * 2^-3, 0.5 = 4 * 2^-3
    /// ```
    pub fn quantize_block_codes(&self, block: &[f32]) -> QuantizedBlock {
        debug_assert!(block.len() <= self.k1);
        QuantEngine::new(*self).quantize_block_codes(block)
    }

    /// Worst-case absolute quantization error for an element in a sub-block
    /// with shift `τ` inside a block with shared exponent `E`:
    /// `2^(E − τ − m)` (Eq. 8 of the paper). Exceeded only by saturation of
    /// the largest code, which the paper's bound also excludes.
    pub fn error_bound(&self, shared_exp: i32, shift: u32) -> f64 {
        crate::util::pow2(shared_exp - shift as i32 - self.m as i32)
    }
}

impl fmt::Display for BdrFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name {
            Some(n) => f.write_str(n),
            None => write!(
                f,
                "BDR(m={},d1={},d2={},k1={},k2={})",
                self.m, self.d1, self.d2, self.k1, self.k2
            ),
        }
    }
}

/// Per-block scaling decisions: the shared exponent and one shift per
/// sub-block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPlan {
    /// First-level shared exponent `E` (already clamped to `d1` bits).
    pub shared_exp: i32,
    /// Sub-block shifts `τᵢ ∈ [0, 2^d2 − 1]`, one per `k2`-element sub-block.
    pub shifts: Vec<u32>,
}

/// One block quantized down to the integer codes a hardware datapath
/// consumes: shared exponent, per-sub-block shifts, and per-element
/// sign/magnitude codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedBlock {
    /// The format the codes belong to.
    pub format: BdrFormat,
    /// Shared block exponent `E`.
    pub shared_exp: i32,
    /// Microexponent shifts, one per sub-block.
    pub shifts: Vec<u32>,
    /// Per-element sign bits (`true` = negative).
    pub signs: Vec<bool>,
    /// Per-element `m`-bit magnitude codes.
    pub codes: Vec<u32>,
}

impl QuantizedBlock {
    /// Reconstructs the `f32` values the codes represent; agrees exactly with
    /// [`BdrFormat::quantize_dequantize_block`] on the original input.
    pub fn dequantize(&self) -> Vec<f32> {
        let fmt = &self.format;
        self.codes
            .iter()
            .zip(self.signs.iter())
            .enumerate()
            .map(|(i, (&code, &neg))| {
                let shift = self.shifts[i / fmt.k2()];
                let ulp = crate::engine::ulp_of(fmt, self.shared_exp, shift);
                let mag = (code as f64 * ulp) as f32;
                if neg {
                    -mag
                } else {
                    mag
                }
            })
            .collect()
    }

    /// Number of elements in the block.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the block holds no elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// [`VectorQuantizer`] adapter for a [`BdrFormat`] (stateless: BDR scaling is
/// hardware-managed and purely data-dependent).
///
/// # Examples
///
/// ```
/// # use mx_core::bdr::{BdrFormat, BdrQuantizer};
/// # use mx_core::VectorQuantizer;
/// let mut q = BdrQuantizer::new(BdrFormat::MX6);
/// let y = q.quantize_dequantize(&[0.1, -0.2, 0.3]);
/// assert_eq!(y.len(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BdrQuantizer {
    format: BdrFormat,
}

impl BdrQuantizer {
    /// Wraps a format as a reusable vector quantizer.
    pub fn new(format: BdrFormat) -> Self {
        BdrQuantizer { format }
    }

    /// The wrapped format.
    pub fn format(&self) -> BdrFormat {
        self.format
    }
}

impl VectorQuantizer for BdrQuantizer {
    fn label(&self) -> String {
        self.format.to_string()
    }

    fn bits_per_element(&self) -> f64 {
        self.format.bits_per_element()
    }

    fn quantize_dequantize(&mut self, xs: &[f32]) -> Vec<f32> {
        self.format.quantize_dequantize(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_bit_budgets_match_table_ii() {
        assert_eq!(BdrFormat::MX9.bits_per_element(), 9.0);
        assert_eq!(BdrFormat::MX6.bits_per_element(), 6.0);
        assert_eq!(BdrFormat::MX4.bits_per_element(), 4.0);
        assert_eq!(BdrFormat::MSFP16.bits_per_element(), 8.5);
        assert_eq!(BdrFormat::MSFP12.bits_per_element(), 4.5);
    }

    #[test]
    fn validation() {
        assert!(BdrFormat::new(0, 8, 1, 16, 2).is_err());
        assert!(BdrFormat::new(4, 0, 1, 16, 2).is_err());
        assert!(BdrFormat::new(4, 9, 1, 16, 2).is_err());
        assert!(BdrFormat::new(4, 8, 5, 16, 2).is_err());
        assert!(BdrFormat::new(4, 8, 1, 16, 3).is_err());
        assert!(BdrFormat::new(4, 8, 1, 16, 0).is_err());
        assert!(BdrFormat::new(4, 8, 1, 16, 2).is_ok());
        assert!(BdrFormat::new(4, 8, 0, 16, 16).is_ok());
    }

    #[test]
    fn exact_powers_of_two_round_trip() {
        let fmt = BdrFormat::MX9;
        let x = [1.0f32, 0.5, -0.25, 2.0, 4.0, -8.0, 16.0, 8.0];
        assert_eq!(fmt.quantize_dequantize(&x), x.to_vec());
    }

    #[test]
    fn half_ulp_value_ties_to_zero() {
        // A power of two sitting exactly half an ulp above zero is lost to
        // round-ties-to-even: 0.125 shares a sub-block with 16.0 under MX9
        // (ulp 0.25 at eff. exponent 4), so 0.125/0.25 = 0.5 rounds to 0.
        let q = BdrFormat::MX9.quantize_dequantize(&[16.0, 0.125]);
        assert_eq!(q, vec![16.0, 0.0]);
    }

    #[test]
    fn zero_block_stays_zero() {
        let fmt = BdrFormat::MX6;
        let x = vec![0.0f32; 16];
        assert_eq!(fmt.quantize_dequantize(&x), x);
        assert!(fmt.plan_block(&x).is_none());
    }

    #[test]
    fn plan_block_shared_exp_tracks_max() {
        let fmt = BdrFormat::MX9;
        let mut x = vec![0.01f32; 16];
        x[5] = -6.5; // exponent 2
        let plan = fmt.plan_block(&x).unwrap();
        assert_eq!(plan.shared_exp, 2);
        assert_eq!(plan.shifts.len(), 8);
        // Sub-block holding x[5] (index 2) has local max exponent 2 -> shift 0.
        assert_eq!(plan.shifts[2], 0);
        // Others have local max exponent -7 -> shift clamps at beta = 1.
        assert_eq!(plan.shifts[0], 1);
    }

    #[test]
    fn microexponent_halves_noise_for_small_sub_blocks() {
        // Construct a block where one sub-block is 2x smaller than the rest:
        // MX (d2=1) should represent it with one extra bit of precision
        // relative to the equivalent BFP (d2=0) format.
        let bfp = BdrFormat::new(4, 8, 0, 16, 16).unwrap();
        let mx = BdrFormat::new(4, 8, 1, 16, 2).unwrap();
        let mut x = vec![0.0f32; 16];
        x[0] = 1.9375; // pins shared exponent at 0
        x[1] = 1.0;
        // Small sub-block: values near 0.4 (exponent -2).
        x[2] = 0.4;
        x[3] = 0.43;
        let nb = crate::util::noise_power(&bfp.quantize_dequantize(&x), &x);
        let nm = crate::util::noise_power(&mx.quantize_dequantize(&x), &x);
        assert!(
            nm < nb,
            "microexponents should reduce noise: mx={nm} bfp={nb}"
        );
    }

    #[test]
    fn error_bound_holds_without_saturation() {
        let fmt = BdrFormat::MX6;
        // Pseudo-random but deterministic values in [-1, 1).
        let x: Vec<f32> = (0..256)
            .map(|i| {
                let v = ((i * 2654435761u64 as usize) % 10007) as f32 / 10007.0;
                v * 2.0 - 1.0
            })
            .collect();
        let max_code = (1u32 << fmt.m()) - 1;
        for (block_idx, block) in x.chunks(fmt.k1()).enumerate() {
            let plan = fmt.plan_block(block).unwrap();
            let q = fmt.quantize_dequantize_block(block);
            for (i, (xi, qi)) in block.iter().zip(q.iter()).enumerate() {
                let shift = plan.shifts[i / fmt.k2()];
                let bound = fmt.error_bound(plan.shared_exp, shift);
                // The block maximum saturates to the top code when it lies in
                // the upper half-ulp below 2^(E+1); there the error can reach
                // a full ulp (2x the half-ulp bound). The paper's proof has
                // the same slack.
                let ulp = 2.0 * bound;
                let saturated = (qi.abs() as f64 - max_code as f64 * ulp).abs() < 1e-12;
                let limit = if saturated { 2.0 * bound } else { bound };
                assert!(
                    ((xi - qi).abs() as f64) <= limit + 1e-12,
                    "block {block_idx} elem {i}: |{xi} - {qi}| > {limit}"
                );
            }
        }
    }

    #[test]
    fn saturation_clamps_to_max_code() {
        // m = 2: codes 0..=3, ulp at E=0 is 2^(0-1) = 0.5, max magnitude 1.5.
        let fmt = BdrFormat::new(2, 8, 0, 4, 4).unwrap();
        let x = [1.99f32, 0.0, 0.0, 0.0];
        let q = fmt.quantize_dequantize(&x);
        assert_eq!(q[0], 1.5);
    }

    #[test]
    fn negative_values_mirror_positive() {
        let fmt = BdrFormat::MX4;
        let x: Vec<f32> = (1..=16).map(|i| i as f32 * 0.17).collect();
        let neg: Vec<f32> = x.iter().map(|v| -v).collect();
        let qp = fmt.quantize_dequantize(&x);
        let qn = fmt.quantize_dequantize(&neg);
        for (p, n) in qp.iter().zip(qn.iter()) {
            assert_eq!(*p, -*n);
        }
    }

    #[test]
    fn partial_tail_block() {
        let fmt = BdrFormat::MX6;
        let x: Vec<f32> = (0..21).map(|i| (i as f32 - 10.0) * 0.3).collect();
        let q = fmt.quantize_dequantize(&x);
        assert_eq!(q.len(), 21);
        // Tail block of 5 elements quantizes independently of the first 16.
        let tail = fmt.quantize_dequantize(&x[16..]);
        assert_eq!(&q[16..], &tail[..]);
    }

    #[test]
    fn idempotent() {
        let fmt = BdrFormat::MX6;
        let x: Vec<f32> = (0..64)
            .map(|i| ((i * 37) % 101) as f32 * 0.013 - 0.6)
            .collect();
        let q1 = fmt.quantize_dequantize(&x);
        let q2 = fmt.quantize_dequantize(&q1);
        assert_eq!(q1, q2);
    }

    #[test]
    fn in_place_matches_allocating() {
        let fmt = BdrFormat::MX9;
        let x: Vec<f32> = (0..50).map(|i| (i as f32).sin()).collect();
        let q = fmt.quantize_dequantize(&x);
        let mut y = x.clone();
        fmt.quantize_dequantize_in_place(&mut y);
        assert_eq!(q, y);
    }

    #[test]
    fn tiny_values_below_shared_exponent_flush_toward_zero() {
        let fmt = BdrFormat::MX4; // m = 2
        let mut x = vec![0.0f32; 16];
        x[0] = 1.0; // shared exp 0
        x[15] = 1e-6; // far below representable range at m=2, shift<=1
        let q = fmt.quantize_dequantize(&x);
        assert_eq!(q[0], 1.0);
        assert_eq!(q[15], 0.0);
    }

    #[test]
    fn shared_exponent_clamps_to_d1_range() {
        let fmt = BdrFormat::new(4, 4, 1, 16, 2).unwrap(); // d1=4: exp in [-7, 8]
        assert_eq!(fmt.max_shared_exp(), 8);
        assert_eq!(fmt.min_shared_exp(), -7);
        let mut x = vec![0.0f32; 16];
        x[0] = 2.0f32.powi(20); // exponent 20, clamps to 8
        let plan = fmt.plan_block(&x).unwrap();
        assert_eq!(plan.shared_exp, 8);
        // The value saturates to the max code at the clamped exponent.
        let q = fmt.quantize_dequantize(&x);
        let max_mag = (2.0f32 - 2.0f32.powi(1 - 4)) * 2.0f32.powi(8);
        assert_eq!(q[0], max_mag);
    }

    #[test]
    fn display_names() {
        assert_eq!(BdrFormat::MX9.to_string(), "MX9");
        assert_eq!(
            BdrFormat::new(4, 8, 2, 32, 4).unwrap().to_string(),
            "BDR(m=4,d1=8,d2=2,k1=32,k2=4)"
        );
    }

    #[test]
    fn codes_dequantize_matches_quantize_dequantize() {
        for fmt in [
            BdrFormat::MX4,
            BdrFormat::MX6,
            BdrFormat::MX9,
            BdrFormat::MSFP12,
        ] {
            let x: Vec<f32> = (0..16)
                .map(|i| ((i * 73) % 29) as f32 * 0.21 - 2.5)
                .collect();
            let qb = fmt.quantize_block_codes(&x);
            assert_eq!(qb.len(), 16);
            assert_eq!(qb.dequantize(), fmt.quantize_dequantize_block(&x), "{fmt}");
        }
    }

    #[test]
    fn codes_for_zero_block() {
        let qb = BdrFormat::MX6.quantize_block_codes(&[0.0; 8]);
        assert_eq!(qb.codes, vec![0; 8]);
        assert_eq!(qb.shifts.len(), 4);
        assert_eq!(qb.dequantize(), vec![0.0; 8]);
    }

    #[test]
    fn codes_respect_mantissa_width() {
        let fmt = BdrFormat::MX4; // m = 2 -> codes in 0..=3
        let x: Vec<f32> = (0..16).map(|i| (i as f32 + 1.0) * 0.37).collect();
        let qb = fmt.quantize_block_codes(&x);
        assert!(qb.codes.iter().all(|&c| c <= 3));
    }

    #[test]
    fn quantizer_trait_adapter() {
        use crate::VectorQuantizer;
        let mut q = BdrQuantizer::new(BdrFormat::MX9);
        assert_eq!(q.label(), "MX9");
        assert_eq!(q.bits_per_element(), 9.0);
        let x = vec![0.1f32; 16];
        assert_eq!(q.quantize_dequantize(&x).len(), 16);
    }
}
