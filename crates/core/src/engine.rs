//! The unified block-quantization engine: one implementation of the BDR
//! block plan serving every consumer in the workspace.
//!
//! The paper's central object is the two-level block plan of Fig. 4/5 — a
//! shared `d1`-bit exponent per `k1`-block plus a `d2`-bit microexponent
//! shift per `k2`-sub-block. The seed computed that plan in three
//! independent places (the value path in [`crate::bdr`], a re-inlined copy
//! in the packed encoder of [`crate::mx`], and a transpose-heavy wrapper in
//! `mx-nn`). This module is now the *only* implementation; everything else
//! is a thin client:
//!
//! - **Value path** — [`QuantEngine::quantize_dequantize`] /
//!   [`QuantEngine::quantize_dequantize_in_place`] fake-quantize contiguous
//!   vectors.
//! - **Packed bit streams** — [`QuantEngine::encode`] /
//!   [`QuantEngine::decode`] produce and consume the Fig. 4 layout;
//!   [`crate::mx::MxTensor`] delegates here.
//! - **Strided 2-D kernels** — [`QuantEngine::quantize_dequantize_rows`]
//!   and [`QuantEngine::quantize_dequantize_cols`] quantize a row-major
//!   matrix along either axis *in place*. The column kernel walks blocks
//!   directly through a stride, replacing the seed's
//!   transpose → quantize → transpose round trip.
//! - **Integer codes** — [`QuantEngine::quantize_block_codes`] lowers a
//!   block to the sign/magnitude codes the `mx-hw` datapath consumes.
//!
//! All value kernels have a chunked data-parallel front-end (see
//! [`crate::parallel`]): construct the engine with
//! [`QuantEngine::with_threads`] and large tensors are split into
//! block-aligned spans across worker threads. Because blocks are
//! independent, the parallel result is **bit-identical** to the serial one.
//!
//! # Examples
//!
//! ```
//! use mx_core::bdr::BdrFormat;
//! use mx_core::engine::QuantEngine;
//!
//! let engine = QuantEngine::new(BdrFormat::MX6);
//! let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.3).sin()).collect();
//!
//! // Value path, packed path, and the format's own method all agree.
//! let q = engine.quantize_dequantize(&x);
//! assert_eq!(q, BdrFormat::MX6.quantize_dequantize(&x));
//! let bytes = engine.encode(&x);
//! assert_eq!(engine.decode(&bytes, x.len()), q);
//! ```

use crate::bdr::{BdrFormat, BlockPlan, QuantizedBlock};
use crate::bits::{BitReader, BitWriter};
use crate::parallel;
use crate::util::{exponent_of, pow2, round_half_even};

/// Minimum number of elements each worker thread must receive before the
/// engine bothers spawning it; below `2×` this the kernels stay serial.
/// Scoped threads are spawned per call, so tiny tensors must not pay the
/// spawn cost.
pub const PARALLEL_GRAIN: usize = 16 * 1024;

/// Block-quantization engine for one [`BdrFormat`].
///
/// Construction is free; the engine is `Copy` and carries only the format
/// and a thread-count knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantEngine {
    format: BdrFormat,
    threads: usize,
}

impl QuantEngine {
    /// Serial engine for `format`.
    pub fn new(format: BdrFormat) -> Self {
        QuantEngine { format, threads: 1 }
    }

    /// Engine that uses every available core for large tensors
    /// (equivalent to `new(format).with_threads(0)`).
    pub fn auto(format: BdrFormat) -> Self {
        Self::new(format).with_threads(0)
    }

    /// Sets the worker-thread budget. `0` means "all available cores"
    /// ([`parallel::default_threads`]). Regardless of the budget, inputs
    /// smaller than `2 ×` [`PARALLEL_GRAIN`] are processed serially, and
    /// the parallel result is always bit-identical to the serial one.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            parallel::default_threads()
        } else {
            threads
        };
        self
    }

    /// The engine's format.
    pub fn format(&self) -> BdrFormat {
        self.format
    }

    /// The configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn effective_threads(&self, len: usize) -> usize {
        if self.threads <= 1 || len < 2 * PARALLEL_GRAIN {
            1
        } else {
            self.threads.min(len / PARALLEL_GRAIN).max(1)
        }
    }

    // ------------------------------------------------------------------
    // Planning
    // ------------------------------------------------------------------

    /// Computes the block plan for one contiguous block of at most `k1`
    /// values, or `None` for an all-zero block.
    pub fn plan_block(&self, block: &[f32]) -> Option<BlockPlan> {
        self.plan_block_strided(block, 0, 1, block.len())
    }

    /// Computes the block plan for a strided block: elements
    /// `data[base + i·stride]` for `i in 0..len`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `len` exceeds `k1`; panics if the last
    /// index is out of bounds.
    pub fn plan_block_strided(
        &self,
        data: &[f32],
        base: usize,
        stride: usize,
        len: usize,
    ) -> Option<BlockPlan> {
        let mut shifts = Vec::new();
        let shared_exp = plan_into(&self.format, data, base, stride, len, &mut shifts)?;
        Some(BlockPlan { shared_exp, shifts })
    }

    // ------------------------------------------------------------------
    // (a) Value path
    // ------------------------------------------------------------------

    /// Quantizes `xs` (any length; the tail may form a partial block) and
    /// returns the dequantized values.
    pub fn quantize_dequantize(&self, xs: &[f32]) -> Vec<f32> {
        let mut out = xs.to_vec();
        self.quantize_dequantize_in_place(&mut out);
        out
    }

    /// Quantizes `xs` in place.
    pub fn quantize_dequantize_in_place(&self, xs: &mut [f32]) {
        let threads = self.effective_threads(xs.len());
        let fmt = self.format;
        parallel::for_each_span_mut(xs, fmt.k1(), threads, |span| {
            qdq_slice(&fmt, span, &mut Vec::new());
        });
    }

    // ------------------------------------------------------------------
    // (c) Strided 2-D kernels
    // ------------------------------------------------------------------

    /// Quantizes each length-`cols` row of a row-major matrix
    /// independently, in place (blocks restart at every row boundary).
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero or `data.len()` is not a multiple of it.
    pub fn quantize_dequantize_rows(&self, data: &mut [f32], cols: usize) {
        if data.is_empty() {
            return;
        }
        assert!(
            cols > 0 && data.len().is_multiple_of(cols),
            "data length {} is not a whole number of rows of {cols} columns",
            data.len()
        );
        let threads = self.effective_threads(data.len());
        let fmt = self.format;
        parallel::for_each_span_mut(data, cols, threads, |span| {
            let mut shifts = Vec::new();
            for row in span.chunks_mut(cols) {
                qdq_slice(&fmt, row, &mut shifts);
            }
        });
    }

    /// Quantizes each column of a row-major `[rows, cols]` matrix
    /// independently, in place: blocks of `k1` run *down* each column
    /// (the reduction-dimension layout for the `W[K,N]` operand of `A·W`),
    /// walked directly through the row stride — no transpose is
    /// materialized.
    ///
    /// Equivalent to (but faster than) transposing, quantizing each row,
    /// and transposing back.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero or `data.len()` is not a multiple of it.
    pub fn quantize_dequantize_cols(&self, data: &mut [f32], cols: usize) {
        if data.is_empty() {
            return;
        }
        assert!(
            cols > 0 && data.len().is_multiple_of(cols),
            "data length {} is not a whole number of rows of {cols} columns",
            data.len()
        );
        let threads = self.effective_threads(data.len());
        let fmt = self.format;
        let k1 = fmt.k1();
        // Split on bands of k1 rows: every column block lies entirely
        // inside one band, so bands are independent (and parallel-safe).
        parallel::for_each_span_mut(data, k1 * cols, threads, |band| {
            let band_rows = band.len() / cols;
            let mut shifts = Vec::new();
            for block_start in (0..band_rows).step_by(k1) {
                let block_len = k1.min(band_rows - block_start);
                let row_base = block_start * cols;
                for c in 0..cols {
                    qdq_block_strided(&fmt, band, row_base + c, cols, block_len, &mut shifts);
                }
            }
        });
    }

    // ------------------------------------------------------------------
    // (b) Packed bit streams + integer codes
    // ------------------------------------------------------------------

    /// Encodes `values` into the packed Fig. 4 bit stream: per block, one
    /// `d1`-bit biased shared exponent, `k1/k2` microexponent shifts of
    /// `d2` bits, then `k1` elements of (sign, `m`-bit magnitude).
    ///
    /// When the format's full-block footprint is byte-aligned and the
    /// engine has a thread budget, blocks are encoded in parallel spans and
    /// concatenated — bit-identical to the serial stream.
    pub fn encode(&self, values: &[f32]) -> Vec<u8> {
        let fmt = self.format;
        let k1 = fmt.k1();
        let threads = self.effective_threads(values.len());
        let byte_aligned = fmt.block_bits(k1).is_multiple_of(8);
        if threads > 1 && byte_aligned && values.len() > k1 {
            let span = values.len().div_ceil(threads).div_ceil(k1) * k1;
            let spans: Vec<&[f32]> = values.chunks(span).collect();
            let parts = parallel::map(&spans, threads, |span| encode_slice(&fmt, span));
            let mut bytes = Vec::with_capacity(parts.iter().map(Vec::len).sum());
            for part in parts {
                bytes.extend_from_slice(&part);
            }
            bytes
        } else {
            encode_slice(&fmt, values)
        }
    }

    /// Decodes `len` elements from a packed bit stream produced by
    /// [`QuantEngine::encode`].
    ///
    /// When the format's full-block footprint is byte-aligned and the
    /// engine has a thread budget, the stream is split on block boundaries
    /// and the spans are decoded in parallel, mirroring
    /// [`QuantEngine::encode`] — bit-identical to the serial decode.
    ///
    /// # Panics
    ///
    /// Panics if the stream is truncated.
    pub fn decode(&self, bytes: &[u8], len: usize) -> Vec<f32> {
        let fmt = self.format;
        let k1 = fmt.k1();
        let threads = self.effective_threads(len);
        let block_bits = fmt.block_bits(k1);
        if threads > 1 && block_bits.is_multiple_of(8) && len > k1 {
            let block_bytes = block_bits / 8;
            let span = len.div_ceil(threads).div_ceil(k1) * k1;
            let tasks: Vec<(&[u8], usize)> = (0..len.div_ceil(span))
                .map(|s| {
                    let start = s * span;
                    let byte_off = (start / k1) * block_bytes;
                    assert!(byte_off <= bytes.len(), "truncated stream");
                    (&bytes[byte_off..], span.min(len - start))
                })
                .collect();
            let parts = parallel::map(&tasks, threads, |&(span_bytes, n)| {
                decode_slice(&fmt, span_bytes, n)
            });
            let mut out = Vec::with_capacity(len);
            for part in parts {
                out.extend_from_slice(&part);
            }
            out
        } else {
            decode_slice(&fmt, bytes, len)
        }
    }

    /// Lowers one block (length at most `k1`) to raw integer codes — the
    /// form a hardware datapath consumes. All-zero blocks return shared
    /// exponent 0 and zero codes.
    pub fn quantize_block_codes(&self, block: &[f32]) -> QuantizedBlock {
        let fmt = self.format;
        debug_assert!(block.len() <= fmt.k1());
        let sub_blocks = block.len().div_ceil(fmt.k2());
        let mut shifts = Vec::new();
        let Some(shared_exp) = plan_into(&fmt, block, 0, 1, block.len(), &mut shifts) else {
            return QuantizedBlock {
                format: fmt,
                shared_exp: 0,
                shifts: vec![0; sub_blocks],
                signs: vec![false; block.len()],
                codes: vec![0; block.len()],
            };
        };
        let max_code = fmt.max_code();
        let mut signs = Vec::with_capacity(block.len());
        let mut codes = Vec::with_capacity(block.len());
        for (i, sub) in block.chunks(fmt.k2()).enumerate() {
            let ulp = ulp_of(&fmt, shared_exp, shifts[i]);
            for &x in sub {
                // Zeros (including -0.0) carry sign 0 so code lowering,
                // packed streams, and the value path dequantize to the
                // same bit pattern (+0.0).
                signs.push(x != 0.0 && x.is_sign_negative());
                codes.push(quantize_code(x, ulp, max_code) as u32);
            }
        }
        QuantizedBlock {
            format: fmt,
            shared_exp,
            shifts,
            signs,
            codes,
        }
    }
}

// ----------------------------------------------------------------------
// The single implementation of the BDR block plan and its kernels.
// ----------------------------------------------------------------------

/// Largest exponent over the strided elements, `None` if all are zero.
#[inline]
fn max_exp_strided(data: &[f32], base: usize, stride: usize, len: usize) -> Option<i32> {
    let mut best: Option<i32> = None;
    let mut idx = base;
    for _ in 0..len {
        let x = data[idx];
        if x != 0.0 && x.is_finite() {
            let e = exponent_of(x);
            best = Some(match best {
                Some(b) if b >= e => b,
                _ => e,
            });
        }
        idx += stride;
    }
    best
}

/// Computes the shared exponent and fills `shifts` (one per `k2`-sub-block)
/// for the strided block `data[base + i·stride], i in 0..len`. Returns
/// `None` (leaving `shifts` empty) for an all-zero block.
///
/// This is the *only* implementation of the paper's two-level plan: the
/// shared exponent is the clamped exponent of the block's largest
/// magnitude, and each sub-block's shift is `min(E − Eᵢ, 2^d2 − 1)`
/// (all-zero sub-blocks take the maximum shift). `pub(crate)` so the
/// integer-domain GEMM ([`crate::gemm`]) lowers its operands through the
/// exact same plan without per-block allocations.
pub(crate) fn plan_into(
    fmt: &BdrFormat,
    data: &[f32],
    base: usize,
    stride: usize,
    len: usize,
    shifts: &mut Vec<u32>,
) -> Option<i32> {
    debug_assert!(len <= fmt.k1(), "block of {len} exceeds k1 = {}", fmt.k1());
    shifts.clear();
    let e_raw = max_exp_strided(data, base, stride, len)?;
    let shared_exp = e_raw.clamp(fmt.min_shared_exp(), fmt.max_shared_exp());
    let beta = fmt.max_shift();
    let k2 = fmt.k2();
    let mut sub_start = 0;
    while sub_start < len {
        let sub_len = k2.min(len - sub_start);
        let shift = match max_exp_strided(data, base + sub_start * stride, stride, sub_len) {
            Some(e_i) => (shared_exp.saturating_sub(e_i).max(0) as u32).min(beta),
            None => beta,
        };
        shifts.push(shift);
        sub_start += k2;
    }
    Some(shared_exp)
}

/// One unit in the last place for a sub-block at `shared_exp − shift` with
/// an `m`-bit mantissa of the form `b0.b1…b(m−1)`.
#[inline]
pub(crate) fn ulp_of(fmt: &BdrFormat, shared_exp: i32, shift: u32) -> f64 {
    pow2(shared_exp - shift as i32 - (fmt.m() as i32 - 1))
}

/// Quantizes one magnitude to its integer code (round-half-even, saturating
/// at `max_code`). Shared with [`crate::gemm`] so code-domain operands are
/// lowered by the identical rounding rule.
#[inline]
pub(crate) fn quantize_code(x: f32, ulp: f64, max_code: u64) -> u64 {
    if x == 0.0 {
        0
    } else {
        (round_half_even(x.abs() as f64 / ulp) as u64).min(max_code)
    }
}

/// Storage width for shift-aligned signed integer codes (`i16` for narrow
/// format pairs, `i32` for wide ones) — lets [`lower_block_into`] write the
/// consuming kernel's width directly, with no intermediate staging pass.
/// The conversion must be lossless for every value the code-domain
/// dispatch admits (`crate::gemm`'s pair-class width gates guarantee it).
pub(crate) trait AlignedCode: Copy + Send + Sync {
    /// All-zero code (block padding).
    const ZERO: Self;
    /// Lossless narrowing from the aligned `i32` code.
    fn from_aligned(aligned: i32) -> Self;
}

impl AlignedCode for i16 {
    const ZERO: Self = 0;

    #[inline(always)]
    fn from_aligned(aligned: i32) -> Self {
        debug_assert!(i32::from(aligned as i16) == aligned);
        aligned as i16
    }
}

impl AlignedCode for i32 {
    const ZERO: Self = 0;

    #[inline(always)]
    fn from_aligned(aligned: i32) -> Self {
        aligned
    }
}

/// `2^52` — adding and subtracting it forces the FPU's round-to-nearest
/// (ties-to-even) at integer granularity, the classic branch-free form of
/// [`round_half_even`].
const ROUND_BIAS: f64 = 4_503_599_627_370_496.0;

/// Branch-free [`round_half_even`] for the magnitudes the code-lowering
/// loop produces, bit-identical to the `floor`-based helper everywhere the
/// two are composed with the `min(max_code)` clamp:
///
/// - for `0 ≤ v < 2^52`, `(v + 2^52) − 2^52` rounds `v` at integer
///   granularity under the default IEEE round-to-nearest-even mode and the
///   subtraction is exact — this *is* `roundTiesToEven(v)`;
/// - for `v ≥ 2^52` both forms yield a value `≥ 2^52 − 1 > max_code`, so
///   the clamp saturates identically;
/// - `inf` propagates (`as u64` saturates, clamp hits `max_code`) and NaN
///   converts to 0 on both paths.
#[inline(always)]
fn round_half_even_fast(v: f64) -> f64 {
    (v + ROUND_BIAS) - ROUND_BIAS
}

/// Plans one contiguous block (`block.len() ≤ k1`) and lowers it straight
/// to shift-aligned signed integer codes — the tile-granular entry the
/// fused GEMM path ([`crate::gemm`]) quantizes A-row strips through, one
/// `k1`-block of one row at a time, inside the execute loop.
///
/// `codes` must hold exactly `k1` slots; every slot is written (the ragged
/// tail past `block.len()` is zeroed, as is the whole slot array for an
/// all-zero block, which returns `None` like [`plan_into`]).
///
/// This is [`plan_into`] + [`quantize_code`] restructured for the hot loop
/// without moving a single decision or rounding point:
///
/// - the exponent scans become **one branch-light integer pass** over the
///   IEEE-754 abs bit patterns: the exponent is monotone in them, so each
///   sub-block's largest exponent is the exponent of its largest-`|x|`
///   finite element ([`exponent_of`] itself, the clamp, and the shift
///   formula are reused verbatim, and a debug-build assertion cross-checks
///   the plan against [`plan_into`]);
/// - the per-element division becomes a multiplication by the sub-block
///   ulp's reciprocal, hoisted out of the element loop — for every format
///   pair admitted to the code domain the ulp is an exact power of two no
///   smaller than `2^-149` (`crate::gemm`'s `exact_dequantize` gate), so
///   the reciprocal is exact and both scalings are exact exponent
///   adjustments comfortably inside `f64`'s normal range;
/// - the `floor`-based tie break becomes the branch-free
///   [`round_half_even_fast`] bias trick.
///
/// All three substitutions are value-preserving, so every code is
/// bit-identical to the two-pass pack (the `gemm_fused` consistency suite
/// asserts it across all preset pairs and stress data).
pub(crate) fn lower_block_into<C: AlignedCode>(
    fmt: &BdrFormat,
    block: &[f32],
    shifts: &mut Vec<u32>,
    codes: &mut [C],
) -> Option<i32> {
    debug_assert_eq!(codes.len(), fmt.k1());
    let k2 = fmt.k2();
    let beta = fmt.max_shift();
    // Pass 1: per-sub-block max |x| as raw abs bits (0 ⇔ no finite nonzero
    // element), staged in `shifts`; the block max is the max over them.
    shifts.clear();
    let mut block_max = 0u32;
    let mut sub_start = 0;
    while sub_start < block.len() {
        let end = (sub_start + k2).min(block.len());
        let mut sub_max = 0u32;
        for &x in &block[sub_start..end] {
            let abs = x.to_bits() & 0x7fff_ffff;
            // Exactly `plan_into`'s filter: x != 0.0 && x.is_finite().
            if abs < 0x7f80_0000 && abs > sub_max {
                sub_max = abs;
            }
        }
        shifts.push(sub_max);
        block_max = block_max.max(sub_max);
        sub_start = end;
    }
    if block_max == 0 {
        shifts.clear();
        codes.fill(C::ZERO);
        return None;
    }
    let shared_exp =
        exponent_of(f32::from_bits(block_max)).clamp(fmt.min_shared_exp(), fmt.max_shared_exp());
    // Pass 2: staged maxima → microexponent shifts, the same formula as
    // `plan_into` (all-zero sub-blocks take the maximum shift).
    for s in shifts.iter_mut() {
        *s = if *s == 0 {
            beta
        } else {
            let e_i = exponent_of(f32::from_bits(*s));
            (shared_exp.saturating_sub(e_i).max(0) as u32).min(beta)
        };
    }
    #[cfg(debug_assertions)]
    {
        let mut check = Vec::new();
        let check_exp = plan_into(fmt, block, 0, 1, block.len(), &mut check);
        debug_assert_eq!(check_exp, Some(shared_exp), "fused plan: shared exp");
        debug_assert_eq!(&check, shifts, "fused plan: shifts");
    }
    let max_code = fmt.max_code();
    let m1 = fmt.m() as i32 - 1;
    let mut done = 0;
    for &tau in shifts.iter() {
        let sub_len = k2.min(block.len() - done);
        let inv_ulp = pow2(-(shared_exp - tau as i32 - m1));
        let align = beta - tau;
        for (dst, &x) in codes[done..done + sub_len].iter_mut().zip(&block[done..]) {
            *dst = if x == 0.0 {
                // Zeros (incl. -0.0) carry sign 0, matching the engine's
                // value and packed paths.
                C::ZERO
            } else {
                let rounded = round_half_even_fast(x.abs() as f64 * inv_ulp);
                let code = (rounded as u64).min(max_code);
                let aligned = (code as i32) << align;
                C::from_aligned(if x.is_sign_negative() {
                    -aligned
                } else {
                    aligned
                })
            };
        }
        done += sub_len;
    }
    codes[done..].fill(C::ZERO);
    Some(shared_exp)
}

/// Strided sibling of [`lower_block_into`]: plans the block
/// `data[base + i·stride], i in 0..len` and lowers it to shift-aligned
/// codes in one pass — the entry [`crate::gemm`]'s column packer walks
/// `B[K,N]`'s columns through (stride `n`) without materializing a
/// transpose. Also returns the block's shared exponent via the same
/// `Option` convention, which is the plan metadata the packer's
/// deferred-scale-out bookkeeping (per-vector exponent uniformity)
/// consumes.
///
/// `codes` must hold exactly `k1` slots; every slot is written (the ragged
/// tail past `len` is zeroed, as is the whole slot array for an all-zero
/// block). The planning filter, clamp, shift formula, reciprocal-multiply
/// scaling, and branch-free rounding are the same substitutions as
/// [`lower_block_into`] — the two must stay in step, decision for decision
/// (both are debug-checked against [`plan_into`] and proven bit-identical
/// to the division path by the packing consistency suites).
pub(crate) fn lower_block_strided_into<C: AlignedCode>(
    fmt: &BdrFormat,
    data: &[f32],
    base: usize,
    stride: usize,
    len: usize,
    shifts: &mut Vec<u32>,
    codes: &mut [C],
) -> Option<i32> {
    debug_assert_eq!(codes.len(), fmt.k1());
    debug_assert!(len <= fmt.k1());
    let k2 = fmt.k2();
    let beta = fmt.max_shift();
    // Pass 1: per-sub-block max |x| as raw abs bits, staged in `shifts`.
    shifts.clear();
    let mut block_max = 0u32;
    let mut sub_start = 0;
    while sub_start < len {
        let sub_len = k2.min(len - sub_start);
        let mut sub_max = 0u32;
        let mut idx = base + sub_start * stride;
        for _ in 0..sub_len {
            let abs = data[idx].to_bits() & 0x7fff_ffff;
            // Exactly `plan_into`'s filter: x != 0.0 && x.is_finite().
            if abs < 0x7f80_0000 && abs > sub_max {
                sub_max = abs;
            }
            idx += stride;
        }
        shifts.push(sub_max);
        block_max = block_max.max(sub_max);
        sub_start += sub_len;
    }
    if block_max == 0 {
        shifts.clear();
        codes.fill(C::ZERO);
        return None;
    }
    let shared_exp =
        exponent_of(f32::from_bits(block_max)).clamp(fmt.min_shared_exp(), fmt.max_shared_exp());
    // Pass 2: staged maxima → microexponent shifts (same formula as
    // `plan_into`; all-zero sub-blocks take the maximum shift).
    for s in shifts.iter_mut() {
        *s = if *s == 0 {
            beta
        } else {
            let e_i = exponent_of(f32::from_bits(*s));
            (shared_exp.saturating_sub(e_i).max(0) as u32).min(beta)
        };
    }
    #[cfg(debug_assertions)]
    {
        let mut check = Vec::new();
        let check_exp = plan_into(fmt, data, base, stride, len, &mut check);
        debug_assert_eq!(check_exp, Some(shared_exp), "strided plan: shared exp");
        debug_assert_eq!(&check, shifts, "strided plan: shifts");
    }
    let max_code = fmt.max_code();
    let m1 = fmt.m() as i32 - 1;
    let mut done = 0;
    for &tau in shifts.iter() {
        let sub_len = k2.min(len - done);
        let inv_ulp = pow2(-(shared_exp - tau as i32 - m1));
        let align = beta - tau;
        let mut idx = base + done * stride;
        for dst in codes[done..done + sub_len].iter_mut() {
            let x = data[idx];
            idx += stride;
            *dst = if x == 0.0 {
                // Zeros (incl. -0.0) carry sign 0, matching the engine's
                // value and packed paths.
                C::ZERO
            } else {
                let rounded = round_half_even_fast(x.abs() as f64 * inv_ulp);
                let code = (rounded as u64).min(max_code);
                let aligned = (code as i32) << align;
                C::from_aligned(if x.is_sign_negative() {
                    -aligned
                } else {
                    aligned
                })
            };
        }
        done += sub_len;
    }
    codes[done..].fill(C::ZERO);
    Some(shared_exp)
}

/// Fake-quantizes one strided block in place.
fn qdq_block_strided(
    fmt: &BdrFormat,
    data: &mut [f32],
    base: usize,
    stride: usize,
    len: usize,
    shifts: &mut Vec<u32>,
) {
    let Some(shared_exp) = plan_into(fmt, data, base, stride, len, shifts) else {
        let mut idx = base;
        for _ in 0..len {
            data[idx] = 0.0;
            idx += stride;
        }
        return;
    };
    let max_code = fmt.max_code();
    let k2 = fmt.k2();
    let mut idx = base;
    let mut done = 0;
    for &shift in shifts.iter() {
        let ulp = ulp_of(fmt, shared_exp, shift);
        let sub_len = k2.min(len - done);
        for _ in 0..sub_len {
            let x = data[idx];
            data[idx] = if x == 0.0 {
                0.0
            } else {
                let mag = (quantize_code(x, ulp, max_code) as f64 * ulp) as f32;
                if x.is_sign_negative() {
                    -mag
                } else {
                    mag
                }
            };
            idx += stride;
        }
        done += sub_len;
    }
}

/// Fake-quantizes a contiguous slice in place, block by block.
fn qdq_slice(fmt: &BdrFormat, xs: &mut [f32], shifts: &mut Vec<u32>) {
    let k1 = fmt.k1();
    for start in (0..xs.len()).step_by(k1) {
        let len = k1.min(xs.len() - start);
        qdq_block_strided(fmt, xs, start, 1, len, shifts);
    }
}

/// Serial packed decoding of `len` elements from the head of a bit stream
/// (whole blocks plus an optional partial tail block).
fn decode_slice(fmt: &BdrFormat, bytes: &[u8], len: usize) -> Vec<f32> {
    let mut r = BitReader::new(bytes);
    let exp_bias = fmt.exp_bias();
    let mut out = Vec::with_capacity(len);
    let mut shifts = Vec::new();
    let mut remaining = len;
    while remaining > 0 {
        let block_len = remaining.min(fmt.k1());
        let exp_code = r.read(fmt.d1()).expect("truncated stream") as i64;
        let shared_exp = (exp_code - exp_bias) as i32;
        let sub_blocks = block_len.div_ceil(fmt.k2());
        shifts.clear();
        for _ in 0..sub_blocks {
            shifts.push(r.read(fmt.d2()).expect("truncated stream") as u32);
        }
        for i in 0..block_len {
            let ulp = ulp_of(fmt, shared_exp, shifts[i / fmt.k2()]);
            let sign = r.read(1).expect("truncated stream");
            let code = r.read(fmt.m()).expect("truncated stream");
            let mag = (code as f64 * ulp) as f32;
            out.push(if sign == 1 { -mag } else { mag });
        }
        remaining -= block_len;
    }
    out
}

/// Serial packed encoding of a slice of whole blocks (plus an optional
/// partial tail block).
fn encode_slice(fmt: &BdrFormat, values: &[f32]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut shifts = Vec::new();
    let exp_bias = fmt.exp_bias();
    let max_code = fmt.max_code();
    for block in values.chunks(fmt.k1()) {
        match plan_into(fmt, block, 0, 1, block.len(), &mut shifts) {
            None => {
                // All-zero block: exponent code 0, shifts 0, elements 0.
                w.write(0, fmt.d1());
                for _ in block.chunks(fmt.k2()) {
                    w.write(0, fmt.d2());
                }
                for _ in block {
                    w.write(0, 1 + fmt.m());
                }
            }
            Some(shared_exp) => {
                w.write((shared_exp as i64 + exp_bias) as u64, fmt.d1());
                for &shift in &shifts {
                    w.write(shift as u64, fmt.d2());
                }
                for (i, sub) in block.chunks(fmt.k2()).enumerate() {
                    let ulp = ulp_of(fmt, shared_exp, shifts[i]);
                    for &x in sub {
                        // Sign 0 for zeros (incl. -0.0): keeps the packed
                        // stream bit-identical to the value path.
                        w.write(u64::from(x != 0.0 && x.is_sign_negative()), 1);
                        w.write(quantize_code(x, ulp, max_code), fmt.m());
                    }
                }
            }
        }
    }
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.037)
            .collect()
    }

    const FORMATS: [BdrFormat; 5] = [
        BdrFormat::MX4,
        BdrFormat::MX6,
        BdrFormat::MX9,
        BdrFormat::MSFP12,
        BdrFormat::MSFP16,
    ];

    #[test]
    fn strided_plan_matches_gathered_plan() {
        let fmt = BdrFormat::MX6;
        let engine = QuantEngine::new(fmt);
        let data = ramp(64);
        // Stride-4 block starting at 1: elements 1, 5, 9, ...
        let gathered: Vec<f32> = (0..16).map(|i| data[1 + 4 * i]).collect();
        let strided = engine.plan_block_strided(&data, 1, 4, 16).unwrap();
        let direct = engine.plan_block(&gathered).unwrap();
        assert_eq!(strided, direct);
    }

    #[test]
    fn value_path_matches_format_method() {
        for fmt in FORMATS {
            let x = ramp(100);
            let engine = QuantEngine::new(fmt);
            assert_eq!(
                engine.quantize_dequantize(&x),
                fmt.quantize_dequantize(&x),
                "{fmt}"
            );
        }
    }

    #[test]
    fn cols_kernel_matches_transpose_oracle() {
        for fmt in [BdrFormat::MX6, BdrFormat::MX9, BdrFormat::MSFP12] {
            for (rows, cols) in [(16, 3), (37, 5), (33, 7), (16, 16), (1, 4), (5, 1)] {
                let engine = QuantEngine::new(fmt);
                let data = ramp(rows * cols);
                // Oracle: transpose, quantize each row, transpose back.
                let mut expect = vec![0.0f32; rows * cols];
                for c in 0..cols {
                    let col: Vec<f32> = (0..rows).map(|r| data[r * cols + c]).collect();
                    let q = fmt.quantize_dequantize(&col);
                    for (r, v) in q.into_iter().enumerate() {
                        expect[r * cols + c] = v;
                    }
                }
                let mut got = data.clone();
                engine.quantize_dequantize_cols(&mut got, cols);
                assert_eq!(got, expect, "{fmt} {rows}x{cols}");
            }
        }
    }

    #[test]
    fn rows_kernel_matches_per_row_quantization() {
        let fmt = BdrFormat::MX6;
        let engine = QuantEngine::new(fmt);
        let (rows, cols) = (5, 21);
        let data = ramp(rows * cols);
        let mut got = data.clone();
        engine.quantize_dequantize_rows(&mut got, cols);
        for r in 0..rows {
            let expect = fmt.quantize_dequantize(&data[r * cols..(r + 1) * cols]);
            assert_eq!(&got[r * cols..(r + 1) * cols], &expect[..], "row {r}");
        }
    }

    #[test]
    fn parallel_value_path_is_bit_identical_to_serial() {
        let fmt = BdrFormat::MX9;
        let n = 4 * PARALLEL_GRAIN + 7; // force the parallel path, ragged tail
        let x = ramp(n);
        let serial = QuantEngine::new(fmt).quantize_dequantize(&x);
        for threads in [2, 3, 8] {
            let par = QuantEngine::new(fmt)
                .with_threads(threads)
                .quantize_dequantize(&x);
            let same_bits = serial
                .iter()
                .zip(par.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "threads={threads}");
        }
    }

    #[test]
    fn parallel_cols_kernel_is_bit_identical_to_serial() {
        let fmt = BdrFormat::MX6;
        let (rows, cols) = (512, 300); // > 2 * PARALLEL_GRAIN elements
        let data = ramp(rows * cols);
        let mut serial = data.clone();
        QuantEngine::new(fmt).quantize_dequantize_cols(&mut serial, cols);
        let mut par = data.clone();
        QuantEngine::new(fmt)
            .with_threads(4)
            .quantize_dequantize_cols(&mut par, cols);
        assert!(serial
            .iter()
            .zip(par.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn parallel_encode_matches_serial_bytes() {
        for fmt in FORMATS {
            let n = 2 * PARALLEL_GRAIN + 11;
            let x = ramp(n);
            let serial = QuantEngine::new(fmt).encode(&x);
            let par = QuantEngine::new(fmt).with_threads(4).encode(&x);
            assert_eq!(serial, par, "{fmt}");
            assert_eq!(
                QuantEngine::new(fmt).decode(&par, n),
                fmt.quantize_dequantize(&x),
                "{fmt}"
            );
        }
    }

    #[test]
    fn encode_decode_round_trip_partial_blocks() {
        for fmt in FORMATS {
            for n in [1usize, 5, 15, 16, 17, 31, 33, 100] {
                let x = ramp(n);
                let engine = QuantEngine::new(fmt);
                let bytes = engine.encode(&x);
                assert_eq!(
                    engine.decode(&bytes, n),
                    fmt.quantize_dequantize(&x),
                    "{fmt} n={n}"
                );
            }
        }
    }

    #[test]
    fn block_codes_match_value_path() {
        for fmt in FORMATS {
            let x = ramp(16);
            let engine = QuantEngine::new(fmt);
            let qb = engine.quantize_block_codes(&x);
            assert_eq!(qb.dequantize(), engine.quantize_dequantize(&x), "{fmt}");
        }
    }

    #[test]
    fn zero_and_negative_zero_blocks() {
        let engine = QuantEngine::new(BdrFormat::MX6);
        let mut x = vec![0.0f32, -0.0, 0.0, -0.0];
        let q = engine.quantize_dequantize(&x);
        assert!(
            q.iter().all(|v| v.to_bits() == 0),
            "value path normalizes -0.0"
        );
        engine.quantize_dequantize_in_place(&mut x);
        assert!(x.iter().all(|v| v.to_bits() == 0));
    }

    #[test]
    fn threads_knob() {
        let e = QuantEngine::new(BdrFormat::MX9);
        assert_eq!(e.threads(), 1);
        assert!(QuantEngine::auto(BdrFormat::MX9).threads() >= 1);
        assert_eq!(e.with_threads(6).threads(), 6);
        assert_eq!(e.format(), BdrFormat::MX9);
    }

    #[test]
    fn small_inputs_stay_serial_even_with_thread_budget() {
        // No observable difference, but exercises the effective_threads
        // gate: a 100-element tensor with an 8-thread budget must not split.
        let engine = QuantEngine::new(BdrFormat::MX4).with_threads(8);
        assert_eq!(engine.effective_threads(100), 1);
        assert!(engine.effective_threads(10 * PARALLEL_GRAIN) > 1);
    }
}
