//! Low-level numeric helpers shared across all format implementations.
//!
//! Everything in this module is bit-exact: exponent extraction works on the
//! raw IEEE-754 representation (including subnormals) and rounding uses
//! round-half-to-even on exactly representable dyadic rationals.

/// Returns `floor(log2(|x|))` for a finite, nonzero `x`, computed from the
/// IEEE-754 bit pattern (handles subnormal inputs exactly).
///
/// # Panics
///
/// Panics in debug builds if `x` is zero, NaN, or infinite; callers are
/// expected to have filtered those out.
///
/// # Examples
///
/// ```
/// # use mx_core::util::exponent_of;
/// assert_eq!(exponent_of(1.0), 0);
/// assert_eq!(exponent_of(-6.5), 2);
/// assert_eq!(exponent_of(0.75), -1);
/// ```
pub fn exponent_of(x: f32) -> i32 {
    debug_assert!(
        x.is_finite() && x != 0.0,
        "exponent_of requires finite nonzero input"
    );
    let bits = x.abs().to_bits();
    let exp_field = (bits >> 23) as i32;
    if exp_field > 0 {
        exp_field - 127
    } else {
        // Subnormal: value is mantissa * 2^-149; the exponent is set by the
        // position of the most significant mantissa bit.
        let mant = bits & 0x7f_ffff;
        let msb = 31 - mant.leading_zeros() as i32;
        msb - 149
    }
}

/// Largest exponent (per [`exponent_of`]) over the nonzero elements of `xs`,
/// or `None` when every element is zero (or `xs` is empty).
///
/// # Examples
///
/// ```
/// # use mx_core::util::max_exponent;
/// assert_eq!(max_exponent(&[0.0, 0.75, -6.5]), Some(2));
/// assert_eq!(max_exponent(&[0.0, 0.0]), None);
/// ```
pub fn max_exponent(xs: &[f32]) -> Option<i32> {
    xs.iter()
        .filter(|x| **x != 0.0 && x.is_finite())
        .map(|&x| exponent_of(x))
        .max()
}

/// Rounds `v` to the nearest integer, breaking ties toward the even integer
/// (IEEE-754 `roundTiesToEven`).
///
/// # Examples
///
/// ```
/// # use mx_core::util::round_half_even;
/// assert_eq!(round_half_even(2.5), 2.0);
/// assert_eq!(round_half_even(3.5), 4.0);
/// assert_eq!(round_half_even(-2.5), -2.0);
/// assert_eq!(round_half_even(2.4), 2.0);
/// ```
pub fn round_half_even(v: f64) -> f64 {
    let floor = v.floor();
    let diff = v - floor;
    if diff > 0.5 {
        floor + 1.0
    } else if diff < 0.5 {
        floor
    } else if (floor * 0.5).fract() == 0.0 {
        // floor is even
        floor
    } else {
        floor + 1.0
    }
}

/// Exact power of two as `f64`.
///
/// Valid for `|e| <= 1022`, far beyond any exponent reachable from `f32`
/// inputs.
///
/// # Examples
///
/// ```
/// # use mx_core::util::pow2;
/// assert_eq!(pow2(3), 8.0);
/// assert_eq!(pow2(-2), 0.25);
/// ```
pub fn pow2(e: i32) -> f64 {
    debug_assert!(
        (-1022..=1022).contains(&e),
        "pow2 exponent out of exact range"
    );
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Sum of squares of a slice, accumulated in `f64`.
pub fn power(xs: &[f32]) -> f64 {
    xs.iter().map(|&x| (x as f64) * (x as f64)).sum()
}

/// Sum of squared differences between two equal-length slices, in `f64`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn noise_power(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "noise_power requires equal-length slices");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_normals() {
        assert_eq!(exponent_of(1.0), 0);
        assert_eq!(exponent_of(1.9999), 0);
        assert_eq!(exponent_of(2.0), 1);
        assert_eq!(exponent_of(-2.0), 1);
        assert_eq!(exponent_of(0.5), -1);
        assert_eq!(exponent_of(7.2), 2);
        assert_eq!(exponent_of(f32::MAX), 127);
        assert_eq!(exponent_of(f32::MIN_POSITIVE), -126);
    }

    #[test]
    fn exponent_of_subnormals() {
        // Smallest positive subnormal: 2^-149.
        assert_eq!(exponent_of(f32::from_bits(1)), -149);
        // Largest subnormal is just below 2^-126.
        let largest_subnormal = f32::from_bits(0x007f_ffff);
        assert_eq!(exponent_of(largest_subnormal), -127);
        // 2^-140 constructed bit-exactly (powi underflows through infinity).
        assert_eq!(exponent_of(f32::from_bits(1 << 9)), -140);
    }

    #[test]
    fn exponent_matches_log2_floor() {
        let mut x = 1.37e-30f32;
        while x < 1e30 {
            assert_eq!(exponent_of(x), x.abs().log2().floor() as i32, "x = {x}");
            x *= 3.7;
        }
    }

    #[test]
    fn max_exponent_handles_zeros() {
        assert_eq!(max_exponent(&[]), None);
        assert_eq!(max_exponent(&[0.0, -0.0]), None);
        assert_eq!(max_exponent(&[0.0, 3.0]), Some(1));
    }

    #[test]
    fn round_half_even_ties() {
        assert_eq!(round_half_even(0.5), 0.0);
        assert_eq!(round_half_even(1.5), 2.0);
        assert_eq!(round_half_even(-0.5), 0.0);
        assert_eq!(round_half_even(-1.5), -2.0);
        assert_eq!(round_half_even(-2.5), -2.0);
        assert_eq!(round_half_even(127.5), 128.0);
        assert_eq!(round_half_even(128.5), 128.0);
    }

    #[test]
    fn round_half_even_non_ties() {
        assert_eq!(round_half_even(0.49999), 0.0);
        assert_eq!(round_half_even(0.50001), 1.0);
        assert_eq!(round_half_even(-3.7), -4.0);
        assert_eq!(round_half_even(1e9 + 0.25), 1e9);
    }

    #[test]
    fn pow2_exact() {
        assert_eq!(pow2(0), 1.0);
        assert_eq!(pow2(10), 1024.0);
        assert_eq!(pow2(-149), 2.0f64.powi(-149));
        assert_eq!(pow2(300), 2.0f64.powi(300));
    }

    #[test]
    fn power_and_noise_power() {
        assert_eq!(power(&[3.0, 4.0]), 25.0);
        assert_eq!(noise_power(&[1.0, 2.0], &[1.5, 1.0]), 0.25 + 1.0);
    }
}
