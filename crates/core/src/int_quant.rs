//! Software-scaled integer quantization (scaled INT4 / INT8 of Fig. 7).
//!
//! The classic GPU recipe (Fig. 1 and §II of the paper): blocks of `k1 ≈ 1K`
//! elements share one FP32 scale factor `s = amax / (2^(m−1) − 1)`, each
//! element stores a two's-complement integer `clamp(round(x / s))`. The
//! scale is software-managed, so `k1` must be large to amortize its cost.

use crate::scaling::{ScaleStrategy, ScaleTracker};
use crate::util::round_half_even;
use crate::VectorQuantizer;

/// Bits spent on each software-managed FP32 scale factor.
pub const FP32_SCALE_BITS: f64 = 32.0;

/// Symmetric integer quantizer with a software FP32 scale per `k1`-block.
///
/// # Examples
///
/// ```
/// # use mx_core::int_quant::IntQuantizer;
/// # use mx_core::scaling::ScaleStrategy;
/// # use mx_core::VectorQuantizer;
/// let mut q = IntQuantizer::new(8, 1024, ScaleStrategy::Amax);
/// let y = q.quantize_dequantize(&[0.5, -1.0, 0.25]);
/// assert!((y[1] - -1.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct IntQuantizer {
    bits: u32,
    k1: usize,
    tracker: ScaleTracker,
}

impl IntQuantizer {
    /// Creates an INT quantizer storing `bits`-wide integers with one FP32
    /// scale per `k1` elements.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=16` or `k1` is zero.
    pub fn new(bits: u32, k1: usize, strategy: ScaleStrategy) -> Self {
        assert!(
            (2..=16).contains(&bits),
            "INT bit-width {bits} outside 2..=16"
        );
        assert!(k1 > 0, "block granularity must be nonzero");
        IntQuantizer {
            bits,
            k1,
            tracker: ScaleTracker::new(strategy),
        }
    }

    /// Integer bit-width (including sign).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Block granularity of the FP32 scale.
    pub fn k1(&self) -> usize {
        self.k1
    }

    /// Largest representable positive code, `2^(bits−1) − 1`.
    pub fn max_code(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    fn quantize_block(&mut self, block: &[f32], out: &mut [f32]) {
        let amax = self.tracker.observe(block);
        if amax == 0.0 {
            out.fill(0.0);
            return;
        }
        let max_code = self.max_code() as f64;
        let s = amax as f64 / max_code;
        for (x, y) in block.iter().zip(out.iter_mut()) {
            let q = round_half_even(*x as f64 / s).clamp(-max_code, max_code);
            *y = (q * s) as f32;
        }
    }
}

impl VectorQuantizer for IntQuantizer {
    fn label(&self) -> String {
        format!(
            "INT{}(k1={},{})",
            self.bits,
            self.k1,
            self.tracker.strategy()
        )
    }

    fn bits_per_element(&self) -> f64 {
        self.bits as f64 + FP32_SCALE_BITS / self.k1 as f64
    }

    fn quantize_dequantize(&mut self, xs: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; xs.len()];
        for (block, block_out) in xs.chunks(self.k1).zip(out.chunks_mut(self.k1)) {
            self.quantize_block(block, block_out);
        }
        out
    }

    fn reset(&mut self) {
        self.tracker.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amax_int(bits: u32) -> IntQuantizer {
        IntQuantizer::new(bits, 1024, ScaleStrategy::Amax)
    }

    #[test]
    fn max_value_is_exact_with_amax_scaling() {
        let mut q = amax_int(8);
        let y = q.quantize_dequantize(&[3.7, -1.0, 0.0]);
        assert_eq!(y[0], 3.7);
        assert_eq!(y[2], 0.0);
    }

    #[test]
    fn int8_error_within_half_step() {
        let mut q = amax_int(8);
        let x: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.7).sin()).collect();
        let y = q.quantize_dequantize(&x);
        let step = 1.0 / 127.0; // amax is 1.0-ish
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() <= step, "{a} vs {b}");
        }
    }

    #[test]
    fn int4_is_coarser_than_int8() {
        let x: Vec<f32> = (0..1024)
            .map(|i| ((i * 61) % 997) as f32 / 997.0 - 0.5)
            .collect();
        let n8 = crate::util::noise_power(&amax_int(8).quantize_dequantize(&x), &x);
        let n4 = crate::util::noise_power(&amax_int(4).quantize_dequantize(&x), &x);
        assert!(
            n4 > 8.0 * n8,
            "INT4 noise {n4} should far exceed INT8 noise {n8}"
        );
    }

    #[test]
    fn delayed_scaling_clips_outliers() {
        let mut q = IntQuantizer::new(8, 4, ScaleStrategy::Delayed { window: 4 });
        // Prime history with small values.
        let _ = q.quantize_dequantize(&[0.1, -0.1, 0.05, 0.08]);
        // A new outlier saturates at the stale scale (0.1).
        let y = q.quantize_dequantize(&[10.0, 0.0, 0.0, 0.0]);
        assert!(y[0] <= 0.11, "outlier should clip near 0.1, got {}", y[0]);
    }

    #[test]
    fn zero_block() {
        let mut q = amax_int(8);
        assert_eq!(q.quantize_dequantize(&[0.0; 10]), vec![0.0; 10]);
    }

    #[test]
    fn bits_per_element_amortizes_scale() {
        let q = IntQuantizer::new(4, 1024, ScaleStrategy::Amax);
        assert!((q.bits_per_element() - (4.0 + 32.0 / 1024.0)).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_delayed_history() {
        let mut q = IntQuantizer::new(8, 2, ScaleStrategy::Delayed { window: 8 });
        let _ = q.quantize_dequantize(&[100.0, 0.0]);
        q.reset();
        // After reset the first block scales from itself again.
        let y = q.quantize_dequantize(&[1.0, 0.5]);
        assert_eq!(y[0], 1.0);
    }

    #[test]
    fn label_mentions_configuration() {
        let q = IntQuantizer::new(8, 1024, ScaleStrategy::Amax);
        assert_eq!(q.label(), "INT8(k1=1024,amax)");
    }

    #[test]
    #[should_panic(expected = "outside 2..=16")]
    fn rejects_1_bit() {
        let _ = IntQuantizer::new(1, 16, ScaleStrategy::Amax);
    }
}
