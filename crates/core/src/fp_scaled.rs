//! Scalar floating-point quantization with a software first-level scale —
//! the FP8/FP6/FP4 rows of Fig. 7 and the "FP8" row of Table I.
//!
//! Interpreted in the BDR framework, narrow scalar floats are a two-level
//! scheme: a coarse software FP32 scale `s` over `k1 ≈ 10K` elements
//! (maintained by a Transformer-Engine-style delayed-scaling heuristic) plus
//! a per-element (`k2 = 1`) power-of-two sub-scale — the element's own
//! private exponent. Quantization computes `cast(x / s) · s`.

use crate::int_quant::FP32_SCALE_BITS;
use crate::scalar::ScalarFormat;
use crate::scaling::{ScaleStrategy, ScaleTracker};
use crate::VectorQuantizer;

/// Nominal software-scale granularity used for storage accounting when the
/// caller does not override it (the paper quotes `k1 ≈ 10K` for FP8).
pub const DEFAULT_TENSOR_BLOCK: usize = 10_000;

/// Scalar-float quantizer with software first-level scaling.
///
/// # Examples
///
/// ```
/// # use mx_core::fp_scaled::FpScaledQuantizer;
/// # use mx_core::scalar::ScalarFormat;
/// # use mx_core::scaling::ScaleStrategy;
/// # use mx_core::VectorQuantizer;
/// let mut q = FpScaledQuantizer::new(ScalarFormat::E4M3, ScaleStrategy::Amax);
/// // The max element is scaled to the format's max finite value, so it is
/// // recovered exactly.
/// let y = q.quantize_dequantize(&[1000.0, 1.0]);
/// assert_eq!(y[0], 1000.0);
/// ```
#[derive(Debug, Clone)]
pub struct FpScaledQuantizer {
    format: ScalarFormat,
    tracker: ScaleTracker,
    block: usize,
}

impl FpScaledQuantizer {
    /// Creates a quantizer that scales each tensor (treated as one block) by
    /// `amax / max_finite` before casting to `format`.
    pub fn new(format: ScalarFormat, strategy: ScaleStrategy) -> Self {
        FpScaledQuantizer {
            format,
            tracker: ScaleTracker::new(strategy),
            block: DEFAULT_TENSOR_BLOCK,
        }
    }

    /// Overrides the nominal scale granularity used for bits-per-element
    /// accounting (and the block size at which scales are recomputed).
    pub fn with_block(mut self, block: usize) -> Self {
        assert!(block > 0, "block granularity must be nonzero");
        self.block = block;
        self
    }

    /// The underlying scalar format.
    pub fn format(&self) -> ScalarFormat {
        self.format
    }

    fn quantize_block(&mut self, block: &[f32], out: &mut [f32]) {
        let amax = self.tracker.observe(block);
        if amax == 0.0 {
            out.fill(0.0);
            return;
        }
        // Map the observed maximum onto the largest finite value.
        let s = amax as f64 / self.format.max_finite() as f64;
        for (x, y) in block.iter().zip(out.iter_mut()) {
            *y = (self.format.cast((*x as f64 / s) as f32) as f64 * s) as f32;
        }
    }
}

impl VectorQuantizer for FpScaledQuantizer {
    fn label(&self) -> String {
        format!("{}({})", self.format, self.tracker.strategy())
    }

    fn bits_per_element(&self) -> f64 {
        self.format.total_bits() as f64 + FP32_SCALE_BITS / self.block as f64
    }

    fn quantize_dequantize(&mut self, xs: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; xs.len()];
        for (block, block_out) in xs.chunks(self.block).zip(out.chunks_mut(self.block)) {
            self.quantize_block(block, block_out);
        }
        out
    }

    fn reset(&mut self) {
        self.tracker.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amax_maps_to_max_finite() {
        let mut q = FpScaledQuantizer::new(ScalarFormat::E4M3, ScaleStrategy::Amax);
        let y = q.quantize_dequantize(&[8.0, 4.0, -2.0]);
        assert_eq!(y[0], 8.0);
        // 4.0 and 2.0 are powers of two times the max, still exact.
        assert_eq!(y[1], 4.0);
        assert_eq!(y[2], -2.0);
    }

    #[test]
    fn relative_error_bounded_by_format_precision() {
        let mut q = FpScaledQuantizer::new(ScalarFormat::E4M3, ScaleStrategy::Amax);
        let x: Vec<f32> = (1..500).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let y = q.quantize_dequantize(&x);
        for (a, b) in x.iter().zip(y.iter()) {
            if a.abs() > 0.1 {
                // E4M3 has 3 mantissa bits: relative error <= 2^-4 for normals.
                assert!(((a - b) / a).abs() <= 0.0625 + 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn delayed_scaling_saturates_new_outliers() {
        let mut q =
            FpScaledQuantizer::new(ScalarFormat::E4M3, ScaleStrategy::Delayed { window: 4 })
                .with_block(4);
        let _ = q.quantize_dequantize(&[1.0, 0.5, 0.2, 0.1]);
        let y = q.quantize_dequantize(&[100.0, 0.0, 0.0, 0.0]);
        // Scale was set for amax 1.0 -> 100 clips to about 1.0.
        assert!(y[0] <= 1.01, "expected clipping, got {}", y[0]);
    }

    #[test]
    fn bits_per_element_accounts_for_scale() {
        let q = FpScaledQuantizer::new(ScalarFormat::E5M2, ScaleStrategy::Amax);
        assert!((q.bits_per_element() - (8.0 + 32.0 / 10_000.0)).abs() < 1e-12);
        let q = q.with_block(128);
        assert!((q.bits_per_element() - (8.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn zero_tensor() {
        let mut q = FpScaledQuantizer::new(ScalarFormat::E5M2, ScaleStrategy::Amax);
        assert_eq!(q.quantize_dequantize(&[0.0; 8]), vec![0.0; 8]);
    }

    #[test]
    fn fp4_is_coarse_but_sane() {
        let mut q = FpScaledQuantizer::new(ScalarFormat::FP4_E2M1, ScaleStrategy::Amax);
        let x = [6.0f32, 3.0, 1.5, -6.0];
        // With amax 6 the scale is exactly 1, so these FP4 values round-trip.
        assert_eq!(q.quantize_dequantize(&x), x.to_vec());
    }

    #[test]
    fn label_and_reset() {
        let mut q =
            FpScaledQuantizer::new(ScalarFormat::E4M3, ScaleStrategy::Delayed { window: 2 })
                .with_block(2);
        assert_eq!(q.label(), "FP8-E4M3(delayed(2))");
        let _ = q.quantize_dequantize(&[50.0, 0.0]);
        q.reset();
        let y = q.quantize_dequantize(&[1.0, 0.0]);
        assert_eq!(y[0], 1.0);
    }
}
