//! Table III — training and inference with MX data formats across the
//! benchmark families: FP32 baseline training, MX9 training, direct-cast
//! MX9/MX6 inference, and quantization-aware fine-tuned MX6.
//!
//! Scaled-down models on synthetic data (DESIGN.md §4); the reproduction
//! target is the *pattern*: MX9 ≈ FP32 for both training and direct cast,
//! MX6 direct cast slightly degraded, QAT-MX6 recovering most of it.

use mx_bench::{fmt, print_table, write_csv};
use mx_models::diffusion::run_diffusion;
use mx_models::recsys::{run_recsys, Interaction};
use mx_models::speech::run_speech;
use mx_models::translate::{run_gru_translation, run_transformer_translation};
use mx_models::vision::{
    evaluate_classifier, train_classifier, ImageClassifier, TinyMobileNet, TinyResNet, TinyViT,
};
use mx_nn::qflow::QuantConfig;
use mx_nn::TensorFormat;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MX9: QuantConfig = QuantConfig {
    fwd: TensorFormat::MX9,
    fwd_w: TensorFormat::MX9,
    bwd: TensorFormat::MX9,
    elementwise: TensorFormat::Fp32,
};

fn mx6_cast() -> QuantConfig {
    QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6)
}

fn mx9_cast() -> QuantConfig {
    QuantConfig::weights_activations(TensorFormat::MX9, TensorFormat::MX9)
}

/// Runs the five Table III settings for a task exposed as a closure from
/// quant config to metric.
fn five_way(run: impl Fn(QuantConfig) -> f64) -> [f64; 5] {
    [
        run(QuantConfig::fp32()),
        run(MX9),
        run(mx9_cast()), // direct cast of an FP32-trained model is handled
        run(mx6_cast()), // by tasks that support it; others re-run with the
        run(QuantConfig::qat(TensorFormat::MX6)), // cast/QAT config end-to-end
    ]
}

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut push = |task: &str, metric: &str, better: &str, vals: [f64; 5], prec: usize| {
        rows.push(vec![
            task.to_string(),
            format!("{metric} {better}"),
            fmt(vals[0], prec),
            fmt(vals[1], prec),
            fmt(vals[2], prec),
            fmt(vals[3], prec),
            fmt(vals[4], prec),
        ]);
        csv.push(vec![
            task.to_string(),
            metric.to_string(),
            vals[0].to_string(),
            vals[1].to_string(),
            vals[2].to_string(),
            vals[3].to_string(),
            vals[4].to_string(),
        ]);
    };

    // -- Language translation -----------------------------------------
    eprintln!("[translation]");
    let t = |cfg| run_transformer_translation(cfg, 32, 2, 110, 11).bleu;
    push("Transformer-Base (syn WMT)", "BLEU", "^", five_way(t), 1);
    let t = |cfg| run_transformer_translation(cfg, 48, 3, 110, 11).bleu;
    push("Transformer-Large (syn WMT)", "BLEU", "^", five_way(t), 1);
    let t = |cfg| run_gru_translation(cfg, 32, 380, 11).bleu;
    push("GNMT-style GRU (syn WMT)", "BLEU", "^", five_way(t), 1);

    // -- Image classification ------------------------------------------
    eprintln!("[vision]");
    let vit = |d: usize, l: usize| {
        move |cfg: QuantConfig| {
            let mut rng = StdRng::seed_from_u64(21);
            let mut m = TinyViT::new(&mut rng, d, l, cfg);
            100.0 * train_classifier(&mut m, 90, 2e-3, 13).top1
        }
    };
    push(
        "DeiT-Tiny (syn shapes)",
        "Top-1 %",
        "^",
        five_way(vit(16, 1)),
        1,
    );
    push(
        "DeiT-Small (syn shapes)",
        "Top-1 %",
        "^",
        five_way(vit(32, 2)),
        1,
    );
    let resnet = |blocks: usize| {
        move |cfg: QuantConfig| {
            let mut rng = StdRng::seed_from_u64(22);
            let mut m = TinyResNet::new(&mut rng, 8, blocks, cfg);
            100.0 * train_classifier(&mut m, 70, 3e-3, 14).top1
        }
    };
    push(
        "ResNet-18-style (syn shapes)",
        "Top-1 %",
        "^",
        five_way(resnet(1)),
        1,
    );
    push(
        "ResNet-50-style (syn shapes)",
        "Top-1 %",
        "^",
        five_way(resnet(2)),
        1,
    );
    let mobile = |cfg: QuantConfig| {
        let mut rng = StdRng::seed_from_u64(23);
        let mut m = TinyMobileNet::new(&mut rng, 8, 2, cfg);
        100.0 * train_classifier(&mut m, 70, 3e-3, 15).top1
    };
    push(
        "MobileNet-style (syn shapes)",
        "Top-1 %",
        "^",
        five_way(mobile),
        1,
    );

    // True direct-cast check for one vision model (train FP32 once, cast).
    {
        let mut rng = StdRng::seed_from_u64(24);
        let mut m = TinyResNet::new(&mut rng, 8, 1, QuantConfig::fp32());
        let base = train_classifier(&mut m, 70, 3e-3, 16);
        let fp32 = 100.0 * evaluate_classifier(&mut m, 16);
        m.set_quant(mx9_cast());
        let cast9 = 100.0 * evaluate_classifier(&mut m, 16);
        m.set_quant(mx6_cast());
        let cast6 = 100.0 * evaluate_classifier(&mut m, 16);
        // QAT: brief fine-tune with MX6 forward / FP32 backward.
        m.set_quant(QuantConfig::qat(TensorFormat::MX6));
        let _ = train_classifier(&mut m, 10, 1e-3, 16);
        let qat6 = 100.0 * evaluate_classifier(&mut m, 16);
        let _ = base;
        push(
            "ResNet (same weights, true cast)",
            "Top-1 %",
            "^",
            [fp32, f64::NAN, cast9, cast6, qat6],
            1,
        );
    }

    // -- Diffusion ------------------------------------------------------
    eprintln!("[diffusion]");
    let ddpm_c = |cfg| run_diffusion(true, cfg, 260, 31).frechet;
    push(
        "Conditioned DDPM (syn 2-D)",
        "Frechet",
        "v",
        five_way(ddpm_c),
        2,
    );
    let ddpm_u = |cfg| run_diffusion(false, cfg, 260, 31).frechet;
    push(
        "Unconditioned DDPM (syn 2-D)",
        "Frechet",
        "v",
        five_way(ddpm_u),
        2,
    );

    // -- Speech ----------------------------------------------------------
    eprintln!("[speech]");
    let sp = |cfg| run_speech(cfg, 24, 400, 41).wer;
    push(
        "Wav2Vec-style GRU (syn speech)",
        "WER %",
        "v",
        five_way(sp),
        1,
    );

    // -- Recommendation ---------------------------------------------------
    eprintln!("[recsys]");
    let rec = |cfg| run_recsys(Interaction::DotProduct, cfg, false, 150, 51).auc;
    push("DLRM (syn CTR)", "AUC", "^", five_way(rec), 4);

    print_table(
        "Table III: training and inferencing with MX data formats",
        &[
            "task",
            "metric",
            "FP32 train",
            "MX9 train",
            "direct cast MX9",
            "direct cast MX6",
            "QAT MX6",
        ],
        &rows,
    );
    println!("\n(BERT rows: see table5_bert_qa. GPT rows: see table4_fewshot /");
    println!(" table7_generative, mirroring the paper's cross-references.)");
    write_csv(
        "table3_model_suite",
        &[
            "task",
            "metric",
            "fp32",
            "mx9_train",
            "cast_mx9",
            "cast_mx6",
            "qat_mx6",
        ],
        &csv,
    );
}
