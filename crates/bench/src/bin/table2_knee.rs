//! Table II — the MX4/MX6/MX9 definitions and the §IV-C "knee" analysis
//! that justifies d2 = 1, k2 = 2, k1 = 16.

use mx_bench::{fmt, print_table, write_csv};
use mx_core::bdr::BdrFormat;
use mx_core::qsnr::{Distribution, QsnrConfig};
use mx_sweep::eval::SweepSettings;
use mx_sweep::knee::knee_analysis;

fn main() {
    // Table II proper.
    let defs: Vec<Vec<String>> = [BdrFormat::MX9, BdrFormat::MX6, BdrFormat::MX4]
        .iter()
        .map(|f| {
            vec![
                f.to_string(),
                f.k1().to_string(),
                f.k2().to_string(),
                f.d1().to_string(),
                f.d2().to_string(),
                f.m().to_string(),
                fmt(f.bits_per_element(), 0),
            ]
        })
        .collect();
    print_table(
        "Table II: the basic MX data formats",
        &["format", "k1", "k2", "d1", "d2", "m", "avg bits/elem"],
        &defs,
    );

    // Knee analysis around each format.
    let settings = SweepSettings {
        qsnr: QsnrConfig {
            vectors: 512,
            vector_len: 1024,
            seed: 17,
        },
        distribution: Distribution::NormalVariableVariance,
        threads: 1,
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for base in [BdrFormat::MX9, BdrFormat::MX6, BdrFormat::MX4] {
        for step in knee_analysis(base, &settings) {
            rows.push(vec![
                base.to_string(),
                step.change.clone(),
                format!("{:+.2}", step.qsnr_delta()),
                format!("{:+.1}%", 100.0 * step.cost_ratio()),
            ]);
            csv.push(vec![
                base.to_string(),
                step.change.clone(),
                step.qsnr_delta().to_string(),
                step.cost_ratio().to_string(),
            ]);
        }
    }
    print_table(
        "Knee analysis (paper: d2 1->2 gains ~0.5 dB for 30-50% cost; k2 8->2 gains ~2 dB for ~3%; k2 2->1 gains ~0.7 dB for 30-40%)",
        &["base", "perturbation", "dQSNR (dB)", "dcost"],
        &rows,
    );
    write_csv(
        "table2_knee",
        &["base", "change", "dqsnr_db", "dcost_ratio"],
        &csv,
    );
}
