//! Table IV — zero/few-shot multiple-choice accuracy of an FP32-pretrained
//! generative model under direct cast to every (weights, activations)
//! format combination. The reproduction target: accuracy stays near the
//! FP32 baseline for MX9/MX6 combinations and falls off a cliff at
//! (MX4, MX4).

use mx_bench::{fmt, full_scale, print_table, write_csv};
use mx_models::data::markov_corpus;
use mx_models::fewshot::{build_items, evaluate, Task};
use mx_models::gpt::{train_lm, GptConfig};
use mx_nn::qflow::QuantConfig;
use mx_nn::TensorFormat;

fn main() {
    // A less predictable corpus (temperature 0.9) keeps decision margins
    // slim enough that format noise can flip borderline items — the regime
    // the paper's real benchmarks live in.
    let corpus = markov_corpus(5, 30_000, 0.9);
    let iters = if full_scale() { 600 } else { 250 };
    eprintln!("pretraining FP32 GPT ({iters} iters)...");
    let (mut model, run) = train_lm(
        GptConfig::ladder(2),
        QuantConfig::fp32(),
        &corpus,
        iters,
        8,
        3e-3,
        71,
    );
    eprintln!("pretrained: eval loss {:.3}", run.eval_loss);

    let grid: [(&str, Option<(TensorFormat, TensorFormat)>); 7] = [
        ("Baseline FP32", None),
        ("(MX9, MX9)", Some((TensorFormat::MX9, TensorFormat::MX9))),
        ("(MX6, MX9)", Some((TensorFormat::MX6, TensorFormat::MX9))),
        ("(MX6, MX6)", Some((TensorFormat::MX6, TensorFormat::MX6))),
        ("(MX4, MX9)", Some((TensorFormat::MX4, TensorFormat::MX9))),
        ("(MX4, MX6)", Some((TensorFormat::MX4, TensorFormat::MX6))),
        ("(MX4, MX4)", Some((TensorFormat::MX4, TensorFormat::MX4))),
    ];
    let n_items = if full_scale() { 60 } else { 30 };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for task in Task::all() {
        let items = build_items(task, &corpus, n_items, 97);
        for shots in [0usize, 1, 2] {
            let mut row = vec![task.name().to_string(), shots.to_string()];
            for (label, formats) in &grid {
                match formats {
                    None => model.set_quant(QuantConfig::fp32()),
                    Some((w, a)) => model.set_quant(QuantConfig::weights_activations(*w, *a)),
                }
                let acc = 100.0 * evaluate(&mut model, &items, shots);
                row.push(fmt(acc, 1));
                csv.push(vec![
                    task.name().to_string(),
                    shots.to_string(),
                    label.to_string(),
                    acc.to_string(),
                ]);
            }
            rows.push(row);
        }
    }
    model.set_quant(QuantConfig::fp32());
    print_table(
        "Table IV: zero/few-shot direct-cast accuracy (%), (weights, activations)",
        &[
            "task", "shots", "FP32", "(9,9)", "(6,9)", "(6,6)", "(4,9)", "(4,6)", "(4,4)",
        ],
        &rows,
    );
    println!("\nShape check vs paper: accuracies near-flat for >=MX6 combos; the");
    println!("(MX4, MX4) column should show a visible drop on the high-signal tasks.");
    write_csv(
        "table4_fewshot",
        &["task", "shots", "formats", "accuracy_pct"],
        &csv,
    );
}
