//! Fig. 6 — the bit-accurate dot-product pipeline: equivalence against a
//! software reference and the effect of the fixed-point accumulator width
//! `f` (the paper selects `f = min(25, max dynamic range)`).

use mx_bench::{fmt, print_table, write_csv};
use mx_core::bdr::BdrFormat;
use mx_core::scalar::ScalarFormat;
use mx_hw::pipeline::{DotProductPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn vectors(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    let b = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    (a, b)
}

fn reference(qa: &[f32], qb: &[f32], r: usize) -> f32 {
    let mut acc = 0.0f32;
    for (ca, cb) in qa.chunks(r).zip(qb.chunks(r)) {
        let chunk: f64 = ca
            .iter()
            .zip(cb.iter())
            .map(|(&x, &y)| x as f64 * y as f64)
            .sum();
        acc += chunk as f32;
    }
    acc
}

fn main() {
    let (a, b) = vectors(1024, 7);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, config) in [
        ("MX9", PipelineConfig::Bdr(BdrFormat::MX9)),
        ("MX6", PipelineConfig::Bdr(BdrFormat::MX6)),
        ("MX4", PipelineConfig::Bdr(BdrFormat::MX4)),
        ("MSFP12", PipelineConfig::Bdr(BdrFormat::MSFP12)),
        ("FP8-E4M3", PipelineConfig::Scalar(ScalarFormat::E4M3)),
    ] {
        let engine = DotProductPipeline::new(config, 64);
        let got = engine.dot(&a, &b);
        let (qa, qb) = match config {
            PipelineConfig::Bdr(f) => (f.quantize_dequantize(&a), f.quantize_dequantize(&b)),
            PipelineConfig::Scalar(f) => (f.cast_slice(&a), f.cast_slice(&b)),
        };
        let expect = reference(&qa, &qb, 64);
        let lossless = engine.with_accumulator_bits(90).dot(&a, &b);
        rows.push(vec![
            name.to_string(),
            engine.f().to_string(),
            fmt(got as f64, 4),
            fmt(expect as f64, 4),
            fmt((got - expect).abs() as f64, 6),
            fmt((lossless - expect).abs() as f64, 6),
        ]);
        csv.push(vec![
            name.to_string(),
            engine.f().to_string(),
            got.to_string(),
            expect.to_string(),
        ]);
    }
    print_table(
        "Fig. 6: pipeline vs software reference (1024-element dot, r = 64)",
        &[
            "format",
            "f (bits)",
            "pipeline",
            "reference",
            "|err| @ default f",
            "|err| @ f=90",
        ],
        &rows,
    );
    println!("\nAt f = 90 the pipeline is bit-exact; the default f only drops");
    println!("bits the paper's hardware would also drop in its fixed-point reduce.");
    write_csv(
        "fig6_pipeline",
        &["format", "f", "pipeline", "reference"],
        &csv,
    );
}
