//! Fig. 1 — INT quantization with three scaling strategies on the paper's
//! worked example `X = [0.7, 1.4, 2.5, 6, 7.2]`: (a) real-valued max-based
//! scale, (b) power-of-two scale, (c) two partitions with their own real
//! scales. Reproduces the ordering (c) > (a) > (b).

use mx_bench::{fmt, print_table, write_csv};
use mx_core::qsnr::qsnr_db;
use mx_core::util::round_half_even;

const X: [f32; 5] = [0.7, 1.4, 2.5, 6.0, 7.2];
const MAX_CODE: f64 = 4.0; // the figure's 2^(m-1)-1 = 4 grid

fn quantize_with_scale(xs: &[f32], s: f64) -> Vec<f32> {
    xs.iter()
        .map(|&x| {
            let q = round_half_even(x as f64 / s).clamp(-MAX_CODE, MAX_CODE);
            (q * s) as f32
        })
        .collect()
}

fn main() {
    let max = 7.2f64;
    // (a) Real-valued scale.
    let s_real = max / MAX_CODE;
    let rec_a = quantize_with_scale(&X, s_real);
    // (b) Power-of-two scale (round scale up to the next power of two).
    let s_pow2 = 2f64.powf((max / MAX_CODE).log2().ceil());
    let rec_b = quantize_with_scale(&X, s_pow2);
    // (c) Two partitions, each with its own real scale.
    let mut rec_c = quantize_with_scale(&X[..3], 2.5 / MAX_CODE);
    rec_c.extend(quantize_with_scale(&X[3..], 7.2 / MAX_CODE));

    let rows = [
        (
            "(a) real-valued scale s=Max/4",
            rec_a.clone(),
            qsnr_db(&X, &rec_a),
            15.2,
        ),
        (
            "(b) power-of-two scale",
            rec_b.clone(),
            qsnr_db(&X, &rec_b),
            10.1,
        ),
        (
            "(c) two partitions, real scales",
            rec_c.clone(),
            qsnr_db(&X, &rec_c),
            16.8,
        ),
    ];
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, rec, q, paper)| {
            vec![
                name.to_string(),
                format!("{rec:.2?}"),
                fmt(*q, 1),
                format!("{paper:.1}"),
            ]
        })
        .collect();
    print_table(
        "Fig. 1: scaling strategies on X = [0.7, 1.4, 2.5, 6, 7.2]",
        &[
            "strategy",
            "recovered values",
            "QSNR (dB)",
            "paper QSNR (dB)",
        ],
        &printable,
    );
    println!(
        "\nShape check: multi-partition > single real scale > power-of-two scale -> {}",
        if rows[2].2 > rows[0].2 && rows[0].2 > rows[1].2 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    write_csv(
        "fig1_scaling",
        &["strategy", "qsnr_db", "paper_qsnr_db"],
        &rows
            .iter()
            .map(|(n, _, q, p)| vec![n.to_string(), q.to_string(), p.to_string()])
            .collect::<Vec<_>>(),
    );
}
