//! Fig. 2 — the two-level scaling worked example: an expensive global
//! real-valued scale composed with cheap power-of-two sub-scales per
//! partition approximates ideal per-partition real scaling (QSNR 16.8 in
//! the paper).

use mx_bench::{fmt, print_table, write_csv};
use mx_core::qsnr::qsnr_db;
use mx_core::util::round_half_even;

const X: [f32; 5] = [0.7, 1.4, 2.5, 6.0, 7.2];
const MAX_CODE: f64 = 4.0;

fn main() {
    // (1) Global real scale from the data distribution.
    let s = 7.2f64 / MAX_CODE;
    // (2)+(3) Partitions with power-of-two sub-scale factors: partition 1 is
    // ~2.88x smaller than the range, so ss1 = 2^-2 wait — choose per
    // partition the largest power of two <= partition_max / global_max.
    let partitions: [&[f32]; 2] = [&X[..3], &X[3..]];
    let mut recovered = Vec::new();
    let mut sub_scales = Vec::new();
    for part in partitions {
        let pmax = part.iter().fold(0.0f32, |m, &x| m.max(x.abs())) as f64;
        let ss = 2f64.powf((pmax / (s * MAX_CODE)).log2().ceil());
        sub_scales.push(ss);
        for &x in part {
            let q = round_half_even(x as f64 / (s * ss)).clamp(-MAX_CODE, MAX_CODE);
            recovered.push((q * s * ss) as f32);
        }
    }
    let two_level = qsnr_db(&X, &recovered);

    // Reference points: one-level power-of-two and ideal per-partition real
    // scaling (Fig. 1 (b) and (c)).
    let one_level: Vec<f32> = X
        .iter()
        .map(|&x| {
            let q = round_half_even(x as f64 / 2.0).clamp(-MAX_CODE, MAX_CODE);
            (q * 2.0) as f32
        })
        .collect();
    let one_level_q = qsnr_db(&X, &one_level);
    let mut ideal = Vec::new();
    for part in partitions {
        let pmax = part.iter().fold(0.0f32, |m, &x| m.max(x.abs())) as f64;
        let sp = pmax / MAX_CODE;
        for &x in part {
            let q = round_half_even(x as f64 / sp).clamp(-MAX_CODE, MAX_CODE);
            ideal.push((q * sp) as f32);
        }
    }
    let ideal_q = qsnr_db(&X, &ideal);

    let rows = vec![
        vec![
            "one-level power-of-two".into(),
            fmt(one_level_q, 1),
            "10.1".into(),
        ],
        vec![
            format!("two-level (s real, ss = {:?})", sub_scales),
            fmt(two_level, 1),
            "16.8".into(),
        ],
        vec![
            "ideal per-partition real scaling".into(),
            fmt(ideal_q, 1),
            "16.8".into(),
        ],
    ];
    print_table(
        "Fig. 2: two-level scaling approximates ideal per-partition scaling",
        &["scheme", "QSNR (dB)", "paper QSNR (dB)"],
        &rows,
    );
    println!(
        "\nShape check: two-level ≈ ideal, both >> one-level pow2 -> {}",
        if (two_level - ideal_q).abs() < 3.0 && two_level > one_level_q + 3.0 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    write_csv(
        "fig2_two_level",
        &["scheme", "qsnr_db"],
        &rows
            .iter()
            .map(|r| vec![r[0].clone(), r[1].clone()])
            .collect::<Vec<_>>(),
    );
}
