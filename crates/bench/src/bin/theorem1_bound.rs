//! Theorem 1 / Eq. 4 — the closed-form QSNR lower bound vs measured QSNR
//! across formats and data distributions (the bound must never be
//! violated; its tightness varies with the distribution's tail).

use mx_bench::{fmt, print_table, write_csv};
use mx_core::bdr::{BdrFormat, BdrQuantizer};
use mx_core::qsnr::{measure_qsnr, Distribution, QsnrConfig};
use mx_core::theory::qsnr_lower_bound_db;

fn main() {
    let cfg = QsnrConfig {
        vectors: 256,
        vector_len: 1024,
        seed: 31,
    };
    let dists = [
        Distribution::NormalVariableVariance,
        Distribution::Uniform { lo: -1.0, hi: 1.0 },
        Distribution::LogNormalSigned { sigma: 1.5 },
        Distribution::Laplace { scale: 1.0 },
    ];
    let formats = [
        BdrFormat::MX9,
        BdrFormat::MX6,
        BdrFormat::MX4,
        BdrFormat::MSFP16,
        BdrFormat::MSFP12,
        BdrFormat::new(4, 8, 2, 16, 2).expect("valid"),
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut violations = 0;
    for f in formats {
        let bound = qsnr_lower_bound_db(f, cfg.vector_len);
        let mut row = vec![f.to_string(), fmt(bound, 1)];
        for d in dists {
            let measured = measure_qsnr(&mut BdrQuantizer::new(f), d, cfg);
            if measured < bound {
                violations += 1;
            }
            row.push(fmt(measured, 1));
            csv.push(vec![
                f.to_string(),
                d.to_string(),
                bound.to_string(),
                measured.to_string(),
            ]);
        }
        rows.push(row);
    }
    print_table(
        "Theorem 1: QSNR lower bound vs measured (dB)",
        &[
            "format",
            "bound",
            "N(0,|N|^2)",
            "Uniform",
            "LogNormal",
            "Laplace",
        ],
        &rows,
    );
    println!(
        "\nBound violations: {violations} (must be 0; the property test in \
         mx-core checks 512 adversarial cases per run)"
    );
    write_csv(
        "theorem1_bound",
        &["format", "distribution", "bound_db", "measured_db"],
        &csv,
    );
}
