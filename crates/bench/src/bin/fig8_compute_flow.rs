//! Fig. 8 — a trace of one quantized training iteration, showing which
//! tensors get quantized, along which axis, in which format, and the
//! transpose-before-quantize rule for the backward weight copy.

use mx_nn::format::{quantize_along, Axis, TensorFormat};
use mx_nn::tensor::Tensor;

fn main() {
    let fmt = TensorFormat::MX9;
    let (m, k, n) = (4usize, 16usize, 8usize);
    let a = Tensor::from_vec(
        (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect(),
        &[m, k],
    );
    let w = Tensor::from_vec(
        (0..k * n).map(|i| (i as f32 * 0.21).cos()).collect(),
        &[k, n],
    );
    let e = Tensor::from_vec(
        (0..m * n).map(|i| (i as f32 * 0.13).sin() * 0.1).collect(),
        &[m, n],
    );

    println!("== Fig. 8: compute flow of one training iteration (format {fmt}) ==\n");
    println!("Forward:");
    println!("  A[{m},{k}]  --Q along K (rows)-->  MX[{m},{k}Q]");
    let aq = quantize_along(&a, fmt, Axis::Row);
    println!("  W[{k},{n}]  --Q along K (cols)-->  MX[{k}Q,{n}]");
    let wq = quantize_along(&w, fmt, Axis::Col);
    let y = aq.matmul(&wq);
    println!(
        "  MatMul -> A_out[{},{}] (BF16/FP32 vector ops follow)\n",
        y.rows(),
        y.cols()
    );

    println!("Backward (dA = E * W^T):");
    println!("  E[{m},{n}]   --Q along N (rows)-->  MX[{m},{n}Q]");
    let eq_n = quantize_along(&e, fmt, Axis::Row);
    println!("  W^T[{n},{k}] --transpose FIRST, then Q along N-->  MX[{n}Q,{k}]");
    let wt_q = quantize_along(&w.transpose2d(), fmt, Axis::Col);
    let da = eq_n.matmul(&wt_q);
    println!("  MatMul -> E_out[{},{}]\n", da.rows(), da.cols());

    println!("Backward (dW = A^T * E):");
    println!("  A^T[{k},{m}] --transpose FIRST, then Q along M-->  MX[{k},{m}Q]");
    let at_q = quantize_along(&a.transpose2d(), fmt, Axis::Row);
    println!("  E[{m},{n}]   --Q along M (cols)-->  MX[{m}Q,{n}]");
    let eq_m = quantize_along(&e, fmt, Axis::Col);
    let dw = at_q.matmul(&eq_m);
    println!(
        "  MatMul -> W_grad[{},{}] -> FP32 optimizer\n",
        dw.rows(),
        dw.cols()
    );

    // Demonstrate the non-commutativity that forces two weight copies.
    let q_then_t = quantize_along(&w, fmt, Axis::Col).transpose2d();
    let t_then_q = quantize_along(&w.transpose2d(), fmt, Axis::Col);
    let diff: f32 = q_then_t
        .data()
        .iter()
        .zip(t_then_q.data().iter())
        .map(|(x, y)| (x - y).abs())
        .sum();
    println!("Transpose/quantize non-commutativity check:");
    println!("  sum |transpose(Q(W)) - Q(transpose(W))| = {diff:.6}  (nonzero -> two");
    println!("  quantized weight copies are required, exactly as Fig. 8 shows; note");
    println!("  E is also quantized twice: along N for dA, along M for dW)");
}
