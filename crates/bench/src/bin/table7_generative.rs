//! Table VII — generative training of dense and MoE language models: MX9
//! matches the FP32 baseline loss across the size ladder with no recipe
//! changes.

use mx_bench::{fmt, full_scale, print_table, write_csv};
use mx_models::data::markov_corpus;
use mx_models::gpt::{train_lm, GptConfig};
use mx_nn::qflow::QuantConfig;
use mx_nn::TensorFormat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let corpus = markov_corpus(9, 30_000, 0.4);
    let iters = if full_scale() { 400 } else { 150 };
    let names = ["GPT-XS", "GPT-S", "GPT-M", "GPT-L", "GPT-XL"];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (step, name) in names.iter().enumerate() {
        let config = GptConfig::ladder(step);
        let params = {
            let mut rng = StdRng::seed_from_u64(0);
            use mx_nn::param::HasParams;
            let mut m = mx_models::gpt::Gpt::new(&mut rng, config, QuantConfig::fp32());
            m.param_count()
        };
        eprintln!("[{name}: {params} params, {iters} iters]");
        let (_, fp32) = train_lm(config, QuantConfig::fp32(), &corpus, iters, 8, 3e-3, 81);
        let (_, mx9) = train_lm(
            config,
            QuantConfig::uniform(TensorFormat::MX9),
            &corpus,
            iters,
            8,
            3e-3,
            81,
        );
        rows.push(vec![
            format!("{name} ({params} params)"),
            fmt(fp32.eval_loss, 3),
            fmt(mx9.eval_loss, 3),
            format!("{:+.3}", mx9.eval_loss - fp32.eval_loss),
        ]);
        csv.push(vec![
            name.to_string(),
            params.to_string(),
            fp32.eval_loss.to_string(),
            mx9.eval_loss.to_string(),
        ]);
    }
    // MoE variant.
    eprintln!("[MoE]");
    let moe = GptConfig::moe(2, 4);
    let (_, fp32) = train_lm(moe, QuantConfig::fp32(), &corpus, iters, 8, 3e-3, 83);
    let (_, mx9) = train_lm(
        moe,
        QuantConfig::uniform(TensorFormat::MX9),
        &corpus,
        iters,
        8,
        3e-3,
        83,
    );
    rows.push(vec![
        "MoE (4 experts)".into(),
        fmt(fp32.eval_loss, 3),
        fmt(mx9.eval_loss, 3),
        format!("{:+.3}", mx9.eval_loss - fp32.eval_loss),
    ]);
    csv.push(vec![
        "MoE".into(),
        "-".into(),
        fp32.eval_loss.to_string(),
        mx9.eval_loss.to_string(),
    ]);

    print_table(
        "Table VII: generative LM loss, FP32 baseline vs MX9 training",
        &["model", "Baseline FP32", "MX9", "delta"],
        &rows,
    );
    println!("\nShape check vs paper: deltas should be within run-to-run noise");
    println!("(the paper reports identical two-decimal losses at every scale).");
    write_csv(
        "table7_generative",
        &["model", "params", "fp32_loss", "mx9_loss"],
        &csv,
    );
}
