//! Fig. 7 — the headline result: QSNR vs the normalized area-memory
//! efficiency product for 800+ BDR configurations and every named
//! competitor, with Pareto-frontier extraction.
//!
//! Set `MX_FULL=1` for a sample count closer to the paper's 10K vectors.

use mx_bench::{fmt, full_scale, print_table, write_csv};
use mx_core::bdr::BdrFormat;
use mx_core::qsnr::{Distribution, QsnrConfig};
use mx_hw::cost::FormatConfig;
use mx_sweep::eval::{evaluate_all, SweepSettings};
use mx_sweep::pareto::{db_below_frontier, pareto_indices};
use mx_sweep::space;

fn main() {
    let vectors = if full_scale() { 2048 } else { 256 };
    let settings = SweepSettings {
        qsnr: QsnrConfig {
            vectors,
            vector_len: 1024,
            seed: 0xf1e7,
        },
        distribution: Distribution::NormalVariableVariance,
        ..SweepSettings::default()
    };
    let configs = space::full_space();
    eprintln!(
        "evaluating {} configurations on {} threads...",
        configs.len(),
        settings.threads
    );
    let t0 = std::time::Instant::now();
    let points = evaluate_all(&configs, &settings);
    eprintln!("swept in {:?}", t0.elapsed());

    let frontier = pareto_indices(&points);
    // Named formats table (the Fig. 7 legend).
    let named: Vec<(String, FormatConfig)> = space::named_formats();
    let mut rows = Vec::new();
    for (name, cfg) in &named {
        let p = points
            .iter()
            .find(|p| &p.config == cfg)
            .expect("named config swept");
        let below = db_below_frontier(&points, p);
        rows.push(vec![
            name.clone(),
            fmt(p.bits_per_element, 2),
            fmt(p.qsnr_db, 1),
            fmt(p.area_norm, 3),
            fmt(p.memory_norm, 3),
            fmt(p.product, 3),
            if below < 0.75 {
                "*on frontier*".into()
            } else {
                format!("{below:.1} dB below")
            },
        ]);
    }
    print_table(
        "Fig. 7: named formats (x = area*memory product, normalized to dual FP8)",
        &[
            "format",
            "bits/elem",
            "QSNR (dB)",
            "area",
            "memory",
            "product",
            "frontier",
        ],
        &rows,
    );

    // Headline paper claims.
    let get = |f: BdrFormat| {
        points
            .iter()
            .find(|p| p.config == FormatConfig::Bdr(f))
            .expect("swept")
    };
    let fp8 = points
        .iter()
        .find(|p| p.label == "FP8-E4M3")
        .expect("swept");
    let fp8_e5 = points
        .iter()
        .find(|p| p.label == "FP8-E5M2")
        .expect("swept");
    let (mx9, mx6, mx4, msfp16) = (
        get(BdrFormat::MX9),
        get(BdrFormat::MX6),
        get(BdrFormat::MX4),
        get(BdrFormat::MSFP16),
    );
    println!("\nPaper claims vs measured:");
    println!(
        "  MX9 QSNR - FP8(E4M3) QSNR    = {:+.1} dB   (paper: ~ +16 dB)",
        mx9.qsnr_db - fp8.qsnr_db
    );
    println!(
        "  MX9 QSNR - MSFP16 QSNR       = {:+.1} dB   (paper: ~ +3.6 dB)",
        mx9.qsnr_db - msfp16.qsnr_db
    );
    println!(
        "  MX6 QSNR between E4M3/E5M2?    {}        ({:.1} vs [{:.1}, {:.1}])",
        if mx6.qsnr_db > fp8_e5.qsnr_db && mx6.qsnr_db < fp8.qsnr_db + 3.0 {
            "yes"
        } else {
            "no"
        },
        mx6.qsnr_db,
        fp8_e5.qsnr_db,
        fp8.qsnr_db
    );
    println!(
        "  MX9/FP8 cost product ratio   = {:.2}x  (paper: ~ 1x)",
        mx9.product / fp8.product
    );
    println!(
        "  FP8/MX6 cost product ratio   = {:.2}x  (paper: ~ 2x)",
        fp8.product / mx6.product
    );
    println!(
        "  FP8/MX4 cost product ratio   = {:.2}x  (paper: ~ 4x)",
        fp8.product / mx4.product
    );
    println!(
        "  Pareto frontier: {} of {} points",
        frontier.len(),
        points.len()
    );

    // Full scatter to CSV for plotting.
    let csv: Vec<Vec<String>> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                p.label.clone(),
                p.bits_per_element.to_string(),
                p.qsnr_db.to_string(),
                p.area_norm.to_string(),
                p.memory_norm.to_string(),
                p.product.to_string(),
                frontier.contains(&i).to_string(),
            ]
        })
        .collect();
    write_csv(
        "fig7_pareto",
        &[
            "label",
            "bits_per_element",
            "qsnr_db",
            "area_norm",
            "memory_norm",
            "product",
            "on_frontier",
        ],
        &csv,
    );
}
