//! Table I — classification of quantization approaches under the two-level
//! scaling framework (and Fig. 4's scale/sub-scale encodings).

use mx_bench::{print_table, write_csv};
use mx_core::taxonomy::table_i;

fn main() {
    let rows: Vec<Vec<String>> = table_i()
        .into_iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                r.scale.to_string(),
                r.sub_scale.to_string(),
                r.s_type.to_string(),
                r.ss_type.to_string(),
                format!("~{}", r.k1),
                if r.k2 == 0 {
                    "-".into()
                } else {
                    format!("~{}", r.k2)
                },
            ]
        })
        .collect();
    print_table(
        "Table I: two-level scaling classification",
        &[
            "scheme",
            "scale",
            "sub-scale",
            "s type",
            "ss type",
            "k1",
            "k2",
        ],
        &rows,
    );
    write_csv(
        "table1_taxonomy",
        &[
            "scheme",
            "scale",
            "sub_scale",
            "s_type",
            "ss_type",
            "k1",
            "k2",
        ],
        &rows,
    );
}
